"""Shared experiment drivers for the reproduction benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import paper_cluster
from repro.compiler import compile_program
from repro.optimizer import ResourceAdapter, ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS
from repro.scripts import load_script
from repro.workloads import paper_baselines, prepare_inputs

#: sample cap used by all benchmarks (fast, conformable with 1000 cols
#: via symmetric capping)
SAMPLE_CAP = 256


@dataclass
class RunRecord:
    """One end-to-end execution."""

    time: float = 0.0
    mr_jobs: int = 0
    migrations: int = 0
    resource: object = None


def fresh_compiled(script, scn, glm_family=2, seed=7):
    """Generate inputs and compile a script for one scenario."""
    hdfs = SimulatedHDFS(sample_cap=SAMPLE_CAP)
    args = prepare_inputs(hdfs, script, scn, glm_family=glm_family,
                          seed=seed)
    compiled = compile_program(load_script(script), args, hdfs.input_meta())
    return compiled, hdfs, args


def execute(script, scn, resource, adapt=False, cluster=None,
            glm_family=2, compiled=None, hdfs=None):
    """Execute ``script`` on ``scn`` under ``resource``; returns a
    :class:`RunRecord`.

    Pass the (compiled, hdfs) pair the resource was optimized for when
    ``resource`` carries per-block MR entries — block ids are specific
    to one compiled program.
    """
    cluster = cluster or paper_cluster()
    if compiled is None:
        compiled, hdfs, _ = fresh_compiled(script, scn, glm_family)
    adapter = (
        ResourceAdapter(ResourceOptimizer(cluster)) if adapt else None
    )
    interp = Interpreter(cluster, hdfs=hdfs, sample_cap=SAMPLE_CAP,
                         adapter=adapter)
    result = interp.run(compiled, resource)
    return RunRecord(
        time=result.total_time,
        mr_jobs=result.mr_jobs,
        migrations=result.migrations,
        resource=result.final_resource,
    )


def optimize(script, scn, cluster=None, glm_family=2, **opt_kwargs):
    """Run initial resource optimization; returns (OptimizerResult,
    compiled)."""
    cluster = cluster or paper_cluster()
    compiled, _, _ = fresh_compiled(script, scn, glm_family)
    optimizer = ResourceOptimizer(cluster, **opt_kwargs)
    return optimizer.optimize(compiled), compiled


def compare_configs(script, scn, cluster=None, adapt=False, glm_family=2):
    """Execute under the four baselines plus Opt; returns dict of
    RunRecords keyed by configuration name."""
    cluster = cluster or paper_cluster()
    records = {}
    for name, rc in paper_baselines(cluster).items():
        records[name] = execute(script, scn, rc, cluster=cluster,
                                glm_family=glm_family)
    compiled, hdfs, _ = fresh_compiled(script, scn, glm_family)
    opt_result = ResourceOptimizer(cluster).optimize(compiled)
    records["Opt"] = execute(
        script, scn, opt_result.resource, adapt=adapt, cluster=cluster,
        glm_family=glm_family, compiled=compiled, hdfs=hdfs,
    )
    records["Opt"].resource = opt_result.resource
    return records


def format_table(headers, rows, title=""):
    """Fixed-width table rendering for reports."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def gb(mb):
    return f"{mb / 1024:.1f}GB"


def end_to_end_figure(script, sizes=("XS", "S", "M", "L"), adapt=False,
                      glm_family=2):
    """Drive one of Figures 7-11: all four data shapes x sizes x the
    four baselines + Opt.  Returns {shape: {size: {config: RunRecord}}}."""
    from repro.workloads import scenario

    shapes = [
        ("dense1000", 1000, False),
        ("sparse1000", 1000, True),
        ("dense100", 100, False),
        ("sparse100", 100, True),
    ]
    results = {}
    for label, cols, sparse in shapes:
        results[label] = {}
        for size in sizes:
            scn = scenario(size, cols=cols, sparse=sparse)
            results[label][size] = compare_configs(
                script, scn, adapt=adapt, glm_family=glm_family
            )
    return results


def render_figure(results, title):
    """Render an end_to_end_figure result as per-shape tables."""
    sections = [title]
    for label, by_size in results.items():
        rows = []
        for size, records in by_size.items():
            row = [size]
            for config in ("B-SS", "B-LS", "B-SL", "B-LL", "Opt"):
                row.append(f"{records[config].time:.0f}s")
            row.append(records["Opt"].resource.describe())
            rows.append(row)
        sections.append(
            format_table(
                ["size", "B-SS", "B-LS", "B-SL", "B-LL", "Opt",
                 "Opt config"],
                rows,
                title=f"-- {label} --",
            )
        )
    return "\n\n".join(sections)
