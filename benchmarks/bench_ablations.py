"""Ablation benches for the design choices DESIGN.md calls out.

1. **Grid strategies** — allocation quality (chosen config's estimated
   cost) vs enumeration effort (#points, compilations) for Equi(15/45),
   Exp, Mem, Hybrid.  Expected: Hybrid matches the best quality with
   far fewer points than Equi(45).
2. **Block pruning** — optimizer effort with and without Section 3.4
   pruning.  Expected: same chosen configuration, large reduction in
   compilations/costings.
3. **Provisional-block exclusion** — the cost model's treatment of
   unknown-ridden blocks.  Expected: with exclusion, MLogreg's initial
   CP stays minimal (the paper's Section 5.5 behaviour); without it,
   the optimizer over-provisions CP based on noise.
"""

import pytest

from _lib import format_table, fresh_compiled
from repro.cluster import paper_cluster
from repro.cost import CostModel
from repro.optimizer import ResourceOptimizer
from repro.workloads import scenario


@pytest.mark.repro
def test_ablation_grid_strategies(benchmark, report):
    def run():
        cluster = paper_cluster()
        rows = []
        quality = {}
        for label, kwargs in [
            ("Equi m=15", {"grid_cp": "equi", "grid_mr": "equi", "m": 15}),
            ("Equi m=45", {"grid_cp": "equi", "grid_mr": "equi", "m": 45}),
            ("Exp", {"grid_cp": "exp", "grid_mr": "exp"}),
            ("Mem", {"grid_cp": "mem", "grid_mr": "mem", "m": 15}),
            ("Hybrid", {"grid_cp": "hybrid", "grid_mr": "hybrid", "m": 15}),
        ]:
            compiled, _, _ = fresh_compiled("LinregCG", scenario("M"))
            result = ResourceOptimizer(cluster, **kwargs).optimize(compiled)
            rows.append([
                label, result.stats.cp_points,
                result.stats.block_compilations,
                f"{result.cost:.1f}s",
                result.resource.describe(),
            ])
            quality[label] = result.cost
        return rows, quality

    rows, quality = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_grids",
        format_table(
            ["strategy", "#cp points", "#compilations", "est. cost",
             "chosen"],
            rows,
            title="Ablation: grid strategy quality vs effort "
                  "(LinregCG, M dense1000)",
        ),
    )
    # hybrid matches the finest equi grid's quality (within 5%)
    assert quality["Hybrid"] <= quality["Equi m=45"] * 1.05
    # the exp-only grid may miss the sweet spot (that is why hybrid
    # overlays memory-based points)
    assert quality["Hybrid"] <= quality["Exp"] * 1.001


@pytest.mark.repro
def test_ablation_pruning(benchmark, report):
    def run():
        cluster = paper_cluster()
        out = {}
        for label, enabled in [("with pruning", True), ("without", False)]:
            compiled, _, _ = fresh_compiled("GLM", scenario("S"))
            optimizer = ResourceOptimizer(cluster, enable_pruning=enabled)
            out[label] = optimizer.optimize(compiled)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, r.stats.block_compilations, r.stats.cost_invocations,
         f"{r.stats.optimization_time:.2f}s", r.resource.describe()]
        for label, r in results.items()
    ]
    report(
        "ablation_pruning",
        format_table(
            ["pruning", "#compilations", "#costings", "opt time", "chosen"],
            rows,
            title="Ablation: block pruning (GLM, S dense1000)",
        ),
    )
    with_p = results["with pruning"]
    without = results["without"]
    # identical allocation, far less work
    assert with_p.resource.cp_heap_mb == without.resource.cp_heap_mb
    assert with_p.stats.cost_invocations < 0.5 * without.stats.cost_invocations


@pytest.mark.repro
def test_ablation_provisional_exclusion(benchmark, report):
    def run():
        cluster = paper_cluster()
        out = {}
        for label, exclude in [("exclude", True), ("include", False)]:
            compiled, _, _ = fresh_compiled("MLogreg", scenario("M"))
            cost_model = CostModel(cluster, exclude_provisional=exclude)
            optimizer = ResourceOptimizer(cluster, cost_model=cost_model)
            out[label] = optimizer.optimize(compiled)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, r.resource.describe(), f"{r.cost:.1f}s"]
        for label, r in results.items()
    ]
    report(
        "ablation_provisional",
        format_table(
            ["provisional blocks", "chosen", "est. cost"],
            rows,
            title="Ablation: excluding unknown-ridden blocks from "
                  "what-if costs (MLogreg, M dense1000)",
        ),
    )
    # with exclusion the initial CP stays minimal (paper 5.5) and the
    # reported cost reflects only the known blocks
    assert results["exclude"].resource.cp_heap_mb <= 1024
    # without exclusion the estimate is dominated by unknown-block noise
    # (default-iteration MR latencies on unknown-sized data), an order
    # of magnitude beyond any actual execution of this program
    assert results["include"].cost > 10 * 500.0
