"""Cost-model calibration: estimate-vs-actual divergence before/after.

Simulates a cluster whose true constants drifted away from the model's
defaults (``drifted_parameters(seed)`` perturbs every calibratable
parameter log-uniformly), runs a few traced workloads with the
calibration collector on, fits a :class:`CalibrationProfile` from the
collected (work, seconds) samples, and measures how far the cost
model's *per-component* estimates sit from the runtime's actuals under
the default belief vs the fitted one.

Divergence is measured per cost component (median over components),
not on the total: structural model error can cancel across components
in the total and mask exactly the parameter error calibration fixes.

Asserted invariants:

* for every workload, the calibrated median divergence is <= 0.5x the
  uncalibrated one (the fit must at least halve the error);
* fidelity ablation: running with ``calibrate=True`` but never applying
  the profile leaves ``prints`` / ``total_time`` / ``breakdown``
  byte-identical to a calibration-off run — collection never perturbs
  execution.

Writes ``BENCH_calibration.json`` (override with ``--out``).  Also
runnable standalone: ``python benchmarks/bench_calibration.py``.
"""

import argparse
import json
import pathlib
import statistics
import sys

from _lib import SAMPLE_CAP, format_table
from repro.api import ElasticMLSession, SessionConfig
from repro.cost import CostModel
from repro.cost.calibrate import COMPONENTS, drifted_parameters
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.workloads import prepare_inputs, scenario

#: (script, scenario size, cols, traced runs) — sized so most cost
#: components cross the sample floor (MR components need MR jobs, so
#: LinregDS runs at M)
WORKLOADS = [
    ("LinregDS", "M", 1000, 4),
    ("GLM", "S", 1000, 4),
]
DRIFT_SEED = 42
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_calibration.json"
)


def _component_divergence(sess, outcomes, params):
    """Median relative error of per-component estimated seconds under
    ``params`` against the per-component actuals the collector saw."""
    model = CostModel(sess.cluster, params)
    est = {}
    for outcome in outcomes:
        totals = model.estimate_components(outcome.compiled,
                                           outcome.resource)
        for name, value in totals.items():
            if name != "total":
                est[name] = est.get(name, 0.0) + value
    actual = {
        name: totals[2]
        for name, totals in sess.calibration.totals().items()
        if totals[2] > 0.0
    }
    return statistics.median(
        abs(est.get(name, 0.0) - act) / act
        for name, act in sorted(actual.items())
    )


def measure_workload(script, size, cols, runs):
    """Traced runs on drifted hardware -> fit -> divergence both ways."""
    truth = drifted_parameters(DRIFT_SEED)
    sess = ElasticMLSession(
        params=truth,
        model_params=DEFAULT_PARAMETERS,
        trace=True,
        sample_cap=SAMPLE_CAP,
        config=SessionConfig(calibrate=True),
    )
    scn = scenario(size, cols=cols)
    args = prepare_inputs(sess.hdfs, script, scn, glm_family=2, seed=7)
    outcomes = []
    for index in range(runs):
        sess.seed = index
        outcomes.append(sess.run(script, args, adapt=False))

    assert outcomes[-1].trace.counter("calib.samples") > 0, (
        f"{script}: traced run emitted no calibration samples"
    )
    profile = sess.fit_calibration()
    assert profile.fitted, f"{script}: fit produced no parameters"

    before = _component_divergence(sess, outcomes, sess.model_params)
    after = _component_divergence(sess, outcomes, profile.parameters())
    return {
        "scenario": scn.label,
        "runs": runs,
        "samples": sess.calibration.counts(),
        "fitted": dict(profile.fitted),
        "fitted_components": len(profile.fitted),
        "total_components": len(COMPONENTS),
        "median_divergence_uncalibrated": before,
        "median_divergence_calibrated": after,
    }


def _fidelity_blob(outcome):
    return json.dumps(
        {
            "prints": list(outcome.prints),
            "total_time": outcome.total_time,
            "breakdown": outcome.result.breakdown,
        },
        sort_keys=True,
    )


def measure_fidelity(script="LinregDS", size="S", cols=1000):
    """Calibration-off vs calibration-on-but-unapplied, truth == belief:
    the ablation that guarantees collection never changes results."""
    def run_once(config):
        sess = ElasticMLSession(sample_cap=SAMPLE_CAP, config=config)
        args = prepare_inputs(sess.hdfs, script, scenario(size, cols=cols),
                              glm_family=2, seed=7)
        sess.seed = 0
        return sess, sess.run(script, args, adapt=False)

    _, plain = run_once(SessionConfig())
    collecting_sess, collecting = run_once(SessionConfig(calibrate=True))
    # fit (but never apply) to prove the fit path is also side-effect
    # free on execution state
    profile = collecting_sess.fit_calibration()

    identical = _fidelity_blob(plain) == _fidelity_blob(collecting)
    assert identical, (
        "calibration collection perturbed execution: prints/total_time/"
        "breakdown differ from the calibration-off run"
    )
    return {
        "script": script,
        "scenario": f"{size} dense{cols}",
        "identical": identical,
        "total_time": plain.total_time,
        "samples_collected": collecting_sess.calibration.total_samples,
        "fitted_components_unapplied": len(profile.fitted),
    }


def run_experiment():
    records = {
        script: measure_workload(script, size, cols, runs)
        for script, size, cols, runs in WORKLOADS
    }
    return {
        "bench": "calibration",
        "drift_seed": DRIFT_SEED,
        "workloads": records,
        "fidelity": measure_fidelity(),
    }


def render(data):
    rows = []
    for script, rec in data["workloads"].items():
        before = rec["median_divergence_uncalibrated"]
        after = rec["median_divergence_calibrated"]
        ratio = after / before if before else float("inf")
        rows.append([
            script,
            rec["scenario"],
            rec["runs"],
            sum(rec["samples"].values()),
            f"{rec['fitted_components']}/{rec['total_components']}",
            f"{before:.1%}",
            f"{after:.1%}",
            f"{ratio:.3f}x",
        ])
    fid = data["fidelity"]
    return format_table(
        ["Prog.", "scenario", "runs", "samples", "fitted",
         "uncalibrated", "calibrated", "ratio"],
        rows,
        title=(
            f"Per-component estimate-vs-actual divergence, drift seed "
            f"{data['drift_seed']}\nfidelity ablation ({fid['script']} "
            f"{fid['scenario']}): calibration-off == collect-but-"
            f"unapplied -> {'identical' if fid['identical'] else 'DIVERGED'}"
        ),
    )


def check_divergence(data):
    """Calibration must at least halve the median divergence."""
    for script, rec in data["workloads"].items():
        before = rec["median_divergence_uncalibrated"]
        after = rec["median_divergence_calibrated"]
        assert after <= 0.5 * before, (
            f"{script}: calibrated divergence {after:.3f} is not <= 0.5x "
            f"the uncalibrated {before:.3f}"
        )
    assert data["fidelity"]["identical"]
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="where to write BENCH_calibration.json")
    args = parser.parse_args(argv)
    data = run_experiment()
    print(render(data))
    data["divergence_asserted"] = check_divergence(data)
    args.out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    return 0


try:
    import pytest
except ImportError:  # standalone mode in minimal environments
    pytest = None

if pytest is not None:

    @pytest.mark.repro
    def test_calibration(benchmark, report):
        data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
        data["divergence_asserted"] = check_divergence(data)
        report("calibration", render(data))
        DEFAULT_OUT.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )


if __name__ == "__main__":
    sys.exit(main())
