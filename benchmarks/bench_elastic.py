"""Continuous-elasticity benchmark: autoscaling Brain vs static admission.

Replays a bursty multi-tenant trace (three arrival bursts against a
deliberately small one-node cluster, plus a background load spike) twice
through the deterministic virtual-time :class:`repro.elastic
.TraceSimulator` — once with plain static admission and once with the
autoscaling Brain (memory-elastic admission ladder + mid-run rescaling)
— and compares makespan, utilization, and admission wait.

Invariants asserted on every run:

* every trace entry completes in both arms (nothing rejected);
* **byte-identical outputs** — every simulated run's prints and MR-job
  count equal a private single-tenant serial session on the same
  recipe, in both arms, and the written output matrices are
  ``np.array_equal`` to the serial ones (elasticity perturbs time only,
  never numerics);
* **fidelity ablation** — with the Brain off, every run's simulated
  duration is *exactly* the serial session's total time (the static arm
  is plain v1.5 behavior);
* the Brain arm beats the static arm on makespan or utilization, with
  ``elastic.rescales > 0`` and at least one below-ideal elastic
  admission.

Writes ``BENCH_elastic.json`` (override with ``--out``).  Standalone:
``python benchmarks/bench_elastic.py [--quick] [--out PATH]``.
"""

import argparse
import json
import pathlib
import sys

import numpy as np

from repro.api import ElasticMLSession
from repro.cluster import ClusterLoad, small_cluster
from repro.elastic import TraceSimulator, bursty_trace
from repro.workloads import prepare_inputs, scenario

#: workload mix cycled across the trace (XS keeps runs CP-only, so the
#: fidelity ablation below can demand *exact* duration equality)
MIX = (("LinregDS", "XS", 100), ("LinregCG", "XS", 100))
SEED = 11
SAMPLE_CAP = 64
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_elastic.json"
)


def make_cluster():
    """One node, 1 GB: two ideal AM containers fit; a third only fits
    when the Brain admits below ideal."""
    return small_cluster(num_nodes=1, node_memory_mb=1024)


def make_background():
    """Background load spike around the second burst — pressures
    running Brains into mid-run shrinks."""
    return ClusterLoad(schedule=[(0.0, 0.0), (150.0, 0.8), (185.0, 0.0)])


def serial_references():
    """Canonical single-tenant results per recipe: prints, MR jobs,
    total time, and the written output matrix."""
    refs = {}
    for script, size, cols in MIX:
        session = ElasticMLSession(
            cluster=make_cluster(), sample_cap=SAMPLE_CAP
        )
        args = prepare_inputs(session.hdfs, script, scenario(size, cols=cols))
        outcome = session.run(script, args, adapt=False)
        out_path = args.get("B") or args.get("model") or args.get("C")
        refs[script] = {
            "prints": tuple(outcome.prints),
            "mr_jobs": outcome.result.mr_jobs,
            "total_time": outcome.total_time,
            "out_path": out_path,
            "matrix": np.array(session.hdfs.get(out_path).data),
        }
    return refs


def check_arm(result, trace, refs, hdfs, *, fidelity):
    """Assert completion + byte-identity (and, for the static arm,
    exact duration fidelity) for every simulated run."""
    assert not result.rejected, (
        f"{result.label}: {len(result.rejected)} entries rejected"
    )
    assert len(result.runs) == len(trace.entries), (
        f"{result.label}: {len(result.runs)} of {len(trace.entries)} "
        "entries completed"
    )
    for run in result.runs:
        ref = refs[run.entry.script]
        got = run.outcome.result
        assert tuple(got.prints) == ref["prints"], (
            f"{result.label}: {run.entry.tenant}/{run.entry.script} "
            "prints diverged from the serial session"
        )
        assert got.mr_jobs == ref["mr_jobs"], (
            f"{result.label}: {run.entry.tenant} MR-job count diverged"
        )
        if fidelity:
            assert got.total_time == ref["total_time"], (
                f"{result.label}: {run.entry.tenant} simulated time "
                f"{got.total_time} != serial {ref['total_time']} "
                "(static arm must be exactly v1.5 behavior)"
            )
    for script, _, _ in MIX:
        ref = refs[script]
        written = np.array(hdfs.get(ref["out_path"]).data)
        assert np.array_equal(written, ref["matrix"]), (
            f"{result.label}: output matrix of {script} diverged"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small trace for CI smoke (10 tenants, "
                             "2 bursts)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    tenants, bursts = (10, 2) if args.quick else (24, 3)
    trace = bursty_trace(
        seed=SEED, tenants=tenants, bursts=bursts,
        burst_gap_s=150.0, intra_gap_s=1.5, mix=MIX,
    )
    refs = serial_references()

    arms = {}
    hdfs_by_arm = {}
    for elastic in (False, True):
        sim = TraceSimulator(
            trace, cluster=make_cluster(), elastic=elastic,
            background=make_background(), sample_cap=SAMPLE_CAP,
        )
        result = sim.run()
        arms[result.label] = result
        hdfs_by_arm[result.label] = sim.session.hdfs
    static, brain = arms["static"], arms["brain"]

    check_arm(static, trace, refs, hdfs_by_arm["static"], fidelity=True)
    check_arm(brain, trace, refs, hdfs_by_arm["brain"], fidelity=False)

    assert (
        brain.makespan_s < static.makespan_s
        or brain.utilization > static.utilization
    ), (
        f"Brain arm won neither makespan ({brain.makespan_s} vs "
        f"{static.makespan_s}) nor utilization ({brain.utilization} vs "
        f"{static.utilization})"
    )
    brain_summary = brain.summary()
    assert brain_summary["rescales"] > 0, "Brain never rescaled a run"
    assert brain_summary["elastic_admissions"] > 0, (
        "Brain never admitted below ideal"
    )

    speedup = static.makespan_s / brain.makespan_s
    payload = {
        "benchmark": "elastic",
        "trace": {
            "name": trace.name,
            "entries": len(trace.entries),
            "bursts": bursts,
            "mix": [f"{s}:{size}" for s, size, _ in MIX],
        },
        "cluster": {"nodes": 1, "node_memory_mb": 1024},
        "static": static.summary(),
        "brain": brain_summary,
        "makespan_speedup": round(speedup, 4),
        "byte_identical_outputs": True,
        "fidelity_ablation": (
            "brain off: every run's duration exactly equals its serial "
            "single-tenant session"
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"trace {trace.name}: {len(trace.entries)} entries, "
          f"{bursts} bursts, 1x1024MB cluster")
    for label in ("static", "brain"):
        s = arms[label].summary()
        print(f"{label:8} makespan {s['makespan_s']:8.1f}s  "
              f"util {s['utilization']:.3f}  "
              f"mean wait {s['mean_wait_s']:6.1f}s  "
              f"rescales {s['rescales']:3d}  "
              f"elastic adm {s['elastic_admissions']}")
    print(f"\nmakespan speedup: {speedup:.3f}x  "
          f"(outputs byte-identical in both arms; static arm exactly "
          f"serial)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
