"""Extension experiments beyond the paper's evaluation.

1. **Offer-based allocation** (paper Section 2.3's Mesos instantiation):
   drives the decaying-reservation-price allocator over simulated offer
   streams at different background loads.  Expected: on idle clusters
   the first offers are near-optimal and accepted immediately; on
   loaded clusters the allocator declines small offers until the
   tolerated regret covers them, keeping realized regret bounded by the
   waiting budget.
2. **Cluster-utilization-based adaptation** (paper Section 6): executes
   the distributed-plan LinregDS under background load with and without
   the utilization-aware adapter.  Expected: the adapter migrates to a
   single-node in-memory configuration and beats the load-blind run.
"""

import pytest

from _lib import execute, format_table, fresh_compiled, optimize
from repro.cluster import (
    ClusterLoad,
    OfferBasedAllocator,
    OfferStream,
    paper_cluster,
)
from repro.optimizer import ResourceOptimizer, UtilizationAwareAdapter
from repro.runtime import Interpreter
from repro.workloads import scenario


@pytest.mark.repro
def test_ext_offer_based_allocation(benchmark, report):
    def run():
        cluster = paper_cluster()
        result, _ = optimize("LinregCG", scenario("M"))
        rows = []
        outcomes = {}
        for load_mean in (0.2, 0.5, 0.8, 0.95):
            allocator = OfferBasedAllocator(
                result.cp_profile, cluster, wait_cost_per_second=2.0
            )
            outcome = allocator.allocate(
                OfferStream(cluster, load_mean=load_mean, seed=11)
            )
            rows.append([
                f"{load_mean:.2f}",
                outcome.declined,
                f"{outcome.waited:.0f}s",
                f"{outcome.heap_mb:.0f}MB" if outcome.accepted else "-",
                f"{outcome.regret:.1f}s" if outcome.accepted else "-",
            ])
            outcomes[load_mean] = (outcome, allocator)
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ext_offer_allocation",
        format_table(
            ["bg load", "#declined", "waited", "accepted heap", "regret"],
            rows,
            title="Extension: offer-based (Mesos) allocation, LinregCG M",
        ),
    )
    light, _ = outcomes[0.2]
    heavy, heavy_alloc = outcomes[0.95]
    assert light.accepted and heavy.accepted
    # light clusters: near-immediate, near-optimal acceptance
    assert light.declined <= 2
    assert light.regret == pytest.approx(0.0, abs=1.0)
    # heavy clusters: waits longer, but regret stays within the policy's
    # waiting budget
    assert heavy.waited >= light.waited
    assert heavy.regret <= heavy_alloc.tolerated_regret(
        heavy.offer.timestamp
    )


@pytest.mark.repro
def test_ext_utilization_adaptation(benchmark, report):
    def run():
        cluster = paper_cluster()
        scn = scenario("M")
        rows = []
        times = {}
        for label, utilization, aware in [
            ("idle", 0.0, False),
            ("85% load, load-blind", 0.85, False),
            ("85% load, utilization-aware", 0.85, True),
        ]:
            load = ClusterLoad.constant(utilization)
            compiled, hdfs, _ = fresh_compiled("LinregDS", scn)
            rc = ResourceOptimizer(cluster).optimize(compiled).resource
            adapter = (
                UtilizationAwareAdapter(ResourceOptimizer(cluster), load)
                if aware
                else None
            )
            interp = Interpreter(
                cluster, hdfs=hdfs, sample_cap=256, adapter=adapter,
                cluster_load=load,
            )
            result = interp.run(compiled, rc)
            rows.append([
                label, f"{result.total_time:.0f}s", result.migrations,
                result.final_resource.describe(),
            ])
            times[label] = result
        return rows, times

    rows, times = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ext_utilization_adaptation",
        format_table(
            ["scenario", "time", "#migrations", "final config"],
            rows,
            title="Extension: utilization-based adaptation, LinregDS M "
                  "(distributed plan under background load)",
        ),
    )
    aware = times["85% load, utilization-aware"]
    blind = times["85% load, load-blind"]
    assert aware.migrations >= 1
    assert aware.total_time < blind.total_time
    # the fallback moved toward single-node in-memory execution
    assert aware.final_resource.cp_heap_mb > blind.final_resource.cp_heap_mb
