"""Extension experiment: heterogeneous multi-tenancy.

The paper's opening argument: "a static cluster configuration is always
a compromise, especially in multi-tenancy scenarios where the same
cluster is shared" (Section 1).  This bench quantifies it end to end: a
mixed population of users — direct-solve regressions, iterative CG, and
SVMs on different data sizes — runs under (a) one static B-LL
configuration for everyone, and (b) per-program configurations from the
resource optimizer.  Expected: per-program elasticity wins twice over —
each application runs at (or near) its best configuration *and* the
right-sized containers multiply admission parallelism.
"""

import pytest

from _lib import execute, format_table, fresh_compiled, optimize
from repro.cluster import paper_cluster
from repro.cluster.events import simulate_mixed_throughput
from repro.workloads import paper_baselines, scenario

#: the tenant mix: (script, scenario, #users of this kind)
MIX = [
    ("LinregDS", scenario("S", cols=1000), 6),
    ("LinregCG", scenario("M", cols=1000), 6),
    ("L2SVM", scenario("S", cols=100), 6),
]


def measure_profiles():
    """Per-tenant (duration, container) under B-LL and under Opt."""
    cluster = paper_cluster()
    bll = paper_baselines(cluster)["B-LL"]
    bll_container = cluster.container_mb_for_heap(bll.cp_heap_mb)
    profiles = {"B-LL": [], "Opt": []}
    rows = []
    for script, scn, count in MIX:
        bll_time = execute(script, scn, bll).time
        opt_result, compiled_hdfs = None, None
        compiled, hdfs, _ = fresh_compiled(script, scn)
        from repro.optimizer import ResourceOptimizer

        opt_result = ResourceOptimizer(cluster).optimize(compiled)
        opt_time = execute(
            script, scn, opt_result.resource, compiled=compiled, hdfs=hdfs
        ).time
        opt_container = cluster.container_mb_for_heap(
            opt_result.resource.cp_heap_mb
        )
        profiles["B-LL"].extend([(bll_time, bll_container)] * count)
        profiles["Opt"].extend([(opt_time, opt_container)] * count)
        rows.append([
            f"{script} {scn.size}", count,
            f"{bll_time:.0f}s @ {bll_container}MB",
            f"{opt_time:.0f}s @ {opt_container}MB",
        ])
    return profiles, rows


@pytest.mark.repro
def test_ext_multitenant_mix(benchmark, report):
    def run():
        cluster = paper_cluster()
        profiles, rows = measure_profiles()
        outcomes = {
            name: simulate_mixed_throughput(cluster, specs, apps_per_user=8)
            for name, specs in profiles.items()
        }
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    bll = outcomes["B-LL"]
    opt = outcomes["Opt"]
    summary = (
        f"aggregate throughput: B-LL {bll.apps_per_minute:.1f} app/min "
        f"(max {bll.max_concurrency} concurrent) vs Opt "
        f"{opt.apps_per_minute:.1f} app/min (max {opt.max_concurrency}); "
        f"speedup {opt.apps_per_minute / bll.apps_per_minute:.1f}x"
    )
    report(
        "ext_multitenant",
        format_table(
            ["tenant", "#users", "B-LL per app", "Opt per app"],
            rows,
            title="Extension: heterogeneous multi-tenant mix "
                  "(18 users x 8 apps)\n" + summary,
        ),
    )
    # elasticity wins on both axes: per-app times and admission
    assert opt.apps_per_minute > 2 * bll.apps_per_minute
    assert opt.max_concurrency > bll.max_concurrency
