"""Extension experiment: task-parallel (parfor) loops.

The paper's Section 6 notes that supporting task-parallel ML programs
requires extended cost estimation because "usually the degree of
parallelism affects memory requirements".  This bench makes that
interaction measurable: a parfor over independent matrix-vector passes
is k-times faster when every worker's operations fit its budget
(CP budget / k), but at smaller CP sizes the per-worker budget pushes
the body to MR jobs while the *serial* loop still runs in memory —
parallelism inverts from win to loss, and the resource optimizer picks
a CP size that restores the win.
"""

import pytest

from _lib import format_table
from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler import compile_program
from repro.optimizer import ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS

SOURCE_TEMPLATE = """
X = read($X)
acc = 0
{keyword} (i in 1:8) {{
  v = X %*% matrix(1, rows=ncol(X), cols=1)
  acc = acc + sum(v) / 8
}}
print(acc)
"""

CP_SIZES_MB = [2048, 4096, 8192, 16384, 32768]


def run(keyword, cp_mb):
    hdfs = SimulatedHDFS(sample_cap=128)
    hdfs.create_dense_input("X", 10**6, 100, seed=1)  # 800 MB
    rc = ResourceConfig(cp_mb, 1024)
    compiled = compile_program(
        SOURCE_TEMPLATE.format(keyword=keyword), {"X": "X"},
        hdfs.input_meta(), rc,
    )
    interp = Interpreter(paper_cluster(), hdfs=hdfs, sample_cap=128)
    return interp.run(compiled, rc)


@pytest.mark.repro
def test_ext_parfor_memory_interaction(benchmark, report):
    def experiment():
        rows = []
        raw = {}
        for cp_mb in CP_SIZES_MB:
            serial = run("for", cp_mb)
            parallel = run("parfor", cp_mb)
            raw[cp_mb] = (serial, parallel)
            rows.append([
                f"{cp_mb / 1024:.0f}GB",
                f"{serial.total_time:.0f}s ({serial.mr_jobs} jobs)",
                f"{parallel.total_time:.0f}s ({parallel.mr_jobs} jobs)",
                f"{serial.total_time / parallel.total_time:.2f}x",
            ])
        # the optimizer accounts for the interaction
        hdfs = SimulatedHDFS(sample_cap=128)
        hdfs.create_dense_input("X", 10**6, 100, seed=1)
        compiled = compile_program(
            SOURCE_TEMPLATE.format(keyword="parfor"), {"X": "X"},
            hdfs.input_meta(),
        )
        opt = ResourceOptimizer(paper_cluster()).optimize(compiled)
        return rows, raw, opt

    rows, raw, opt = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        "ext_parfor",
        format_table(
            ["CP heap", "serial for", "parfor", "parfor speedup"],
            rows,
            title="Extension: parfor vs serial for over CP sizes "
                  f"(8 independent passes over 800 MB; optimizer picks "
                  f"{opt.resource.describe()} for the parfor variant)",
        ),
    )
    # small CP: per-worker budget forces MR for the parfor body
    small_serial, small_parallel = raw[CP_SIZES_MB[0]]
    assert small_parallel.mr_jobs > small_serial.mr_jobs
    # large CP: both in memory, parfor clearly faster on the loop
    # portion (AM startup is a shared constant)
    big_serial, big_parallel = raw[CP_SIZES_MB[-1]]
    assert big_parallel.mr_jobs == big_serial.mr_jobs == 0
    assert big_parallel.total_time < big_serial.total_time - 3.0
    # the optimizer chooses a CP size large enough that every worker's
    # body stays out of MR
    _, opt_parallel = raw[
        min(CP_SIZES_MB, key=lambda c: abs(c - opt.resource.cp_heap_mb))
    ]
    assert opt_parallel.mr_jobs == 0
