"""Figure 1: estimated runtime of LinregDS / LinregCG over the
CP x MR memory grid (X 8 GB dense with 1,000 features, y 8 MB).

Expected shape: DS is compute-bound and prefers small CP with
distributed plans (cost rises once plans move into the single-threaded
CP); CG is IO-bound and drops sharply once X fits the CP budget.
"""

import pytest

from _lib import fresh_compiled, format_table
from repro.cluster import paper_cluster
from repro.tools import what_if_heatmap
from repro.workloads import scenario

GRID_GB = [1, 2, 5, 10, 15, 20]


def heatmap(script):
    cluster = paper_cluster()
    compiled, _, _ = fresh_compiled(script, scenario("M", cols=1000))
    result = what_if_heatmap(
        cluster, compiled,
        [g * 1024 for g in GRID_GB], [g * 1024 for g in GRID_GB],
    )
    return {
        mr_gb: result.costs[i] for i, mr_gb in enumerate(GRID_GB)
    }


def render(script, table):
    rows = [
        [f"MR {mr}GB"] + [f"{v:.0f}" for v in row]
        for mr, row in table.items()
    ]
    return format_table(
        ["[s]"] + [f"CP {g}GB" for g in GRID_GB],
        rows,
        title=f"Estimated runtime heatmap: {script}, X(8GB)/y(8MB)",
    )


@pytest.mark.repro
def test_fig01_heatmap(benchmark, report):
    tables = benchmark.pedantic(
        lambda: {s: heatmap(s) for s in ("LinregDS", "LinregCG")},
        rounds=1, iterations=1,
    )
    text = "\n\n".join(render(s, t) for s, t in tables.items())
    report("fig01_heatmap", text)

    ds = tables["LinregDS"]
    cg = tables["LinregCG"]
    # DS: small CP at least as good as large CP (distributed wins)
    assert ds[2][0] <= ds[2][-1]
    # CG: large CP strictly better than small CP (in-memory wins)
    assert cg[2][-1] < cg[2][0] / 2
