"""Figure 7: LinregDS end-to-end baseline comparison, scenarios XS-XL.

Expected shapes (paper Section 5.2): on dense1000, small-CP distributed
plans win from M upwards (large CP pays single-threaded compute); on
sparse shapes in-memory execution wins; Opt tracks the best baseline in
every scenario without knowing it in advance; on XL the right plan
matters most.
"""

import pytest

from _lib import compare_configs, end_to_end_figure, format_table, render_figure
from repro.workloads import scenario


@pytest.mark.repro
def test_fig07_linreg_ds(benchmark, report):
    results = benchmark.pedantic(
        lambda: end_to_end_figure("LinregDS"), rounds=1, iterations=1
    )
    report("fig07_linreg_ds", render_figure(
        results, "Figure 7(a-d): LinregDS, scenarios XS-L"
    ))
    for label, by_size in results.items():
        for size, records in by_size.items():
            best = min(
                rec.time for name, rec in records.items() if name != "Opt"
            )
            # Opt close to the best baseline everywhere (paper: "in all
            # scenarios an execution time close to the best baseline");
            # sparse scenarios run slightly worse "due to more buffer
            # pool evictions because of the smaller heap size" (5.2)
            slack = 2.0 if label.startswith("sparse") else 1.35
            assert records["Opt"].time <= best * slack, (label, size)


@pytest.mark.repro
def test_fig07e_scenario_xl(benchmark, report):
    """Figure 7(e): the 800 GB scenario across all shapes."""

    def run():
        out = {}
        for label, cols, sparse in [
            ("dense1000", 1000, False), ("sparse1000", 1000, True),
            ("dense100", 100, False), ("sparse100", 100, True),
        ]:
            out[label] = compare_configs(
                "LinregDS", scenario("XL", cols=cols, sparse=sparse)
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, records in results.items():
        rows.append(
            [label]
            + [f"{records[c].time:.0f}s"
               for c in ("B-SS", "B-LS", "B-SL", "B-LL", "Opt")]
        )
    report(
        "fig07e_xl",
        format_table(
            ["shape", "B-SS", "B-LS", "B-SL", "B-LL", "Opt"],
            rows,
            title="Figure 7(e): LinregDS, scenario XL (800GB dense)",
        ),
    )
    # dense1000 XL: distributed plans essential; Opt within reach of best
    dense = results["dense1000"]
    best = min(rec.time for name, rec in dense.items() if name != "Opt")
    assert dense["Opt"].time <= best * 1.35
