"""Figure 8: LinregCG end-to-end baseline comparison, scenarios XS-L.

Expected shape: the iterative, IO-bound CG benefits from large CP
memory on S and M (read X once, multiply in memory); Opt finds those
configurations automatically.
"""

import pytest

from _lib import end_to_end_figure, render_figure


@pytest.mark.repro
def test_fig08_linreg_cg(benchmark, report):
    results = benchmark.pedantic(
        lambda: end_to_end_figure("LinregCG"), rounds=1, iterations=1
    )
    report("fig08_linreg_cg", render_figure(
        results, "Figure 8(a-d): LinregCG, scenarios XS-L"
    ))
    for label, by_size in results.items():
        for size, records in by_size.items():
            best = min(
                rec.time for name, rec in records.items() if name != "Opt"
            )
            # sparse slack: buffer-pool evictions at smaller heaps (5.2)
            slack = 2.0 if label.startswith("sparse") else 1.35
            assert records["Opt"].time <= best * slack, (label, size)
    # the large-CP advantage on M dense1000 (paper: "a larger CP memory
    # usually leads to significant improvements")
    m_records = results["dense1000"]["M"]
    assert m_records["B-LS"].time < m_records["B-SS"].time
    assert m_records["Opt"].resource.cp_heap_mb > 8 * 1024
