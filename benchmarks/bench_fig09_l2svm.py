"""Figure 9: L2SVM end-to-end baseline comparison, scenarios XS-L.

Same expected shape as LinregCG: the nested-loop SVM reads X every
outer iteration, so large CP memory wins from S upward and Opt tracks
the best baseline.
"""

import pytest

from _lib import end_to_end_figure, render_figure


@pytest.mark.repro
def test_fig09_l2svm(benchmark, report):
    results = benchmark.pedantic(
        lambda: end_to_end_figure("L2SVM"), rounds=1, iterations=1
    )
    report("fig09_l2svm", render_figure(
        results, "Figure 9(a-d): L2SVM, scenarios XS-L"
    ))
    for label, by_size in results.items():
        for size, records in by_size.items():
            best = min(
                rec.time for name, rec in records.items() if name != "Opt"
            )
            # sparse slack: buffer-pool evictions at smaller heaps (5.2)
            slack = 2.0 if label.startswith("sparse") else 1.35
            assert records["Opt"].time <= best * slack, (label, size)
    # iterative MR plans at small CP are dramatically worse on M
    m_records = results["dense1000"]["M"]
    assert m_records["B-SS"].time > 1.5 * m_records["B-LS"].time
