"""Figure 10: MLogreg end-to-end baseline comparison, scenarios XS-L.

Expected shape: unknown intermediate sizes (the table() expansion) make
*initial* resource optimization suboptimal — Opt (without runtime
adaptation, as in this figure) stays at minimal CP memory and loses to
the best baseline on the dense M/L scenarios (paper Section 5.2:
"unknowns are a major problem ... we address this problem in a
principled way with CP migration", evaluated in Figure 15).
"""

import pytest

from _lib import end_to_end_figure, render_figure


@pytest.mark.repro
def test_fig10_mlogreg(benchmark, report):
    results = benchmark.pedantic(
        lambda: end_to_end_figure("MLogreg"), rounds=1, iterations=1
    )
    report("fig10_mlogreg", render_figure(
        results, "Figure 10(a-d): MLogreg, scenarios XS-L "
                 "(runtime adaptation disabled)"
    ))
    # the paper's observation: Opt cannot find the right configuration
    # on dense scenarios M due to unknowns in the core loops
    m_records = results["dense1000"]["M"]
    best = min(
        rec.time for name, rec in m_records.items() if name != "Opt"
    )
    assert m_records["Opt"].time > best
    # ...because it stayed at the minimal CP size
    assert m_records["Opt"].resource.cp_heap_mb <= 1024
