"""Figure 11: GLM (Poisson/log) end-to-end baseline comparison,
scenarios XS-L.

Expected shape: like MLogreg, GLM faces unknowns during initial
compilation, but a few *known* operations act as guards that pull the
initial CP size up (paper Section 5.5) — so initial optimization fares
better than MLogreg's, while still benefiting from adaptation on some
scenarios (Figure 15).
"""

import pytest

from _lib import end_to_end_figure, render_figure


@pytest.mark.repro
def test_fig11_glm(benchmark, report):
    results = benchmark.pedantic(
        lambda: end_to_end_figure("GLM"), rounds=1, iterations=1
    )
    report("fig11_glm", render_figure(
        results, "Figure 11(a-d): GLM poisson/log, scenarios XS-L "
                 "(runtime adaptation disabled)"
    ))
    # known guard operations push GLM's initial CP above the minimum on
    # the larger dense scenarios
    m_records = results["dense1000"]["M"]
    assert m_records["Opt"].resource.cp_heap_mb > 512
    # and Opt lands close to the best baseline there
    best = min(
        rec.time for name, rec in m_records.items() if name != "Opt"
    )
    assert m_records["Opt"].time <= best * 1.35
