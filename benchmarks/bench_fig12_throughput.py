"""Figure 12: end-to-end throughput, Opt vs B-LL, 1-128 users x 8 apps.

The per-application duration is the measured single-application
execution time from the runtime simulator; the event simulator then
drives the multi-user driver against YARN container accounting.

Expected shape: identical throughput up to ~4 users; B-LL saturates at 6
concurrent applications (80 GB containers), Opt at 36/78 (right-sized
containers) — 5.6x/7.1x improvements in the paper.
"""

import pytest

from _lib import execute, format_table, optimize
from repro.cluster import paper_cluster
from repro.cluster.events import io_saturation_contention, simulate_throughput
from repro.workloads import paper_baselines, scenario

USERS = [1, 2, 4, 8, 16, 32, 64, 128]


def throughput_curves(script, scn):
    cluster = paper_cluster()
    opt_result, compiled = optimize(script, scn)
    opt_rc = opt_result.resource
    bll_rc = paper_baselines(cluster)["B-LL"]
    durations = {
        "Opt": execute(script, scn, opt_rc).time,
        "B-LL": execute(script, scn, bll_rc).time,
    }
    containers = {
        "Opt": cluster.container_mb_for_heap(opt_rc.cp_heap_mb),
        "B-LL": cluster.container_mb_for_heap(bll_rc.cp_heap_mb),
    }
    curves = {}
    for config in ("Opt", "B-LL"):
        curves[config] = [
            simulate_throughput(
                cluster, users, 8, durations[config], containers[config],
                contention=io_saturation_contention(),
            )
            for users in USERS
        ]
    return curves, containers


@pytest.mark.repro
def test_fig12_throughput(benchmark, report):
    def run():
        return {
            "LinregDS S dense1000": throughput_curves(
                "LinregDS", scenario("S", cols=1000)
            ),
            "L2SVM M sparse100": throughput_curves(
                "L2SVM", scenario("M", cols=100, sparse=True)
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = []
    for title, (curves, containers) in results.items():
        rows = [
            [users]
            + [f"{curves[c][i].apps_per_minute:.1f}" for c in ("Opt", "B-LL")]
            for i, users in enumerate(USERS)
        ]
        speedup = (
            curves["Opt"][-1].apps_per_minute
            / curves["B-LL"][-1].apps_per_minute
        )
        sections.append(
            format_table(
                ["#users", "Opt [app/min]", "B-LL [app/min]"],
                rows,
                title=(
                    f"Figure 12: {title} "
                    f"(Opt container {containers['Opt']}MB; "
                    f"speedup at 128 users: {speedup:.1f}x)"
                ),
            )
        )
        # shapes: equal at low concurrency, large gap at saturation
        assert curves["Opt"][0].apps_per_minute == pytest.approx(
            curves["B-LL"][0].apps_per_minute, rel=0.6
        ) or curves["Opt"][0].apps_per_minute > curves["B-LL"][0].apps_per_minute
        assert curves["B-LL"][-1].max_concurrency == 6
        assert curves["Opt"][-1].max_concurrency >= 30
        assert speedup > 3.0
    report("fig12_throughput", "\n\n".join(sections))
