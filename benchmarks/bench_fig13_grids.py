"""Figure 13: number of generated grid points per strategy, LinregDS
dense1000, scenarios XS-XL, base grids m=15 and m=45.

Expected shape: Equi and Exp are data-independent (constant 15/45 and
~8 points); Mem (and Hybrid) adapt to the data — one point for tiny
data (all estimates below min_cc), more points around 8 GB, fewer again
when estimates exceed max_cc.
"""

import pytest

from _lib import format_table, fresh_compiled
from repro.cluster import paper_cluster
from repro.optimizer.grids import collect_memory_estimates_mb, generate_grid
from repro.workloads import scenario

SIZES = ["XS", "S", "M", "L", "XL"]


def count_points(m):
    cluster = paper_cluster()
    lo, hi = cluster.min_heap_mb, cluster.max_heap_mb
    counts = {kind: [] for kind in ("equi", "exp", "mem", "hybrid")}
    for size in SIZES:
        compiled, _, _ = fresh_compiled("LinregDS", scenario(size, cols=1000))
        estimates = collect_memory_estimates_mb(compiled)
        for kind in counts:
            counts[kind].append(
                len(generate_grid(kind, lo, hi, estimates, m=m))
            )
    return counts


@pytest.mark.repro
@pytest.mark.parametrize("m", [15, 45])
def test_fig13_grid_generators(benchmark, report, m):
    counts = benchmark.pedantic(lambda: count_points(m), rounds=1,
                                iterations=1)
    rows = [
        [size] + [counts[kind][i] for kind in ("equi", "exp", "mem", "hybrid")]
        for i, size in enumerate(SIZES)
    ]
    report(
        f"fig13_grids_m{m}",
        format_table(
            ["scenario", "Equi", "Exp", "Mem", "Hybrid"],
            rows,
            title=f"Figure 13: # of generated grid points (base grid m={m})",
        ),
    )
    # Equi/Exp independent of the data
    assert len(set(counts["equi"])) == 1
    assert len(set(counts["exp"])) == 1
    assert counts["equi"][0] == m
    # Exp needs only logarithmically many points
    assert counts["exp"][0] < m
    # Mem adapts: few points at XS (everything below min_cc), more at M
    assert counts["mem"][SIZES.index("XS")] <= 2
    assert counts["mem"][SIZES.index("M")] > counts["mem"][SIZES.index("XS")]
    # Hybrid covers at least the Exp points
    for i in range(len(SIZES)):
        assert counts["hybrid"][i] >= counts["exp"][i]
