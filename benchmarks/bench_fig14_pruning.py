"""Figure 14: percentage of remaining program blocks after pruning,
all five ML programs, dense1000 scenarios XS-XL.

Expected shape: pruning of blocks of small operations is highly
effective (0% remaining at XS where everything fits a minimal CP);
larger data leaves more blocks; pruning of unknowns keeps MLogreg/GLM
from paying a constant overhead regardless of data size.
"""

import pytest

from _lib import format_table, fresh_compiled
from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler.pipeline import compile_plans
from repro.optimizer.pruning import prune_program_blocks
from repro.workloads import scenario

SIZES = ["XS", "S", "M", "L", "XL"]
SCRIPTS = ["LinregDS", "LinregCG", "L2SVM", "MLogreg", "GLM"]


def remaining_fractions():
    cluster = paper_cluster()
    baseline = ResourceConfig(cluster.min_heap_mb, cluster.min_heap_mb)
    table = {}
    for script in SCRIPTS:
        for size in SIZES:
            compiled, _, _ = fresh_compiled(script, scenario(size, cols=1000))
            compile_plans(compiled, baseline)
            blocks = list(compiled.last_level_blocks())
            remaining, small, unknown = prune_program_blocks(blocks)
            table[(script, size)] = (
                len(remaining), len(small), len(unknown), len(blocks),
            )
    return table


@pytest.mark.repro
def test_fig14_pruning(benchmark, report):
    table = benchmark.pedantic(remaining_fractions, rounds=1, iterations=1)
    rows = []
    for script in SCRIPTS:
        total = table[(script, "XS")][3]
        row = [f"{script} (|B|={total})"]
        for size in SIZES:
            remaining, _, unknown, blocks = table[(script, size)]
            row.append(f"{100 * remaining / blocks:.0f}%")
        rows.append(row)
    report(
        "fig14_pruning",
        format_table(
            ["program"] + SIZES,
            rows,
            title="Figure 14: remaining blocks after pruning "
                  "(dense1000; % of last-level blocks)",
        ),
    )
    for script in SCRIPTS:
        # XS: everything fits minimal CP -> all blocks pruned
        remaining, _, _, _ = table[(script, "XS")]
        assert remaining == 0, script
        # pruning never leaves more blocks for smaller data
        fractions = [
            table[(script, size)][0] / table[(script, size)][3]
            for size in SIZES
        ]
        assert fractions[0] <= fractions[2] + 1e-9
    # pruning of unknowns engages for MLogreg and GLM on larger data
    for script in ("MLogreg", "GLM"):
        assert any(table[(script, size)][2] > 0 for size in ("M", "L")), script
