"""Figure 15: end-to-end comparison with runtime plan adaptation for
MLogreg and GLM on scenarios S and M (all four data shapes).

Expected shapes (paper Section 5.5): on S, adaptation eliminates the
unnecessary MR-job latency of the unknown-ridden initial plans — large
benefit, at most one migration; on M, both programs adapt with one or
two migrations and land near the best baseline; runs that need no
adaptation are unaffected.
"""

import pytest

from _lib import execute, format_table, fresh_compiled, optimize
from repro.cluster import paper_cluster
from repro.workloads import paper_baselines, scenario

SHAPES = [
    ("dense1000", 1000, False),
    ("sparse1000", 1000, True),
    ("dense100", 100, False),
    ("sparse100", 100, True),
]


def adaptation_rows(script, size):
    cluster = paper_cluster()
    bll = paper_baselines(cluster)["B-LL"]
    rows = []
    raw = {}
    for label, cols, sparse in SHAPES:
        scn = scenario(size, cols=cols, sparse=sparse)
        bll_rec = execute(script, scn, bll)
        opt_result, compiled = optimize(script, scn)
        opt_rec = execute(script, scn, opt_result.resource)
        # fresh compile for the adaptive run (plans mutate during exec)
        reopt_result, compiled2 = optimize(script, scn)
        compiled2_hdfs = None
        re_compiled, re_hdfs, _ = fresh_compiled(script, scn)
        reopt_rec = execute(
            script, scn, reopt_result.resource, adapt=True,
            compiled=re_compiled, hdfs=re_hdfs,
        )
        rows.append([
            label,
            f"{bll_rec.time:.0f}s",
            f"{opt_rec.time:.0f}s",
            f"{reopt_rec.time:.0f}s",
            reopt_rec.migrations,
        ])
        raw[label] = (bll_rec, opt_rec, reopt_rec)
    return rows, raw


@pytest.mark.repro
@pytest.mark.parametrize("size", ["S", "M"])
def test_fig15_adaptation(benchmark, report, size):
    def run():
        return {
            script: adaptation_rows(script, size)
            for script in ("MLogreg", "GLM")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = []
    for script, (rows, raw) in results.items():
        sections.append(
            format_table(
                ["shape", "B-LL", "Opt", "ReOpt", "#migrations"],
                rows,
                title=f"Figure 15 ({size}): {script}",
            )
        )
    report(f"fig15_adaptation_{size}", "\n\n".join(sections))

    # MLogreg dense1000: adaptation must help substantially and use at
    # most two migrations (paper: "even one or two adaptations were
    # sufficient to achieve near-optimal performance")
    _, mlog_raw = results["MLogreg"]
    bll, opt, reopt = mlog_raw["dense1000"]
    assert reopt.migrations <= 2
    assert reopt.time < opt.time
    assert reopt.time <= bll.time * 1.6  # near the best baseline
