"""Figure 18: parallel resource optimization for GLM (dense1000).

Reports (a) measured wall clock of the serial and task-parallel
optimizer (threads share the GIL in CPython, so thread-measured speedup
is bounded), (b) the worker-schedule makespan model over the measured
per-task durations — the honest reading of the paper's speedup shape
(pipelining effect at one worker, ~5x at many workers) — and (c) the
*measured* wall clock of the process-pool backend, so the figure shows
model and reality side by side.  Process numbers track the model only
when the host has that many free cores.
"""

import time

import pytest

from _lib import format_table, fresh_compiled
from repro.cluster import paper_cluster
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer
from repro.optimizer.parallel import schedule_makespan
from repro.workloads import scenario

WORKERS = [1, 2, 4, 8, 16]
#: worker counts measured with real processes (8/16 would only thrash
#: typical CI hosts; the model covers the asymptote)
MEASURED_WORKERS = [1, 2, 4]


def run_parallel_experiment():
    cluster = paper_cluster()
    compiled, _, _ = fresh_compiled("GLM", scenario("L", cols=1000))
    serial = ResourceOptimizer(cluster, grid_cp="equi", grid_mr="equi",
                               m=45).optimize(compiled)

    compiled2, _, _ = fresh_compiled("GLM", scenario("L", cols=1000))
    parallel = ParallelResourceOptimizer(
        cluster, grid_cp="equi", grid_mr="equi", m=45, num_workers=4,
        backend="thread",
    ).optimize(compiled2)

    makespans = {
        k: schedule_makespan(parallel.task_records, k) for k in WORKERS
    }
    serial_model = schedule_makespan(
        parallel.task_records, 1, include_pipelining=False
    )

    measured = {}
    for k in MEASURED_WORKERS:
        compiled_k, _, _ = fresh_compiled("GLM", scenario("L", cols=1000))
        optimizer = ParallelResourceOptimizer(
            cluster, grid_cp="equi", grid_mr="equi", m=45, num_workers=k,
            backend="process",
        )
        start = time.perf_counter()
        result = optimizer.optimize(compiled_k)
        measured[k] = time.perf_counter() - start
        # reality must agree with the model's answer, not just its speed
        assert result.resource.cp_heap_mb == serial.resource.cp_heap_mb
        assert result.cost == serial.cost
    return serial, parallel, makespans, serial_model, measured


@pytest.mark.repro
def test_fig18_parallel_optimizer(benchmark, report):
    serial, parallel, makespans, serial_model, measured = benchmark.pedantic(
        run_parallel_experiment, rounds=1, iterations=1
    )
    rows = [
        [
            k,
            f"{makespans[k]:.3f}s",
            f"{serial_model / makespans[k]:.2f}x",
            f"{measured[k]:.3f}s" if k in measured else "-",
        ]
        for k in WORKERS
    ]
    text = format_table(
        ["# workers", "modeled makespan", "speedup vs serial",
         "measured (process)"],
        rows,
        title=(
            "Figure 18: parallel optimization, GLM dense1000 L "
            f"(Equi m=45)\nmeasured serial wall clock: "
            f"{serial.stats.optimization_time:.2f}s; measured parallel "
            f"(4 threads, GIL-bound): "
            f"{parallel.stats.optimization_time:.2f}s"
        ),
    )
    report("fig18_parallel", text)
    # same answer from both optimizers
    assert parallel.resource.cp_heap_mb == serial.resource.cp_heap_mb
    # pipelining effect already at one worker
    assert makespans[1] <= serial_model
    # model shows meaningful parallel speedup, saturating with workers
    assert serial_model / makespans[8] > 2.0
    assert makespans[16] <= makespans[1]
