"""Figure 18: parallel resource optimization for GLM (dense1000).

Reports (a) measured wall clock of the serial and task-parallel
optimizer (threads share the GIL in CPython, so measured speedup is
bounded), and (b) the worker-schedule makespan model over the measured
per-task durations — the honest reading of the paper's speedup shape
(pipelining effect at one worker, ~5x at many workers).
"""

import pytest

from _lib import format_table, fresh_compiled
from repro.cluster import paper_cluster
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer
from repro.optimizer.parallel import schedule_makespan
from repro.workloads import scenario

WORKERS = [1, 2, 4, 8, 16]


def run_parallel_experiment():
    cluster = paper_cluster()
    compiled, _, _ = fresh_compiled("GLM", scenario("L", cols=1000))
    serial = ResourceOptimizer(cluster, grid_cp="equi", grid_mr="equi",
                               m=45).optimize(compiled)

    compiled2, _, _ = fresh_compiled("GLM", scenario("L", cols=1000))
    parallel = ParallelResourceOptimizer(
        cluster, grid_cp="equi", grid_mr="equi", m=45, num_workers=4
    ).optimize(compiled2)

    makespans = {
        k: schedule_makespan(parallel.task_records, k) for k in WORKERS
    }
    serial_model = schedule_makespan(
        parallel.task_records, 1, include_pipelining=False
    )
    return serial, parallel, makespans, serial_model


@pytest.mark.repro
def test_fig18_parallel_optimizer(benchmark, report):
    serial, parallel, makespans, serial_model = benchmark.pedantic(
        run_parallel_experiment, rounds=1, iterations=1
    )
    rows = [
        [k, f"{makespans[k]:.3f}s", f"{serial_model / makespans[k]:.2f}x"]
        for k in WORKERS
    ]
    text = format_table(
        ["# workers", "modeled makespan", "speedup vs serial"],
        rows,
        title=(
            "Figure 18: parallel optimization, GLM dense1000 L "
            f"(Equi m=45)\nmeasured serial wall clock: "
            f"{serial.stats.optimization_time:.2f}s; measured parallel "
            f"(4 threads, GIL-bound): "
            f"{parallel.stats.optimization_time:.2f}s"
        ),
    )
    report("fig18_parallel", text)
    # same answer from both optimizers
    assert parallel.resource.cp_heap_mb == serial.resource.cp_heap_mb
    # pipelining effect already at one worker
    assert makespans[1] <= serial_model
    # model shows meaningful parallel speedup, saturating with workers
    assert serial_model / makespans[8] > 2.0
    assert makespans[16] <= makespans[1]
