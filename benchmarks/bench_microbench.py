"""Microbenchmarks of the optimizer's hot kernels, regression-guarded.

Tracks p50/p95 latency of the code the grid search spends its time in:

* ``cost.estimate_block`` — one scalar block costing (the inner kernel
  of the pre-vectorization optimizer);
* ``cost.estimate_grid_512`` — one *batched* costing of 512 MR points
  against the same plan, and the scalar 512-point loop it replaces (the
  vectorization speedup is asserted >= 3x);
* ``plancache.lookup`` — one bucketed plan-cache probe (key + hit);
* ``bufferpool.account`` — one buffer-pool insert into a full pool
  (accounting + LRU eviction, the `_make_room` hot path);
* ``optimizer.serial.{S,M,XL}`` — whole enumerations at grid
  resolutions m=5/15/31 (LinregCG, S-scenario data);
* ``optimizer.process.M`` — the 2-worker process backend vs serial on
  the M-scenario GLM enumeration (asserted >= 1.0x when the host has
  >= 2 CPUs; an explicit ``skipped_reason`` otherwise).

Every kernel carries a p95 budget (checked into the JSON); the bench
fails when a measured p95 exceeds **2x** its budget, so CI catches
order-of-magnitude regressions while tolerating runner noise.  Budgets
are calibrated ~4x above a 1-CPU container's p95.

Writes ``BENCH_microbench.json`` (override with ``--out``).  Runnable
standalone: ``python benchmarks/bench_microbench.py [--quick]``.
"""

import argparse
import json
import math
import os
import pathlib
import statistics
import sys
import time
import types

from _lib import format_table, fresh_compiled
from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler import compile_program
from repro.compiler.plan_cache import PlanCache
from repro.cost import CostModel
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.cost.mr_timing import grid_supported
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer
from repro.runtime import SimulatedHDFS
from repro.runtime.bufferpool import BufferPool
from repro.workloads import scenario

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_microbench.json"
)

#: MR points in the batched-costing kernel (the "XL grid")
GRID_POINTS = 512

#: p95 budgets in microseconds — the regression contract.  A kernel
#: fails the bench when its measured p95 exceeds 2x its budget.
BUDGETS_P95_US = {
    "cost.estimate_block": 4_000,
    "cost.estimate_grid_512": 60_000,
    "cost.estimate_block_loop512": 1_200_000,
    "plancache.lookup": 60,
    "bufferpool.account": 250,
    "optimizer.serial.S": 400_000,
    "optimizer.serial.M": 1_600_000,
    "optimizer.serial.XL": 4_000_000,
}

#: grid resolutions of the enumeration kernels
GRID_SIZES = {"S": 5, "M": 15, "XL": 31}

_SRC = """
X = read($X)
s = sum(X)
Y = X * 2 + s
z = sum(t(Y) %*% Y)
print(z)
"""


def _percentiles_us(samples_s):
    ordered = sorted(samples_s)
    p95 = ordered[min(len(ordered) - 1,
                      max(0, math.ceil(0.95 * len(ordered)) - 1))]
    return {
        "p50_us": statistics.median(ordered) * 1e6,
        "p95_us": p95 * 1e6,
        "iterations": len(ordered),
    }


def _time_kernel(fn, iters):
    fn()  # warmup: imports, allocator, caches
    samples = []
    for _ in range(iters):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return _percentiles_us(samples)


# -- cost-model kernels -------------------------------------------------------

def _cost_fixture():
    """A compiled program whose plan contains MR jobs (tight CP heap)
    plus a geometric 512-point MR-heap grid."""
    cluster = paper_cluster()
    hdfs = SimulatedHDFS(sample_cap=64)
    hdfs.create_dense_input("data/X", 400000, 500)  # ~1.6 GB dense
    compiled = compile_program(
        _SRC, {"X": "data/X"}, hdfs.input_meta(), ResourceConfig(512, 1024)
    )
    block = next(
        b for b in compiled.last_level_blocks()
        if b.plan is not None and b.plan.num_mr_jobs
    )
    lo, hi = cluster.min_heap_mb, cluster.max_heap_mb
    heaps = [
        lo * (hi / lo) ** (i / (GRID_POINTS - 1))
        for i in range(GRID_POINTS)
    ]
    resources = [
        ResourceConfig(cp_heap_mb=512, mr_heap_mb=lo,
                       mr_heap_per_block={block.block_id: ri})
        for ri in heaps
    ]
    return cluster, compiled, block, resources


def bench_cost_kernels(iters_block, iters_grid, iters_loop):
    cluster, compiled, block, resources = _cost_fixture()
    model = CostModel(cluster, DEFAULT_PARAMETERS)

    kernels = {
        "cost.estimate_block": _time_kernel(
            lambda: model.estimate_block(compiled, block, resources[0]),
            iters_block,
        )
    }

    grid_speedup = {
        "points": GRID_POINTS, "speedup": None,
        "asserted": False, "skipped_reason": None,
    }
    if not grid_supported():
        grid_speedup["skipped_reason"] = "numpy unavailable"
    else:
        kernels["cost.estimate_grid_512"] = _time_kernel(
            lambda: model.estimate_grid(compiled, block, resources),
            iters_grid,
        )
        kernels["cost.estimate_block_loop512"] = _time_kernel(
            lambda: [
                model.estimate_block(compiled, block, r)
                for r in resources
            ],
            iters_loop,
        )
        # sanity: the batch must match the scalar loop bit-for-bit
        grid = model.estimate_grid(compiled, block, resources)
        loop = [
            model.estimate_block(compiled, block, r) for r in resources
        ]
        assert grid == loop, "estimate_grid diverged from estimate_block"
        speedup = (
            kernels["cost.estimate_block_loop512"]["p50_us"]
            / kernels["cost.estimate_grid_512"]["p50_us"]
        )
        grid_speedup["speedup"] = speedup
        assert speedup >= 3.0, (
            f"estimate_grid only {speedup:.2f}x faster than the scalar "
            f"512-point loop; the vectorized path must be >= 3x"
        )
        grid_speedup["asserted"] = True
    return kernels, grid_speedup


# -- plan-cache kernel --------------------------------------------------------

def bench_plancache_lookup(iters):
    cluster, compiled, block, resources = _cost_fixture()
    cache = PlanCache()
    key = cache.key_for(block, resources[0])
    cache.store(key, block.plan)

    def probe():
        hit = cache.lookup(cache.key_for(block, resources[0]))
        assert hit is not None

    return {"plancache.lookup": _time_kernel(probe, iters)}


# -- buffer-pool kernel -------------------------------------------------------

def _stub_matrix(size_bytes):
    return types.SimpleNamespace(
        memory_size=float(size_bytes), in_memory=False, dirty=False,
        local_copy=False, hdfs_path=None, mc=None, fmt=None,
    )


def bench_bufferpool_account(iters):
    mb = 1 << 20
    pool = BufferPool(64 * mb, DEFAULT_PARAMETERS, lambda s, cat: None)
    for _ in range(64):  # fill to capacity: every insert now evicts
        pool.put(_stub_matrix(mb))

    def insert():
        pool.put(_stub_matrix(mb))

    return {"bufferpool.account": _time_kernel(insert, iters)}


# -- enumeration kernels ------------------------------------------------------

def bench_serial_enumeration(iters):
    cluster = paper_cluster()
    scn = scenario("S")
    # equi grids: m^2 enumeration points, so S/M/XL really are
    # different grid sizes (the hybrid grid's point count is driven by
    # the program's memory estimates, not m).  Compilation happens once,
    # outside the timer — the kernel is the enumeration itself.
    compiled, _, _ = fresh_compiled("LinregCG", scn)
    kernels = {}
    for size, m in GRID_SIZES.items():
        def run(m=m):
            ResourceOptimizer(
                cluster, m=m, grid_cp="equi", grid_mr="equi"
            ).optimize(compiled)

        kernels[f"optimizer.serial.{size}"] = _time_kernel(run, iters)
    return kernels


def bench_process_vs_serial(iters):
    """Serial vs 2-worker process backend, M-scenario GLM (m=15)."""
    outcome = {
        "speedup": None, "serial_s": None, "process_s": None,
        "workers": 2, "asserted": False, "skipped_reason": None,
    }
    cpus = os.cpu_count() or 1
    if cpus < 2:
        outcome["skipped_reason"] = f"host has {cpus} CPU(s), need >= 2"
        return {}, outcome
    cluster = paper_cluster()
    scn = scenario("M", cols=1000)

    def serial():
        compiled, _, _ = fresh_compiled("GLM", scn)
        ResourceOptimizer(cluster, m=15).optimize(compiled)

    def process():
        compiled, _, _ = fresh_compiled("GLM", scn)
        ParallelResourceOptimizer(
            cluster, m=15, num_workers=2, backend="process"
        ).optimize(compiled)

    kernels = {
        "optimizer.serial.GLM_M": _time_kernel(serial, iters),
        "optimizer.process.GLM_M_x2": _time_kernel(process, iters),
    }
    outcome["serial_s"] = kernels["optimizer.serial.GLM_M"]["p50_us"] / 1e6
    outcome["process_s"] = (
        kernels["optimizer.process.GLM_M_x2"]["p50_us"] / 1e6
    )
    outcome["speedup"] = outcome["serial_s"] / outcome["process_s"]
    assert outcome["speedup"] >= 1.0, (
        f"process backend must not lose to serial at 2 workers on >= 2 "
        f"CPUs: got {outcome['speedup']:.2f}x"
    )
    outcome["asserted"] = True
    return kernels, outcome


# -- harness ------------------------------------------------------------------

def run_experiment(quick=False):
    kernels = {}
    cost_kernels, grid_speedup = bench_cost_kernels(
        iters_block=50 if quick else 200,
        iters_grid=3 if quick else 10,
        iters_loop=2 if quick else 5,
    )
    kernels.update(cost_kernels)
    kernels.update(bench_plancache_lookup(200 if quick else 1000))
    kernels.update(bench_bufferpool_account(100 if quick else 500))
    kernels.update(bench_serial_enumeration(1 if quick else 3))
    process_kernels, process_vs_serial = bench_process_vs_serial(
        1 if quick else 2
    )
    kernels.update(process_kernels)

    for name, record in kernels.items():
        record["budget_p95_us"] = BUDGETS_P95_US.get(name)
    return {
        "bench": "microbench",
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "kernels": kernels,
        "grid_speedup": grid_speedup,
        "process_vs_serial": process_vs_serial,
    }


def check_budgets(data):
    """Kernels whose p95 exceeds 2x their checked-in budget."""
    violations = []
    for name, record in data["kernels"].items():
        budget = record.get("budget_p95_us")
        if budget is not None and record["p95_us"] > 2 * budget:
            violations.append(
                f"{name}: p95 {record['p95_us']:.0f}us > "
                f"2 * budget {budget}us"
            )
    return violations


def render(data):
    rows = []
    for name in sorted(data["kernels"]):
        record = data["kernels"][name]
        budget = record.get("budget_p95_us")
        rows.append([
            name,
            f"{record['p50_us']:.1f}",
            f"{record['p95_us']:.1f}",
            str(budget) if budget is not None else "-",
            str(record["iterations"]),
        ])
    grid = data["grid_speedup"]
    proc = data["process_vs_serial"]
    grid_line = (
        f"estimate_grid speedup over scalar loop "
        f"({grid['points']} pts): "
        + (f"{grid['speedup']:.1f}x (asserted >= 3x)"
           if grid["speedup"] is not None
           else f"skipped: {grid['skipped_reason']}")
    )
    proc_line = (
        "process x2 vs serial (GLM M): "
        + (f"{proc['speedup']:.2f}x (asserted >= 1.0x)"
           if proc["speedup"] is not None
           else f"skipped: {proc['skipped_reason']}")
    )
    return format_table(
        ["kernel", "p50 (us)", "p95 (us)", "budget p95", "iters"],
        rows,
        title=(
            f"Hot-kernel microbenchmarks; host has {data['cpu_count']} "
            f"CPUs{' (quick)' if data['quick'] else ''}\n"
            f"{grid_line}\n{proc_line}"
        ),
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer iterations (CI smoke mode)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="where to write BENCH_microbench.json")
    args = parser.parse_args(argv)
    data = run_experiment(quick=args.quick)
    violations = check_budgets(data)
    data["budget_violations"] = violations
    print(render(data))
    args.out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    if violations:
        print("BUDGET VIOLATIONS:\n  " + "\n  ".join(violations),
              file=sys.stderr)
        return 1
    return 0


try:
    import pytest
except ImportError:  # standalone mode in minimal environments
    pytest = None

if pytest is not None:

    @pytest.mark.repro
    def test_microbench(benchmark, report):
        data = benchmark.pedantic(
            run_experiment, kwargs={"quick": True}, rounds=1, iterations=1
        )
        violations = check_budgets(data)
        data["budget_violations"] = violations
        report("microbench", render(data))
        DEFAULT_OUT.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
        assert not violations, violations


if __name__ == "__main__":
    sys.exit(main())
