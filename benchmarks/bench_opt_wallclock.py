"""Measured optimizer wall clock: serial vs process-pool enumeration.

The thread backend shares the GIL, so Figure 18 could only report a
*modeled* makespan.  The process backend runs `recompile_block_plan` +
`CostModel.estimate_block` in real OS processes, so this benchmark
measures actual wall clock: serial vs process workers at 1/2/4 on the
M-scenario GLM and MLogreg enumerations (Hybrid m=15), then exercises
the cross-run optimizer result cache through a traced session.

Invariants asserted at any worker count (CI-safe on small hosts):

* every backend chooses the byte-identical ``(resource, cost)``;
* ``optpar.tasks`` is populated by a parallel session run;
* the second ``session.run`` of the same (script, scenario) hits the
  cross-run cache (``optcache.hits >= 1``) and skips enumeration.

The >= 2x speedup at 4 process workers is asserted only when the host
actually has >= 4 CPUs — on fewer cores there is nothing to run on.

Writes ``BENCH_optimizer.json`` (override with ``--out``) to seed the
perf trajectory.  Also runnable standalone:
``python benchmarks/bench_opt_wallclock.py [--workers N] [--out PATH]``.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from _lib import format_table, fresh_compiled
from repro.api import ElasticMLSession
from repro.cluster import paper_cluster
from repro.obs import Tracer
from repro.optimizer import ParallelResourceOptimizer, ResourceOptimizer
from repro.workloads import prepare_inputs, scenario

SCRIPTS = ["GLM", "MLogreg"]
WORKER_STEPS = [1, 2, 4]
M = 15
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_optimizer.json"
)


def _normalized(compiled, result):
    """Configuration keyed by block position (block ids are stamped per
    compilation, so raw ids are not comparable across compiles)."""
    index_of = {
        b.block_id: i for i, b in enumerate(compiled.last_level_blocks())
    }
    vector = tuple(
        sorted(
            (index_of[block_id], ri)
            for block_id, ri in result.resource.mr_heap_per_block.items()
        )
    )
    return (
        result.resource.cp_heap_mb,
        result.resource.mr_heap_mb,
        vector,
        result.cost,
    )


def measure_script(script, max_workers):
    """Serial + process-backend wall clocks for one script; asserts
    every backend picks the identical configuration."""
    cluster = paper_cluster()
    scn = scenario("M", cols=1000)

    compiled, _, _ = fresh_compiled(script, scn)
    start = time.perf_counter()
    serial = ResourceOptimizer(cluster, m=M).optimize(compiled)
    serial_s = time.perf_counter() - start
    golden = _normalized(compiled, serial)

    process_s = {}
    phases = {}
    start_method = None
    for workers in [w for w in WORKER_STEPS if w <= max_workers]:
        compiled_k, _, _ = fresh_compiled(script, scn)
        optimizer = ParallelResourceOptimizer(
            cluster, m=M, num_workers=workers, backend="process"
        )
        start = time.perf_counter()
        result = optimizer.optimize(compiled_k)
        process_s[workers] = time.perf_counter() - start
        got = _normalized(compiled_k, result)
        assert got == golden, (
            f"{script}: process x{workers} diverged from serial: "
            f"{got} != {golden}"
        )
        start_method = result.start_method
        phases[workers] = {
            "snapshot_s": result.snapshot_s,
            "snapshot_bytes": result.snapshot_bytes,
            "dispatch_s": result.dispatch_s,
            "enumerate_s": result.enumerate_s,
            "fold_s": result.fold_s,
            "chunk_points": result.chunk_points,
            "chunks": result.tasks_dispatched,
        }
    return {
        "serial_s": serial_s,
        "process_s": process_s,
        "speedup": {k: serial_s / v for k, v in process_s.items()},
        "phases": phases,
        "start_method": start_method,
        "cost_s": serial.cost,
        "resource": serial.resource.describe(),
    }


def measure_cache(max_workers):
    """Cross-run result cache through the session API, traced."""
    tracer = Tracer()
    workers = 2 if max_workers >= 2 else 0
    session = ElasticMLSession(
        sample_cap=256, trace=tracer, opt_workers=workers,
        opt_backend="process",
    )
    args = prepare_inputs(session.hdfs, "GLM", scenario("M", cols=1000),
                          glm_family=2, seed=7)
    start = time.perf_counter()
    first = session.run("GLM", args)
    first_s = time.perf_counter() - start
    start = time.perf_counter()
    second = session.run("GLM", args)
    second_s = time.perf_counter() - start

    assert first.optimizer_result.from_cache is False
    assert second.optimizer_result.from_cache is True, (
        "second run must hit the cross-run optimizer cache"
    )
    assert tracer.counter("optcache.misses") >= 1
    assert tracer.counter("optcache.hits") >= 1
    assert second.resource == first.resource
    if workers:
        assert tracer.counter("optpar.tasks") > 0, (
            "parallel run must dispatch enumeration tasks"
        )
    return {
        "first_run_s": first_s,
        "second_run_s": second_s,
        "optcache_hits": tracer.counter("optcache.hits"),
        "optpar_tasks": tracer.counter("optpar.tasks"),
    }


def run_experiment(max_workers=4):
    records = {script: measure_script(script, max_workers)
               for script in SCRIPTS}
    cache = measure_cache(max_workers)
    return {
        "bench": "optimizer_wallclock",
        "scenario": "M dense1000 (Hybrid m=15)",
        "cpu_count": os.cpu_count(),
        "max_workers": max_workers,
        "start_method": next(
            iter(records.values())
        )["start_method"],
        "scripts": records,
        "cache": cache,
    }


def render(data):
    rows = []
    for script, rec in data["scripts"].items():
        row = [script, f"{rec['serial_s']:.3f}s"]
        for workers in WORKER_STEPS:
            if workers in rec["process_s"]:
                row.append(
                    f"{rec['process_s'][workers]:.3f}s "
                    f"({rec['speedup'][workers]:.2f}x)"
                )
            else:
                row.append("-")
        row.append(rec["resource"])
        rows.append(row)
    cache = data["cache"]
    for script, rec in data["scripts"].items():
        for workers, phase in sorted(rec.get("phases", {}).items()):
            rows.append([
                f"{script} x{workers}",
                f"snap {phase['snapshot_s'] * 1e3:.1f}ms"
                f"/{phase['snapshot_bytes'] / 1024:.0f}KiB",
                f"disp {phase['dispatch_s'] * 1e3:.1f}ms",
                f"enum {phase['enumerate_s'] * 1e3:.1f}ms",
                f"fold {phase['fold_s'] * 1e3:.1f}ms",
                f"{phase['chunks']} chunks x{phase['chunk_points']}rc",
            ])
    return format_table(
        ["Prog.", "serial", "proc x1", "proc x2", "proc x4", "chosen"],
        rows,
        title=(
            f"Optimizer wall clock, {data['scenario']}; host has "
            f"{data['cpu_count']} CPUs, start method "
            f"{data['start_method']}\ncross-run cache: first run "
            f"{cache['first_run_s']:.3f}s -> cached run "
            f"{cache['second_run_s']:.3f}s "
            f"({cache['optcache_hits']} hit(s), enumeration skipped)"
        ),
    )


def check_speedup(data):
    """>= 2x at 4 process workers — only meaningful with >= 4 CPUs.

    Returns ``(asserted, skipped_reason)`` so the report records *why*
    the assertion did not run instead of a silent ``False``.
    """
    if data["cpu_count"] < 4:
        return False, (
            f"host has {data['cpu_count']} CPUs, need >= 4"
        )
    if data["max_workers"] < 4:
        return False, (
            f"measured up to {data['max_workers']} workers, need 4 "
            f"(pass --workers 4)"
        )
    for script, rec in data["scripts"].items():
        assert rec["speedup"][4] >= 2.0, (
            f"{script}: expected >= 2x at 4 workers, got "
            f"{rec['speedup'][4]:.2f}x"
        )
    return True, None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="max process workers to measure (default 4)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="where to write BENCH_optimizer.json")
    args = parser.parse_args(argv)
    data = run_experiment(args.workers)
    print(render(data))
    checked, skipped_reason = check_speedup(data)
    data["speedup_asserted"] = checked
    data["skipped_reason"] = skipped_reason
    args.out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}"
          + ("" if checked else
             f" (speedup not asserted: {skipped_reason})"))
    return 0


try:
    import pytest
except ImportError:  # standalone mode in minimal environments
    pytest = None

if pytest is not None:

    @pytest.mark.repro
    def test_opt_wallclock(benchmark, report):
        data = benchmark.pedantic(
            run_experiment, args=(4,), rounds=1, iterations=1
        )
        asserted, skipped_reason = check_speedup(data)
        data["speedup_asserted"] = asserted
        data["skipped_reason"] = skipped_reason
        report("optimizer_wallclock", render(data))
        DEFAULT_OUT.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )


if __name__ == "__main__":
    sys.exit(main())
