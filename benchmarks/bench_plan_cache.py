"""Plan-recompilation cache: grid-enumeration overhead, cache on vs off.

Runs the resource optimizer (Hybrid m=15) on the bundled scripts and
reports block compilations, cost-model invocations, and optimization
wall clock with the memoizing plan cache disabled and enabled.  The
chosen configuration and its estimated cost must be identical in both
modes — the cache buckets budgets by the compilation thresholds, so
hits return exactly the plan a recompilation would regenerate.

Expected shape: compilations collapse to roughly (#blocks x #distinct
buckets); cost invocations drop >= 2x on the MR-heavy dense scenarios;
identical chosen configurations throughout.

Also runnable standalone (no pytest): ``python benchmarks/bench_plan_cache.py``.
"""

import sys

from _lib import format_table, fresh_compiled
from repro.cluster import paper_cluster
from repro.optimizer import ResourceOptimizer
from repro.workloads import scenario

SIZES = ["S", "M"]
SCRIPTS = ["LinregDS", "LinregCG", "L2SVM"]


def run_point(compiled, enable_plan_cache):
    optimizer = ResourceOptimizer(
        paper_cluster(), m=15, enable_plan_cache=enable_plan_cache
    )
    return optimizer.optimize(compiled)


def cache_table():
    rows = []
    results = {}
    for script in SCRIPTS:
        for size in SIZES:
            # one compiled program for both modes: block ids are stamped
            # by a per-process counter, so per-block MR vectors are only
            # comparable within the same compilation
            compiled, _, _ = fresh_compiled(script, scenario(size, cols=1000))
            off = run_point(compiled, enable_plan_cache=False)
            on = run_point(compiled, enable_plan_cache=True)
            results[(script, size)] = (off, on)
            rows.append([
                script, size,
                f"{off.stats.block_compilations} -> "
                f"{on.stats.block_compilations}",
                f"{off.stats.cost_invocations} -> "
                f"{on.stats.cost_invocations}",
                on.stats.plan_cache_hits,
                on.stats.mr_points_skipped,
                f"{off.stats.optimization_time:.3f}s -> "
                f"{on.stats.optimization_time:.3f}s",
                "yes" if (
                    on.resource == off.resource and on.cost == off.cost
                ) else "NO",
            ])
    return rows, results


def render(rows):
    return format_table(
        ["Prog.", "Scen.", "# Comp.", "# Cost.", "Hits", "Skipped",
         "Opt. Time", "Same cfg"],
        rows,
        title="Plan cache: enumeration overhead, dense1000 (Hybrid m=15)",
    )


def check(results):
    """Invariants also asserted by the pytest wrapper below."""
    for (script, size), (off, on) in results.items():
        label = f"{script}/{size}"
        assert on.resource == off.resource, label
        assert on.cost == off.cost, label
        assert on.stats.plan_cache_hits > 0, label
    # the headline acceptance point: LinregCG, m=15
    for size in SIZES:
        off, on = results[("LinregCG", size)]
        assert on.stats.block_compilations * 2 <= (
            off.stats.block_compilations
        ), size
        assert on.stats.cost_invocations * 2 <= (
            off.stats.cost_invocations
        ), size


def main():
    rows, results = cache_table()
    print(render(rows))
    check(results)
    print("plan cache invariants ok")
    return 0


try:
    import pytest
except ImportError:  # standalone mode in minimal environments
    pytest = None

if pytest is not None:

    @pytest.mark.repro
    def test_plan_cache_overhead(benchmark, report):
        rows, results = benchmark.pedantic(
            cache_table, rounds=1, iterations=1
        )
        report("plan_cache_overhead", render(rows))
        check(results)


if __name__ == "__main__":
    sys.exit(main())
