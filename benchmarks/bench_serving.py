"""Multi-tenant serving benchmark: sustained throughput + latency.

Drives 100s of queued tenant submissions through
:class:`repro.serving.ElasticMLServer` (the Section 5.3 multi-tenant
setting: concurrency bounded by AM-container admission under the
1.5x-heap rule) and measures sustained request throughput and
wall-clock latency percentiles, with a cache-sharing on/off ablation
(shared ProgramCache + OptimizerResultCache + PlanCache vs none).

Invariants asserted on every run (CI-safe at any CPU count):

* every submission completes;
* **byte-identical determinism** — every tenant's simulated result
  (total time, MR jobs, prints, chosen configuration) equals the same
  run on a private single-tenant ``ElasticMLSession`` with the same
  seed, for both admission policies, with caches on or off, and at
  every shard count of the multi-process front end;
* cache sharing actually engages (hits > 0) in the shared arm.

The sharded section queues ``--sharded-tenants`` (>= 1000 by default)
submissions against a single-process server and against
:class:`repro.serving.ShardedElasticMLServer` at each ``--shards``
count.  Host-dependent claims are honest: ``cpu_count`` is recorded,
and the 4-shard >= 1.5x throughput assertion only runs on hosts with
>= 4 CPUs (a ``skipped_reason`` is written otherwise).

Writes ``BENCH_serving.json`` (override with ``--out``).  Standalone:
``python benchmarks/bench_serving.py [--tenants N] [--out PATH]``.
"""

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

from repro.api import ElasticMLSession, SessionConfig
from repro.serving import (
    ElasticMLServer,
    HeapRulePolicy,
    PackingPolicy,
    ShardedElasticMLServer,
    Submission,
    default_serving_workers,
)
from repro.workloads import prepare_inputs, scenario

#: submission mix cycled across the queued tenants
MIX = [("LinregDS", "XS"), ("LinregCG", "XS"), ("L2SVM", "XS")]
SAMPLE_CAP = 64
COLS = 100
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_serving.json"
)


def _canonical(outcome):
    """Simulated-result identity, independent of block-id stamps."""
    result = outcome.result
    resource = outcome.resource
    return (
        result.total_time,
        result.mr_jobs,
        tuple(result.prints),
        resource.cp_heap_mb,
        resource.mr_heap_mb,
        tuple(sorted(resource.mr_heap_per_block.values())),
    )


def serial_references(config):
    """Per-script canonical results from private single-tenant runs."""
    references = {}
    for name, size in MIX:
        session = ElasticMLSession(sample_cap=SAMPLE_CAP, config=config)
        args = prepare_inputs(
            session.hdfs, name, scenario(size, cols=COLS)
        )
        references[name] = _canonical(session.run(name, args))
    return references


def run_arm(label, tenants, policy, config, references, tenant_pool=16,
            workers=None):
    if workers is None:
        workers = default_serving_workers()
    server = ElasticMLServer(
        sample_cap=SAMPLE_CAP,
        config=config,
        policy=policy,
        max_workers=workers,
        queue_limit=max(tenants, 1024),
        trace=True,
    )
    prepared = {
        name: prepare_inputs(server.hdfs, name, scenario(size, cols=COLS))
        for name, size in MIX
    }
    submitted = []
    started = time.perf_counter()
    for index in range(tenants):
        name, _ = MIX[index % len(MIX)]
        server.submit(Submission(
            tenant=f"tenant-{index % tenant_pool:03d}",
            script=name,
            args=prepared[name],
            seed=0,
        ))
        submitted.append(name)
    results = server.drain()
    elapsed = time.perf_counter() - started
    server.shutdown()

    failures = [r for r in results if not r.ok]
    assert not failures, (
        f"{label}: {len(failures)} submissions did not complete: "
        f"{failures[:3]}"
    )
    for name, result in zip(submitted, results):
        assert _canonical(result.outcome) == references[name], (
            f"{label}: tenant {result.tenant} (ticket {result.ticket}, "
            f"{name}) diverged from its serial single-session run"
        )

    latencies = sorted(r.latency_s for r in results)
    waits = [r.wait_s for r in results]
    stats = server.stats()
    return {
        "label": label,
        "policy": policy.name,
        "tenants": tenants,
        "workers": workers,
        "wall_s": round(elapsed, 3),
        "throughput_rps": round(tenants / elapsed, 2),
        "latency_p50_s": round(statistics.median(latencies), 4),
        "latency_p95_s": round(
            latencies[int(0.95 * (len(latencies) - 1))], 4
        ),
        "latency_max_s": round(latencies[-1], 4),
        "admission_wait_mean_s": round(statistics.mean(waits), 4),
        "serving": {
            key: stats[key]
            for key in (
                "serving.submitted", "serving.admitted",
                "serving.completed", "serving.failed", "serving.rejected",
            )
        },
        "caches": {
            "program_hits": stats["program_cache.hits"],
            "program_misses": stats["program_cache.misses"],
            "optimizer_hits": stats["optcache.hits"],
            "optimizer_misses": stats["optcache.misses"],
            "plan_entries": stats["plan_cache.entries"],
        },
        "deterministic": True,
    }


def run_sharded_arm(label, tenants, shards, config, references,
                    tenant_pool=64, workers=None, policy="heap-rule"):
    """One >=1000-tenant arm through the multi-process front end (or,
    with ``shards=0``, the single-process baseline at the same scale).
    Returns the arm record plus the canonical per-submission results so
    the caller can assert identity across shard counts."""
    if shards == 0:
        server = ElasticMLServer(
            sample_cap=SAMPLE_CAP, config=config, policy=policy,
            max_workers=workers, queue_limit=max(tenants, 1024),
            trace=True,
        )
    else:
        server = ShardedElasticMLServer(
            shards=shards, sample_cap=SAMPLE_CAP, config=config,
            policy=policy, max_workers=workers,
            queue_limit=max(tenants, 1024), trace=True,
        )
    prepared = {
        name: prepare_inputs(server.hdfs, name, scenario(size, cols=COLS))
        for name, size in MIX
    }
    submitted = []
    started = time.perf_counter()
    for index in range(tenants):
        name, _ = MIX[index % len(MIX)]
        server.submit(Submission(
            tenant=f"tenant-{index % tenant_pool:03d}",
            script=name,
            args=prepared[name],
            seed=0,
        ))
        submitted.append(name)
    results = server.drain()
    elapsed = time.perf_counter() - started
    stats = server.stats()
    server.shutdown()

    failures = [r for r in results if not r.ok]
    assert not failures, (
        f"{label}: {len(failures)} submissions did not complete: "
        f"{failures[:3]}"
    )
    canonicals = [_canonical(r.outcome) for r in results]
    for name, canonical in zip(submitted, canonicals):
        assert canonical == references[name], (
            f"{label}: a {name} tenant diverged from its serial "
            "single-session run"
        )

    latencies = sorted(r.latency_s for r in results)
    arm = {
        "label": label,
        "policy": policy,
        "shards": shards,
        "tenants": tenants,
        "workers": workers,
        "wall_s": round(elapsed, 3),
        "throughput_rps": round(tenants / elapsed, 2),
        "latency_p50_s": round(statistics.median(latencies), 4),
        "latency_p95_s": round(
            latencies[int(0.95 * (len(latencies) - 1))], 4
        ),
        "latency_max_s": round(latencies[-1], 4),
        "serving": {
            key: stats[key]
            for key in (
                "serving.submitted", "serving.admitted",
                "serving.completed", "serving.failed",
                "serving.rejected",
            )
        },
        "deterministic": True,
    }
    if shards > 0:
        arm["start_method"] = server.start_method
        arm["snapshot_bytes"] = server.snapshot_bytes
        arm["rebalances"] = stats["shard.rebalances"]
        arm["predictor_observations"] = stats["predictor.observations"]
    return arm, canonicals


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=150,
                        help="queued submissions per arm (default 150)")
    parser.add_argument("--sharded-tenants", type=int, default=1000,
                        help="queued submissions per sharded arm "
                             "(default 1000)")
    parser.add_argument("--shards", default="1,4",
                        help="comma-separated shard counts for the "
                             "sharded arms (default 1,4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="server thread-pool size (default: one per "
                             "CPU, clamped to [2, 8])")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.tenants < 100:
        parser.error("--tenants must be >= 100 (acceptance floor)")
    if args.sharded_tenants < 1000:
        parser.error("--sharded-tenants must be >= 1000 "
                     "(acceptance floor)")
    shard_counts = [int(part) for part in args.shards.split(",")]

    shared_config = SessionConfig()
    unshared_config = SessionConfig(
        opt_cache=False, enable_plan_cache=False
    )
    references = serial_references(shared_config)
    # caches must not change simulated results: same references apply
    unshared_references = serial_references(unshared_config)
    assert references == unshared_references, (
        "cache ablation changed single-session results"
    )

    arms = [
        run_arm("shared-caches/heap-rule", args.tenants, HeapRulePolicy(),
                shared_config, references, workers=args.workers),
        run_arm("shared-caches/packing", args.tenants, PackingPolicy(),
                shared_config, references, workers=args.workers),
        run_arm("no-cache-sharing/heap-rule", args.tenants,
                HeapRulePolicy(), unshared_config, references,
                workers=args.workers),
    ]
    shared, _, unshared = arms
    assert shared["caches"]["optimizer_hits"] > 0, (
        "shared arm never hit the optimizer cache"
    )
    assert shared["caches"]["program_hits"] > 0, (
        "shared arm never hit the program cache"
    )
    assert unshared["caches"]["optimizer_hits"] == 0

    # -- sharded scale-out section (>= 1000 queued tenants) ----------------
    baseline, baseline_canonicals = run_sharded_arm(
        f"single-process/{args.sharded_tenants}",
        args.sharded_tenants, 0, shared_config, references,
        workers=args.workers,
    )
    sharded_arms = [baseline]
    by_shards = {}
    for shards in shard_counts:
        arm, canonicals = run_sharded_arm(
            f"sharded-{shards}/{args.sharded_tenants}",
            args.sharded_tenants, shards, shared_config, references,
            workers=args.workers,
        )
        assert canonicals == baseline_canonicals, (
            f"{shards}-shard results diverged from the single-process "
            "run at the same scale"
        )
        sharded_arms.append(arm)
        by_shards[shards] = arm

    cpus = os.cpu_count() or 1
    speedup = round(unshared["wall_s"] / shared["wall_s"], 2)
    payload = {
        "benchmark": "serving",
        "mix": [f"{name}:{size}" for name, size in MIX],
        "host_cpus": cpus,
        "cpu_count": cpus,
        "arms": arms,
        "cache_sharing_speedup": speedup,
        "sharded": {
            "tenants": args.sharded_tenants,
            "shard_counts": shard_counts,
            "arms": sharded_arms,
        },
    }
    if cpus >= 2:
        assert speedup > 1.0, (
            f"cache sharing did not pay off: {speedup}x wall clock"
        )
    else:
        # single-CPU hosts serialize the thread pool: wall-clock ratios
        # are scheduling noise, not cache effectiveness
        payload["cache_sharing_speedup_skipped_reason"] = (
            f"host has {cpus} CPU(s); wall-clock speedup assertion "
            "needs >= 2"
        )
    four_shard = by_shards.get(4)
    if four_shard is None:
        payload["sharded"]["skipped_reason"] = (
            "no 4-shard arm requested; scaling assertion needs one"
        )
    elif cpus >= 4:
        scaling = round(
            four_shard["throughput_rps"] / baseline["throughput_rps"], 2
        )
        payload["sharded"]["scaling_4shard"] = scaling
        assert scaling >= 1.5, (
            f"4-shard throughput only {scaling}x single-process "
            f"(expected >= 1.5x on a {cpus}-CPU host)"
        )
    else:
        # process-level parallelism cannot beat the GIL-free baseline
        # without actual cores to run the shards on
        payload["sharded"]["scaling_4shard"] = round(
            four_shard["throughput_rps"] / baseline["throughput_rps"], 2
        )
        payload["sharded"]["skipped_reason"] = (
            f"host has {cpus} CPU(s); 4-shard >= 1.5x throughput "
            "assertion needs >= 4"
        )
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'arm':28} {'req/s':>8} {'p50':>8} {'p95':>8} "
          f"{'opt hits':>9}")
    for arm in arms:
        print(f"{arm['label']:28} {arm['throughput_rps']:8.1f} "
              f"{arm['latency_p50_s']:8.3f} {arm['latency_p95_s']:8.3f} "
              f"{arm['caches']['optimizer_hits']:9d}")
    for arm in sharded_arms:
        print(f"{arm['label']:28} {arm['throughput_rps']:8.1f} "
              f"{arm['latency_p50_s']:8.3f} {arm['latency_p95_s']:8.3f} "
              f"{'':>9}")
    total = 3 * args.tenants + (1 + len(shard_counts)) * (
        args.sharded_tenants
    )
    print(f"\nall {total} tenant results byte-identical to "
          f"serial single-session runs")
    print(f"cache sharing speedup: {payload['cache_sharing_speedup']}x "
          f"wall clock")
    if "skipped_reason" in payload["sharded"]:
        print(f"sharded scaling: {payload['sharded']['skipped_reason']}")
    else:
        print(f"4-shard scaling: "
              f"{payload['sharded']['scaling_4shard']}x single-process")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
