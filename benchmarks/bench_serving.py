"""Multi-tenant serving benchmark: sustained throughput + latency.

Drives 100s of queued tenant submissions through
:class:`repro.serving.ElasticMLServer` (the Section 5.3 multi-tenant
setting: concurrency bounded by AM-container admission under the
1.5x-heap rule) and measures sustained request throughput and
wall-clock latency percentiles, with a cache-sharing on/off ablation
(shared ProgramCache + OptimizerResultCache + PlanCache vs none).

Invariants asserted on every run (CI-safe at any CPU count):

* every submission completes;
* **byte-identical determinism** — every tenant's simulated result
  (total time, MR jobs, prints, chosen configuration) equals the same
  run on a private single-tenant ``ElasticMLSession`` with the same
  seed, for both admission policies and with caches on or off;
* cache sharing actually engages (hits > 0) in the shared arm.

Writes ``BENCH_serving.json`` (override with ``--out``).  Standalone:
``python benchmarks/bench_serving.py [--tenants N] [--out PATH]``.
"""

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

from repro.api import ElasticMLSession, SessionConfig
from repro.serving import (
    ElasticMLServer,
    HeapRulePolicy,
    PackingPolicy,
    Submission,
    default_serving_workers,
)
from repro.workloads import prepare_inputs, scenario

#: submission mix cycled across the queued tenants
MIX = [("LinregDS", "XS"), ("LinregCG", "XS"), ("L2SVM", "XS")]
SAMPLE_CAP = 64
COLS = 100
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_serving.json"
)


def _canonical(outcome):
    """Simulated-result identity, independent of block-id stamps."""
    result = outcome.result
    resource = outcome.resource
    return (
        result.total_time,
        result.mr_jobs,
        tuple(result.prints),
        resource.cp_heap_mb,
        resource.mr_heap_mb,
        tuple(sorted(resource.mr_heap_per_block.values())),
    )


def serial_references(config):
    """Per-script canonical results from private single-tenant runs."""
    references = {}
    for name, size in MIX:
        session = ElasticMLSession(sample_cap=SAMPLE_CAP, config=config)
        args = prepare_inputs(
            session.hdfs, name, scenario(size, cols=COLS)
        )
        references[name] = _canonical(session.run(name, args))
    return references


def run_arm(label, tenants, policy, config, references, tenant_pool=16,
            workers=None):
    if workers is None:
        workers = default_serving_workers()
    server = ElasticMLServer(
        sample_cap=SAMPLE_CAP,
        config=config,
        policy=policy,
        max_workers=workers,
        queue_limit=max(tenants, 1024),
        trace=True,
    )
    prepared = {
        name: prepare_inputs(server.hdfs, name, scenario(size, cols=COLS))
        for name, size in MIX
    }
    submitted = []
    started = time.perf_counter()
    for index in range(tenants):
        name, _ = MIX[index % len(MIX)]
        server.submit(Submission(
            tenant=f"tenant-{index % tenant_pool:03d}",
            script=name,
            args=prepared[name],
            seed=0,
        ))
        submitted.append(name)
    results = server.drain()
    elapsed = time.perf_counter() - started
    server.shutdown()

    failures = [r for r in results if not r.ok]
    assert not failures, (
        f"{label}: {len(failures)} submissions did not complete: "
        f"{failures[:3]}"
    )
    for name, result in zip(submitted, results):
        assert _canonical(result.outcome) == references[name], (
            f"{label}: tenant {result.tenant} (ticket {result.ticket}, "
            f"{name}) diverged from its serial single-session run"
        )

    latencies = sorted(r.latency_s for r in results)
    waits = [r.wait_s for r in results]
    stats = server.stats()
    return {
        "label": label,
        "policy": policy.name,
        "tenants": tenants,
        "workers": workers,
        "wall_s": round(elapsed, 3),
        "throughput_rps": round(tenants / elapsed, 2),
        "latency_p50_s": round(statistics.median(latencies), 4),
        "latency_p95_s": round(
            latencies[int(0.95 * (len(latencies) - 1))], 4
        ),
        "latency_max_s": round(latencies[-1], 4),
        "admission_wait_mean_s": round(statistics.mean(waits), 4),
        "serving": {
            key: stats[key]
            for key in (
                "serving.submitted", "serving.admitted",
                "serving.completed", "serving.failed", "serving.rejected",
            )
        },
        "caches": {
            "program_hits": stats["program_cache.hits"],
            "program_misses": stats["program_cache.misses"],
            "optimizer_hits": stats["optcache.hits"],
            "optimizer_misses": stats["optcache.misses"],
            "plan_entries": stats["plan_cache.entries"],
        },
        "deterministic": True,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=150,
                        help="queued submissions per arm (default 150)")
    parser.add_argument("--workers", type=int, default=None,
                        help="server thread-pool size (default: one per "
                             "CPU, clamped to [2, 8])")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.tenants < 100:
        parser.error("--tenants must be >= 100 (acceptance floor)")

    shared_config = SessionConfig()
    unshared_config = SessionConfig(
        opt_cache=False, enable_plan_cache=False
    )
    references = serial_references(shared_config)
    # caches must not change simulated results: same references apply
    unshared_references = serial_references(unshared_config)
    assert references == unshared_references, (
        "cache ablation changed single-session results"
    )

    arms = [
        run_arm("shared-caches/heap-rule", args.tenants, HeapRulePolicy(),
                shared_config, references, workers=args.workers),
        run_arm("shared-caches/packing", args.tenants, PackingPolicy(),
                shared_config, references, workers=args.workers),
        run_arm("no-cache-sharing/heap-rule", args.tenants,
                HeapRulePolicy(), unshared_config, references,
                workers=args.workers),
    ]
    shared, _, unshared = arms
    assert shared["caches"]["optimizer_hits"] > 0, (
        "shared arm never hit the optimizer cache"
    )
    assert shared["caches"]["program_hits"] > 0, (
        "shared arm never hit the program cache"
    )
    assert unshared["caches"]["optimizer_hits"] == 0

    cpus = os.cpu_count() or 1
    speedup = round(unshared["wall_s"] / shared["wall_s"], 2)
    payload = {
        "benchmark": "serving",
        "mix": [f"{name}:{size}" for name, size in MIX],
        "host_cpus": cpus,
        "arms": arms,
        "cache_sharing_speedup": speedup,
    }
    if cpus >= 2:
        assert speedup > 1.0, (
            f"cache sharing did not pay off: {speedup}x wall clock"
        )
    else:
        # single-CPU hosts serialize the thread pool: wall-clock ratios
        # are scheduling noise, not cache effectiveness
        payload["cache_sharing_speedup_skipped_reason"] = (
            f"host has {cpus} CPU(s); wall-clock speedup assertion "
            "needs >= 2"
        )
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'arm':28} {'req/s':>8} {'p50':>8} {'p95':>8} "
          f"{'opt hits':>9}")
    for arm in arms:
        print(f"{arm['label']:28} {arm['throughput_rps']:8.1f} "
              f"{arm['latency_p50_s']:8.3f} {arm['latency_p95_s']:8.3f} "
              f"{arm['caches']['optimizer_hits']:9d}")
    print(f"\nall {3 * args.tenants} tenant results byte-identical to "
          f"serial single-session runs")
    print(f"cache sharing speedup: {payload['cache_sharing_speedup']}x "
          f"wall clock")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
