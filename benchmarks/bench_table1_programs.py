"""Table 1: ML program characteristics.

Reports, for each bundled script, the line count, the number of program
blocks, and whether initial compilation faces unknown dimensions,
side by side with the paper's numbers for SystemML's (larger) original
scripts.  Absolute counts differ — our scripts implement the same
algorithms more compactly — but the ordering (GLM largest, unknowns in
MLogreg/GLM) must hold.
"""

import pytest

from _lib import format_table, fresh_compiled
from repro.scripts import SCRIPTS, load_script
from repro.workloads import scenario

PAPER = {
    "LinregDS": (209, 22, "N"),
    "LinregCG": (273, 31, "N"),
    "L2SVM": (119, 20, "N"),
    "MLogreg": (351, 54, "Y"),
    "GLM": (1149, 377, "Y"),
}


def characteristics():
    rows = []
    stats = {}
    for name in ("LinregDS", "LinregCG", "L2SVM", "MLogreg", "GLM"):
        compiled, _, _ = fresh_compiled(name, scenario("XS", cols=100))
        lines = len(load_script(name).splitlines())
        blocks = compiled.num_blocks()
        unknowns = any(
            b.requires_recompile for b in compiled.last_level_blocks()
        )
        stats[name] = (lines, blocks, unknowns)
        p_lines, p_blocks, p_unknown = PAPER[name]
        rows.append([
            name, lines, blocks, "Y" if unknowns else "N",
            p_lines, p_blocks, p_unknown,
        ])
    return rows, stats


@pytest.mark.repro
def test_table1_program_characteristics(benchmark, report):
    rows, stats = benchmark.pedantic(characteristics, rounds=1, iterations=1)
    report(
        "table1_programs",
        format_table(
            ["Prog.", "#Lines", "#Blocks", "?",
             "paper #Lines", "paper #Blocks", "paper ?"],
            rows,
            title="Table 1: ML program characteristics (ours vs paper)",
        ),
    )
    # unknown flags match the paper exactly (evaluated five only)
    for name in PAPER:
        assert stats[name][2] == SCRIPTS[name].has_unknowns
    # GLM is the largest program on both axes
    assert stats["GLM"][0] == max(s[0] for s in stats.values())
    assert stats["GLM"][1] == max(s[1] for s in stats.values())
