"""Table 2: resource configurations chosen by Opt for LinregDS across
scenarios XS-XL and the four data shapes (CP / max MR heap in GB).

Expected shape: small scenarios pick minimal configurations (no
over-provisioning, contrast with B-LL's constant 53.3/4.4); larger
scenarios grow CP or MR memory only when the plans benefit.
"""

import pytest

from _lib import format_table, gb, optimize
from repro.workloads import scenario

SHAPES = [
    ("dense1000", 1000, False),
    ("sparse1000", 1000, True),
    ("dense100", 100, False),
    ("sparse100", 100, True),
]
SIZES = ["XS", "S", "M", "L", "XL"]


def chosen_configs():
    table = {}
    for label, cols, sparse in SHAPES:
        for size in SIZES:
            result, _ = optimize(
                "LinregDS", scenario(size, cols=cols, sparse=sparse)
            )
            table[(label, size)] = result.resource
    return table


@pytest.mark.repro
def test_table2_opt_configs(benchmark, report):
    table = benchmark.pedantic(chosen_configs, rounds=1, iterations=1)
    rows = []
    for size in SIZES:
        row = [size]
        for label, _, _ in SHAPES:
            rc = table[(label, size)]
            row.append(f"{gb(rc.cp_heap_mb)}/{gb(rc.max_mr_heap_mb)}")
        rows.append(row)
    report(
        "table2_configs",
        format_table(
            ["Scenario"] + [s[0] for s in SHAPES],
            rows,
            title="Table 2: Opt resource configs, LinregDS "
                  "(CP/max-MR heap; paper B-LL is 53.3GB/4.4GB)",
        ),
    )
    # no over-provisioning: XS picks (near-)minimal resources everywhere
    for label, _, _ in SHAPES:
        rc = table[(label, "XS")]
        assert rc.cp_heap_mb <= 2048
    # XL dense needs more resources than XS dense
    assert (
        table[("dense1000", "XL")].footprint()
        > table[("dense1000", "XS")].footprint()
    )
