"""Table 3: optimization overhead details, dense1000 scenarios.

Reports per program/scenario: the number of block recompilations, cost
model invocations, optimization wall-clock time, and overhead relative
to the (simulated) execution time under the chosen configuration.

Expected shape: low absolute optimization times; GLM — the largest
program — dominates; relative overhead shrinks with data size (larger
data -> longer execution amortizes optimization).
"""

import pytest

from _lib import execute, format_table, fresh_compiled
from repro.cluster import paper_cluster
from repro.optimizer import ResourceOptimizer
from repro.workloads import scenario

SIZES = ["XS", "S", "M", "L"]
SCRIPTS = ["LinregDS", "LinregCG", "L2SVM", "MLogreg", "GLM"]


def overhead_table():
    cluster = paper_cluster()
    rows = []
    stats = {}
    for script in SCRIPTS:
        for size in SIZES:
            scn = scenario(size, cols=1000)
            compiled, hdfs, _ = fresh_compiled(script, scn)
            optimizer = ResourceOptimizer(cluster, m=15)
            result = optimizer.optimize(compiled)
            record = execute(
                script, scn, result.resource, compiled=compiled, hdfs=hdfs
            )
            pct = 100 * result.stats.optimization_time / max(
                record.time, 0.001
            )
            rows.append([
                script, size,
                result.stats.block_compilations,
                result.stats.cost_invocations,
                f"{result.stats.optimization_time:.2f}s",
                f"{pct:.1f}",
            ])
            stats[(script, size)] = result.stats
    return rows, stats


@pytest.mark.repro
def test_table3_optimization_overhead(benchmark, report):
    rows, stats = benchmark.pedantic(overhead_table, rounds=1, iterations=1)
    report(
        "table3_overhead",
        format_table(
            ["Prog.", "Scen.", "# Comp.", "# Cost.", "Opt. Time", "%"],
            rows,
            title="Table 3: optimization details, dense1000 (Hybrid m=15)",
        ),
    )
    # GLM (largest program) needs the most recompilations
    for size in SIZES:
        glm = stats[("GLM", size)].block_compilations
        others = [
            stats[(s, size)].block_compilations
            for s in SCRIPTS
            if s != "GLM"
        ]
        assert glm >= max(others), size
    # pruning makes small scenarios cheap: fewer costings at XS than M
    for script in SCRIPTS:
        assert (
            stats[(script, "XS")].cost_invocations
            <= stats[(script, "M")].cost_invocations
        ), script
    # absolute optimization times stay low (sub-10s even for GLM)
    assert all(
        s.optimization_time < 10.0 for s in stats.values()
    )
