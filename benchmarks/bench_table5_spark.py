"""Table 5: SystemML+Opt on MR vs the SystemML runtime on Spark
(hand-coded Plan 1 Hybrid / Plan 2 Full), L2SVM, scenarios XS-XL.

Expected shapes (paper Appendix D): single-node CP dominates XS-M (the
static Spark executors are underutilized); Spark has a cache sweet spot
at L (data exceeds single-node memory but fits aggregate executor
memory); at XL (~2x aggregate memory) the advantage disappears; Hybrid
beats Full everywhere.
"""

import pytest

from _lib import execute, format_table, fresh_compiled, optimize
from repro.cluster.spark import SparkRuntime
from repro.workloads import scenario

SIZES = ["XS", "S", "M", "L", "XL"]

PAPER = {  # seconds, from Table 5
    "XS": (6, 25, 59),
    "S": (12, 31, 126),
    "M": (40, 43, 184),
    "L": (836, 167, 347),
    "XL": (12376, 10119, 13661),
}


def spark_comparison():
    spark = SparkRuntime()
    rows = []
    raw = {}
    for size in SIZES:
        scn = scenario(size, cols=1000)
        opt_result, compiled = optimize("L2SVM", scn)
        hdfs = None
        mr_rec = execute("L2SVM", scn, opt_result.resource)
        hybrid = spark.run_l2svm(scn, "hybrid")
        full = spark.run_l2svm(scn, "full")
        raw[size] = (mr_rec.time, hybrid.total_time, full.total_time)
        p_mr, p_h, p_f = PAPER[size]
        rows.append([
            size,
            f"{mr_rec.time:.0f}s", f"{hybrid.total_time:.0f}s",
            f"{full.total_time:.0f}s",
            f"{p_mr}s", f"{p_h}s", f"{p_f}s",
        ])
    return rows, raw


@pytest.mark.repro
def test_table5_spark_comparison(benchmark, report):
    rows, raw = benchmark.pedantic(spark_comparison, rounds=1, iterations=1)
    report(
        "table5_spark",
        format_table(
            ["Scen.", "MR+Opt", "Spark Hyb.", "Spark Full",
             "paper MR", "paper Hyb.", "paper Full"],
            rows,
            title="Table 5: L2SVM on MR with Opt vs SystemML runtime on "
                  "Spark (ours vs paper)",
        ),
    )
    # shape checks
    for size in SIZES:
        mr, hybrid, full = raw[size]
        assert hybrid < full, size  # Plan 1 always beats Plan 2
    # CP-only SystemML wins for small data; M is a near-tie in the
    # paper (40s vs 43s) — allow either side within a small factor
    for size in ("XS", "S"):
        assert raw[size][0] < raw[size][1], size
    assert raw["M"][0] < raw["M"][1] * 2.5
    # Spark's cache sweet spot at L
    assert raw["L"][1] < raw["L"][0]
    # at XL the cache advantage largely collapses (paper: "no
    # significant differences"; both runtimes within a few x)
    assert raw["XL"][1] > 0.25 * raw["XL"][0]
