"""Table 6: multi-user throughput, SystemML+Opt on MR vs the Spark
runtime (Plan 2 Full), L2SVM scenario S.

Expected shape (paper Appendix D): SystemML's moderate resource
requests (one ~12 GB container, no MR jobs) scale to tens of parallel
applications (13.7x at 32 users in the paper), while a single Spark
application occupies the entire cluster and throughput stays flat.
"""

import pytest

from _lib import execute, format_table, optimize
from repro.cluster import paper_cluster
from repro.cluster.events import io_saturation_contention, simulate_throughput
from repro.cluster.spark import SparkConfig, SparkRuntime
from repro.workloads import scenario

USERS = [1, 8, 32]

PAPER = {  # app/min from Table 6
    1: (5.1, 0.48),
    8: (35.6, 0.84),
    32: (69.8, 0.83),
}


def spark_throughput():
    cluster = paper_cluster()
    scn = scenario("S", cols=1000)
    opt_result, _ = optimize("L2SVM", scn)
    mr_duration = execute("L2SVM", scn, opt_result.resource).time
    mr_container = cluster.container_mb_for_heap(
        opt_result.resource.cp_heap_mb
    )
    spark = SparkRuntime()
    spark_duration = spark.run_l2svm(scn, "full").total_time
    # one Spark application allocates 6 standing 55 GB executor
    # containers (plus a small driver): it occupies the whole cluster
    spark_config = SparkConfig()
    executor_container = int(
        spark_config.executor_memory_mb * spark_config.overhead_factor
    )
    rows = []
    raw = {}
    for users in USERS:
        mr_out = simulate_throughput(
            cluster, users, 8, mr_duration, mr_container,
            contention=io_saturation_contention(),
        )
        spark_out = simulate_throughput(
            cluster, users, 8, spark_duration, executor_container,
            containers_per_app=spark_config.num_executors,
        )
        raw[users] = (mr_out.apps_per_minute, spark_out.apps_per_minute)
        p_mr, p_spark = PAPER[users]
        rows.append([
            users,
            f"{mr_out.apps_per_minute:.1f}",
            f"{spark_out.apps_per_minute:.2f}",
            f"{p_mr}", f"{p_spark}",
        ])
    return rows, raw


@pytest.mark.repro
def test_table6_spark_throughput(benchmark, report):
    rows, raw = benchmark.pedantic(spark_throughput, rounds=1, iterations=1)
    report(
        "table6_spark_throughput",
        format_table(
            ["#users", "MR+Opt [app/min]", "Spark Full [app/min]",
             "paper MR", "paper Spark"],
            rows,
            title="Table 6: throughput vs #users, L2SVM scenario S "
                  "(ours vs paper)",
        ),
    )
    # MR+Opt throughput scales with users; Spark stays flat
    assert raw[32][0] > 5 * raw[1][0]
    assert raw[32][1] < 2.5 * raw[1][1]
    # and the gap at 32 users is an order of magnitude
    assert raw[32][0] > 10 * raw[32][1]
