"""Shared fixtures for the benchmark/reproduction harness.

Each benchmark regenerates one table or figure of the paper: it runs the
experiment (on the simulated cluster), prints the same rows/series the
paper reports, and writes them to ``benchmarks/results/<name>.txt``.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Callable report(name, text): persist and display one table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name, text):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")
        return path

    return _report


def pytest_configure(config):
    # heavy experiment functions run once; pytest-benchmark defaults to
    # many rounds, so benches use benchmark.pedantic(rounds=1)
    config.addinivalue_line("markers", "repro: paper-reproduction bench")
