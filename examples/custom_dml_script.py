"""Writing your own DML script: ridge regression with standardization
and a what-if cost comparison.

Shows the declarative workflow the paper argues for: write linear
algebra once, let the compiler pick hybrid in-memory/distributed plans,
and let the resource optimizer pick the memory configuration — then
inspect what-if costs for configurations you might have picked by hand.

    python examples/custom_dml_script.py
"""

from repro import ElasticMLSession, ResourceConfig
from repro.workloads import scenario

RIDGE = """
# ridge regression with feature standardization
X = read($X)
y = read($Y)
lambda = ifdef($reg, 0.1)

n = nrow(X)
m = ncol(X)

# standardize features: zero mean, unit variance
col_means = colSums(X) / n
col_var = colSums(X ^ 2) / n - col_means ^ 2
col_sd = sqrt(max(col_var, 0.0000001))
X = (X - col_means) / col_sd

# closed-form ridge solve
A = t(X) %*% X + diag(matrix(lambda * n, rows=m, cols=1))
b = t(X) %*% y
beta = solve(A, b)

# report fit
resid = y - X %*% beta
r2 = 1 - sum(resid ^ 2) / sum((y - sum(y) / n) ^ 2)
print("RIDGE: n=" + n + " m=" + m + " lambda=" + lambda)
print("R2=" + r2)
write(beta, $B, format="binary")
"""


def main():
    session = ElasticMLSession()
    scn = scenario("M", cols=1000)
    session.hdfs.create_dense_input("ridge/X", scn.rows, scn.cols, seed=42)
    session.hdfs.create_regression_target("ridge/y", scn.rows, seed=43)
    args = {"X": "ridge/X", "Y": "ridge/y", "B": "ridge/beta", "reg": 0.05}

    compiled = session.compile_script(RIDGE, args)
    print(f"compiled into {compiled.num_blocks()} program blocks")

    # what-if analysis over hand-picked configurations
    print(f"\n{'configuration':24} {'estimated cost':>15}")
    for cp_gb, mr_gb in [(0.5, 0.5), (2, 2), (8, 2), (16, 4), (53, 4.4)]:
        rc = ResourceConfig(cp_gb * 1024, mr_gb * 1024)
        cost = session.estimate_cost(compiled, rc)
        print(f"{rc.describe():24} {cost:>14.0f}s")

    # the optimizer's pick
    opt = session.optimize(compiled)
    print(f"\noptimizer: {opt.resource.describe()} "
          f"(estimated {opt.cost:.0f}s)")

    result = session.execute(compiled, opt.resource)
    print(f"executed in {result.total_time:.0f}s simulated")
    for line in result.prints:
        print("  |", line)


if __name__ == "__main__":
    main()
