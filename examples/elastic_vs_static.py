"""The paper's motivation (Figure 1) end to end: no static cluster
configuration fits both algorithms.

Direct-solve linear regression is compute-bound and wants a massively
parallel distributed plan (small CP memory); conjugate gradient is
IO-bound and wants the data resident in a large control program.  The
resource optimizer picks per-program configurations automatically and
tracks the best static baseline on both.

    python examples/elastic_vs_static.py
"""

from repro import ElasticMLSession
from repro.workloads import paper_baselines, prepare_inputs, scenario


def run_all(session, script, scn):
    """Execute under the four static baselines and the optimizer."""
    rows = {}
    for name, rc in paper_baselines(session.cluster).items():
        args = prepare_inputs(session.hdfs, script, scn,
                              prefix=f"{script}/{name}")
        compiled = session.compile_registered(script, args)
        rows[name] = (session.execute(compiled, rc).total_time, rc)
    args = prepare_inputs(session.hdfs, script, scn, prefix=f"{script}/opt")
    compiled = session.compile_registered(script, args)
    opt = session.optimize(compiled)
    rows["Opt"] = (session.execute(compiled, opt.resource).total_time,
                   opt.resource)
    return rows


def main():
    session = ElasticMLSession()
    scn = scenario("M", cols=1000)  # 8 GB dense
    print(f"scenario: {scn.label}\n")
    print(f"{'config':8} {'LinregDS':>12} {'LinregCG':>12}")

    ds = run_all(session, "LinregDS", scn)
    cg = run_all(session, "LinregCG", scn)
    for name in ("B-SS", "B-LS", "B-SL", "B-LL", "Opt"):
        print(f"{name:8} {ds[name][0]:>11.0f}s {cg[name][0]:>11.0f}s")

    print(f"\nOpt chose {ds['Opt'][1].describe()} for LinregDS "
          f"(distributed plan, small CP)")
    print(f"Opt chose {cg['Opt'][1].describe()} for LinregCG "
          f"(in-memory plan, large CP)")

    ds_best = min(v[0] for k, v in ds.items() if k != "Opt")
    cg_best = min(v[0] for k, v in cg.items() if k != "Opt")
    print(f"\nOpt vs best static baseline: "
          f"DS {ds['Opt'][0] / ds_best:.2f}x, CG {cg['Opt'][0] / cg_best:.2f}x")
    worst_static = max(
        max(ds[name][0] / ds_best, cg[name][0] / cg_best)
        for name in ("B-SS", "B-LS", "B-SL", "B-LL")
    )
    print(f"any single static config is up to {worst_static:.1f}x off "
          f"on one of the two algorithms")


if __name__ == "__main__":
    main()
