"""Elasticity on a busy shared cluster: offer-based allocation and
utilization-based plan fallback (extensions of paper Sections 2.3 / 6).

Part 1 drives the Mesos-style allocator: the optimizer's cost profile
tells us what any offered container size is worth, and a decaying
reservation price decides when a non-matching offer is good enough.

Part 2 runs a distributed plan while the cluster is 85% utilized: the
utilization-aware adapter re-prices MR execution under load, migrates
the control program to a large container, and finishes on a single node.

    python examples/loaded_cluster_elasticity.py
"""

from repro import ElasticMLSession
from repro.cluster import ClusterLoad, OfferBasedAllocator, OfferStream
from repro.optimizer import ResourceOptimizer, UtilizationAwareAdapter
from repro.runtime import Interpreter
from repro.workloads import prepare_inputs, scenario


def main():
    session = ElasticMLSession()
    cluster = session.cluster

    # ---- part 1: offer-based allocation --------------------------------
    print("== offer-based (Mesos-style) allocation ==")
    args = prepare_inputs(session.hdfs, "LinregCG", scenario("M"))
    compiled = session.compile_registered("LinregCG", args)
    opt = session.optimize(compiled)
    print(f"request-based answer (YARN): {opt.resource.describe()}")

    for load in (0.3, 0.95):
        allocator = OfferBasedAllocator(
            opt.cp_profile, cluster, wait_cost_per_second=2.0
        )
        outcome = allocator.allocate(OfferStream(cluster, load_mean=load,
                                                 seed=5))
        print(f"cluster at {load:.0%} load: accepted a "
              f"{outcome.heap_mb:.0f} MB-heap offer after "
              f"{outcome.declined} declines ({outcome.waited:.0f}s wait, "
              f"{outcome.regret:.1f}s cost regret)")

    # ---- part 2: utilization-based fallback -----------------------------
    print("\n== utilization-based plan fallback ==")
    load = ClusterLoad.constant(0.85)
    for label, adapter in [
        ("load-blind", None),
        ("utilization-aware",
         UtilizationAwareAdapter(ResourceOptimizer(cluster), load)),
    ]:
        args = prepare_inputs(session.hdfs, "LinregDS", scenario("M"),
                              prefix=f"load_{label}")
        compiled = session.compile_registered("LinregDS", args)
        rc = session.optimize(compiled).resource
        interp = Interpreter(cluster, hdfs=session.hdfs, adapter=adapter,
                             cluster_load=load)
        result = interp.run(compiled, rc)
        print(f"{label:18}: {result.total_time:.0f}s, "
              f"{result.migrations} migration(s), "
              f"finished at {result.final_resource.describe()}")


if __name__ == "__main__":
    main()
