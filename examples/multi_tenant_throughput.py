"""Multi-tenancy throughput (paper Section 5.3): why avoiding
over-provisioning matters even when a single run is no faster.

The allocated resources per application bound the number of parallel
applications: B-LL's 80 GB containers admit 6 concurrent applications on
the paper cluster, while the optimizer's right-sized requests admit 36.

    python examples/multi_tenant_throughput.py
"""

from repro import ElasticMLSession
from repro.cluster.events import io_saturation_contention, simulate_throughput
from repro.workloads import paper_baselines, prepare_inputs, scenario


def main():
    session = ElasticMLSession()
    cluster = session.cluster
    scn = scenario("S", cols=1000)  # 800 MB dense

    # measure single-application durations under each configuration
    args = prepare_inputs(session.hdfs, "LinregDS", scn)
    compiled = session.compile_registered("LinregDS", args)
    opt = session.optimize(compiled)
    opt_time = session.execute(compiled, opt.resource).total_time
    bll = paper_baselines(cluster)["B-LL"]
    bll_time = session.execute(compiled, bll).total_time

    print(f"single application: Opt {opt_time:.0f}s "
          f"({opt.resource.describe()}), B-LL {bll_time:.0f}s "
          f"({bll.describe()})")

    opt_container = cluster.container_mb_for_heap(opt.resource.cp_heap_mb)
    bll_container = cluster.container_mb_for_heap(bll.cp_heap_mb)
    print(f"container requests: Opt {opt_container} MB -> "
          f"{cluster.num_nodes * (cluster.node_memory_mb // opt_container)} "
          f"parallel apps; B-LL {bll_container} MB -> "
          f"{cluster.num_nodes * (cluster.node_memory_mb // bll_container)}")

    print(f"\n{'#users':>7} {'Opt [app/min]':>14} {'B-LL [app/min]':>15}")
    for users in (1, 2, 4, 8, 16, 32, 64, 128):
        opt_out = simulate_throughput(
            cluster, users, 8, opt_time, opt_container,
            contention=io_saturation_contention(),
        )
        bll_out = simulate_throughput(
            cluster, users, 8, bll_time, bll_container,
            contention=io_saturation_contention(),
        )
        print(f"{users:>7} {opt_out.apps_per_minute:>14.1f} "
              f"{bll_out.apps_per_minute:>15.1f}")


if __name__ == "__main__":
    main()
