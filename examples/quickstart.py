"""Quickstart: compile, optimize, and run an ML script on the simulated
YARN cluster.

Runs conjugate-gradient linear regression on an 8 GB (logical) dense
dataset.  The resource optimizer inspects the compiled program and picks
the CP/MR memory configuration before submission — for this IO-bound
iterative script that means a control program large enough to hold X in
memory, instead of paying MapReduce job latency every iteration.

    python examples/quickstart.py
"""

from repro import ElasticMLSession, ResourceConfig
from repro.workloads import prepare_inputs, scenario


def main():
    session = ElasticMLSession()

    # generate an 8 GB dense regression dataset on the simulated HDFS
    scn = scenario("M", cols=1000)
    args = prepare_inputs(session.hdfs, "LinregCG", scn)
    print(f"dataset: {scn.label} ({scn.rows:,} x {scn.cols}, "
          f"{scn.dense_bytes / 1e9:.0f} GB dense)")

    # compile once; let the resource optimizer pick the configuration
    compiled = session.compile_registered("LinregCG", args)
    opt = session.optimize(compiled)
    print(f"optimizer chose {opt.resource.describe()} "
          f"(estimated {opt.cost:.0f}s, "
          f"optimization took {opt.stats.optimization_time * 1000:.0f}ms, "
          f"{opt.stats.block_compilations} block recompilations)")

    # execute under the chosen configuration
    result = session.execute(compiled, opt.resource)
    print(f"executed in {result.total_time:.0f}s simulated "
          f"({result.mr_jobs} MR jobs, {result.evictions} evictions)")
    for line in result.prints:
        print("  |", line)

    # contrast with an undersized static configuration
    static = ResourceConfig(cp_heap_mb=512, mr_heap_mb=512)
    static_result = session.execute(compiled, static)
    print(f"static 512MB/512MB config: {static_result.total_time:.0f}s "
          f"({static_result.mr_jobs} MR jobs) — "
          f"{static_result.total_time / result.total_time:.1f}x slower")


if __name__ == "__main__":
    main()
