"""Quickstart: run an ML script on the simulated YARN cluster.

Runs conjugate-gradient linear regression on an 8 GB (logical) dense
dataset.  ``session.run()`` compiles the script, lets the resource
optimizer pick the CP/MR memory configuration — for this IO-bound
iterative script that means a control program large enough to hold X in
memory, instead of paying MapReduce job latency every iteration — and
executes it, returning a single immutable :class:`RunOutcome`.  With
``trace=True`` the outcome also carries the run's telemetry.

    python examples/quickstart.py
"""

from repro import ElasticMLSession, ResourceConfig, prepare_inputs, scenario


def main():
    session = ElasticMLSession(trace=True)

    # generate an 8 GB dense regression dataset on the simulated HDFS
    scn = scenario("M", cols=1000)
    args = prepare_inputs(session.hdfs, "LinregCG", scn)
    print(f"dataset: {scn.label} ({scn.rows:,} x {scn.cols}, "
          f"{scn.dense_bytes / 1e9:.0f} GB dense)")

    # compile + optimize + execute in one call
    outcome = session.run("LinregCG", args)
    opt = outcome.optimizer_result
    print(f"optimizer chose {outcome.resource.describe()} "
          f"(estimated {outcome.estimated_cost:.0f}s, "
          f"optimization took {opt.stats.optimization_time * 1000:.0f}ms, "
          f"{opt.stats.block_compilations} block recompilations)")
    print(f"executed in {outcome.total_time:.0f}s simulated "
          f"({outcome.result.mr_jobs} MR jobs, "
          f"{outcome.result.evictions} evictions)")
    for line in outcome.prints:
        print("  |", line)

    # the trace shows where the run spent its time and what fired
    trace = outcome.trace
    print(f"\ntelemetry: {trace.counter('cost.invocations')} cost-model "
          f"invocations over {trace.counter('optimizer.grid_points')} grid "
          f"points; {trace.counter('bufferpool.hits')} buffer-pool hits, "
          f"{trace.counter('recompile.dynamic')} plan regenerations")

    # contrast with an undersized static configuration
    static = session.run(
        "LinregCG", args, resource=ResourceConfig(512, 512)
    )
    print(f"static 512MB/512MB config: {static.total_time:.0f}s "
          f"({static.result.mr_jobs} MR jobs) — "
          f"{static.total_time / outcome.total_time:.1f}x slower")


if __name__ == "__main__":
    main()
