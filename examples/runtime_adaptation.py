"""Runtime resource adaptation (paper Section 4) in action.

Multinomial logistic regression expands its label vector with
``table(seq(1, nrow(X)), y)`` — the number of classes, and with it the
size of every per-iteration intermediate, is unknown until runtime.
Initial resource optimization therefore stays at the minimal CP size
(all it can justify), the first loop iterations spawn unnecessary MR
jobs, dynamic recompilation detects it, and the application master
migrates to a right-sized container.

    python examples/runtime_adaptation.py
"""

from repro import ElasticMLSession
from repro.workloads import prepare_inputs, scenario


def run(session, adapt):
    args = prepare_inputs(session.hdfs, "MLogreg", scenario("M", cols=1000),
                          prefix=f"adapt_{adapt}")
    compiled = session.compile_registered("MLogreg", args)
    opt = session.optimize(compiled)
    result = session.execute(compiled, opt.resource, adapt=adapt)
    return opt, result


def main():
    session = ElasticMLSession()

    print("== without runtime adaptation ==")
    opt, static = run(session, adapt=False)
    print(f"initial config: {opt.resource.describe()} "
          f"(unknowns kept the optimizer at minimal CP)")
    print(f"execution: {static.total_time:.0f}s, {static.mr_jobs} MR jobs, "
          f"{static.recompilations} dynamic recompilations")

    print("\n== with runtime adaptation ==")
    opt2, adaptive = run(session, adapt=True)
    print(f"initial config: {opt2.resource.describe()}")
    print(f"execution: {adaptive.total_time:.0f}s, "
          f"{adaptive.mr_jobs} MR jobs, "
          f"{adaptive.migrations} CP migration(s), "
          f"migration overhead "
          f"{adaptive.breakdown.get('migration', 0):.1f}s")
    print(f"final config: {adaptive.final_resource.describe()}")

    print(f"\nadaptation speedup: "
          f"{static.total_time / adaptive.total_time:.1f}x")


if __name__ == "__main__":
    main()
