"""Setup script (offline environment: legacy editable installs only)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Resource Elasticity for Large-Scale Machine "
        "Learning' (SIGMOD 2015): a declarative-ML compiler, simulated "
        "YARN/MR cluster, and automatic resource optimizer"
    ),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.scripts": ["*.dml"]},
)
