"""repro — a reproduction of "Resource Elasticity for Large-Scale
Machine Learning" (Huang et al., SIGMOD 2015).

The package implements the full SystemML-style stack the paper builds
on — a DML compiler producing memory-sensitive hybrid CP/MR runtime
plans, a simulated YARN/MapReduce/HDFS cluster substrate, and a white-box
cost model — plus the paper's contributions: the grid-enumeration
resource optimizer with program-aware pruning (Section 3), its
task-parallel variant (Appendix C), and runtime resource adaptation with
CP application-master migration (Section 4).

Entry points:

* :class:`repro.api.ElasticMLSession` — compile/optimize/execute DML
  scripts against a simulated cluster;
* :mod:`repro.scripts` — the five bundled ML programs of Table 1;
* :mod:`repro.workloads` — data scenarios XS-XL and static baselines;
* :mod:`repro.optimizer` — the resource optimizer itself.
"""

from repro.api import (
    ElasticMLSession,
    OptimizerResultCache,
    RunOutcome,
    SessionConfig,
)
from repro.chaos import (
    ChaosReport,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.cluster import (
    ClusterConfig,
    GrantedResource,
    ResourceConfig,
    paper_cluster,
    small_cluster,
)
from repro.common import MatrixCharacteristics
from repro.compiler import compile_program
from repro.cost import (
    CalibrationCollector,
    CalibrationProfile,
    CostModel,
    CostParameters,
    drifted_parameters,
    fit_profile,
)
from repro.elastic import (
    BrainPolicy,
    ElasticBrain,
    ElasticTrace,
    TraceEntry,
    TraceRecorder,
    TraceSimulator,
    bursty_trace,
    simulate_arms,
)
from repro.errors import ReproError
from repro.obs import Tracer, get_tracer, use_tracer
from repro.optimizer import (
    OptimizerOptions,
    OptimizerResult,
    ParallelResourceOptimizer,
    ResourceAdapter,
    ResourceOptimizer,
)
from repro.runtime import ExecutionResult, Interpreter, SimulatedHDFS
from repro.scripts import SCRIPTS, load_script
from repro.serving import (
    ConsistentHashRouter,
    DemandPredictor,
    ElasticMLServer,
    HeapRulePolicy,
    PackingPolicy,
    PredictivePackingPolicy,
    ShardedElasticMLServer,
    Submission,
    SubmissionResult,
)
from repro.workloads import prepare_inputs, scenario

__version__ = "1.8.0"

__all__ = [
    "ElasticMLSession",
    "OptimizerResultCache",
    "RunOutcome",
    "SessionConfig",
    "ConsistentHashRouter",
    "DemandPredictor",
    "ElasticMLServer",
    "HeapRulePolicy",
    "PackingPolicy",
    "PredictivePackingPolicy",
    "ShardedElasticMLServer",
    "Submission",
    "SubmissionResult",
    "ChaosReport",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "ExecutionResult",
    "ClusterConfig",
    "GrantedResource",
    "ResourceConfig",
    "paper_cluster",
    "small_cluster",
    "BrainPolicy",
    "ElasticBrain",
    "ElasticTrace",
    "TraceEntry",
    "TraceRecorder",
    "TraceSimulator",
    "bursty_trace",
    "simulate_arms",
    "MatrixCharacteristics",
    "compile_program",
    "CalibrationCollector",
    "CalibrationProfile",
    "CostModel",
    "CostParameters",
    "drifted_parameters",
    "fit_profile",
    "ReproError",
    "ResourceOptimizer",
    "OptimizerOptions",
    "OptimizerResult",
    "ParallelResourceOptimizer",
    "ResourceAdapter",
    "Interpreter",
    "SimulatedHDFS",
    "SCRIPTS",
    "load_script",
    "scenario",
    "prepare_inputs",
    "Tracer",
    "get_tracer",
    "use_tracer",
    "__version__",
]
