"""High-level public API.

:class:`ElasticMLSession` ties the pieces together the way SystemML's
YARN client does (paper Figure 2(b)): it owns a simulated cluster and
HDFS, compiles DML scripts against the HDFS input metadata, runs the
resource optimizer to decide the initial CP/MR configuration, and
executes programs with optional runtime resource adaptation.

Typical use::

    from repro import ElasticMLSession, scenario
    from repro.workloads import prepare_inputs

    session = ElasticMLSession(trace=True)
    args = prepare_inputs(session.hdfs, "LinregCG", scenario("M"))
    outcome = session.run("LinregCG", args)
    print(outcome.resource.describe(), outcome.total_time)
    print(outcome.trace.render())       # span tree + counters
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.chaos import FaultInjector
from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler.pipeline import (
    CompiledProgram,
    capture_plans,
    compile_program,
    restore_plans,
)
from repro.cost import CostModel
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.obs import NULL_TRACER, Tracer, use_tracer
from repro.optimizer import (
    OptimizerOptions,
    OptimizerResult,
    ResourceAdapter,
    ResourceOptimizer,
)
from repro.runtime import ExecutionResult, Interpreter, SimulatedHDFS
from repro.runtime.matrix import DEFAULT_SAMPLE_CAP
from repro.scripts import SCRIPTS, load_script


@dataclass(frozen=True)
class RunOutcome:
    """Everything produced by one end-to-end run (immutable)."""

    result: ExecutionResult = None
    resource: ResourceConfig = None
    optimizer_result: OptimizerResult | None = None
    compiled: CompiledProgram = None
    #: telemetry of the run; None unless the session traces
    trace: Tracer | None = None

    @property
    def total_time(self):
        """Simulated execution seconds."""
        return self.result.total_time

    @property
    def prints(self):
        """The script's own print() output lines."""
        return self.result.prints

    @property
    def migrations(self):
        """CP application-master migrations performed (Section 4)."""
        return self.result.migrations

    @property
    def estimated_cost(self):
        """The optimizer's estimated cost (seconds), or None when the
        run used an explicit configuration."""
        if self.optimizer_result is None:
            return None
        return self.optimizer_result.cost

    @property
    def chaos(self):
        """Fault/recovery accounting (:class:`repro.chaos.ChaosReport`),
        or None when the run was not fault-injected."""
        if self.result is None:
            return None
        return self.result.chaos


@dataclass
class ElasticMLSession:
    """A client session against one simulated cluster."""

    cluster: object = field(default_factory=paper_cluster)
    params: object = field(default_factory=lambda: DEFAULT_PARAMETERS)
    hdfs: SimulatedHDFS = None
    sample_cap: int = DEFAULT_SAMPLE_CAP
    seed: int = 0
    # optimizer defaults (Section 5.1: Hybrid, m = 15)
    grid_cp: str = "hybrid"
    grid_mr: str = "hybrid"
    grid_m: int = 15
    #: telemetry: False (off), True (fresh Tracer per run), or a Tracer
    #: instance shared across runs
    trace: object = False
    #: the tracer of the most recent traced run (or the shared instance)
    tracer: Tracer = field(default=None, repr=False)
    #: default fault-injection plan (:class:`repro.chaos.FaultPlan`)
    #: applied to every run unless overridden per call; None = no chaos
    chaos: object = None
    #: retry/backoff policy for fault recovery
    #: (:class:`repro.chaos.RetryPolicy`); None = the default policy
    retry_policy: object = None

    def __post_init__(self):
        if self.hdfs is None:
            self.hdfs = SimulatedHDFS(sample_cap=self.sample_cap)

    # -- compilation -----------------------------------------------------

    def compile_script(self, source, args, resource=None):
        """Compile DML source against the session's HDFS metadata."""
        return compile_program(source, args, self.hdfs.input_meta(), resource)

    def compile_registered(self, name, args, resource=None):
        """Compile one of the bundled scripts (LinregDS, ..., GLM)."""
        return self.compile_script(load_script(name), args, resource)

    # -- optimization ----------------------------------------------------

    @property
    def optimizer_options(self):
        """The session's default :class:`OptimizerOptions`."""
        return OptimizerOptions(
            grid_cp=self.grid_cp, grid_mr=self.grid_mr, m=self.grid_m
        )

    def make_optimizer(self, options=None, **overrides):
        """Build a :class:`ResourceOptimizer` from the session defaults.

        ``options`` replaces the defaults wholesale; keyword overrides
        (``grid_cp``, ``grid_mr``, ``m``, ``w``, ``time_budget``,
        ``enable_pruning``) patch individual fields of either.
        """
        opts = options if options is not None else self.optimizer_options
        if overrides:
            opts = replace(opts, **overrides)
        return ResourceOptimizer(self.cluster, self.params, options=opts)

    def optimize(self, compiled, options=None, **overrides):
        """Run initial resource optimization on a compiled program."""
        return self.make_optimizer(options, **overrides).optimize(compiled)

    # -- execution ---------------------------------------------------------

    def execute(self, compiled, resource, adapt=True, chaos=None):
        """Execute under an explicit configuration.

        ``chaos`` (a :class:`repro.chaos.FaultPlan`) overrides the
        session default; a fresh :class:`~repro.chaos.FaultInjector` is
        built per execution, so fault schedules restart deterministically
        at every run.
        """
        plan = chaos if chaos is not None else self.chaos
        injector = (
            FaultInjector(plan, retry_policy=self.retry_policy)
            if plan is not None else None
        )
        adapter = (
            ResourceAdapter(self.make_optimizer()) if adapt else None
        )
        interpreter = Interpreter(
            self.cluster,
            params=self.params,
            hdfs=self.hdfs,
            sample_cap=self.sample_cap,
            adapter=adapter,
            seed=self.seed,
            injector=injector,
        )
        if injector is None:
            return interpreter.run(compiled, resource)
        previous = self.hdfs.injector
        self.hdfs.injector = injector
        try:
            return interpreter.run(compiled, resource)
        finally:
            self.hdfs.injector = previous

    def run(self, script_or_name, args=None, *, resource=None, adapt=True,
            optimize=True, chaos=None):
        """Compile, optimize, and execute in one call.

        ``script_or_name`` is either a bundled script name (``"LinregCG"``
        — see :data:`repro.scripts.SCRIPTS`) or DML source text.  When
        ``resource`` is given (or ``optimize=False``) the resource
        optimizer is skipped; ``adapt`` toggles runtime resource
        adaptation (Section 4); ``chaos`` (a
        :class:`repro.chaos.FaultPlan`) injects deterministic faults
        into the execution, with per-run accounting on
        :attr:`RunOutcome.chaos`.  When the session traces, the returned
        :attr:`RunOutcome.trace` carries the run's span tree (compile /
        optimize / execute phases), counters, and events.
        """
        source = (
            load_script(script_or_name)
            if script_or_name in SCRIPTS
            else script_or_name
        )
        tracer = self._run_tracer()
        with use_tracer(tracer):
            with tracer.span("session.run"):
                with tracer.span("compile"):
                    compiled = self.compile_script(source, args)
                optimizer_result = None
                if resource is None and optimize:
                    with tracer.span("optimize"):
                        optimizer_result = self.optimize(compiled)
                    resource = optimizer_result.resource
                elif resource is None:
                    resource = ResourceConfig(
                        cp_heap_mb=512.0, mr_heap_mb=512.0
                    )
                with tracer.span("execute"):
                    result = self.execute(
                        compiled, resource, adapt=adapt, chaos=chaos
                    )
        return RunOutcome(
            result=result,
            resource=result.final_resource,
            optimizer_result=optimizer_result,
            compiled=compiled,
            trace=tracer if tracer.enabled else None,
        )

    def _run_tracer(self):
        """The tracer for one run(): the shared instance, a fresh one,
        or the null tracer, per the session's ``trace`` setting."""
        if isinstance(self.trace, Tracer):
            self.tracer = self.trace
        elif self.trace:
            self.tracer = Tracer()
        else:
            return NULL_TRACER
        return self.tracer

    # -- deprecated entry points -----------------------------------------

    def run_script(self, source, args, resource=None, adapt=True):
        """Deprecated: use :meth:`run`."""
        warnings.warn(
            "ElasticMLSession.run_script() is deprecated; use "
            "ElasticMLSession.run(source, args, ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(source, args, resource=resource, adapt=adapt)

    def run_registered(self, name, args, resource=None, adapt=True):
        """Deprecated: use :meth:`run`."""
        warnings.warn(
            "ElasticMLSession.run_registered() is deprecated; use "
            "ElasticMLSession.run(name, args, ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        if name not in SCRIPTS:
            raise KeyError(
                f"unknown script {name!r}; available: {sorted(SCRIPTS)}"
            )
        return self.run(name, args, resource=resource, adapt=adapt)

    # -- analysis helpers --------------------------------------------------

    def estimate_cost(self, compiled, resource):
        """What-if cost of a program under a configuration (seconds).

        Recompiles plans for ``resource``, costs them, and restores the
        program's previous plans before returning, so the call has no
        observable side effect on ``compiled`` (hop-level operator
        annotations are re-derived by the next plan generation).
        """
        from repro.compiler.pipeline import compile_plans

        snapshot = capture_plans(compiled)
        try:
            compile_plans(compiled, resource)
            return CostModel(self.cluster, self.params).estimate_program(
                compiled, resource
            )
        finally:
            restore_plans(compiled, snapshot)
