"""High-level public API.

:class:`ElasticMLSession` ties the pieces together the way SystemML's
YARN client does (paper Figure 2(b)): it owns a simulated cluster and
HDFS, compiles DML scripts against the HDFS input metadata, runs the
resource optimizer to decide the initial CP/MR configuration, and
executes programs with optional runtime resource adaptation.

Typical use::

    from repro import ElasticMLSession, scenario
    from repro.workloads import prepare_inputs

    session = ElasticMLSession(trace=True)
    args = prepare_inputs(session.hdfs, "LinregCG", scenario("M"))
    outcome = session.run("LinregCG", args)
    print(outcome.resource.describe(), outcome.total_time)
    print(outcome.trace.render())       # span tree + counters
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field, replace

from repro.chaos import FaultInjector
from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler import hops as H
from repro.compiler.pipeline import (
    CompiledProgram,
    capture_plans,
    compile_plans,
    compile_program,
    restore_plans,
)
from repro.cost import CostModel
from repro.cost.calibrate import (
    DEFAULT_MIN_SAMPLES,
    CalibrationCollector,
    fit_profile,
    resolve_profile,
    use_collector,
)
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.obs import NULL_TRACER, Tracer, get_tracer, use_tracer
from repro.optimizer import (
    DEFAULT_AUTO_SERIAL_POINTS,
    OptimizerOptions,
    OptimizerResult,
    OptimizerStats,
    ParallelResourceOptimizer,
    ResourceAdapter,
    ResourceOptimizer,
)
from repro.runtime import ExecutionResult, Interpreter, SimulatedHDFS
from repro.runtime.matrix import DEFAULT_SAMPLE_CAP
from repro.scripts import SCRIPTS, load_script


@dataclass(frozen=True)
class RunOutcome:
    """Everything produced by one end-to-end run (immutable)."""

    result: ExecutionResult = None
    resource: ResourceConfig = None
    optimizer_result: OptimizerResult | None = None
    compiled: CompiledProgram = None
    #: telemetry of the run; None unless the session traces
    trace: Tracer | None = None

    @property
    def total_time(self):
        """Simulated execution seconds."""
        return self.result.total_time

    @property
    def prints(self):
        """The script's own print() output lines."""
        return self.result.prints

    @property
    def migrations(self):
        """CP application-master migrations performed (Section 4)."""
        return self.result.migrations

    @property
    def estimated_cost(self):
        """The optimizer's estimated cost (seconds), or None when the
        run used an explicit configuration."""
        if self.optimizer_result is None:
            return None
        return self.optimizer_result.cost

    @property
    def chaos(self):
        """Fault/recovery accounting (:class:`repro.chaos.ChaosReport`),
        or None when the run was not fault-injected."""
        if self.result is None:
            return None
        return self.result.chaos


@dataclass(frozen=True)
class SessionConfig:
    """Consolidated session/serving knobs.

    One object now carries what used to be loose keyword arguments on
    :class:`ElasticMLSession` (``grid_cp``, ``grid_m``, ``opt_workers``,
    ``opt_backend``, ...), so sessions and the multi-tenant
    :class:`~repro.serving.ElasticMLServer` are configured with the same
    vocabulary.  The old keyword arguments still work as a thin
    compatibility shim for one release — they are applied as overrides
    onto the config at construction.
    """

    # -- optimizer grid (Section 5.1 defaults: Hybrid, m = 15) -------------
    grid_cp: str = "hybrid"
    grid_mr: str = "hybrid"
    grid_m: int = 15
    # -- parallel enumeration ----------------------------------------------
    #: parallel enumeration workers (0/1 = serial optimizer)
    opt_workers: int = 0
    #: parallel enumeration backend ("process" or "thread")
    opt_backend: str = "process"
    #: auto backend policy: below this many enumeration points the
    #: process backend falls back to serial (0 disables)
    auto_serial_points: int = DEFAULT_AUTO_SERIAL_POINTS
    #: r_c points per dispatched enumeration chunk (None = adaptive:
    #: ``grid_points / (workers * target_chunks_per_worker)``)
    chunk_points: int | None = None
    # -- caches -------------------------------------------------------------
    #: ablation switch: disable the memoizing plan/cost cache
    enable_plan_cache: bool = True
    #: ablation switch: disable vectorized MR-grid batch costing
    #: (chosen configurations are byte-identical either way)
    enable_vector_costing: bool = True
    #: build a cross-run :class:`OptimizerResultCache` for the session
    opt_cache: bool = True
    #: LRU bound of the default cross-run cache
    opt_cache_entries: int = 64
    # -- calibration (repro.cost.calibrate) --------------------------------
    #: collect per-component (work, seconds) samples during execution,
    #: fittable into a CalibrationProfile via ``fit_calibration()``
    calibrate: bool = False
    #: a :class:`~repro.cost.calibrate.CalibrationProfile` (or a path to
    #: a saved one) whose fitted constants become the optimizer's and
    #: cost model's *belief*; the simulated hardware truth (``params``)
    #: is unaffected
    calibration_profile: object = None
    #: components with fewer samples than this keep their base constants
    calibration_min_samples: int = DEFAULT_MIN_SAMPLES
    # -- continuous elasticity (repro.elastic) ------------------------------
    #: attach an autoscaling Brain to every execution: mid-run
    #: grow/shrink of the granted memory under load.  Time-only — plans
    #: always compile against the ideal config, outputs stay
    #: byte-identical (off reproduces pre-Brain behavior exactly)
    elastic: bool = False
    #: a :class:`~repro.elastic.BrainPolicy` (None = default policy)
    elastic_policy: object = None
    #: per-tenant memory quota as a fraction of total cluster memory,
    #: enforced by the serving resource manager (None = no quotas)
    tenant_quota_share: float | None = None
    # -- serving thread pool -------------------------------------------------
    #: clamp for :func:`~repro.serving.default_serving_workers`
    #: (None = REPRO_SERVING_MIN/MAX_WORKERS env, then 2/8)
    serving_min_workers: int | None = None
    serving_max_workers: int | None = None
    # -- sharded multi-process serving (repro.serving.shard) -----------------
    #: >1 routes the serving facade to a
    #: :class:`~repro.serving.shard.ShardedElasticMLServer` with this
    #: many shard worker processes
    serving_shards: int = 1
    #: routing affinity: "tenant" (one tenant, one shard) or "program"
    #: (all tenants of one script+args share a shard's caches)
    shard_affinity: str = "tenant"
    #: completed submissions between rebalancer passes (0 = off)
    shard_rebalance_every: int = 64
    #: EWMA smoothing factor of the per-tenant demand predictor
    demand_alpha: float = 0.3
    #: how shard workers receive their spec: "fork" (inherited
    #: copy-on-write), "pickle" (spawn-safe), or "auto"
    shard_start_method: str = "auto"

    def optimizer_options(self):
        """This configuration as :class:`OptimizerOptions`."""
        return OptimizerOptions(
            grid_cp=self.grid_cp,
            grid_mr=self.grid_mr,
            m=self.grid_m,
            parallel=self.opt_workers > 1,
            num_workers=self.opt_workers if self.opt_workers > 1 else 4,
            backend=self.opt_backend,
            enable_plan_cache=self.enable_plan_cache,
            auto_serial_points=self.auto_serial_points,
            enable_vector_costing=self.enable_vector_costing,
            chunk_points=self.chunk_points,
        )

    def build_opt_cache(self):
        """A fresh cross-run cache per this config (None if disabled)."""
        if not self.opt_cache:
            return None
        return OptimizerResultCache(max_entries=self.opt_cache_entries)


#: legacy ElasticMLSession keyword arguments -> SessionConfig fields
#: (the one-release compatibility shim)
_LEGACY_CONFIG_KNOBS = (
    "grid_cp", "grid_mr", "grid_m", "opt_workers", "opt_backend",
    "auto_serial_points", "enable_plan_cache", "enable_vector_costing",
    "chunk_points",
)


@dataclass
class OptimizerResultCache:
    """Cross-run cache of resource-optimization decisions.

    Repeated tenants (the Figure 12 multi-tenant throughput path) run
    the same script on the same data shape over and over; the grid
    enumeration re-derives the identical configuration every time.
    This cache keys the decision by everything it depends on — the
    script text, the script arguments, the shape/sparsity metadata of
    every referenced input file, the cluster configuration, the
    cost-model parameters, and the serial optimizer options
    (:meth:`OptimizerOptions.decision_signature`; parallelism knobs are
    excluded because every backend chooses identically) — so a hit can
    skip enumeration outright.

    **Invalidation rule**: there is no explicit invalidation — the key
    covers the full decision signature, so any change to the script,
    its arguments, an input file's metadata, the cluster, the cost
    parameters, or the grid options produces a *different* key and
    re-runs the optimizer.  Stale entries age out of the LRU bound.

    Per-block MR heaps are stored by *block position* (block ids are
    stamped per process and differ between compilations of the same
    script); :meth:`lookup` remaps them onto the current compilation.

    Lookup/store take an internal lock: one instance is shared by every
    tenant of an :class:`~repro.serving.ElasticMLServer`, where
    concurrent submissions hit it from worker threads.
    """

    max_entries: int = 64
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: key -> frozen decision entry, in LRU order (oldest first)
    _entries: dict = field(default_factory=dict, repr=False)
    _lock: object = field(default_factory=threading.RLock, repr=False,
                          compare=False)

    def __len__(self):
        return len(self._entries)

    @staticmethod
    def read_set(compiled):
        """File paths the compiled program persistently reads.

        Derived from the HOP DAG rather than from the argument values:
        a script's *output* path is also an argument, and once the file
        exists it shows up in ``input_meta`` — keying on it would
        spuriously invalidate the cache after the first run.
        """
        reads = set()
        for block in compiled.last_level_blocks():
            for hop in H.iter_dag(block.hop_roots):
                if (isinstance(hop, H.DataOp)
                        and hop.kind is H.DataOpKind.PERSISTENT_READ
                        and hop.fname):
                    reads.add(hop.fname)
        return reads

    @staticmethod
    def signature(source, args, input_meta, cluster, params, options,
                  compiled=None):
        """Hash of everything the optimization decision depends on."""
        args = args or {}
        if compiled is not None:
            referenced = OptimizerResultCache.read_set(compiled)
        else:
            referenced = {
                name
                for name in input_meta
                if name in args.values() or name in source
            }
        reads = sorted(
            (name, mc.rows, mc.cols, mc.nnz)
            for name, mc in input_meta.items()
            if name in referenced
        )
        key_text = repr((
            source,
            sorted(args.items()),
            reads,
            repr(cluster),
            repr(params),
            options.decision_signature(),
        ))
        return hashlib.sha256(key_text.encode("utf-8")).hexdigest()

    def lookup(self, key, compiled):
        """Return a cached :class:`OptimizerResult` remapped onto
        ``compiled``, or None on a miss."""
        order = [b.block_id for b in compiled.last_level_blocks()]
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or len(order) != entry["num_blocks"]:
                self.misses += 1
                get_tracer().incr("optcache.misses")
                return None
            # LRU touch: re-insert at the back
            self._entries[key] = self._entries.pop(key)
            self.hits += 1
        get_tracer().incr("optcache.hits")
        resource = ResourceConfig(
            cp_heap_mb=entry["cp_heap_mb"],
            mr_heap_mb=entry["mr_heap_mb"],
            mr_heap_per_block={
                order[index]: ri for index, ri in entry["vector"]
            },
        )
        return OptimizerResult(
            resource=resource,
            cost=entry["cost"],
            stats=replace(entry["stats"]),
            cp_profile=list(entry["cp_profile"]),
            from_cache=True,
        )

    def store(self, key, compiled, result):
        """Freeze one optimization outcome under ``key``.

        Results without a configuration, produced under an expired time
        budget (they depend on wall clock, not just inputs), or scoped
        to a block subsequence are not cacheable.
        """
        if result.resource is None or result.stats.budget_exhausted:
            return False
        index_of = {
            b.block_id: i
            for i, b in enumerate(compiled.last_level_blocks())
        }
        vector = []
        for block_id, ri in sorted(result.resource.mr_heap_per_block.items()):
            if block_id not in index_of:
                return False  # not a whole-program optimization
            vector.append((index_of[block_id], ri))
        with self._lock:
            self._entries[key] = {
                "cp_heap_mb": result.resource.cp_heap_mb,
                "mr_heap_mb": result.resource.mr_heap_mb,
                "vector": tuple(vector),
                "num_blocks": len(index_of),
                "cost": result.cost,
                "stats": replace(result.stats),
                "cp_profile": tuple(result.cp_profile),
            }
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))
            self.stores += 1
        get_tracer().incr("optcache.stores")
        return True

    def clear(self):
        with self._lock:
            self._entries.clear()


#: sentinel distinguishing "not passed" from an explicit None
_UNSET = object()


def _config_knob(name, doc):
    """A property delegating one knob to the session's SessionConfig.

    Sessions historically exposed the knobs as plain attributes
    (``session.grid_m = 5``); the properties keep that working while the
    single source of truth is the immutable config object.
    """

    def _get(self):
        return getattr(self.config, name)

    def _set(self, value):
        self.config = replace(self.config, **{name: value})

    return property(_get, _set, doc=doc)


class ElasticMLSession:
    """A client session against one simulated cluster.

    Knobs live on a :class:`SessionConfig` passed as ``config``; the old
    loose keyword arguments (``grid_m=5``, ``opt_workers=4``, ...) are
    still accepted for one release and are applied as overrides onto the
    config.  ``submit``/``poll``/``drain`` expose the session as a
    single-tenant facade over :class:`repro.serving.ElasticMLServer`.
    """

    def __init__(self, cluster=None, params=None, hdfs=None,
                 sample_cap=DEFAULT_SAMPLE_CAP, seed=0, *,
                 config=None, opt_cache=_UNSET, trace=False,
                 tracer=None, chaos=None, retry_policy=None,
                 model_params=None, load=None, **legacy_knobs):
        config = config if config is not None else SessionConfig()
        overrides = {}
        for knob in list(legacy_knobs):
            if knob in _LEGACY_CONFIG_KNOBS:
                overrides[knob] = legacy_knobs.pop(knob)
        if legacy_knobs:
            raise TypeError(
                "ElasticMLSession() got unexpected keyword arguments "
                f"{sorted(legacy_knobs)}"
            )
        if overrides:
            config = replace(config, **overrides)
        #: consolidated knobs (:class:`SessionConfig`)
        self.config = config
        self.cluster = cluster if cluster is not None else paper_cluster()
        #: simulated hardware truth: the constants the runtime charges
        self.params = params if params is not None else DEFAULT_PARAMETERS
        #: active calibration profile (from config or apply_calibration)
        self.calibration_profile = resolve_profile(
            config.calibration_profile, self.cluster
        )
        #: optimizer/cost-model belief: explicit ``model_params``, else
        #: the calibration profile's fitted constants, else ``params``.
        #: The truth/belief split is what calibration narrows.
        if model_params is not None:
            self.model_params = model_params
        elif self.calibration_profile is not None:
            self.model_params = self.calibration_profile.parameters()
        else:
            self.model_params = self.params
        #: calibration sample sink (None unless ``config.calibrate``)
        self.calibration = (
            CalibrationCollector() if config.calibrate else None
        )
        self.sample_cap = sample_cap
        self.hdfs = (
            hdfs if hdfs is not None
            else SimulatedHDFS(sample_cap=sample_cap)
        )
        self.seed = seed
        #: cross-run optimizer result cache consulted by :meth:`run`
        #: (None disables; default built per ``config.opt_cache``)
        self.opt_cache = (
            config.build_opt_cache() if opt_cache is _UNSET else opt_cache
        )
        #: telemetry: False (off), True (fresh Tracer per run), or a
        #: Tracer instance shared across runs
        self.trace = trace
        #: the tracer of the most recent traced run (or the shared one)
        self.tracer = tracer
        #: default fault-injection plan (:class:`repro.chaos.FaultPlan`)
        #: applied to every run unless overridden per call
        self.chaos = chaos
        #: retry/backoff policy for fault recovery
        #: (:class:`repro.chaos.RetryPolicy`); None = the default policy
        self.retry_policy = retry_policy
        #: background cluster-load model (:class:`repro.cluster.load
        #: .ClusterLoad`): slows MR phases and feeds the Brain's
        #: utilization signal when ``config.elastic`` is set
        self.load = load
        #: the :class:`~repro.elastic.ElasticBrain` of the most recent
        #: execution (None when ``config.elastic`` is off)
        self.last_brain = None
        self._server = None

    # legacy knob attributes, backed by the config (compat shim)
    grid_cp = _config_knob("grid_cp", "CP heap grid type (Section 3.3.2).")
    grid_mr = _config_knob("grid_mr", "MR heap grid type (Section 3.3.2).")
    grid_m = _config_knob("grid_m", "Grid resolution m (Section 5.1).")
    opt_workers = _config_knob(
        "opt_workers", "Parallel enumeration workers (0/1 = serial)."
    )
    opt_backend = _config_knob(
        "opt_backend", 'Parallel enumeration backend ("process"/"thread").'
    )
    auto_serial_points = _config_knob(
        "auto_serial_points",
        "Below this many enumeration points the process backend falls "
        "back to serial (0 disables).",
    )
    enable_plan_cache = _config_knob(
        "enable_plan_cache", "Memoizing plan/cost cache ablation switch."
    )
    enable_vector_costing = _config_knob(
        "enable_vector_costing",
        "Vectorized MR-grid batch costing ablation switch.",
    )
    chunk_points = _config_knob(
        "chunk_points",
        "r_c points per parallel-enumeration chunk (None = adaptive).",
    )

    # -- compilation -----------------------------------------------------

    def compile_script(self, source, args, resource=None):
        """Compile DML source against the session's HDFS metadata."""
        return compile_program(source, args, self.hdfs.input_meta(), resource)

    def compile_registered(self, name, args, resource=None):
        """Compile one of the bundled scripts (LinregDS, ..., GLM)."""
        return self.compile_script(load_script(name), args, resource)

    # -- optimization ----------------------------------------------------

    @property
    def optimizer_options(self):
        """The session's default :class:`OptimizerOptions`."""
        return self.config.optimizer_options()

    def make_optimizer(self, options=None, **overrides):
        """Build an optimizer from the session defaults.

        ``options`` replaces the defaults wholesale; keyword overrides
        (``grid_cp``, ``grid_mr``, ``m``, ``w``, ``time_budget``,
        ``enable_pruning``, ``parallel``, ``num_workers``, ``backend``)
        patch individual fields of either.  With ``parallel`` enabled
        (implied by a ``num_workers`` override > 1) the result is a
        :class:`~repro.optimizer.parallel.ParallelResourceOptimizer`
        running the requested backend; otherwise the serial
        :class:`ResourceOptimizer`.
        """
        opts = options if options is not None else self.optimizer_options
        if overrides:
            if "num_workers" in overrides and "parallel" not in overrides:
                overrides["parallel"] = overrides["num_workers"] > 1
            opts = replace(opts, **overrides)
        if opts.parallel and opts.num_workers > 1:
            return ParallelResourceOptimizer(
                self.cluster, self.model_params, options=opts
            )
        return ResourceOptimizer(
            self.cluster, self.model_params, options=opts
        )

    def optimize(self, compiled, options=None, **overrides):
        """Run initial resource optimization on a compiled program."""
        return self.make_optimizer(options, **overrides).optimize(compiled)

    def optimize_cached(self, source, args, compiled):
        """Initial optimization for :meth:`run`, consulting the
        cross-run result cache.

        On a hit the enumeration is skipped entirely: the program is
        recompiled under the cached configuration and a result with
        :attr:`OptimizerResult.from_cache` set is returned.
        """
        cache = self.opt_cache
        if cache is None:
            return self.optimize(compiled)
        key = cache.signature(
            source, args, self.hdfs.input_meta(), self.cluster,
            self.model_params, self.optimizer_options, compiled=compiled,
        )
        cached = cache.lookup(key, compiled)
        if cached is not None:
            compile_plans(compiled, cached.resource)
            return cached
        result = self.optimize(compiled)
        cache.store(key, compiled, result)
        return result

    # -- execution ---------------------------------------------------------

    def execute(self, compiled, resource, adapt=True, chaos=None):
        """Execute under an explicit configuration.

        ``chaos`` (a :class:`repro.chaos.FaultPlan`) overrides the
        session default; a fresh :class:`~repro.chaos.FaultInjector` is
        built per execution, so fault schedules restart deterministically
        at every run.
        """
        plan = chaos if chaos is not None else self.chaos
        injector = (
            FaultInjector(plan, retry_policy=self.retry_policy)
            if plan is not None else None
        )
        adapter = (
            # runtime adaptation re-optimizes tiny block scopes where
            # parallel fan-out costs more than it saves (and the
            # parallel optimizer has no scope/fixed-CP support), so the
            # adapter always gets the serial optimizer
            ResourceAdapter(self.make_optimizer(parallel=False))
            if adapt else None
        )
        brain = None
        if self.config.elastic:
            # local import: repro.elastic imports from this module's
            # dependents (cluster/cost) only, but keep the subsystem
            # optional at session-construction time
            from repro.elastic import ElasticBrain

            brain = ElasticBrain(
                policy=self.config.elastic_policy,
                cluster=self.cluster,
                utilization=(
                    self.load.utilization if self.load is not None else None
                ),
            )
        self.last_brain = brain
        interpreter = Interpreter(
            self.cluster,
            params=self.params,
            hdfs=self.hdfs,
            sample_cap=self.sample_cap,
            adapter=adapter,
            seed=self.seed,
            cluster_load=self.load,
            injector=injector,
            brain=brain,
        )
        def _run():
            if self.calibration is not None:
                with use_collector(self.calibration):
                    return interpreter.run(compiled, resource)
            return interpreter.run(compiled, resource)

        if injector is None:
            return _run()
        previous = self.hdfs.injector
        self.hdfs.injector = injector
        try:
            return _run()
        finally:
            self.hdfs.injector = previous

    def run(self, script_or_name, args=None, *, resource=None, adapt=True,
            optimize=True, chaos=None):
        """Compile, optimize, and execute in one call.

        ``script_or_name`` is either a bundled script name (``"LinregCG"``
        — see :data:`repro.scripts.SCRIPTS`) or DML source text.  When
        ``resource`` is given (or ``optimize=False``) the resource
        optimizer is skipped; ``adapt`` toggles runtime resource
        adaptation (Section 4); ``chaos`` (a
        :class:`repro.chaos.FaultPlan`) injects deterministic faults
        into the execution, with per-run accounting on
        :attr:`RunOutcome.chaos`.  When the session traces, the returned
        :attr:`RunOutcome.trace` carries the run's span tree (compile /
        optimize / execute phases), counters, and events.
        """
        source = (
            load_script(script_or_name)
            if script_or_name in SCRIPTS
            else script_or_name
        )
        tracer = self._run_tracer()
        with use_tracer(tracer):
            with tracer.span("session.run"):
                with tracer.span("compile"):
                    compiled = self.compile_script(source, args)
                optimizer_result = None
                if resource is None and optimize:
                    with tracer.span("optimize"):
                        optimizer_result = self.optimize_cached(
                            source, args, compiled
                        )
                    resource = optimizer_result.resource
                elif resource is None:
                    resource = ResourceConfig(
                        cp_heap_mb=512.0, mr_heap_mb=512.0
                    )
                with tracer.span("execute"):
                    result = self.execute(
                        compiled, resource, adapt=adapt, chaos=chaos
                    )
        return RunOutcome(
            result=result,
            resource=result.final_resource,
            optimizer_result=optimizer_result,
            compiled=compiled,
            trace=tracer if tracer.enabled else None,
        )

    def _run_tracer(self):
        """The tracer for one run(): the shared instance, a fresh one,
        or the null tracer, per the session's ``trace`` setting."""
        if isinstance(self.trace, Tracer):
            self.tracer = self.trace
        elif self.trace:
            self.tracer = Tracer()
        else:
            return NULL_TRACER
        return self.tracer

    # -- serving facade ----------------------------------------------------
    # (run_script()/run_registered(), deprecated since 1.1, were removed
    # in 1.4 — use run(script_or_name, args, ...).)

    def _ensure_server(self):
        if self._server is None:
            # local import: repro.serving imports SessionConfig and
            # OptimizerResultCache from this module
            if self.config.serving_shards > 1:
                from repro.serving.shard import ShardedElasticMLServer

                # sharded: worker processes rebuild their own caches
                # and collectors from the config, so the session's
                # in-process instances are not shared with them
                self._server = ShardedElasticMLServer(
                    shards=self.config.serving_shards,
                    cluster=self.cluster,
                    params=self.params,
                    hdfs=self.hdfs,
                    sample_cap=self.sample_cap,
                    config=self.config,
                    retry_policy=self.retry_policy,
                    trace=bool(self.trace),
                    model_params=self.model_params,
                )
            else:
                from repro.serving import ElasticMLServer

                self._server = ElasticMLServer(
                    cluster=self.cluster,
                    params=self.params,
                    hdfs=self.hdfs,
                    sample_cap=self.sample_cap,
                    config=self.config,
                    opt_cache=self.opt_cache,
                    retry_policy=self.retry_policy,
                    trace=bool(self.trace),
                    model_params=self.model_params,
                    collector=self.calibration,
                )
        return self._server

    def submit(self, submission):
        """Queue a :class:`repro.serving.Submission` on the session's
        embedded single-cluster server; returns a ticket for
        :meth:`poll`."""
        return self._ensure_server().submit(submission)

    def poll(self, ticket, timeout=None):
        """The :class:`repro.serving.SubmissionResult` for a ticket, or
        None while it is still queued/running."""
        return self._ensure_server().poll(ticket, timeout=timeout)

    def drain(self):
        """Block until every queued submission finishes; returns all
        results in submission order."""
        return self._ensure_server().drain()

    def shutdown(self):
        """Stop the embedded server (if one was ever started)."""
        if self._server is not None:
            self._server.shutdown()
            self._server = None

    # -- analysis helpers --------------------------------------------------

    def estimate_cost(self, compiled, resource):
        """What-if cost of a program under a configuration (seconds).

        Recompiles plans for ``resource``, costs them, and restores the
        program's previous plans before returning, so the call has no
        observable side effect on ``compiled`` (hop-level operator
        annotations are re-derived by the next plan generation).
        """
        from repro.compiler.pipeline import compile_plans

        snapshot = capture_plans(compiled)
        try:
            compile_plans(compiled, resource)
            return CostModel(
                self.cluster, self.model_params
            ).estimate_program(compiled, resource)
        finally:
            restore_plans(compiled, snapshot)

    # -- calibration -------------------------------------------------------

    def fit_calibration(self, min_samples=None, apply=False):
        """Fit a :class:`~repro.cost.calibrate.CalibrationProfile` from
        the samples this session's executions collected.

        Requires ``config.calibrate=True``.  The fit starts from the
        current belief (``model_params``), so components below the
        sample floor keep their present constants.  With ``apply`` the
        fitted profile immediately becomes the session's belief for
        subsequent optimizations.
        """
        if self.calibration is None:
            raise RuntimeError(
                "session does not collect calibration samples; construct "
                "it with SessionConfig(calibrate=True)"
            )
        floor = (
            min_samples if min_samples is not None
            else self.config.calibration_min_samples
        )
        if isinstance(self.tracer, Tracer):
            with use_tracer(self.tracer):
                profile = fit_profile(
                    self.calibration, self.cluster,
                    base_params=self.model_params, min_samples=floor,
                )
        else:
            profile = fit_profile(
                self.calibration, self.cluster,
                base_params=self.model_params, min_samples=floor,
            )
        if apply:
            self.apply_calibration(profile)
        return profile

    def apply_calibration(self, profile):
        """Adopt ``profile`` (a CalibrationProfile or a path to one) as
        this session's cost-model belief; returns the resolved profile."""
        profile = resolve_profile(profile, self.cluster)
        self.calibration_profile = profile
        self.model_params = profile.parameters()
        return profile
