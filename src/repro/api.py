"""High-level public API.

:class:`ElasticMLSession` ties the pieces together the way SystemML's
YARN client does (paper Figure 2(b)): it owns a simulated cluster and
HDFS, compiles DML scripts against the HDFS input metadata, runs the
resource optimizer to decide the initial CP/MR configuration, and
executes programs with optional runtime resource adaptation.

Typical use::

    from repro import ElasticMLSession
    from repro.workloads import prepare_inputs, scenario

    session = ElasticMLSession()
    args = prepare_inputs(session.hdfs, "LinregCG", scenario("M"))
    outcome = session.run_registered("LinregCG", args)
    print(outcome.resource.describe(), outcome.result.total_time)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import ResourceConfig, paper_cluster
from repro.compiler.pipeline import CompiledProgram, compile_program
from repro.cost import CostModel
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.optimizer import ResourceAdapter, ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS
from repro.runtime.matrix import DEFAULT_SAMPLE_CAP
from repro.scripts import load_script


@dataclass
class RunOutcome:
    """Everything produced by one end-to-end run."""

    result: object = None  # ExecutionResult
    resource: ResourceConfig = None
    optimizer_result: object = None  # OptimizerResult or None
    compiled: CompiledProgram = None

    @property
    def total_time(self):
        return self.result.total_time

    @property
    def prints(self):
        return self.result.prints


@dataclass
class ElasticMLSession:
    """A client session against one simulated cluster."""

    cluster: object = field(default_factory=paper_cluster)
    params: object = field(default_factory=lambda: DEFAULT_PARAMETERS)
    hdfs: SimulatedHDFS = None
    sample_cap: int = DEFAULT_SAMPLE_CAP
    seed: int = 0
    # optimizer defaults (Section 5.1: Hybrid, m = 15)
    grid_cp: str = "hybrid"
    grid_mr: str = "hybrid"
    grid_m: int = 15

    def __post_init__(self):
        if self.hdfs is None:
            self.hdfs = SimulatedHDFS(sample_cap=self.sample_cap)

    # -- compilation -----------------------------------------------------

    def compile_script(self, source, args, resource=None):
        """Compile DML source against the session's HDFS metadata."""
        return compile_program(source, args, self.hdfs.input_meta(), resource)

    def compile_registered(self, name, args, resource=None):
        """Compile one of the bundled scripts (LinregDS, ..., GLM)."""
        return self.compile_script(load_script(name), args, resource)

    # -- optimization ----------------------------------------------------

    def make_optimizer(self, **kwargs):
        options = {
            "grid_cp": self.grid_cp,
            "grid_mr": self.grid_mr,
            "m": self.grid_m,
        }
        options.update(kwargs)
        return ResourceOptimizer(self.cluster, self.params, **options)

    def optimize(self, compiled, **kwargs):
        """Run initial resource optimization on a compiled program."""
        return self.make_optimizer(**kwargs).optimize(compiled)

    # -- execution ---------------------------------------------------------

    def execute(self, compiled, resource, adapt=True):
        """Execute under an explicit configuration."""
        adapter = (
            ResourceAdapter(self.make_optimizer()) if adapt else None
        )
        interpreter = Interpreter(
            self.cluster,
            params=self.params,
            hdfs=self.hdfs,
            sample_cap=self.sample_cap,
            adapter=adapter,
            seed=self.seed,
        )
        return interpreter.run(compiled, resource)

    def run_script(self, source, args, resource=None, adapt=True):
        """Compile, optimize (unless ``resource`` given), and execute."""
        compiled = self.compile_script(source, args)
        optimizer_result = None
        if resource is None:
            optimizer_result = self.optimize(compiled)
            resource = optimizer_result.resource
        result = self.execute(compiled, resource, adapt=adapt)
        return RunOutcome(
            result=result,
            resource=result.final_resource,
            optimizer_result=optimizer_result,
            compiled=compiled,
        )

    def run_registered(self, name, args, resource=None, adapt=True):
        """Like :meth:`run_script` for a bundled script name."""
        return self.run_script(load_script(name), args, resource, adapt)

    # -- analysis helpers --------------------------------------------------

    def estimate_cost(self, compiled, resource):
        """What-if cost of a program under a configuration (seconds)."""
        from repro.compiler.pipeline import compile_plans

        compile_plans(compiled, resource)
        return CostModel(self.cluster, self.params).estimate_program(
            compiled, resource
        )
