"""Deterministic fault injection (``repro.chaos``).

The paper's runtime adaptation story (Section 4) assumes containers can
disappear at any time: YARN preempts them under memory pressure, node
managers fail, the RM denies allocations on a busy cluster.  This
package injects exactly those degraded-cluster conditions into the
simulated stack — seeded and reproducible — so the recovery logic in the
runtime (per-job retry with exponential backoff, re-execution at reduced
parallelism, allocation-denial fallback, migration rollback) can be
exercised and asserted on.

Entry points:

* :class:`FaultPlan` — *what* fails: per-kind probabilistic rates
  (``FaultPlan.from_rate``) and/or exactly scripted faults
  (``FaultPlan.from_faults``), all derived from one seed;
* :class:`FaultInjector` — *when* it fails: one per run, consulted at
  the instrumented sites (RM allocation, MR job execution, HDFS reads,
  AM migration), with full accounting of every delivered fault;
* :class:`RetryPolicy` — bounded exponential backoff shared by every
  recovery loop;
* :class:`ChaosReport` — the per-run summary surfaced on
  :class:`~repro.runtime.interpreter.ExecutionResult` and
  :class:`~repro.api.RunOutcome`.

Determinism guarantee: a fault decision depends only on ``(plan seed,
fault kind, per-kind visit index)`` — never on wall clock, hashing salt,
or the interpreter's own RNG — so the same program under the same plan
sees the same faults, and a fault-free run is numerically identical to a
faulted run that recovered.
"""

from repro.chaos.faults import (
    ChaosReport,
    FaultInjector,
    FaultKind,
    FaultPayload,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
)

__all__ = [
    "ChaosReport",
    "FaultInjector",
    "FaultKind",
    "FaultPayload",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
]
