"""Fault kinds, plans, and the seeded injector.

The injector is consulted at fixed *sites* in the stack:

========================  =====================================================
site                      fault kinds drawn there
========================  =====================================================
``am_alloc``              ALLOCATION_TRANSIENT (retry w/ backoff),
                          ALLOCATION_DENIED (fallback to a smaller config)
``mr_job:<block>``        NODE_LOSS (permanent capacity loss + retry),
                          CONTAINER_KILL (wasted work + retry at reduced
                          parallelism)
``hdfs:<path>``           HDFS_SLOW_READ (stall, then transient failure;
                          retried by the interpreter)
``am_migration``          MIGRATION_FAILURE (rollback: stay in the old
                          container, charge the failed attempt)
``rm``                    ALLOCATION_TRANSIENT / ALLOCATION_DENIED on
                          :meth:`repro.cluster.yarn.ResourceManager.try_allocate`
========================  =====================================================

Each ``fire(kind, site)`` call advances a per-kind visit counter; the
decision for visit *i* of kind *k* under seed *s* is drawn from
``random.Random(f"{s}:{k}:{i}")`` — Python seeds string inputs through a
stable hash, so decisions are reproducible across processes and
independent of call interleaving between kinds.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.obs import get_tracer


class FaultKind(enum.Enum):
    """The failure modes of the simulated YARN/MR/HDFS substrate."""

    #: a running MR task container is preempted/killed mid-job
    CONTAINER_KILL = "container_kill"
    #: the RM denies the requested allocation outright (over-committed
    #: cluster); the caller must fall back to a smaller configuration
    ALLOCATION_DENIED = "allocation_denied"
    #: the RM momentarily lacks capacity; the same request succeeds
    #: after backing off
    ALLOCATION_TRANSIENT = "allocation_transient"
    #: a node manager disappears; its containers and capacity are lost
    #: for the remainder of the run
    NODE_LOSS = "node_loss"
    #: an HDFS read stalls and then fails (flaky DataNode); safe to retry
    HDFS_SLOW_READ = "hdfs_slow_read"
    #: the new AM container for a CP migration never comes up
    MIGRATION_FAILURE = "migration_failure"

    def __str__(self):
        return self.value


#: kinds enabled by ``FaultPlan.from_rate`` when none are named
ALL_FAULT_KINDS = tuple(FaultKind)


@dataclass(frozen=True)
class FaultPayload:
    """Kind-specific fault parameters.

    ``progress`` is the fraction of the victim's work completed (and
    therefore lost) when the fault struck; ``delay_s`` the stall time of
    a slow read before it fails.
    """

    progress: float = 0.5
    delay_s: float = 5.0


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: fire on the ``at``-th (0-based) visit of the
    kind's injection sites."""

    kind: FaultKind
    at: int = 0
    payload: FaultPayload = field(default_factory=FaultPayload)


@dataclass(frozen=True)
class InjectedFault:
    """A fault that was actually delivered."""

    kind: FaultKind
    site: str
    index: int
    payload: FaultPayload


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff, shared by every recovery loop.

    ``max_attempts`` is the per-site retry budget: a job/read/allocation
    may be retried at most this many times before the typed
    :class:`~repro.errors.RetryExhaustedError` /
    :class:`~repro.errors.AllocationDeniedError` surfaces.
    """

    max_attempts: int = 3
    backoff_base_s: float = 2.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = 60.0

    def backoff(self, attempt):
        """Backoff before retry ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ValueError("retry attempts are 1-based")
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )


class FaultPlan:
    """*What* fails: per-kind rates plus exactly scripted faults.

    A plan is immutable by convention and reusable across runs; all
    randomness derives from ``seed``, so two injectors built from the
    same plan deliver identical fault sequences.
    """

    def __init__(self, seed=0, rates=None, scripted=()):
        self.seed = int(seed)
        self.rates = {
            FaultKind(kind): float(rate)
            for kind, rate in (rates or {}).items()
        }
        #: kind -> {visit index -> payload}
        self._scripted = {}
        for spec in scripted:
            self._scripted.setdefault(spec.kind, {})[spec.at] = spec.payload

    @classmethod
    def from_rate(cls, seed, rate, kinds=None):
        """Probabilistic plan: every eligible site visit of the listed
        kinds (default: all) fails independently with ``rate``."""
        kinds = tuple(kinds) if kinds is not None else ALL_FAULT_KINDS
        return cls(seed=seed, rates={kind: rate for kind in kinds})

    @classmethod
    def from_faults(cls, *specs, seed=0):
        """Exactly scripted plan (deterministic regardless of seed)."""
        return cls(seed=seed, scripted=specs)

    @property
    def scripted_faults(self):
        """Number of scripted fault entries in the plan."""
        return sum(len(entries) for entries in self._scripted.values())

    def decide(self, kind, index):
        """The payload to inject at visit ``index`` of ``kind``, or
        ``None``.  Pure function of (seed, kind, index)."""
        scheduled = self._scripted.get(kind)
        if scheduled is not None and index in scheduled:
            return scheduled[index]
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return None
        rng = random.Random(f"{self.seed}:{kind.value}:{index}")
        if rng.random() >= rate:
            return None
        return self._draw_payload(kind, rng)

    @staticmethod
    def _draw_payload(kind, rng):
        if kind in (FaultKind.CONTAINER_KILL, FaultKind.NODE_LOSS):
            return FaultPayload(progress=0.2 + 0.6 * rng.random())
        if kind is FaultKind.HDFS_SLOW_READ:
            return FaultPayload(delay_s=1.0 + 9.0 * rng.random())
        return FaultPayload()

    def __repr__(self):
        return (
            f"FaultPlan(seed={self.seed}, rates={len(self.rates)} kinds, "
            f"scripted={self.scripted_faults})"
        )


@dataclass(frozen=True)
class ChaosReport:
    """Per-run fault/recovery accounting (immutable snapshot)."""

    #: kind value -> faults delivered
    injected: dict
    total_injected: int
    faults: tuple
    retry_attempts: int
    retry_recovered: int
    retry_exhausted: int
    backoff_s: float
    #: simulated seconds of work lost to faults (partial jobs, stalled
    #: reads, failed migrations)
    wasted_s: float
    #: allocation-denial fallbacks to a smaller configuration
    fallbacks: int

    @property
    def node_losses(self):
        return self.injected.get(FaultKind.NODE_LOSS.value, 0)

    @property
    def migration_failures(self):
        return self.injected.get(FaultKind.MIGRATION_FAILURE.value, 0)


class FaultInjector:
    """*When* it fails: one injector per run, consulted at every site.

    Counts visits per kind, asks the plan whether to fire, and accounts
    for every delivered fault and every recovery decision — both on
    itself (for programmatic assertions) and on the active tracer
    (``chaos.*`` / ``retry.*`` counters plus per-fault events), so
    ``python -m repro trace`` shows the full story.
    """

    def __init__(self, plan, retry_policy=None):
        self.plan = plan
        self.retry_policy = retry_policy or RetryPolicy()
        self._visits = {}
        self.faults = []
        self.injected = {}
        self.retry_attempts = 0
        self.retry_recovered = 0
        self.retry_exhausted = 0
        self.backoff_s = 0.0
        self.wasted_s = 0.0
        self.fallbacks = 0

    # -- fault draws ---------------------------------------------------------

    def fire(self, kind, site=""):
        """Draw the next fault decision for ``kind`` at ``site``;
        returns the :class:`InjectedFault` (recorded) or ``None``."""
        index = self._visits.get(kind, 0)
        self._visits[kind] = index + 1
        payload = self.plan.decide(kind, index)
        if payload is None:
            return None
        fault = InjectedFault(kind=kind, site=site, index=index,
                              payload=payload)
        self.faults.append(fault)
        self.injected[kind] = self.injected.get(kind, 0) + 1
        tracer = get_tracer()
        tracer.incr("chaos.injected")
        tracer.incr(f"chaos.injected.{kind.value}")
        tracer.event("chaos.fault", kind=kind.value, site=site, index=index)
        return fault

    def fire_hdfs_read(self, path):
        """The HDFS read site (kept kind-agnostic for the hdfs module)."""
        return self.fire(FaultKind.HDFS_SLOW_READ, site=f"hdfs:{path}")

    def deny_allocation(self, site="rm"):
        """The RM allocation site: True when this allocation fails
        (transiently or permanently) — the RM reports both as "no
        container granted"."""
        return (
            self.fire(FaultKind.ALLOCATION_TRANSIENT, site=site) is not None
            or self.fire(FaultKind.ALLOCATION_DENIED, site=site) is not None
        )

    def visits(self, kind):
        """How many times the kind's sites were visited."""
        return self._visits.get(kind, 0)

    # -- recovery accounting -------------------------------------------------

    def record_attempt(self, site, kind):
        self.retry_attempts += 1
        get_tracer().incr("retry.attempts")

    def record_backoff(self, seconds):
        self.backoff_s += seconds
        get_tracer().incr("retry.backoff_s", seconds)

    def record_wasted(self, seconds):
        self.wasted_s += seconds
        get_tracer().incr("chaos.wasted_s", seconds)

    def record_recovery(self, site, kind, attempts, action="retried"):
        self.retry_recovered += 1
        tracer = get_tracer()
        tracer.incr("retry.recovered")
        tracer.event("chaos.recovery", site=site, kind=kind.value,
                     attempts=attempts, action=action)

    def record_exhausted(self, site, kind, attempts):
        self.retry_exhausted += 1
        tracer = get_tracer()
        tracer.incr("retry.exhausted")
        tracer.event("chaos.recovery", site=site, kind=kind.value,
                     attempts=attempts, action="gave_up")

    def record_fallback(self, site, old_resource, new_resource):
        self.fallbacks += 1
        tracer = get_tracer()
        tracer.incr("chaos.fallbacks")
        tracer.event(
            "chaos.recovery", site=site,
            kind=FaultKind.ALLOCATION_DENIED.value,
            action="fallback",
            old=old_resource.describe(), new=new_resource.describe(),
        )

    # -- reporting -----------------------------------------------------------

    @property
    def total_injected(self):
        return len(self.faults)

    def report(self):
        """Immutable snapshot for :class:`~repro.api.RunOutcome`."""
        return ChaosReport(
            injected={k.value: v for k, v in self.injected.items()},
            total_injected=self.total_injected,
            faults=tuple(self.faults),
            retry_attempts=self.retry_attempts,
            retry_recovered=self.retry_recovered,
            retry_exhausted=self.retry_exhausted,
            backoff_s=self.backoff_s,
            wasted_s=self.wasted_s,
            fallbacks=self.fallbacks,
        )
