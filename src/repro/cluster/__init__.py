"""Simulated cluster substrate: YARN resource management, MapReduce job
timing, HDFS, a Spark-like stateful executor model, and a discrete-event
multi-application simulator for throughput experiments.
"""

from repro.cluster.config import ClusterConfig, paper_cluster, small_cluster
from repro.cluster.load import ClusterLoad, mr_slowdown
from repro.cluster.mesos import OfferBasedAllocator, OfferStream, ResourceOffer
from repro.cluster.resources import GrantedResource, ResourceConfig
from repro.cluster.yarn import Container, NodeManager, ResourceManager

__all__ = [
    "ClusterConfig",
    "GrantedResource",
    "ResourceConfig",
    "Container",
    "NodeManager",
    "ResourceManager",
    "paper_cluster",
    "small_cluster",
    "ClusterLoad",
    "mr_slowdown",
    "OfferBasedAllocator",
    "OfferStream",
    "ResourceOffer",
]
