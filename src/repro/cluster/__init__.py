"""Simulated cluster substrate: YARN resource management, MapReduce job
timing, HDFS, a Spark-like stateful executor model, and a discrete-event
multi-application simulator for throughput experiments.
"""

from repro.cluster.config import ClusterConfig, paper_cluster, small_cluster
from repro.cluster.load import ClusterLoad, mr_slowdown
from repro.cluster.mesos import OfferBasedAllocator, OfferStream, ResourceOffer
from repro.cluster.resources import ResourceConfig

__all__ = [
    "ClusterConfig",
    "ResourceConfig",
    "paper_cluster",
    "small_cluster",
    "ClusterLoad",
    "mr_slowdown",
    "OfferBasedAllocator",
    "OfferStream",
    "ResourceOffer",
]
