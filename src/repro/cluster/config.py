"""Static cluster configuration of the simulated YARN cluster.

Models the structural facts the resource optimizer obtains from the
Resource Manager in step 1 of the paper's architecture (Figure 3):
node count and sizes, min/max container allocation constraints, HDFS
block size, and the YARN convention that a container request is 1.5x the
JVM max heap (paper Section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.common import MB
from repro.errors import ClusterError

#: container request = CONTAINER_OVERHEAD_FACTOR x max heap (paper 5.1)
CONTAINER_OVERHEAD_FACTOR = 1.5
#: fraction of the max heap available as operation memory budget
#: (paper 5.1: "a memory budget of 70% of the max heap size")
BUDGET_FRACTION = 0.70


@dataclass
class ClusterConfig:
    """A homogeneous set of worker nodes managed by YARN."""

    num_nodes: int = 6
    node_memory_mb: int = 81920  # NM resource (80 GB)
    node_vcores: int = 24  # 2 x 6 cores x 2 (hyper-threading)
    node_physical_cores: int = 12
    node_disks: int = 12
    min_allocation_mb: int = 512
    max_allocation_mb: int = 81920
    hdfs_block_size_mb: int = 128
    num_reducers: int = 12  # SystemML default: 2 x number of nodes

    def __post_init__(self):
        if self.min_allocation_mb <= 0:
            raise ClusterError("min_allocation_mb must be positive")
        if self.max_allocation_mb < self.min_allocation_mb:
            raise ClusterError("max_allocation_mb below min_allocation_mb")
        if self.num_nodes <= 0:
            raise ClusterError("cluster needs at least one node")

    # -- capacity ----------------------------------------------------------

    @property
    def total_memory_mb(self):
        return self.num_nodes * self.node_memory_mb

    @property
    def total_vcores(self):
        return self.num_nodes * self.node_vcores

    @property
    def total_physical_cores(self):
        return self.num_nodes * self.node_physical_cores

    @property
    def hdfs_block_size_bytes(self):
        return self.hdfs_block_size_mb * MB

    # -- heap / container conversions -------------------------------------

    def container_mb_for_heap(self, heap_mb):
        """Container request for a given max heap (1.5x rule), clamped to
        the cluster's min allocation and rounded up to whole MB."""
        return max(
            self.min_allocation_mb,
            int(math.ceil(heap_mb * CONTAINER_OVERHEAD_FACTOR)),
        )

    def heap_mb_for_container(self, container_mb):
        return container_mb / CONTAINER_OVERHEAD_FACTOR

    @property
    def min_heap_mb(self):
        """Smallest useful heap: the one fitting a min-size container."""
        return float(self.min_allocation_mb)

    @property
    def max_heap_mb(self):
        """Largest heap whose container request the RM accepts."""
        return self.max_allocation_mb / CONTAINER_OVERHEAD_FACTOR

    def validate_heap_request(self, heap_mb):
        container = self.container_mb_for_heap(heap_mb)
        if container > self.max_allocation_mb:
            raise ClusterError(
                f"container request {container} MB exceeds max allocation "
                f"{self.max_allocation_mb} MB"
            )
        return container

    # -- task parallelism ----------------------------------------------------

    def max_parallel_containers(self, container_mb, reserved_mb=0):
        """Cluster-wide number of containers of the given size that fit,
        bounded by vcores (one task per vcore)."""
        per_node_mem = max(self.node_memory_mb - reserved_mb / self.num_nodes, 0)
        by_memory = self.num_nodes * int(per_node_mem // max(container_mb, 1))
        return max(0, min(by_memory, self.total_vcores))

    def map_task_parallelism(self, mr_heap_mb, reserved_mb=0):
        """Concurrent map tasks for a given task heap size."""
        container = self.container_mb_for_heap(mr_heap_mb)
        return self.max_parallel_containers(container, reserved_mb)

    # -- sharding ------------------------------------------------------------

    def partition(self, shards):
        """Split the cluster into ``shards`` node-disjoint sub-clusters.

        Nodes are dealt out as evenly as possible (the first
        ``num_nodes % shards`` partitions get one extra node); every
        partition keeps the node size and the min/max allocation
        constraints, so a container that can never be placed on the full
        cluster can never be placed on any partition either — the
        admission verdicts of a sharded server match the unsharded one.
        Reducer counts scale proportionally (at least one).
        """
        if shards <= 0:
            raise ClusterError("shards must be positive")
        if shards > self.num_nodes:
            raise ClusterError(
                f"cannot partition {self.num_nodes} nodes into "
                f"{shards} shards"
            )
        base, extra = divmod(self.num_nodes, shards)
        parts = []
        for index in range(shards):
            nodes = base + (1 if index < extra else 0)
            parts.append(replace(
                self,
                num_nodes=nodes,
                num_reducers=max(
                    1, round(self.num_reducers * nodes / self.num_nodes)
                ),
            ))
        return parts


def paper_cluster():
    """The 1+6 node cluster of the paper's experimental setting
    (Section 5.1): 80 GB NMs, 512 MB/80 GB min/max allocation, 128 MB
    HDFS blocks, 12 reducers."""
    return ClusterConfig()


def small_cluster(num_nodes=2, node_memory_mb=8192, node_vcores=4):
    """A laptop-scale cluster configuration useful in tests/examples."""
    return ClusterConfig(
        num_nodes=num_nodes,
        node_memory_mb=node_memory_mb,
        node_vcores=node_vcores,
        node_physical_cores=max(1, node_vcores // 2),
        node_disks=2,
        min_allocation_mb=256,
        max_allocation_mb=node_memory_mb,
        num_reducers=2 * num_nodes,
    )
