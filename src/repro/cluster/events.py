"""Discrete-event multi-application throughput simulator (Section 5.3).

Reproduces the paper's throughput methodology: a multi-threaded driver
spawns |U| users, each running ``apps_per_user`` applications back to
back.  Each application requests an AM container (1.5x its CP heap) from
the YARN RM; applications queue FIFO when the cluster lacks capacity.
Throughput is total applications divided by total driver time.

The per-application duration is supplied by the caller (typically the
measured single-application execution time from the runtime simulator);
an optional ``contention`` function can model slowdown under
concurrency (e.g. IO-bandwidth saturation at the head node, which the
paper observes as sub-linear speedup).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.cluster.yarn import ResourceManager


@dataclass
class ThroughputOutcome:
    total_apps: int
    makespan_seconds: float
    max_concurrency: int

    @property
    def apps_per_minute(self):
        if self.makespan_seconds <= 0:
            return 0.0
        return self.total_apps * 60.0 / self.makespan_seconds


def simulate_throughput(cluster, num_users, apps_per_user, app_duration,
                        container_mb, contention=None,
                        containers_per_app=1):
    """Event-driven simulation of the multi-user driver.

    ``app_duration`` is the base execution time of one application;
    ``container_mb`` the AM container request per application;
    ``contention(concurrency)`` optionally returns a slowdown factor
    (>= 1) applied at application start; ``containers_per_app`` models
    applications with standing worker containers (e.g. Spark executors)
    allocated all-or-nothing.
    """
    rm = ResourceManager(cluster)
    sequence = itertools.count()
    events = []  # (time, seq, kind, payload)
    waiting = []  # FIFO queue of user ids whose next app awaits capacity
    remaining = {u: apps_per_user for u in range(num_users)}
    running = {}  # user -> container
    clock = 0.0
    completed = 0
    concurrency = 0
    max_concurrency = 0

    def allocate_app():
        granted = []
        for _ in range(containers_per_app):
            container = rm.try_allocate(container_mb)
            if container is None:
                for c in granted:
                    rm.release(c)
                return None
            granted.append(container)
        return granted

    def try_start(user, now):
        nonlocal concurrency, max_concurrency
        containers = allocate_app()
        if containers is None:
            waiting.append(user)
            return False
        running[user] = containers
        concurrency += 1
        max_concurrency = max(max_concurrency, concurrency)
        factor = contention(concurrency) if contention is not None else 1.0
        heapq.heappush(
            events, (now + app_duration * max(factor, 1.0), next(sequence),
                     "finish", user)
        )
        return True

    for user in range(num_users):
        try_start(user, 0.0)

    while events:
        clock, _, kind, user = heapq.heappop(events)
        if kind != "finish":
            continue
        concurrency -= 1
        for container in running.pop(user):
            rm.release(container)
        completed += 1
        remaining[user] -= 1
        # the finished user's next app joins the queue
        if remaining[user] > 0:
            waiting.append(user)
        # admit queued users while capacity lasts
        admitted = []
        for queued in list(waiting):
            containers = allocate_app()
            if containers is None:
                break
            waiting.remove(queued)
            running[queued] = containers
            concurrency += 1
            max_concurrency = max(max_concurrency, concurrency)
            factor = contention(concurrency) if contention is not None else 1.0
            heapq.heappush(
                events,
                (clock + app_duration * max(factor, 1.0), next(sequence),
                 "finish", queued),
            )
            admitted.append(queued)

    return ThroughputOutcome(
        total_apps=num_users * apps_per_user,
        makespan_seconds=clock,
        max_concurrency=max_concurrency,
    )


def simulate_mixed_throughput(cluster, user_specs, apps_per_user=8,
                              contention=None):
    """Heterogeneous multi-tenancy: each user runs its own application
    type, with its own duration and container request — the "variety of
    ML programs" setting that makes static cluster configurations a
    compromise (paper Section 1).

    ``user_specs`` is a list of (app_duration, container_mb) tuples, one
    per user.  Returns a :class:`ThroughputOutcome`.
    """
    rm = ResourceManager(cluster)
    sequence = itertools.count()
    events = []
    waiting = []
    remaining = {u: apps_per_user for u in range(len(user_specs))}
    running = {}
    clock = 0.0
    concurrency = 0
    max_concurrency = 0

    def try_start(user, now):
        nonlocal concurrency, max_concurrency
        duration, container_mb = user_specs[user]
        container = rm.try_allocate(container_mb)
        if container is None:
            waiting.append(user)
            return False
        running[user] = [container]
        concurrency += 1
        max_concurrency = max(max_concurrency, concurrency)
        factor = contention(concurrency) if contention is not None else 1.0
        heapq.heappush(
            events,
            (now + duration * max(factor, 1.0), next(sequence), "finish",
             user),
        )
        return True

    for user in range(len(user_specs)):
        try_start(user, 0.0)

    while events:
        clock, _, kind, user = heapq.heappop(events)
        concurrency -= 1
        for container in running.pop(user):
            rm.release(container)
        remaining[user] -= 1
        if remaining[user] > 0:
            waiting.append(user)
        for queued in list(waiting):
            duration, container_mb = user_specs[queued]
            container = rm.try_allocate(container_mb)
            if container is None:
                continue  # other queued users may still fit
            waiting.remove(queued)
            running[queued] = [container]
            concurrency += 1
            max_concurrency = max(max_concurrency, concurrency)
            factor = (
                contention(concurrency) if contention is not None else 1.0
            )
            heapq.heappush(
                events,
                (clock + duration * max(factor, 1.0), next(sequence),
                 "finish", queued),
            )

    return ThroughputOutcome(
        total_apps=len(user_specs) * apps_per_user,
        makespan_seconds=clock,
        max_concurrency=max_concurrency,
    )


def io_saturation_contention(saturation_point=8, exponent=0.35):
    """A contention model for shared head-node IO: no slowdown up to
    ``saturation_point`` concurrent applications, then a gentle
    power-law slowdown (the paper reports suboptimal speedup 'due to IO
    bandwidth saturation')."""

    def factor(concurrency):
        if concurrency <= saturation_point:
            return 1.0
        return (concurrency / saturation_point) ** exponent

    return factor
