"""Cluster background-load model (paper Section 6, "Cluster-Utilization-
Based Adaptation").

Models time-varying background utilization of the shared cluster and
the resulting slowdown of distributed jobs: at utilization u, only a
(1 - u) fraction of the map/reduce slots is effectively available, so
MR phases stretch by ``1 / (1 - u)`` (capped).  CP execution inside the
application's own container is unaffected — which is exactly why a
fallback to single-node in-memory plans becomes attractive on a loaded
cluster.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

#: utilization is capped so slowdown stays finite
MAX_UTILIZATION = 0.9


def mr_slowdown(utilization):
    """Multiplicative slowdown of MR phases at a given utilization."""
    u = min(max(float(utilization), 0.0), MAX_UTILIZATION)
    return 1.0 / (1.0 - u)


@dataclass
class ClusterLoad:
    """Piecewise-constant background utilization over (virtual) time.

    ``schedule`` is a list of (start_time, utilization) steps, sorted by
    start time; utilization before the first step is ``baseline``.
    """

    schedule: list = field(default_factory=list)
    baseline: float = 0.0

    def __post_init__(self):
        self.schedule = sorted(self.schedule)
        self._times = [t for t, _ in self.schedule]

    def utilization(self, time):
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return self.baseline
        return self.schedule[idx][1]

    def slowdown(self, time):
        return mr_slowdown(self.utilization(time))

    @classmethod
    def constant(cls, utilization):
        return cls(schedule=[(0.0, utilization)], baseline=utilization)

    @classmethod
    def idle(cls):
        return cls()
