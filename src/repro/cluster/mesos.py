"""Offer-based resource allocation (paper Section 2.3, "Problem
Instantiations").

YARN lets the client *request* the optimal configuration R*_P directly;
Mesos-style frameworks instead receive resource *offers* and must decide
per offer whether to accept (launch the control program at the offered
size) or decline and keep waiting.  The paper notes this instantiation
"has additional optimization decisions in case of non-matching offers".

:class:`OfferBasedAllocator` implements those decisions on top of the
resource optimizer's CP cost profile: a container of size h can run any
enumerated configuration that fits h, so the *value* of an offer is the
best cost among grid points at or below the offered heap.  The
acceptance policy is a decaying reservation price — initially only
near-optimal offers are accepted; the tolerated regret grows linearly
with waiting time (waiting itself costs ``wait_cost_per_second``), which
guarantees acceptance once the tolerated regret covers the worst grid
point.

:class:`OfferStream` simulates the offers a framework sees on a shared
cluster: free memory fluctuates with background load, and each offer
exposes one node's currently free capacity.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClusterError

_offer_ids = itertools.count(1)


@dataclass(frozen=True)
class ResourceOffer:
    """One Mesos-style offer: free memory on one node at some time."""

    offer_id: int
    node_id: int
    memory_mb: float
    timestamp: float


class OfferDecision(enum.Enum):
    ACCEPT = "accept"
    DECLINE = "decline"


@dataclass
class AllocationOutcome:
    """Result of driving an allocator over an offer stream."""

    offer: ResourceOffer = None
    heap_mb: float = 0.0
    cost: float = float("inf")
    regret: float = float("inf")
    waited: float = 0.0
    declined: int = 0

    @property
    def accepted(self):
        return self.offer is not None


class OfferBasedAllocator:
    """Accept/decline decisions over the optimizer's CP cost profile."""

    def __init__(self, cp_profile, cluster, wait_cost_per_second=1.0,
                 start_time=0.0):
        """``cp_profile`` is the optimizer's list of
        (cp_heap_mb, program_cost) samples (OptimizerResult.cp_profile).
        """
        if not cp_profile:
            raise ClusterError("empty CP cost profile")
        self.profile = sorted(cp_profile)
        self.cluster = cluster
        self.wait_cost_per_second = wait_cost_per_second
        self.start_time = start_time
        finite = [c for _, c in self.profile if c != float("inf")]
        if not finite:
            raise ClusterError("cost profile has no feasible point")
        self.best_cost = min(finite)

    # -- offer valuation ---------------------------------------------------

    def cost_at(self, heap_mb):
        """Best achievable program cost within an offered heap, or None
        when even the smallest enumerated configuration does not fit."""
        candidates = [c for h, c in self.profile if h <= heap_mb]
        if not candidates:
            return None
        return min(candidates)

    def config_at(self, heap_mb):
        """The enumerated CP heap realizing :meth:`cost_at`."""
        candidates = [(c, h) for h, c in self.profile if h <= heap_mb]
        if not candidates:
            return None
        cost, heap = min(candidates)
        return heap

    def tolerated_regret(self, now):
        """The decaying reservation price: the longer we wait, the more
        cost regret we accept (waiting has already cost us)."""
        waited = max(0.0, now - self.start_time)
        return self.wait_cost_per_second * waited

    # -- decisions ---------------------------------------------------------

    def evaluate(self, offer):
        """Return (decision, cost, regret) for one offer."""
        heap = self.cluster.heap_mb_for_container(offer.memory_mb)
        cost = self.cost_at(heap)
        if cost is None:
            return OfferDecision.DECLINE, None, None
        regret = cost - self.best_cost
        if regret <= self.tolerated_regret(offer.timestamp):
            return OfferDecision.ACCEPT, cost, regret
        return OfferDecision.DECLINE, cost, regret

    def allocate(self, offers):
        """Drive the policy over an iterable of offers; returns the
        :class:`AllocationOutcome` of the first acceptance (or a
        non-accepted outcome if the stream ends first)."""
        outcome = AllocationOutcome()
        for offer in offers:
            decision, cost, regret = self.evaluate(offer)
            if decision is OfferDecision.ACCEPT:
                heap = self.cluster.heap_mb_for_container(offer.memory_mb)
                outcome.offer = offer
                outcome.heap_mb = self.config_at(heap)
                outcome.cost = cost
                outcome.regret = regret
                outcome.waited = offer.timestamp - self.start_time
                return outcome
            outcome.declined += 1
        return outcome


@dataclass
class OfferStream:
    """Deterministic simulated offer stream on a loaded cluster.

    Background load occupies a Beta-distributed fraction of each node's
    memory; one node's free capacity is offered every
    ``interarrival_seconds``.
    """

    cluster: object
    interarrival_seconds: float = 2.0
    load_mean: float = 0.6
    seed: int = 0
    max_offers: int = 1000

    def __iter__(self):
        rng = np.random.default_rng(self.seed)
        a = max(self.load_mean * 8, 0.2)
        b = max((1 - self.load_mean) * 8, 0.2)
        for i in range(self.max_offers):
            node = int(rng.integers(0, self.cluster.num_nodes))
            load = float(rng.beta(a, b))
            free = self.cluster.node_memory_mb * (1.0 - load)
            yield ResourceOffer(
                offer_id=next(_offer_ids),
                node_id=node,
                memory_mb=max(free, 0.0),
                timestamp=(i + 1) * self.interarrival_seconds,
            )
