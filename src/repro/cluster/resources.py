"""Resource configurations R_P = (r_c, r_1, ..., r_n).

A :class:`ResourceConfig` carries the control-program (CP) max heap and
the MR task max heap, optionally specialized per program block (the
paper's semi-independent per-block MR resources).  Heaps are expressed in
MB; operation memory *budgets* are 70% of the heap (paper Section 5.1),
and container *requests* are 1.5x the heap (see
:mod:`repro.cluster.config`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.config import BUDGET_FRACTION
from repro.common import MB


@dataclass
class ResourceConfig:
    """A candidate or final resource configuration for an ML program."""

    cp_heap_mb: float
    #: default MR task heap applied to blocks without a specific entry
    mr_heap_mb: float = 512.0
    #: per-program-block MR task heaps: block_id -> heap MB
    mr_heap_per_block: dict = field(default_factory=dict)

    # -- lookups -----------------------------------------------------------

    def mr_heap_for_block(self, block_id):
        return self.mr_heap_per_block.get(block_id, self.mr_heap_mb)

    @property
    def cp_budget_bytes(self):
        return self.cp_heap_mb * MB * BUDGET_FRACTION

    def mr_budget_bytes(self, block_id=None):
        heap = self.mr_heap_mb if block_id is None else self.mr_heap_for_block(block_id)
        return heap * MB * BUDGET_FRACTION

    def container_request_mb(self, cluster):
        """AM container request for this configuration's CP heap — the
        paper's 1.5x-heap rule, clamped to the cluster's min allocation.
        This is the quantity admission control reasons about: allocated
        AM containers bound how many tenants run concurrently
        (Section 5.3)."""
        return cluster.container_mb_for_heap(self.cp_heap_mb)

    @property
    def max_mr_heap_mb(self):
        """Largest MR heap across all blocks (reported in Table 2)."""
        if not self.mr_heap_per_block:
            return self.mr_heap_mb
        return max(self.mr_heap_mb, max(self.mr_heap_per_block.values()))

    # -- comparison / tie breaking -----------------------------------------

    def footprint(self):
        """Resource-usage key used to pick the *minimal* configuration
        among cost ties (Definition 1's time-weighted sum is approximated
        by total requested heap: CP first, then aggregate MR)."""
        mr_total = sum(self.mr_heap_per_block.values()) or self.mr_heap_mb
        return (self.cp_heap_mb + mr_total, self.cp_heap_mb, mr_total)

    def with_mr_for_blocks(self, block_ids, heap_mb=None):
        """Copy with per-block MR entries for the listed blocks."""
        per_block = dict(self.mr_heap_per_block)
        for block_id in block_ids:
            per_block[block_id] = heap_mb if heap_mb is not None else self.mr_heap_mb
        return ResourceConfig(self.cp_heap_mb, self.mr_heap_mb, per_block)

    def copy(self):
        return ResourceConfig(
            self.cp_heap_mb, self.mr_heap_mb, dict(self.mr_heap_per_block)
        )

    def describe(self):
        """Compact human-readable form, e.g. ``CP 8.0GB / MR 2.0GB``."""
        return (
            f"CP {self.cp_heap_mb / 1024:.1f}GB / "
            f"MR {self.max_mr_heap_mb / 1024:.1f}GB"
        )

    def __str__(self):
        return self.describe()


@dataclass
class GrantedResource(ResourceConfig):
    """A below-ideal grant issued by the elasticity Brain.

    Behaves as a regular :class:`ResourceConfig` (its heaps are the
    *granted* ones) but remembers the ``ideal`` configuration the run was
    optimized for and the grant ``fraction``.  The cost model and runtime
    detect a grant via the ``ideal`` attribute and charge the
    memory-elastic spill penalty for heaps below ideal — a time-only
    perturbation; plans are always compiled against the ideal config.
    """

    ideal: ResourceConfig | None = None
    fraction: float = 1.0

    @classmethod
    def of(cls, ideal, fraction, cluster=None):
        """Scale every heap of ``ideal`` by ``fraction`` (clamped to
        [0, 1]).  With a cluster, heaps are floored at the heap a
        min-allocation container carries — a grant's container request
        clamps up to the min allocation anyway, so shrinking the heap
        further would waste granted memory without freeing any."""
        fraction = min(1.0, max(0.0, float(fraction)))
        floor = (
            cluster.heap_mb_for_container(cluster.min_allocation_mb)
            if cluster is not None else 1.0
        )

        def scale(heap_mb):
            return max(floor, heap_mb * fraction)

        return cls(
            cp_heap_mb=scale(ideal.cp_heap_mb),
            mr_heap_mb=scale(ideal.mr_heap_mb),
            mr_heap_per_block={
                block_id: scale(heap)
                for block_id, heap in ideal.mr_heap_per_block.items()
            },
            ideal=ideal,
            fraction=fraction,
        )

    def describe(self):
        return (
            f"{super().describe()} "
            f"(grant {self.fraction:.0%} of {self.ideal.describe()})"
            if self.ideal is not None
            else super().describe()
        )
