"""Spark-like stateful executor model (paper Appendix D).

Models the runtime-level comparison of Table 5/6: SystemML's runtime
operators ported onto RDDs with *static* executor resources.  The two
hand-coded L2SVM plans of the paper are reproduced:

* **Plan 1 (Hybrid)** — only the operations over X are RDD operations
  (the three matrix-vector products of L2SVM lines 13/20/43); all vector
  operations run in the driver;
* **Plan 2 (Full)** — every matrix operation is an RDD operation,
  including the inner line-search vector ops, paying per-stage latency
  for each.

The decisive behaviours: (1) small data underutilizes the static
executors (driver-side CP would be faster); (2) the RDD cache creates a
sweet spot where data exceeds single-node memory but fits aggregate
executor memory; (3) beyond ~2x aggregate memory every pass re-scans
disk and the advantage disappears; (4) a single application pins the
whole cluster (over-provisioning), collapsing multi-user throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common import GB, MB


@dataclass
class SparkConfig:
    """Static Spark-on-YARN configuration of the paper (Appendix D)."""

    num_executors: int = 6
    executor_memory_mb: int = 55 * 1024
    executor_cores: int = 24
    driver_memory_mb: int = 20 * 1024
    #: fraction of executor memory usable for RDD caching
    storage_fraction: float = 0.6
    #: YARN memory overhead factor for executor containers
    overhead_factor: float = 1.10

    @property
    def cache_capacity_bytes(self):
        return (
            self.num_executors
            * self.executor_memory_mb
            * MB
            * self.storage_fraction
        )

    @property
    def total_cores(self):
        return self.num_executors * self.executor_cores

    def cluster_footprint_mb(self):
        """Total cluster memory one application occupies."""
        return (
            self.driver_memory_mb
            + self.num_executors
            * self.executor_memory_mb
            * self.overhead_factor
        )


@dataclass
class SparkCostParameters:
    """Performance constants of the Spark executor model."""

    app_startup: float = 15.0  # driver + executor container spin-up
    stage_latency: float = 0.7  # per-stage scheduling/task launch
    per_core_scan_bw: float = 100.0 * MB  # HDFS scan per active core
    aggregate_scan_bw_cap: float = 1.0 * GB  # disk subsystem ceiling
    cache_bw_per_executor: float = 2.0 * GB  # in-memory partition scan
    core_flops: float = 1.5e9
    partition_bytes: float = 128.0 * MB


@dataclass
class SparkRunResult:
    total_time: float
    cached: bool
    stages: int
    breakdown: dict = field(default_factory=dict)


class SparkRuntime:
    """Analytical executor-model runtime for the L2SVM comparison."""

    def __init__(self, config=None, params=None):
        self.config = config or SparkConfig()
        self.params = params or SparkCostParameters()

    # -- building blocks ---------------------------------------------------

    def _scan_from_disk(self, data_bytes, active_cores):
        params = self.params
        bw = min(
            active_cores * params.per_core_scan_bw,
            params.aggregate_scan_bw_cap,
        )
        return data_bytes / bw

    def _scan_from_cache(self, data_bytes):
        bw = self.config.num_executors * self.params.cache_bw_per_executor
        return data_bytes / bw

    def _mv_compute(self, nnz, active_cores):
        return 2.0 * nnz / (self.params.core_flops * active_cores)

    # -- the L2SVM plans ---------------------------------------------------

    def run_l2svm(self, scn, plan="hybrid", outer_iterations=5,
                  inner_iterations=3):
        """Execute the L2SVM plan model on a data scenario.

        ``plan`` is "hybrid" (Plan 1) or "full" (Plan 2).
        """
        if plan not in ("hybrid", "full"):
            raise ValueError(f"unknown Spark plan {plan!r}")
        params = self.params
        config = self.config
        data_bytes = scn.cells * 8 * (scn.sparsity if scn.is_sparse else 1.0)
        if scn.is_sparse:
            data_bytes *= 2.0  # (row, col, value) triples
        nnz = scn.cells * scn.sparsity

        partitions = max(1, int(math.ceil(data_bytes / params.partition_bytes)))
        active_cores = min(partitions, config.total_cores)
        cached = data_bytes <= config.cache_capacity_bytes

        breakdown = {"startup": params.app_startup}
        total = params.app_startup

        # initial scan: g_old = t(X) %*% Y (line 13) reads X from HDFS and
        # populates the cache when it fits
        initial_scan = self._scan_from_disk(data_bytes, active_cores)
        total += initial_scan + self._mv_compute(nnz, active_cores)
        breakdown["initial_scan"] = initial_scan
        stages = 1

        # per outer iteration: two passes over X (lines 20 and 43)
        if cached:
            pass_time = self._scan_from_cache(data_bytes)
        else:
            pass_time = self._scan_from_disk(data_bytes, active_cores)
        x_stages_per_iter = 2
        per_iter = x_stages_per_iter * (
            pass_time
            + self._mv_compute(nnz, active_cores)
            + params.stage_latency
        )

        if plan == "full":
            # every vector operation is an RDD stage: ~10 stages of
            # outer-loop vector arithmetic plus ~5 per line-search step
            vector_stages = 10 + 5 * inner_iterations
            # vector RDDs are small: latency dominated
            per_iter += vector_stages * params.stage_latency
            stages += outer_iterations * (x_stages_per_iter + vector_stages)
        else:
            stages += outer_iterations * x_stages_per_iter

        total += outer_iterations * per_iter
        breakdown["iterations"] = outer_iterations * per_iter
        return SparkRunResult(
            total_time=total, cached=cached, stages=stages,
            breakdown=breakdown,
        )
