"""Simulated YARN resource management: container accounting.

Models the Resource Manager / Node Manager split of the paper's Figure
2(b) at the level relevant for resource elasticity: request-based
container allocation with per-node capacity, min/max allocation
constraints, and first-fit placement.  The throughput experiments
(Section 5.3) are driven by this accounting — the allocated resources
per application directly bound the number of parallel applications.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.errors import ClusterError
from repro.obs import get_tracer

_container_ids = itertools.count(1)


@dataclass
class Container:
    """One granted resource container."""

    container_id: int
    node_id: int
    memory_mb: int
    #: owning tenant (None for single-application accounting)
    tenant: str | None = None


@dataclass
class NodeManager:
    """Per-node resource tracking."""

    node_id: int
    capacity_mb: int
    used_mb: int = 0
    containers: dict = field(default_factory=dict)
    #: a lost node manager (chaos NODE_LOSS) accepts no allocations and
    #: contributes no capacity until restored
    lost: bool = False

    @property
    def available_mb(self):
        if self.lost:
            return 0
        return self.capacity_mb - self.used_mb

    def can_allocate(self, memory_mb):
        return not self.lost and memory_mb <= self.available_mb

    def fail(self):
        """Node-manager loss: every container on the node dies and its
        capacity leaves the cluster.  Returns the lost containers."""
        lost_containers = list(self.containers.values())
        self.containers.clear()
        self.used_mb = 0
        self.lost = True
        return lost_containers

    def restore(self):
        """The node manager rejoins the cluster (empty)."""
        self.lost = False

    def allocate(self, memory_mb, tenant=None):
        if not self.can_allocate(memory_mb):
            raise ClusterError(
                f"node {self.node_id} cannot allocate {memory_mb} MB "
                f"({self.available_mb} MB free)"
            )
        container = Container(
            next(_container_ids), self.node_id, memory_mb, tenant=tenant
        )
        self.used_mb += memory_mb
        self.containers[container.container_id] = container
        return container

    def release(self, container):
        if container.container_id not in self.containers:
            raise ClusterError(
                f"container {container.container_id} not on node {self.node_id}"
            )
        del self.containers[container.container_id]
        self.used_mb -= container.memory_mb


class ResourceManager:
    """Cluster-wide container allocation with min/max constraints.

    An optional :class:`~repro.chaos.FaultInjector` makes the RM deny
    allocations (transiently or permanently) and lose node managers on a
    seeded schedule — the degraded-cluster conditions of chaos tests and
    throughput simulations.
    """

    def __init__(self, cluster, injector=None):
        self.cluster = cluster
        self.injector = injector
        self.nodes = [
            NodeManager(node_id=i, capacity_mb=cluster.node_memory_mb)
            for i in range(cluster.num_nodes)
        ]
        #: tenant -> (used_mb, containers) for multi-tenant serving
        self._tenant_used_mb = {}
        self._tenant_containers = {}
        #: tenant -> hard memory quota in MB (absent = unlimited)
        self._tenant_quota_mb = {}

    @property
    def available_mb(self):
        return sum(node.available_mb for node in self.nodes)

    @property
    def utilization(self):
        """Fraction of total cluster memory currently allocated — the
        load signal the elasticity Brain polls."""
        total = self.cluster.total_memory_mb
        if total <= 0:
            return 0.0
        return self.used_mb / total

    @property
    def used_mb(self):
        return sum(node.used_mb for node in self.nodes)

    @property
    def live_nodes(self):
        return sum(1 for node in self.nodes if not node.lost)

    def normalize_request(self, memory_mb):
        """Round a request up to whole MB and clamp it to the min
        constraint; reject non-positive, non-finite, or above-max
        requests."""
        mb = float(memory_mb)
        if not math.isfinite(mb) or mb <= 0:
            raise ClusterError(
                f"invalid container request: {memory_mb!r} MB"
            )
        request = max(int(math.ceil(mb)), self.cluster.min_allocation_mb)
        if request > self.cluster.max_allocation_mb:
            raise ClusterError(
                f"container request {request} MB exceeds the maximum "
                f"allocation {self.cluster.max_allocation_mb} MB"
            )
        return request

    def can_fit(self, memory_mb, tenant=None):
        """Whether some node could grant the request right now (and,
        when ``tenant`` is quota-bound, whether the quota allows it)."""
        request = self.normalize_request(memory_mb)
        if not self.quota_allows(tenant, request):
            return False
        return any(node.can_allocate(request) for node in self.nodes)

    def try_allocate(self, memory_mb, tenant=None):
        """First-fit allocation; returns a Container or None if the
        cluster currently lacks capacity (or the fault injector denies
        the request, or the tenant's quota is exhausted).  ``tenant``
        attributes the grant in the per-tenant ledger (serving-layer
        accounting)."""
        request = self.normalize_request(memory_mb)
        tracer = get_tracer()
        if self.injector is not None and self.injector.deny_allocation("rm"):
            tracer.incr("yarn.allocation_failures")
            return None
        if not self.quota_allows(tenant, request):
            tracer.incr("yarn.quota_denials")
            return None
        for node in self.nodes:
            if node.can_allocate(request):
                container = node.allocate(request, tenant=tenant)
                self._ledger_add(container)
                if tracer.enabled:
                    tracer.incr("yarn.allocations")
                    tracer.incr("yarn.allocated_mb", request)
                    tracer.gauge("yarn.used_mb", self.used_mb)
                return container
        tracer.incr("yarn.allocation_failures")
        return None

    def release(self, container):
        self.nodes[container.node_id].release(container)
        self._ledger_drop(container)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("yarn.releases")
            tracer.gauge("yarn.used_mb", self.used_mb)

    # -- per-tenant accounting ---------------------------------------------

    def _ledger_add(self, container):
        if container.tenant is None:
            return
        tenant = container.tenant
        self._tenant_used_mb[tenant] = (
            self._tenant_used_mb.get(tenant, 0) + container.memory_mb
        )
        self._tenant_containers.setdefault(tenant, set()).add(
            container.container_id
        )

    def _ledger_drop(self, container):
        if container.tenant is None:
            return
        tenant = container.tenant
        remaining = self._tenant_used_mb.get(tenant, 0) - container.memory_mb
        ids = self._tenant_containers.get(tenant, set())
        ids.discard(container.container_id)
        if remaining <= 0 and not ids:
            self._tenant_used_mb.pop(tenant, None)
            self._tenant_containers.pop(tenant, None)
        else:
            self._tenant_used_mb[tenant] = remaining

    def usage_by_tenant(self):
        """tenant -> currently allocated MB (tenant-attributed grants)."""
        return dict(self._tenant_used_mb)

    def tenant_containers(self, tenant):
        """Live container count held by one tenant."""
        return len(self._tenant_containers.get(tenant, ()))

    def tenant_share(self, tenant):
        """Fraction of total cluster memory a tenant currently holds."""
        total = self.cluster.total_memory_mb
        if total <= 0:
            return 0.0
        return self._tenant_used_mb.get(tenant, 0) / total

    # -- per-tenant quotas ---------------------------------------------------

    def set_tenant_quota(self, tenant, quota_mb):
        """Cap a tenant's aggregate allocations at ``quota_mb`` (None
        removes the cap)."""
        if quota_mb is None:
            self._tenant_quota_mb.pop(tenant, None)
            return
        quota = int(quota_mb)
        if quota <= 0:
            raise ClusterError(
                f"invalid tenant quota: {quota_mb!r} MB for {tenant!r}"
            )
        self._tenant_quota_mb[tenant] = quota

    def tenant_quota_mb(self, tenant):
        """The tenant's quota in MB, or None when unbounded."""
        return self._tenant_quota_mb.get(tenant)

    def tenant_quota_free_mb(self, tenant):
        """Quota headroom in MB, or None when the tenant is unbounded."""
        quota = self._tenant_quota_mb.get(tenant)
        if quota is None:
            return None
        return max(0, quota - self._tenant_used_mb.get(tenant, 0))

    def quota_allows(self, tenant, request_mb):
        """Whether a request of ``request_mb`` stays within the tenant's
        quota (always true for quota-less tenants)."""
        if tenant is None:
            return True
        quota = self._tenant_quota_mb.get(tenant)
        if quota is None:
            return True
        return self._tenant_used_mb.get(tenant, 0) + request_mb <= quota

    # -- node-manager faults -----------------------------------------------

    def _node(self, node_id):
        if not isinstance(node_id, int) or not 0 <= node_id < len(self.nodes):
            raise ClusterError(f"unknown node manager {node_id!r}")
        return self.nodes[node_id]

    def fail_node(self, node_id):
        """NODE_LOSS: the node manager dies; its containers are killed
        and returned (callers re-execute or release their handles)."""
        lost = self._node(node_id).fail()
        for container in lost:
            self._ledger_drop(container)
        tracer = get_tracer()
        tracer.incr("yarn.nodes_lost")
        if tracer.enabled and lost:
            tracer.incr("yarn.containers_lost", len(lost))
            tracer.gauge("yarn.used_mb", self.used_mb)
        return lost

    def restore_node(self, node_id):
        """The node manager rejoins with empty capacity."""
        self._node(node_id).restore()
        get_tracer().incr("yarn.nodes_restored")

    def max_concurrent(self, memory_mb):
        """How many containers of this size fit an empty cluster."""
        request = self.normalize_request(memory_mb)
        per_node = self.cluster.node_memory_mb // request
        return per_node * self.cluster.num_nodes
