"""Simulated YARN resource management: container accounting.

Models the Resource Manager / Node Manager split of the paper's Figure
2(b) at the level relevant for resource elasticity: request-based
container allocation with per-node capacity, min/max allocation
constraints, and first-fit placement.  The throughput experiments
(Section 5.3) are driven by this accounting — the allocated resources
per application directly bound the number of parallel applications.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ClusterError
from repro.obs import get_tracer

_container_ids = itertools.count(1)


@dataclass
class Container:
    """One granted resource container."""

    container_id: int
    node_id: int
    memory_mb: int


@dataclass
class NodeManager:
    """Per-node resource tracking."""

    node_id: int
    capacity_mb: int
    used_mb: int = 0
    containers: dict = field(default_factory=dict)

    @property
    def available_mb(self):
        return self.capacity_mb - self.used_mb

    def can_allocate(self, memory_mb):
        return memory_mb <= self.available_mb

    def allocate(self, memory_mb):
        if not self.can_allocate(memory_mb):
            raise ClusterError(
                f"node {self.node_id} cannot allocate {memory_mb} MB "
                f"({self.available_mb} MB free)"
            )
        container = Container(next(_container_ids), self.node_id, memory_mb)
        self.used_mb += memory_mb
        self.containers[container.container_id] = container
        return container

    def release(self, container):
        if container.container_id not in self.containers:
            raise ClusterError(
                f"container {container.container_id} not on node {self.node_id}"
            )
        del self.containers[container.container_id]
        self.used_mb -= container.memory_mb


class ResourceManager:
    """Cluster-wide container allocation with min/max constraints."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.nodes = [
            NodeManager(node_id=i, capacity_mb=cluster.node_memory_mb)
            for i in range(cluster.num_nodes)
        ]

    @property
    def available_mb(self):
        return sum(node.available_mb for node in self.nodes)

    @property
    def used_mb(self):
        return sum(node.used_mb for node in self.nodes)

    def normalize_request(self, memory_mb):
        """Clamp a request to the min constraint; reject above max."""
        request = max(int(memory_mb), self.cluster.min_allocation_mb)
        if request > self.cluster.max_allocation_mb:
            raise ClusterError(
                f"container request {request} MB exceeds the maximum "
                f"allocation {self.cluster.max_allocation_mb} MB"
            )
        return request

    def try_allocate(self, memory_mb):
        """First-fit allocation; returns a Container or None if the
        cluster currently lacks capacity."""
        request = self.normalize_request(memory_mb)
        tracer = get_tracer()
        for node in self.nodes:
            if node.can_allocate(request):
                container = node.allocate(request)
                if tracer.enabled:
                    tracer.incr("yarn.allocations")
                    tracer.incr("yarn.allocated_mb", request)
                    tracer.gauge("yarn.used_mb", self.used_mb)
                return container
        tracer.incr("yarn.allocation_failures")
        return None

    def release(self, container):
        self.nodes[container.node_id].release(container)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("yarn.releases")
            tracer.gauge("yarn.used_mb", self.used_mb)

    def max_concurrent(self, memory_mb):
        """How many containers of this size fit an empty cluster."""
        request = self.normalize_request(memory_mb)
        per_node = self.cluster.node_memory_mb // request
        return per_node * self.cluster.num_nodes
