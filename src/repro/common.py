"""Shared core types: data/value types, matrix characteristics, and the
in-memory / serialized size model.

These types are used across the compiler (size propagation, memory
estimates), the cost model, and the runtime, so they live at package root
to avoid circular imports.

The size model follows SystemML's conventions:

* dense blocks store one ``double`` (8 bytes) per cell plus a small header;
* sparse blocks use an MCSR-like layout costing roughly 16 bytes per
  non-zero value (value + column index + amortized row overhead);
* a matrix is kept in sparse representation if its sparsity is below
  :data:`SPARSE_THRESHOLD` and it has more than one column.

Unknown dimensions or sparsity are represented with ``None``.  Any memory
estimate involving an unknown dimension is ``math.inf``, which makes the
operator-selection heuristic fall back to distributed (MR) execution —
exactly the behaviour the paper relies on for its "pruning blocks of
unknowns" technique and for runtime plan adaptation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

# -- size model constants ----------------------------------------------------

#: bytes per dense cell (double precision)
DOUBLE_SIZE = 8
#: fixed per-matrix-object header overhead in bytes
MATRIX_HEADER_SIZE = 44
#: bytes per non-zero in the sparse (MCSR-like) representation:
#: 8 B value + 4 B column index + 4 B amortized row-pointer overhead
SPARSE_CELL_SIZE = 16
#: sparsity below which the sparse representation is used
SPARSE_THRESHOLD = 0.4
#: HDFS binary-block serialized size factor relative to in-memory dense
BINARY_CELL_SIZE = 8

#: conventional scale units
KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class DataType(enum.Enum):
    """Top-level data type of a DML expression or variable."""

    MATRIX = "matrix"
    SCALAR = "scalar"


class ValueType(enum.Enum):
    """Cell/scalar value type."""

    FP64 = "double"
    INT64 = "int"
    BOOLEAN = "boolean"
    STRING = "string"


class ExecType(enum.Enum):
    """Execution location of a physical operator."""

    CP = "CP"
    MR = "MR"


class FileFormat(enum.Enum):
    """On-(simulated-)disk matrix formats."""

    BINARY_BLOCK = "binary"
    TEXT_CELL = "text"
    CSV = "csv"


def is_sparse_representation(sparsity, cols):
    """Return True if a matrix with the given sparsity/columns would be
    held in the sparse in-memory representation.

    Unknown sparsity (``None``) conservatively selects dense.
    """
    if sparsity is None:
        return False
    return sparsity < SPARSE_THRESHOLD and cols is not None and cols > 1


def estimate_matrix_memory(rows, cols, sparsity=1.0):
    """Estimated in-memory size in bytes of a (rows x cols) matrix.

    Returns ``math.inf`` when any dimension is unknown; callers use that to
    classify operations as "unknown" for operator selection and pruning.
    """
    if rows is None or cols is None:
        return math.inf
    if rows < 0 or cols < 0:
        raise ValueError(f"negative matrix dimensions: {rows} x {cols}")
    if sparsity is None:
        sparsity = 1.0
    if is_sparse_representation(sparsity, cols):
        nnz = rows * cols * sparsity
        return MATRIX_HEADER_SIZE + nnz * SPARSE_CELL_SIZE + rows * 4
    return MATRIX_HEADER_SIZE + rows * cols * DOUBLE_SIZE


def estimate_serialized_size(rows, cols, sparsity=1.0, fmt=FileFormat.BINARY_BLOCK):
    """Estimated serialized (HDFS) size in bytes of a matrix.

    Binary block stores dense blocks densely and sparse blocks as
    (row, col, value) triples; text/CSV cost ~2.5x the binary bytes to
    model parse overheads on the bandwidth side.
    """
    if rows is None or cols is None:
        return math.inf
    if sparsity is None:
        sparsity = 1.0
    if is_sparse_representation(sparsity, cols):
        base = rows * cols * sparsity * SPARSE_CELL_SIZE
    else:
        base = rows * cols * BINARY_CELL_SIZE
    if fmt is not FileFormat.BINARY_BLOCK:
        base *= 2.5
    return base


@dataclass
class MatrixCharacteristics:
    """Dimensions and sparsity metadata of a matrix, possibly unknown.

    ``rows``/``cols`` are ``None`` when unknown; ``nnz`` is ``None`` when
    the number of non-zeros is unknown (dimensions may still be known).
    """

    rows: int | None = None
    cols: int | None = None
    nnz: int | None = None

    # -- predicates ----------------------------------------------------------

    @property
    def dims_known(self):
        """True iff both dimensions are known."""
        return self.rows is not None and self.cols is not None

    @property
    def nnz_known(self):
        return self.nnz is not None

    @property
    def fully_known(self):
        return self.dims_known and self.nnz_known

    @property
    def is_vector(self):
        """True iff known to be a row or column vector."""
        return (self.rows == 1 and self.rows is not None) or (
            self.cols == 1 and self.cols is not None
        )

    @property
    def is_column_vector(self):
        return self.cols == 1

    @property
    def is_scalar_shaped(self):
        return self.rows == 1 and self.cols == 1

    # -- derived quantities --------------------------------------------------

    @property
    def cells(self):
        """Total number of cells, or ``None`` if unknown."""
        if not self.dims_known:
            return None
        return self.rows * self.cols

    @property
    def sparsity(self):
        """nnz / cells, or ``None`` when either is unknown.

        An empty matrix (0 cells) reports sparsity 1.0 by convention.
        """
        if not self.dims_known or self.nnz is None:
            return None
        if self.cells == 0:
            return 1.0
        return min(1.0, self.nnz / self.cells)

    def sparsity_or_default(self, default=1.0):
        sp = self.sparsity
        return default if sp is None else sp

    # -- size estimates ------------------------------------------------------

    def memory_estimate(self):
        """In-memory size estimate in bytes (inf when dims unknown)."""
        return estimate_matrix_memory(self.rows, self.cols, self.sparsity_or_default())

    def serialized_estimate(self, fmt=FileFormat.BINARY_BLOCK):
        """Serialized (HDFS) size estimate in bytes."""
        return estimate_serialized_size(
            self.rows, self.cols, self.sparsity_or_default(), fmt
        )

    # -- constructors / combinators ------------------------------------------

    @classmethod
    def unknown(cls):
        return cls(None, None, None)

    @classmethod
    def dense(cls, rows, cols):
        return cls(rows, cols, rows * cols)

    def with_nnz_full(self):
        """Copy with nnz set to the dense cell count (if dims known)."""
        return MatrixCharacteristics(self.rows, self.cols, self.cells)

    def copy(self):
        return MatrixCharacteristics(self.rows, self.cols, self.nnz)

    def same_dims(self, other):
        """True iff dimensions are known and equal on both sides."""
        return (
            self.dims_known
            and other.dims_known
            and self.rows == other.rows
            and self.cols == other.cols
        )

    def __str__(self):
        def fmt(v):
            return "?" if v is None else str(v)

        return f"[{fmt(self.rows)} x {fmt(self.cols)}, nnz={fmt(self.nnz)}]"


def mult_nnz_estimate(left, right):
    """Worst-case-bounded nnz estimate for a matrix product left %*% right.

    Uses the standard independence assumption on sparsity:
    sp_out = 1 - (1 - sp_l * sp_r)^common_dim, bounded by the dense count.
    Returns ``None`` when inputs are insufficiently known.
    """
    if not (left.dims_known and right.dims_known):
        return None
    sp_l, sp_r = left.sparsity, right.sparsity
    out_cells = left.rows * right.cols
    if sp_l is None or sp_r is None:
        return out_cells
    common = left.cols
    if common == 0:
        return 0
    sp_out = 1.0 - (1.0 - sp_l * sp_r) ** common
    return int(math.ceil(sp_out * out_cells))


def binary_nnz_estimate(op_preserves_zeros, left, right):
    """nnz estimate for an elementwise binary operation.

    ``op_preserves_zeros`` distinguishes multiplication-like ops (result is
    zero where either input is zero) from addition-like ops (result may be
    non-zero where either input is).
    """
    if not (left.dims_known and right.dims_known):
        return None
    sp_l = left.sparsity
    sp_r = right.sparsity
    cells = max(left.cells, right.cells)
    if sp_l is None or sp_r is None:
        return cells
    if op_preserves_zeros:
        sp = min(sp_l, sp_r)
    else:
        sp = min(1.0, sp_l + sp_r)
    return int(math.ceil(sp * cells))
