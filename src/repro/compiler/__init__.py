"""SystemML-style compilation chain.

The pipeline mirrors the paper's description of SystemML (Section 2.1 and
Appendix B):

1. :mod:`repro.compiler.statement_blocks` — split the AST into a hierarchy
   of statement blocks given by control structure;
2. :mod:`repro.compiler.hop_builder` — construct one HOP DAG per block
   (transient reads/writes at block boundaries);
3. :mod:`repro.compiler.rewrites` — constant folding, branch removal,
   common subexpression elimination, algebraic simplifications, and
   matrix-multiplication chain optimization;
4. :mod:`repro.compiler.size_propagation` — intra/inter-procedural
   propagation of dimensions, sparsity, and scalar constants;
5. :mod:`repro.compiler.memory_estimates` — per-operator memory estimates;
6. :mod:`repro.compiler.operator_selection` — CP/MR execution-type and
   physical-operator decisions under given memory budgets;
7. :mod:`repro.compiler.piggybacking` — packing of MR operators into a
   minimal number of MR jobs;
8. :mod:`repro.compiler.runtime_prog` — executable instruction generation;
9. :mod:`repro.compiler.recompile` — dynamic (re-)compilation used both by
   the runtime (unknown sizes) and by the resource optimizer's what-if
   enumeration;
10. :mod:`repro.compiler.plan_cache` — memoizing plan cache that lets the
    optimizer's enumeration skip recompilations whose budgets cannot
    change any compilation decision.

The main entry point is :func:`repro.compiler.pipeline.compile_program`.
"""

from repro.compiler.pipeline import compile_program
from repro.compiler.plan_cache import PlanCache, block_thresholds

__all__ = ["compile_program", "PlanCache", "block_thresholds"]
