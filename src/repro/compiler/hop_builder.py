"""HOP DAG construction from statement blocks.

For each generic block we maintain a variable -> HOP map.  Variables read
before being assigned in the block become transient reads; every variable
assigned in the block yields a transient write root at the block end.
Side-effecting operations (``print``, ``write``) are additional roots.

Command-line arguments (``$name``) and ``ifdef`` are resolved at build
time from the script arguments, matching SystemML, where script arguments
are bound before compilation.  ``ppred(X, v, ">")`` is lowered to a
relational :class:`~repro.compiler.hops.BinaryOp` as in SystemML.
"""

from __future__ import annotations

from repro.common import DataType, ValueType
from repro.compiler import hops as H
from repro.compiler import statement_blocks as SB
from repro.dml import ast
from repro.errors import CompilerError

_UNARY_MATH = {
    "exp": H.OpCode.EXP,
    "sqrt": H.OpCode.SQRT,
    "abs": H.OpCode.ABS,
    "round": H.OpCode.ROUND,
    "floor": H.OpCode.FLOOR,
    "ceil": H.OpCode.CEIL,
    "sign": H.OpCode.SIGN,
}

_BINARY_OPS = {
    "+": H.OpCode.PLUS,
    "-": H.OpCode.MINUS,
    "*": H.OpCode.MULT,
    "/": H.OpCode.DIV,
    "^": H.OpCode.POW,
    "%%": H.OpCode.MOD,
    "%/%": H.OpCode.INTDIV,
    "==": H.OpCode.EQ,
    "!=": H.OpCode.NEQ,
    "<": H.OpCode.LT,
    "<=": H.OpCode.LE,
    ">": H.OpCode.GT,
    ">=": H.OpCode.GE,
    "&": H.OpCode.AND,
    "|": H.OpCode.OR,
}

_PPRED_OPS = {
    "==": H.OpCode.EQ,
    "!=": H.OpCode.NEQ,
    "<": H.OpCode.LT,
    "<=": H.OpCode.LE,
    ">": H.OpCode.GT,
    ">=": H.OpCode.GE,
}

_ROWCOL_AGGS = {
    "rowSums": (H.OpCode.SUM, H.AggDirection.ROW),
    "colSums": (H.OpCode.SUM, H.AggDirection.COL),
    "rowMeans": (H.OpCode.MEAN, H.AggDirection.ROW),
    "colMeans": (H.OpCode.MEAN, H.AggDirection.COL),
    "rowMaxs": (H.OpCode.MAX, H.AggDirection.ROW),
    "colMaxs": (H.OpCode.MAX, H.AggDirection.COL),
    "rowMins": (H.OpCode.MIN, H.AggDirection.ROW),
    "colMins": (H.OpCode.MIN, H.AggDirection.COL),
    "rowIndexMax": (H.OpCode.ROWINDEXMAX, H.AggDirection.ROW),
}

_CASTS = {
    "as.scalar": (H.OpCode.CAST_AS_SCALAR, DataType.SCALAR, ValueType.FP64),
    "as.matrix": (H.OpCode.CAST_AS_MATRIX, DataType.MATRIX, ValueType.FP64),
    "as.double": (H.OpCode.CAST_AS_DOUBLE, DataType.SCALAR, ValueType.FP64),
    "as.integer": (H.OpCode.CAST_AS_INT, DataType.SCALAR, ValueType.INT64),
    "as.logical": (H.OpCode.CAST_AS_BOOLEAN, DataType.SCALAR, ValueType.BOOLEAN),
}


def _numeric_value_type(left_vt, right_vt, op):
    if ValueType.STRING in (left_vt, right_vt):
        return ValueType.STRING
    if op in (H.OpCode.DIV, H.OpCode.POW):
        return ValueType.FP64
    if op in H.RELATIONAL_OPS or op in (H.OpCode.AND, H.OpCode.OR):
        return ValueType.BOOLEAN
    if left_vt is ValueType.INT64 and right_vt is ValueType.INT64:
        return ValueType.INT64
    return ValueType.FP64


class HopBuilder:
    """Builds HOP DAGs for every block of a :class:`BlockProgram`."""

    def __init__(self, block_program, function_types=None):
        self.program = block_program
        self.args = block_program.script_args
        #: name -> FunctionProgram, for UDF output typing
        self.functions = block_program.functions
        #: variable -> DataType as inferred so far (across blocks)
        self.var_types = dict(function_types or {})

    # -- program level -------------------------------------------------------

    def build(self, build_functions=True):
        for block in self.program.blocks:
            self._build_block(block)
        if build_functions:
            for func in self.program.functions.values():
                builder = HopBuilder(
                    SB.BlockProgram(
                        blocks=func.blocks,
                        functions=self.functions,
                        script_args=self.args,
                    ),
                    function_types={
                        p.name: (
                            DataType.MATRIX
                            if p.data_type == "matrix"
                            else DataType.SCALAR
                        )
                        for p in func.inputs
                    },
                )
                builder.build(build_functions=False)
        return self.program

    def _build_block(self, block):
        if isinstance(block, SB.GenericBlock):
            self._build_generic(block)
        elif isinstance(block, SB.IfBlock):
            self._build_predicate(block.predicate)
            for child in block.body:
                self._build_block(child)
            for child in block.else_body:
                self._build_block(child)
        elif isinstance(block, SB.WhileBlock):
            self._build_predicate(block.predicate)
            for child in block.body:
                self._build_block(child)
        elif isinstance(block, SB.ForBlock):
            self.var_types[block.var] = DataType.SCALAR
            for holder in (block.from_holder, block.to_holder, block.incr_holder):
                if holder is not None:
                    self._build_predicate(holder)
            for child in block.body:
                self._build_block(child)
        else:
            raise CompilerError(f"unknown block type {type(block).__name__}")

    def _build_predicate(self, holder):
        var_map = {}
        holder.hop_root = self._build_expr(holder.expr, var_map)

    def _build_generic(self, block):
        var_map = {}
        roots = []
        assigned = []
        for stmt in block.statements:
            if isinstance(stmt, ast.Assignment):
                if stmt.is_left_indexing:
                    hop = self._build_left_indexing(stmt, var_map)
                else:
                    hop = self._build_expr(stmt.expr, var_map)
                var_map[stmt.target] = hop
                self.var_types[stmt.target] = hop.data_type
                if stmt.target not in assigned:
                    assigned.append(stmt.target)
            elif isinstance(stmt, ast.MultiAssignment):
                fop = self._build_function_call(stmt.call, var_map)
                func = self.functions[stmt.call.name]
                for idx, target in enumerate(stmt.targets):
                    out_param = func.outputs[idx]
                    dtype = (
                        DataType.MATRIX
                        if out_param.data_type == "matrix"
                        else DataType.SCALAR
                    )
                    out = H.FunctionOutput(fop, idx, data_type=dtype)
                    var_map[target] = out
                    self.var_types[target] = dtype
                    if target not in assigned:
                        assigned.append(target)
            elif isinstance(stmt, ast.ExprStatement):
                root = self._build_statement_call(stmt.expr, var_map)
                if root is not None:
                    roots.append(root)
            else:
                raise CompilerError(
                    f"statement type {type(stmt).__name__} inside generic block"
                )
        # transient writes for all assigned variables
        for name in assigned:
            hop = var_map[name]
            roots.append(
                H.DataOp(
                    H.DataOpKind.TRANSIENT_WRITE,
                    name,
                    inputs=[hop],
                    data_type=hop.data_type,
                    value_type=hop.value_type,
                )
            )
        block.hop_roots = roots

    # -- statements ----------------------------------------------------------

    def _build_statement_call(self, call, var_map):
        if call.name == "print":
            arg = self._build_expr(call.args[0], var_map)
            return H.UnaryOp(H.OpCode.PRINT, arg, data_type=DataType.SCALAR)
        if call.name == "stop":
            arg = self._build_expr(call.args[0], var_map)
            return H.UnaryOp(H.OpCode.STOP, arg, data_type=DataType.SCALAR)
        if call.name == "write":
            data = self._build_expr(call.args[0], var_map)
            fname = self._resolve_filename(call.args[1], var_map)
            fmt = None
            if "format" in call.named_args:
                fmt_hop = self._build_expr(call.named_args["format"], var_map)
                fmt = getattr(fmt_hop, "value", None)
            return H.DataOp(
                H.DataOpKind.PERSISTENT_WRITE,
                name=fname,
                inputs=[data],
                data_type=data.data_type,
                value_type=data.value_type,
                fname=fname,
                fmt=fmt,
            )
        if call.name in self.functions:
            return self._build_function_call(call, var_map)
        raise CompilerError(
            f"call statement to {call.name!r} has no effect (line {call.line})"
        )

    def _build_left_indexing(self, stmt, var_map):
        target = self._read_var(stmt.target, var_map, stmt.line)
        source = self._build_expr(stmt.expr, var_map)
        bounds, all_rows, all_cols = self._build_index_bounds(
            stmt.row_range, stmt.col_range, target, var_map
        )
        return H.LeftIndexingOp(
            target, source, *bounds, all_rows=all_rows, all_cols=all_cols
        )

    # -- expressions -----------------------------------------------------

    def _read_var(self, name, var_map, line=0):
        if name in var_map:
            return var_map[name]
        dtype = self.var_types.get(name, DataType.MATRIX)
        hop = H.DataOp(H.DataOpKind.TRANSIENT_READ, name, data_type=dtype)
        var_map[name] = hop
        return hop

    def _build_expr(self, expr, var_map):
        if isinstance(expr, ast.Literal):
            vt = {
                "int": ValueType.INT64,
                "double": ValueType.FP64,
                "boolean": ValueType.BOOLEAN,
                "string": ValueType.STRING,
            }[expr.vtype]
            return H.LiteralOp(expr.value, vt)
        if isinstance(expr, ast.CommandLineArg):
            return self._resolve_arg(expr.name, expr.line)
        if isinstance(expr, ast.Identifier):
            return self._read_var(expr.name, var_map, expr.line)
        if isinstance(expr, ast.UnaryExpr):
            operand = self._build_expr(expr.operand, var_map)
            if expr.op == "!":
                return H.UnaryOp(
                    H.OpCode.NOT, operand, value_type=ValueType.BOOLEAN
                )
            if expr.op == "-":
                return H.UnaryOp(H.OpCode.NEG, operand,
                                 value_type=operand.value_type)
            raise CompilerError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.BinaryExpr):
            left = self._build_expr(expr.left, var_map)
            right = self._build_expr(expr.right, var_map)
            if expr.op == "%*%":
                return H.AggBinaryOp(left, right)
            op = _BINARY_OPS.get(expr.op)
            if op is None:
                raise CompilerError(f"unknown binary operator {expr.op!r}")
            vt = _numeric_value_type(left.value_type, right.value_type, op)
            return H.BinaryOp(op, left, right, value_type=vt)
        if isinstance(expr, ast.IndexingExpr):
            target = self._build_expr(expr.target, var_map)
            bounds, all_rows, all_cols = self._build_index_bounds(
                expr.row_range, expr.col_range, target, var_map
            )
            return H.IndexingOp(
                target, *bounds, all_rows=all_rows, all_cols=all_cols
            )
        if isinstance(expr, ast.FunctionCall):
            return self._build_call_expr(expr, var_map)
        raise CompilerError(f"unknown expression type {type(expr).__name__}")

    def _build_index_bounds(self, row_range, col_range, target, var_map):
        """Build the four bound HOPs of an indexing op.

        Missing bounds default to 1 / nrow / ncol of the target; fully
        absent dimensions set the all_rows/all_cols flags so downstream
        phases can treat them as full-width accesses.
        """

        def bound(rng, is_row):
            if rng is None or rng.is_all:
                one = H.LiteralOp(1)
                end = H.UnaryOp(
                    H.OpCode.NROW if is_row else H.OpCode.NCOL,
                    target,
                    data_type=DataType.SCALAR,
                    value_type=ValueType.INT64,
                )
                return one, end, True
            lower = (
                self._build_expr(rng.lower, var_map)
                if rng.lower is not None
                else H.LiteralOp(1)
            )
            if not rng.is_range:
                return lower, lower, False
            if rng.upper is not None:
                upper = self._build_expr(rng.upper, var_map)
            else:
                upper = H.UnaryOp(
                    H.OpCode.NROW if is_row else H.OpCode.NCOL,
                    target,
                    data_type=DataType.SCALAR,
                    value_type=ValueType.INT64,
                )
            return lower, upper, False

        rl, ru, all_rows = bound(row_range, True)
        cl, cu, all_cols = bound(col_range, False)
        return (rl, ru, cl, cu), all_rows, all_cols

    def _build_call_expr(self, call, var_map):
        name = call.name
        if name in self.functions:
            fop = self._build_function_call(call, var_map)
            func = self.functions[name]
            out_param = func.outputs[0]
            dtype = (
                DataType.MATRIX if out_param.data_type == "matrix" else DataType.SCALAR
            )
            return H.FunctionOutput(fop, 0, data_type=dtype)
        if name == "read":
            return self._build_read(call, var_map)
        if name == "ifdef":
            arg = call.args[0]
            if arg.name in self.args:
                return self._resolve_arg(arg.name, call.line)
            return self._build_expr(call.args[1], var_map)
        if name in _UNARY_MATH:
            inp = self._build_expr(call.args[0], var_map)
            return H.UnaryOp(_UNARY_MATH[name], inp)
        if name == "log":
            inp = self._build_expr(call.args[0], var_map)
            if len(call.args) == 1:
                return H.UnaryOp(H.OpCode.LOG, inp)
            base = self._build_expr(call.args[1], var_map)
            return H.BinaryOp(
                H.OpCode.DIV,
                H.UnaryOp(H.OpCode.LOG, inp),
                H.UnaryOp(H.OpCode.LOG, base),
            )
        if name in ("nrow", "ncol", "length"):
            inp = self._build_expr(call.args[0], var_map)
            op = {
                "nrow": H.OpCode.NROW,
                "ncol": H.OpCode.NCOL,
                "length": H.OpCode.LENGTH,
            }[name]
            return H.UnaryOp(
                op, inp, data_type=DataType.SCALAR, value_type=ValueType.INT64
            )
        if name in ("sum", "mean", "trace"):
            inp = self._build_expr(call.args[0], var_map)
            op = {
                "sum": H.OpCode.SUM,
                "mean": H.OpCode.MEAN,
                "trace": H.OpCode.TRACE,
            }[name]
            return H.AggUnaryOp(op, H.AggDirection.ALL, inp)
        if name in ("min", "max"):
            op = H.OpCode.MIN if name == "min" else H.OpCode.MAX
            if len(call.args) == 1:
                inp = self._build_expr(call.args[0], var_map)
                return H.AggUnaryOp(op, H.AggDirection.ALL, inp)
            left = self._build_expr(call.args[0], var_map)
            right = self._build_expr(call.args[1], var_map)
            return H.BinaryOp(op, left, right)
        if name in _ROWCOL_AGGS:
            inp = self._build_expr(call.args[0], var_map)
            op, direction = _ROWCOL_AGGS[name]
            return H.AggUnaryOp(op, direction, inp)
        if name == "t":
            inp = self._build_expr(call.args[0], var_map)
            return H.ReorgOp(H.OpCode.TRANSPOSE, inp)
        if name == "diag":
            inp = self._build_expr(call.args[0], var_map)
            return H.ReorgOp(H.OpCode.DIAG, inp)
        if name == "cumsum":
            inp = self._build_expr(call.args[0], var_map)
            return H.UnaryOp(H.OpCode.CUMSUM, inp)
        if name == "removeEmpty":
            target_expr = call.named_args.get("target")
            if target_expr is None and call.args:
                target_expr = call.args[0]
            if target_expr is None:
                raise CompilerError(
                    f"removeEmpty() requires target= (line {call.line})"
                )
            inp = self._build_expr(target_expr, var_map)
            margin = "rows"
            margin_expr = call.named_args.get("margin")
            if margin_expr is not None:
                margin_hop = self._build_expr(margin_expr, var_map)
                margin = getattr(margin_hop, "value", "rows")
            if margin not in ("rows", "cols"):
                raise CompilerError(
                    f"removeEmpty() margin must be 'rows' or 'cols' "
                    f"(line {call.line})"
                )
            hop = H.UnaryOp(H.OpCode.REMOVE_EMPTY, inp)
            hop.margin = margin
            return hop
        if name == "matrix":
            value = self._build_expr(call.args[0], var_map)
            rows = self._named_or_positional(call, "rows", 1, var_map)
            cols = self._named_or_positional(call, "cols", 2, var_map)
            return H.DataGenOp(
                H.OpCode.RAND,
                {"min": value, "max": value, "rows": rows, "cols": cols},
            )
        if name == "rand":
            params = {}
            for key in ("rows", "cols", "min", "max", "sparsity", "seed"):
                if key in call.named_args:
                    params[key] = self._build_expr(call.named_args[key], var_map)
            params.setdefault("min", H.LiteralOp(0.0))
            params.setdefault("max", H.LiteralOp(1.0))
            params.setdefault("sparsity", H.LiteralOp(1.0))
            return H.DataGenOp(H.OpCode.RAND, params)
        if name == "seq":
            frm = self._build_expr(call.args[0], var_map)
            to = self._build_expr(call.args[1], var_map)
            params = {"from": frm, "to": to}
            if len(call.args) > 2:
                params["incr"] = self._build_expr(call.args[2], var_map)
            return H.DataGenOp(H.OpCode.SEQ, params)
        if name == "solve":
            a = self._build_expr(call.args[0], var_map)
            b = self._build_expr(call.args[1], var_map)
            return H.BinaryOp(H.OpCode.SOLVE, a, b, data_type=DataType.MATRIX)
        if name == "ppred":
            left = self._build_expr(call.args[0], var_map)
            right = self._build_expr(call.args[1], var_map)
            op_lit = call.args[2]
            if not isinstance(op_lit, ast.Literal) or op_lit.value not in _PPRED_OPS:
                raise CompilerError(
                    f"ppred operator must be a comparison string literal "
                    f"(line {call.line})"
                )
            return H.BinaryOp(
                _PPRED_OPS[op_lit.value], left, right, data_type=DataType.MATRIX
            )
        if name == "table":
            ins = [self._build_expr(arg, var_map) for arg in call.args]
            return H.TernaryOp(H.OpCode.CTABLE, ins)
        if name in ("append", "cbind"):
            left = self._build_expr(call.args[0], var_map)
            right = self._build_expr(call.args[1], var_map)
            return H.BinaryOp(H.OpCode.CBIND, left, right,
                              data_type=DataType.MATRIX)
        if name == "rbind":
            left = self._build_expr(call.args[0], var_map)
            right = self._build_expr(call.args[1], var_map)
            return H.BinaryOp(H.OpCode.RBIND, left, right,
                              data_type=DataType.MATRIX)
        if name in _CASTS:
            op, dtype, vtype = _CASTS[name]
            inp = self._build_expr(call.args[0], var_map)
            return H.UnaryOp(op, inp, data_type=dtype, value_type=vtype)
        raise CompilerError(f"unsupported builtin {name!r} (line {call.line})")

    def _build_function_call(self, call, var_map):
        func = self.functions[call.name]
        bound = {}
        for param, arg in zip(func.inputs, call.args):
            bound[param.name] = self._build_expr(arg, var_map)
        for key, arg in call.named_args.items():
            bound[key] = self._build_expr(arg, var_map)
        ordered = []
        for param in func.inputs:
            if param.name in bound:
                ordered.append(bound[param.name])
            elif param.default is not None:
                ordered.append(self._build_expr(param.default, var_map))
            else:
                raise CompilerError(
                    f"missing argument {param.name!r} in call to "
                    f"{call.name!r} (line {call.line})"
                )
        return H.FunctionOp(call.name, ordered, [p.name for p in func.outputs])

    def _named_or_positional(self, call, key, pos, var_map):
        if key in call.named_args:
            return self._build_expr(call.named_args[key], var_map)
        if len(call.args) > pos:
            return self._build_expr(call.args[pos], var_map)
        raise CompilerError(
            f"matrix() requires {key!r} (line {call.line})"
        )

    # -- argument resolution ---------------------------------------------

    def _resolve_arg(self, name, line):
        if name not in self.args:
            raise CompilerError(
                f"script argument ${name} not provided (line {line})"
            )
        value = self.args[name]
        if isinstance(value, bool):
            return H.LiteralOp(value, ValueType.BOOLEAN)
        if isinstance(value, int):
            return H.LiteralOp(value, ValueType.INT64)
        if isinstance(value, float):
            return H.LiteralOp(value, ValueType.FP64)
        return H.LiteralOp(str(value), ValueType.STRING)

    def _resolve_filename(self, expr, var_map):
        hop = self._build_expr(expr, var_map)
        if isinstance(hop, H.LiteralOp):
            return str(hop.value)
        raise CompilerError("write() target filename must be a constant")

    def _build_read(self, call, var_map):
        fname = self._resolve_filename(call.args[0], var_map)
        fmt = None
        if "format" in call.named_args:
            fmt_hop = self._build_expr(call.named_args["format"], var_map)
            fmt = getattr(fmt_hop, "value", None)
        return H.DataOp(
            H.DataOpKind.PERSISTENT_READ,
            name=fname,
            data_type=DataType.MATRIX,
            fname=fname,
            fmt=fmt,
        )


def build_hops(block_program):
    """Construct HOP DAGs for every block of ``block_program`` in place."""
    return HopBuilder(block_program).build()
