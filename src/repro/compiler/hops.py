"""High-level operator (HOP) DAG node classes.

Each statement block compiles into a DAG of HOPs.  A HOP carries:

* its ``inputs`` (other HOPs),
* output :class:`~repro.common.MatrixCharacteristics` (``mc``), filled by
  size propagation,
* a memory estimate (``mem_estimate``), filled by memory estimation,
* execution decisions (``exec_type``, ``method``), filled by operator
  selection — these are the *only* fields that depend on the candidate
  resource configuration, so the resource optimizer can re-run operator
  selection cheaply without rebuilding DAGs.

Operator vocabulary follows SystemML: DataOp (persistent/transient
read/write), LiteralOp, UnaryOp, BinaryOp, AggUnaryOp, AggBinaryOp (matrix
multiplication), ReorgOp (transpose/diag), DataGenOp (rand/seq), TernaryOp
(ctable), TernaryAggOp (fused ``sum(v1*v2*v3)``), IndexingOp,
LeftIndexingOp, and FunctionOp (user-defined function calls).
"""

from __future__ import annotations

import enum
import itertools
import math

from repro.common import DataType, MatrixCharacteristics, ValueType

_hop_ids = itertools.count(1)


class OpCode(enum.Enum):
    """Operation codes shared by unary/binary/aggregate HOPs."""

    # binary arithmetic
    PLUS = "+"
    MINUS = "-"
    MULT = "*"
    DIV = "/"
    POW = "^"
    MOD = "%%"
    INTDIV = "%/%"
    MIN = "min"
    MAX = "max"
    SOLVE = "solve"
    CBIND = "cbind"
    RBIND = "rbind"
    # relational
    EQ = "=="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    # boolean
    AND = "&"
    OR = "|"
    NOT = "!"
    # unary math
    CUMSUM = "ucumk+"
    REMOVE_EMPTY = "rmempty"
    NEG = "u-"
    EXP = "exp"
    LOG = "log"
    SQRT = "sqrt"
    ABS = "abs"
    ROUND = "round"
    FLOOR = "floor"
    CEIL = "ceil"
    SIGN = "sign"
    # metadata / casts
    NROW = "nrow"
    NCOL = "ncol"
    LENGTH = "length"
    CAST_AS_SCALAR = "castdts"
    CAST_AS_MATRIX = "castdtm"
    CAST_AS_DOUBLE = "castvtd"
    CAST_AS_INT = "castvti"
    CAST_AS_BOOLEAN = "castvtb"
    PRINT = "print"
    STOP = "stop"
    # aggregates
    SUM = "sum"
    MEAN = "mean"
    TRACE = "trace"
    ROWINDEXMAX = "rowindexmax"
    # reorg
    TRANSPOSE = "t"
    DIAG = "diag"
    # datagen
    RAND = "rand"
    SEQ = "seq"
    # ternary
    CTABLE = "ctable"
    # matrix multiply
    MATMULT = "ba+*"
    # fused ternary aggregate sum(a*b*c)
    TAKPM = "tak+*"


class AggDirection(enum.Enum):
    ALL = "all"
    ROW = "row"  # rowSums etc: aggregate across columns, one value per row
    COL = "col"


class DataOpKind(enum.Enum):
    PERSISTENT_READ = "pread"
    PERSISTENT_WRITE = "pwrite"
    TRANSIENT_READ = "tread"
    TRANSIENT_WRITE = "twrite"


#: relational opcodes that came from ppred / comparisons producing 0/1
RELATIONAL_OPS = {OpCode.EQ, OpCode.NEQ, OpCode.LT, OpCode.LE, OpCode.GT, OpCode.GE}

#: binary opcodes whose result is zero wherever either input is zero
ZERO_PRESERVING_BINARY = {OpCode.MULT}

#: unary opcodes that map zero to zero (sparsity-safe)
ZERO_PRESERVING_UNARY = {
    OpCode.SQRT,
    OpCode.ABS,
    OpCode.ROUND,
    OpCode.FLOOR,
    OpCode.CEIL,
    OpCode.SIGN,
    OpCode.NEG,
}


class Hop:
    """Base class of all HOP DAG nodes."""

    def __init__(self, inputs=None, data_type=DataType.MATRIX,
                 value_type=ValueType.FP64, name=None):
        self.hop_id = next(_hop_ids)
        self.inputs = list(inputs or [])
        self.data_type = data_type
        self.value_type = value_type
        #: bound variable name for data ops, None otherwise
        self.name = name
        #: output characteristics (filled by size propagation)
        self.mc = MatrixCharacteristics.unknown()
        #: scalar constant value if compile-time known (scalars only)
        self.const_value = None
        #: total operation memory estimate in bytes (inputs + output +
        #: intermediates); math.inf when unknown
        self.mem_estimate = math.inf
        #: output memory estimate in bytes
        self.output_mem = math.inf
        # -- per-resource-configuration decisions (operator selection) --
        self.exec_type = None  # ExecType or None for metadata-only ops
        self.method = None  # physical method, e.g. "mapmm", "cpmm"
        #: marks DAGs containing this hop for dynamic recompilation
        self.requires_recompile = False

    # -- structural helpers ----------------------------------------------

    @property
    def is_matrix(self):
        return self.data_type is DataType.MATRIX

    @property
    def is_scalar(self):
        return self.data_type is DataType.SCALAR

    def replace_input(self, old, new):
        self.inputs = [new if inp is old else inp for inp in self.inputs]

    def opcode_str(self):
        return type(self).__name__

    def __repr__(self):
        return (
            f"{type(self).__name__}#{self.hop_id}({self.opcode_str()}, "
            f"{self.mc}, {self.data_type.value})"
        )


class LiteralOp(Hop):
    """A scalar literal."""

    def __init__(self, value, value_type=None):
        if value_type is None:
            if isinstance(value, bool):
                value_type = ValueType.BOOLEAN
            elif isinstance(value, int):
                value_type = ValueType.INT64
            elif isinstance(value, float):
                value_type = ValueType.FP64
            else:
                value_type = ValueType.STRING
        super().__init__(data_type=DataType.SCALAR, value_type=value_type)
        self.value = value
        self.const_value = value
        self.mc = MatrixCharacteristics(0, 0, 0)

    def opcode_str(self):
        return f"lit:{self.value!r}"


class DataOp(Hop):
    """Persistent/transient read or write of a variable or file."""

    def __init__(self, kind, name, inputs=None, data_type=DataType.MATRIX,
                 value_type=ValueType.FP64, fname=None, fmt=None):
        super().__init__(inputs, data_type, value_type, name=name)
        self.kind = kind
        self.fname = fname
        self.fmt = fmt

    @property
    def is_read(self):
        return self.kind in (DataOpKind.PERSISTENT_READ, DataOpKind.TRANSIENT_READ)

    @property
    def is_write(self):
        return not self.is_read

    def opcode_str(self):
        return f"{self.kind.value}:{self.name}"


class UnaryOp(Hop):
    def __init__(self, op, inp, data_type=None, value_type=ValueType.FP64):
        if data_type is None:
            data_type = inp.data_type
        super().__init__([inp], data_type, value_type)
        self.op = op

    def opcode_str(self):
        return self.op.value


class BinaryOp(Hop):
    def __init__(self, op, left, right, data_type=None, value_type=ValueType.FP64):
        if data_type is None:
            if DataType.MATRIX in (left.data_type, right.data_type):
                data_type = DataType.MATRIX
            else:
                data_type = DataType.SCALAR
        super().__init__([left, right], data_type, value_type)
        self.op = op

    @property
    def is_matrix_matrix(self):
        return self.inputs[0].is_matrix and self.inputs[1].is_matrix

    @property
    def is_matrix_scalar(self):
        return self.is_matrix and not self.is_matrix_matrix

    def opcode_str(self):
        return self.op.value


class AggUnaryOp(Hop):
    """Full / row / column aggregate (sum, mean, min, max, trace)."""

    def __init__(self, op, direction, inp):
        data_type = DataType.SCALAR if direction is AggDirection.ALL else DataType.MATRIX
        super().__init__([inp], data_type)
        self.op = op
        self.direction = direction

    def opcode_str(self):
        prefix = {AggDirection.ALL: "ua", AggDirection.ROW: "uar", AggDirection.COL: "uac"}
        return prefix[self.direction] + self.op.value


class AggBinaryOp(Hop):
    """Matrix multiplication ``X %*% Y``."""

    def __init__(self, left, right):
        super().__init__([left, right], DataType.MATRIX)
        self.op = OpCode.MATMULT
        #: set by operator selection when the transpose-mm rewrite
        #: t(X) %*% v -> t(t(v) %*% X) is applied
        self.transpose_rewrite = False

    def opcode_str(self):
        return "ba(+*)"


class TernaryAggOp(Hop):
    """Fused ternary aggregate ``sum(a * b * c)`` (tak+*)."""

    def __init__(self, a, b, c):
        super().__init__([a, b, c], DataType.SCALAR)
        self.op = OpCode.TAKPM

    def opcode_str(self):
        return "tak+*"


class ReorgOp(Hop):
    """Transpose or diag."""

    def __init__(self, op, inp):
        super().__init__([inp], DataType.MATRIX)
        self.op = op

    def opcode_str(self):
        return "r(" + self.op.value + ")"


class DataGenOp(Hop):
    """Data generation: rand/matrix-constructor (RAND) or seq (SEQ).

    ``params`` maps parameter names (rows, cols, min, max, sparsity, seq
    from/to/incr) to input HOPs; the HOPs are also listed in ``inputs``.
    """

    def __init__(self, method, params):
        super().__init__(list(params.values()), DataType.MATRIX)
        self.gen_method = method
        self.params = dict(params)

    def param(self, key):
        return self.params.get(key)

    def opcode_str(self):
        return f"datagen:{self.gen_method.value}"


class TernaryOp(Hop):
    """Contingency table ``table(A, B)`` (ctable)."""

    def __init__(self, op, inputs):
        super().__init__(inputs, DataType.MATRIX)
        self.op = op

    def opcode_str(self):
        return self.op.value


class IndexingOp(Hop):
    """Right indexing X[rl:ru, cl:cu].

    ``inputs`` = [X, rl, ru, cl, cu] where bound HOPs are scalar
    expressions; missing bounds are represented by literal 0 placeholders
    with ``is_all_rows`` / ``is_all_cols`` flags set.
    """

    def __init__(self, inp, row_lower, row_upper, col_lower, col_upper,
                 all_rows=False, all_cols=False):
        super().__init__([inp, row_lower, row_upper, col_lower, col_upper],
                         DataType.MATRIX)
        self.all_rows = all_rows
        self.all_cols = all_cols

    def opcode_str(self):
        return "rix"


class LeftIndexingOp(Hop):
    """Left indexing X[rl:ru, cl:cu] = Y.

    ``inputs`` = [X, Y, rl, ru, cl, cu].
    """

    def __init__(self, target, source, row_lower, row_upper, col_lower,
                 col_upper, all_rows=False, all_cols=False):
        super().__init__([target, source, row_lower, row_upper, col_lower,
                          col_upper], DataType.MATRIX)
        self.all_rows = all_rows
        self.all_cols = all_cols

    def opcode_str(self):
        return "lix"


class FunctionOp(Hop):
    """A call to a user-defined function.

    Function calls are opaque to block-local optimization: outputs get
    their characteristics from inter-procedural size propagation (or stay
    unknown).  ``output_names`` lists the caller-side target variables.
    """

    def __init__(self, func_name, inputs, output_names):
        super().__init__(inputs, DataType.MATRIX)
        self.func_name = func_name
        self.output_names = list(output_names)

    def opcode_str(self):
        return f"fcall:{self.func_name}"


class FunctionOutput(Hop):
    """Selects the ``index``-th output value of a :class:`FunctionOp`."""

    def __init__(self, fop, index, data_type=DataType.MATRIX,
                 value_type=ValueType.FP64):
        super().__init__([fop], data_type, value_type)
        self.index = index

    def opcode_str(self):
        return f"fout:{self.index}"


# -- DAG traversal helpers ---------------------------------------------------


def iter_dag(roots):
    """Yield each HOP reachable from ``roots`` exactly once, post-order
    (inputs before consumers)."""
    seen = set()
    stack = [(root, False) for root in reversed(list(roots))]
    order = []
    while stack:
        hop, expanded = stack.pop()
        if hop.hop_id in seen and not expanded:
            continue
        if expanded:
            order.append(hop)
            continue
        seen.add(hop.hop_id)
        stack.append((hop, True))
        for inp in reversed(hop.inputs):
            if inp.hop_id not in seen:
                stack.append((inp, False))
    return order


def count_operators(roots, predicate=None):
    """Count DAG operators, optionally filtered by ``predicate(hop)``."""
    hops = iter_dag(roots)
    if predicate is None:
        return len(hops)
    return sum(1 for hop in hops if predicate(hop))


def build_parent_map(roots):
    """Return {hop_id: [parent hops]} for the DAG under ``roots``."""
    parents = {}
    for hop in iter_dag(roots):
        parents.setdefault(hop.hop_id, [])
        for inp in hop.inputs:
            parents.setdefault(inp.hop_id, []).append(hop)
    return parents


def explain(roots, indent=0):
    """Render a human-readable multi-line description of a HOP DAG."""
    lines = []
    for hop in iter_dag(roots):
        ins = ",".join(str(i.hop_id) for i in hop.inputs)
        et = hop.exec_type.value if hop.exec_type else "-"
        mem = "inf" if math.isinf(hop.mem_estimate) else f"{hop.mem_estimate / (1024 * 1024):.1f}MB"
        lines.append(
            " " * indent
            + f"({hop.hop_id}) {hop.opcode_str()} [{ins}] {hop.mc} "
            + f"mem={mem} exec={et}"
            + (f" method={hop.method}" if hop.method else "")
        )
    return "\n".join(lines)
