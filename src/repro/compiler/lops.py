"""Low-level (physical) operator metadata.

Operator selection annotates each HOP with an execution type and — for MR
operators — a physical *method*.  This module is the registry of those
methods: which MR phase they can run in, whether they need cross-block
aggregation in the reduce phase, whether they occupy the single shuffle
slot of a job, and which inputs they broadcast to every map task.  The
piggybacking algorithm packs annotated hops into MR jobs based on these
properties (paper Appendix B, Table 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class JobType(enum.Enum):
    GMR = "GMR"  # generic MR job: map ops (+ shuffle) (+ reduce/agg ops)
    MMCJ = "MMCJ"  # cross-product matrix multiplication (cpmm)
    DATAGEN = "DATAGEN"  # data generation job


class Phase(enum.Enum):
    MAP = "map"
    SHUFFLE = "shuffle"
    REDUCE = "reduce"


@dataclass(frozen=True)
class MethodSpec:
    """Physical properties of one MR method."""

    name: str
    #: can execute inside the map phase
    map_capable: bool = True
    #: can execute inside the reduce phase (after a shuffle/agg)
    reduce_capable: bool = False
    #: requires the job's single shuffle slot (data re-grouping)
    uses_shuffle: bool = False
    #: requires cross-block aggregation of partial results in reduce
    needs_aggregation: bool = False
    #: indices of inputs shipped to every task via distributed cache
    broadcast_inputs: tuple = ()
    #: required job type (None = any GMR-compatible job)
    job_type: JobType = JobType.GMR
    #: additional whole-job latencies charged (e.g. cpmm's follow-up
    #: aggregation job)
    extra_job_latency: int = 0


_SPECS = [
    # -- matrix multiplication -------------------------------------------
    # broadcast one side, map-side multiply; partial aggregation needed
    # when the non-broadcast side is split along the common dimension
    MethodSpec("mapmm", broadcast_inputs=(1,), needs_aggregation=False),
    MethodSpec("mapmm_agg", broadcast_inputs=(1,), needs_aggregation=True),
    # fused t(X) %*% (w * (X %*% v)): single pass over X, vector broadcast
    MethodSpec("mapmmchain", broadcast_inputs=(1, 2), needs_aggregation=True),
    # transpose-self t(X) %*% X: map-side outer products + aggregation
    MethodSpec("tsmm", needs_aggregation=True),
    # cross-product join on the common dimension: own MMCJ job plus an
    # aggregation job (modelled as extra latency)
    MethodSpec(
        "cpmm",
        map_capable=False,
        uses_shuffle=True,
        needs_aggregation=True,
        job_type=JobType.MMCJ,
        extra_job_latency=1,
    ),
    # replication-based matrix multiply: one GMR job with shuffle
    MethodSpec("rmm", map_capable=False, uses_shuffle=True),
    # -- elementwise -------------------------------------------------------
    MethodSpec("map_binary", reduce_capable=True, broadcast_inputs=(1,)),
    MethodSpec("shuffle_binary", map_capable=False, uses_shuffle=True),
    MethodSpec("scalar_binary", reduce_capable=True),
    MethodSpec("unary", reduce_capable=True),
    # -- aggregates --------------------------------------------------------
    MethodSpec("uagg", needs_aggregation=True),
    MethodSpec("uagg_row", reduce_capable=True),  # per-row-block, no shuffle
    MethodSpec("tak", broadcast_inputs=(1, 2), needs_aggregation=True),
    MethodSpec("tak_shuffle", map_capable=False, uses_shuffle=True,
               needs_aggregation=True),
    # -- reorg / indexing / data ------------------------------------------
    MethodSpec("reorg_t", map_capable=False, uses_shuffle=True),
    MethodSpec("diag", reduce_capable=True),
    MethodSpec("rix", reduce_capable=False),
    MethodSpec("lix", map_capable=False, uses_shuffle=True),
    MethodSpec("ctable", map_capable=False, uses_shuffle=True),
    MethodSpec("append_map", broadcast_inputs=(1,), reduce_capable=True),
    MethodSpec("append_shuffle", map_capable=False, uses_shuffle=True),
    MethodSpec("rmempty", map_capable=False, uses_shuffle=True),
    # SystemML's MR cumsum is a multi-pass forward/backward cascade;
    # modelled as a shuffle job with an extra job latency
    MethodSpec("cumsum_mr", map_capable=False, uses_shuffle=True,
               extra_job_latency=1),
    MethodSpec("datagen", job_type=JobType.DATAGEN),
    MethodSpec("seq", job_type=JobType.DATAGEN),
]

METHODS = {spec.name: spec for spec in _SPECS}


def method_spec(name):
    spec = METHODS.get(name)
    if spec is None:
        raise KeyError(f"unknown MR method {name!r}")
    return spec
