"""Per-operator memory estimation.

SystemML's in-memory runtime pins operation inputs and outputs in memory
(paper Section 2.1), so the estimate of an operation is the sum of its
input sizes, its output size, and any operation-specific intermediate.
Unknown dimensions yield infinite estimates, which drives both the
MR fallback in operator selection and the "pruning blocks of unknowns"
optimizer technique.
"""

from __future__ import annotations

import math

from repro.compiler import hops as H
from repro.compiler import statement_blocks as SB

#: memory charged for a scalar value (boxed double + object overhead)
SCALAR_MEM = 64.0


def _output_mem(hop):
    if hop.is_scalar:
        return SCALAR_MEM
    return hop.mc.memory_estimate()


def estimate_hop_memory(hop):
    """Fill ``hop.output_mem`` and ``hop.mem_estimate`` (bytes)."""
    hop.output_mem = _output_mem(hop)

    if isinstance(hop, H.LiteralOp):
        hop.mem_estimate = SCALAR_MEM
        return
    if isinstance(hop, H.DataOp):
        if hop.is_read:
            hop.mem_estimate = hop.output_mem
        else:
            hop.mem_estimate = hop.inputs[0].output_mem
        return
    if isinstance(hop, H.FunctionOp):
        # opaque call: inputs are passed by reference; body is costed via
        # its own blocks
        hop.mem_estimate = sum(inp.output_mem for inp in hop.inputs)
        return
    if isinstance(hop, H.FunctionOutput):
        hop.mem_estimate = hop.output_mem
        return

    input_mem = 0.0
    for inp in hop.inputs:
        input_mem += inp.output_mem
    intermediate = 0.0
    if isinstance(hop, H.LeftIndexingOp):
        # copy-on-write update of the target
        intermediate = hop.inputs[0].output_mem
    elif isinstance(hop, H.BinaryOp) and hop.op is H.OpCode.SOLVE:
        # LU factorization workspace of the coefficient matrix
        intermediate = hop.inputs[0].output_mem
    hop.mem_estimate = input_mem + hop.output_mem + intermediate
    if math.isnan(hop.mem_estimate):
        hop.mem_estimate = math.inf


def estimate_dag_memory(roots):
    """Estimate memory for every hop in a DAG; returns True if the DAG
    contains a matrix operation with unknown output size."""
    has_unknown = False
    for hop in H.iter_dag(roots):
        estimate_hop_memory(hop)
        if hop.is_matrix and not isinstance(hop, (H.FunctionOp,)):
            if not hop.mc.dims_known:
                has_unknown = True
    return has_unknown


def estimate_program_memory(block_program):
    """Estimate memory program-wide and mark blocks needing dynamic
    recompilation (any matrix operator with unknown output size)."""
    for block in block_program.all_blocks():
        if isinstance(block, SB.GenericBlock):
            unknown = estimate_dag_memory(block.hop_roots)
            block.requires_recompile = unknown
            for hop in H.iter_dag(block.hop_roots):
                hop.requires_recompile = unknown
        elif isinstance(block, SB.IfBlock):
            estimate_dag_memory([block.predicate.hop_root])
        elif isinstance(block, SB.WhileBlock):
            estimate_dag_memory([block.predicate.hop_root])
        elif isinstance(block, SB.ForBlock):
            for holder in (block.from_holder, block.to_holder, block.incr_holder):
                if holder is not None:
                    estimate_dag_memory([holder.hop_root])
    return block_program
