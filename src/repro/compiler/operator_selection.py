"""Operator selection: CP/MR execution types and MR physical methods.

Implements the paper's memory-sensitive compilation decisions (Section
2.1, Appendix B Table 4):

* an operator executes in CP iff its memory estimate fits the CP budget
  (70% of the CP heap) — the simple-yet-effective SystemML heuristic;
* map-side MR operators (mapmm, mapmmchain, map-binary, map-append)
  require their broadcast input to fit the MR task budget;
* fused patterns: ``t(X) %*% X`` -> tsmm; ``t(X) %*% (w * (X %*% v))`` ->
  mapmmchain; ``t(X) %*% v`` with an MR transpose -> the transpose-mm
  rewrite ``(t(v) %*% X)^T``;
* general matrix multiplication falls back to rmm (one shuffle job) or
  cpmm (cross-product join + aggregation job).

Only ``exec_type``, ``method``, and a few decision flags are written to
hops, so the resource optimizer can re-run selection for thousands of
candidate configurations without rebuilding DAGs.
"""

from __future__ import annotations

from repro.common import DataType, ExecType
from repro.compiler import hops as H


def _fits(mem_bytes, budget_bytes):
    return mem_bytes <= budget_bytes


def _reset_decisions(hop):
    hop.exec_type = None
    hop.method = None
    if isinstance(hop, H.AggBinaryOp):
        hop.transpose_rewrite = False


def _is_cp_only(hop):
    if isinstance(hop, (H.LiteralOp, H.FunctionOp, H.FunctionOutput)):
        return True
    if isinstance(hop, H.DataOp) and hop.kind in (
        H.DataOpKind.TRANSIENT_READ,
        H.DataOpKind.TRANSIENT_WRITE,
    ):
        return True
    if isinstance(hop, H.UnaryOp) and hop.op in (
        H.OpCode.PRINT,
        H.OpCode.STOP,
        H.OpCode.NROW,
        H.OpCode.NCOL,
        H.OpCode.LENGTH,
        H.OpCode.CAST_AS_SCALAR,
        H.OpCode.CAST_AS_DOUBLE,
        H.OpCode.CAST_AS_INT,
        H.OpCode.CAST_AS_BOOLEAN,
    ):
        return True
    # solve() is a CP-only builtin in SystemML
    if isinstance(hop, H.BinaryOp) and hop.op is H.OpCode.SOLVE:
        return True
    # pure scalar computation
    if hop.is_scalar and all(inp.is_scalar for inp in hop.inputs):
        return True
    return False


def _select_matmult(hop, parents, cp_budget, mr_budget):
    """Physical method for an MR matrix multiplication."""
    left, right = hop.inputs
    left_mem = left.output_mem
    right_mem = right.output_mem

    # tsmm: t(X) %*% X over the same X (post-CSE object identity)
    if (
        isinstance(left, H.ReorgOp)
        and left.op is H.OpCode.TRANSPOSE
        and left.inputs[0] is right
    ):
        hop.method = "tsmm"
        return

    # mapmmchain: t(X) %*% (X %*% v) or t(X) %*% (w * (X %*% v))
    if isinstance(left, H.ReorgOp) and left.op is H.OpCode.TRANSPOSE:
        x = left.inputs[0]
        chain = _match_mmchain(x, right, parents)
        if chain is not None:
            vectors_mem = sum(v.output_mem for v in chain)
            if _fits(vectors_mem, mr_budget):
                hop.method = "mapmmchain"
                hop.mmchain_vectors = chain
                return

    # transpose-mm rewrite: t(X) %*% v with MR-sized X and broadcastable v
    if (
        isinstance(left, H.ReorgOp)
        and left.op is H.OpCode.TRANSPOSE
        and left.mem_estimate > cp_budget
        and right.mc.cols == 1
        and _fits(right.output_mem, mr_budget)
    ):
        hop.transpose_rewrite = True
        hop.method = "mapmm_agg"  # broadcast of t(v); agg over row blocks
        return

    # mapmm: broadcast the smaller side if it fits the task budget;
    # broadcasting the right side keeps row-blocked independence (no agg),
    # broadcasting the left side requires aggregation over the common dim
    right_fits = _fits(right_mem, mr_budget)
    left_fits = _fits(left_mem, mr_budget)
    if right_fits and (not left_fits or right_mem <= left_mem):
        hop.method = "mapmm"
        return
    if left_fits:
        hop.method = "mapmm_agg"
        hop.broadcast_left = True
        return

    # shuffle-based fallback: rmm for small outputs, cpmm otherwise
    out_cells = hop.mc.cells
    left_cells = left.mc.cells
    right_cells = right.mc.cells
    if (
        out_cells is not None
        and left_cells is not None
        and right_cells is not None
        and out_cells <= min(left_cells, right_cells)
    ):
        hop.method = "rmm"
    else:
        hop.method = "cpmm"


def _match_mmchain(x, right, parents):
    """Match ``right`` against (X %*% v) or (w * (X %*% v)); returns the
    broadcast vector hops [v] or [v, w], or None."""

    def single_consumer(hop):
        return len(parents.get(hop.hop_id, [])) <= 1

    if (
        isinstance(right, H.AggBinaryOp)
        and right.inputs[0] is x
        and right.inputs[1].mc.cols == 1
        and single_consumer(right)
    ):
        return [right.inputs[1]]
    if (
        isinstance(right, H.BinaryOp)
        and right.op is H.OpCode.MULT
        and single_consumer(right)
    ):
        for w, inner in (right.inputs, reversed(right.inputs)):
            if (
                isinstance(inner, H.AggBinaryOp)
                and inner.inputs[0] is x
                and inner.inputs[1].mc.cols == 1
                and w.is_matrix
                and w.mc.cols == 1
                and single_consumer(inner)
            ):
                return [inner.inputs[1], w]
    return None


def _is_broadcast_vector(hop, mr_budget):
    return (
        hop.mc.rows == 1 or hop.mc.cols == 1
    ) and _fits(hop.output_mem, mr_budget)


def _select_binary(hop, mr_budget):
    left, right = hop.inputs
    if hop.op is H.OpCode.CBIND or hop.op is H.OpCode.RBIND:
        if _fits(right.output_mem, mr_budget):
            hop.method = "append_map"
        else:
            hop.method = "append_shuffle"
        return
    if not (left.is_matrix and right.is_matrix):
        hop.method = "scalar_binary"
        return
    # matrix-matrix: broadcast a vector side when possible
    if _is_broadcast_vector(right, mr_budget):
        hop.method = "map_binary"
        return
    if _is_broadcast_vector(left, mr_budget):
        hop.method = "map_binary"
        hop.broadcast_left = True
        return
    if right.mc.same_dims(left.mc) and _fits(right.output_mem, mr_budget):
        # small equal-sized matrix: still broadcastable
        hop.method = "map_binary"
        return
    hop.method = "shuffle_binary"


def _select_method(hop, parents, cp_budget, mr_budget):
    if isinstance(hop, H.AggBinaryOp):
        _select_matmult(hop, parents, cp_budget, mr_budget)
        return
    if isinstance(hop, H.BinaryOp):
        _select_binary(hop, mr_budget)
        return
    if isinstance(hop, H.UnaryOp):
        if hop.op is H.OpCode.REMOVE_EMPTY:
            hop.method = "rmempty"  # global compaction needs a shuffle
        elif hop.op is H.OpCode.CUMSUM:
            hop.method = "cumsum_mr"  # multi-pass prefix aggregation
        else:
            hop.method = "unary"
        return
    if isinstance(hop, H.AggUnaryOp):
        hop.method = (
            "uagg_row" if hop.direction is H.AggDirection.ROW else "uagg"
        )
        return
    if isinstance(hop, H.TernaryAggOp):
        vec_mem = hop.inputs[1].output_mem + hop.inputs[2].output_mem
        hop.method = "tak" if _fits(vec_mem, mr_budget) else "tak_shuffle"
        return
    if isinstance(hop, H.ReorgOp):
        hop.method = "reorg_t" if hop.op is H.OpCode.TRANSPOSE else "diag"
        return
    if isinstance(hop, H.IndexingOp):
        hop.method = "rix"
        return
    if isinstance(hop, H.LeftIndexingOp):
        hop.method = "lix"
        return
    if isinstance(hop, H.TernaryOp):
        hop.method = "ctable"
        return
    if isinstance(hop, H.DataGenOp):
        hop.method = "seq" if hop.gen_method is H.OpCode.SEQ else "datagen"
        return
    if isinstance(hop, H.DataOp):
        hop.method = "data"
        return
    raise TypeError(f"no MR method for {type(hop).__name__}")


def select_operators(roots, cp_budget_bytes, mr_budget_bytes):
    """Assign exec types and methods to all hops of one DAG in place."""
    parents = H.build_parent_map(roots)
    for hop in H.iter_dag(roots):
        _reset_decisions(hop)
        hop.broadcast_left = False
        if _is_cp_only(hop):
            hop.exec_type = ExecType.CP
            continue
        if isinstance(hop, H.DataOp):
            if hop.kind is H.DataOpKind.PERSISTENT_READ:
                hop.exec_type = (
                    ExecType.CP
                    if _fits(hop.output_mem, cp_budget_bytes)
                    else ExecType.MR
                )
            else:  # persistent write follows its producer
                producer = hop.inputs[0]
                hop.exec_type = producer.exec_type or ExecType.CP
            continue
        if hop.data_type is DataType.SCALAR and all(
            (inp.exec_type is ExecType.CP or inp.is_scalar)
            for inp in hop.inputs
        ) and _fits(hop.mem_estimate, cp_budget_bytes):
            hop.exec_type = ExecType.CP
            continue
        if _fits(hop.mem_estimate, cp_budget_bytes):
            hop.exec_type = ExecType.CP
            if isinstance(hop, H.AggBinaryOp):
                _select_cp_matmult(hop)
            continue
        hop.exec_type = ExecType.MR
        _select_method(hop, parents, cp_budget_bytes, mr_budget_bytes)
    return roots


def _select_cp_matmult(hop):
    """CP fused matrix-multiply variants.

    ``t(X) %*% X`` uses the CP tsmm kernel (single pass, no transpose
    materialization); ``t(X) %*% v`` uses the transpose-mm rewrite
    ``(t(v) %*% X)^T`` so the large transpose is never materialized —
    this is what keeps iterative scripts fully in-memory once X fits the
    CP budget (paper Appendix B, Table 4).
    """
    left, right = hop.inputs
    if not (isinstance(left, H.ReorgOp) and left.op is H.OpCode.TRANSPOSE):
        return
    if left.inputs[0] is right:
        hop.method = "tsmm"
    else:
        hop.transpose_rewrite = True
