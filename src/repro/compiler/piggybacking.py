"""Piggybacking: packing MR operators of a DAG into a minimal number of
MR jobs.

Implements the paper's bin-packing step (Appendix B, Table 4) with the
job-composition constraints of SystemML:

* a job has a map phase, at most one shuffle group, and a reduce phase;
* map-capable operators chain in the map phase while their producers are
  job inputs or other map-phase operators;
* aggregation operators (tsmm, mapmmchain, uagg, ...) place their final
  aggregation in the reduce phase; several can share a job;
* shuffle operators (transpose, ctable, cpmm, rmm, ...) occupy the single
  shuffle slot;
* the *sum* of all broadcast inputs of a job must fit in the MR task
  budget — this is exactly the scan-sharing memory constraint the paper
  uses to motivate memory-based grid enumeration (two ``X %*% v`` /
  ``X %*% w`` map multiplies share one job only if v and w fit together);
* cpmm requires its own MMCJ job; datagen operators start DATAGEN jobs.

The algorithm is greedy over topological order, opening a new job
whenever no remaining operator fits the current one, which yields the
minimal job count for series-parallel DAGs and a good approximation in
general (same spirit as SystemML's level-wise bin packing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import ExecType
from repro.compiler import hops as H
from repro.compiler.lops import JobType, Phase, method_spec


@dataclass
class JobGroup:
    """One MR job: its members (hops) with assigned phases."""

    job_type: JobType = None
    members: list = field(default_factory=list)  # hops in topo order
    phases: dict = field(default_factory=dict)  # hop_id -> Phase
    shuffle_used: bool = False
    broadcast_mem: float = 0.0
    #: extra whole-job latencies (cpmm aggregation job)
    extra_job_latency: int = 0

    def phase_of(self, hop):
        return self.phases.get(hop.hop_id)


def _effective_inputs(hop):
    """Data inputs actually scanned/broadcast by a (possibly fused)
    operator.

    Fused MR matrix multiplications reference the *underlying* data
    instead of folded intermediate hops:

    * tsmm ``t(X) %*% X`` scans X once (the transpose is implicit);
    * mapmmchain ``t(X) %*% (w * (X %*% v))`` scans X and broadcasts
      v (and w);
    * the transpose-mm rewrite ``t(X) %*% v -> t(t(v) %*% X)`` scans X
      and broadcasts v, never materializing t(X).
    """
    if isinstance(hop, H.AggBinaryOp):
        left, right = hop.inputs
        if hop.method == "mapmmchain":
            x = left.inputs[0]  # matcher guarantees left = t(X)
            vectors = getattr(hop, "mmchain_vectors", [])
            return [x] + list(vectors)
        if hop.method == "tsmm":
            return [right]  # tsmm(X) = t(X) %*% X, single scan of X
        if hop.transpose_rewrite:
            return [left.inputs[0], right]
    return list(hop.inputs)


def collect_skipped_hops(roots):
    """Hops folded into fused operators (mapmmchain inner ops, rewritten
    transposes): they produce no step/instruction of their own.

    A hop is skipped when it is not a DAG root and *every* effective
    consumer (a hop referencing it in its effective inputs) is itself
    skipped — or it has no effective consumer at all.  Consumers are
    processed before producers so chains of folded hops collapse
    transitively.
    """
    order = H.iter_dag(roots)
    eparents = {}
    raw_parents = H.build_parent_map(roots)
    for hop in order:
        for inp in _effective_inputs(hop):
            eparents.setdefault(inp.hop_id, []).append(hop)
    skipped = set()
    for hop in reversed(order):
        if not raw_parents.get(hop.hop_id):
            continue  # DAG root (transient/persistent write or side effect)
        hop_eparents = eparents.get(hop.hop_id, [])
        if all(p.hop_id in skipped for p in hop_eparents):
            skipped.add(hop.hop_id)
    return skipped


def _broadcast_input_hops(hop, skipped=None):
    """Input hops shipped via distributed cache for this operator."""
    spec = method_spec(hop.method)
    inputs = _effective_inputs(hop)
    out = []
    for idx in spec.broadcast_inputs:
        if getattr(hop, "broadcast_left", False):
            idx = 0 if idx == 1 else idx
        if idx < len(inputs) and inputs[idx].is_matrix:
            out.append(inputs[idx])
    return out


def _depends_on_group_via_outside(hop, group_ids):
    """True if ``hop`` transitively depends on a member of the job
    (``group_ids``: hop_id -> phase) through at least one hop *outside*
    the job.  Such an assignment would make the job depend on its own
    output."""
    stack = [inp for inp in hop.inputs if inp.hop_id not in group_ids]
    seen = set()
    while stack:
        node = stack.pop()
        if node.hop_id in seen:
            continue
        seen.add(node.hop_id)
        for inp in node.inputs:
            if inp.hop_id in group_ids:
                return True
            stack.append(inp)
    return False


class _JobBuilder:
    def __init__(self, mr_budget_bytes, in_current_job):
        self.group = JobGroup()
        self.mr_budget = mr_budget_bytes
        #: hop_id -> JobGroup for hops assigned to previous jobs
        self.in_current_job = in_current_job

    def try_assign(self, hop, assigned_elsewhere):
        spec = method_spec(hop.method)
        group = self.group
        # job type compatibility
        target_type = spec.job_type
        if group.job_type is None:
            new_type = target_type
        elif group.job_type is target_type:
            new_type = group.job_type
        elif group.job_type is JobType.DATAGEN and target_type is JobType.GMR:
            # map ops may chain onto a datagen job
            new_type = JobType.DATAGEN
        else:
            return False
        if target_type is JobType.MMCJ and group.members:
            return False  # cpmm runs alone
        if group.job_type is JobType.MMCJ:
            return False

        inputs = _effective_inputs(hop)
        broadcasts = _broadcast_input_hops(hop)
        broadcast_ids = {b.hop_id for b in broadcasts}

        # reject assignments that would create a cycle between this job
        # and operators outside it: the candidate must not depend on a
        # current member through any hop outside the job (e.g. an MR
        # multiply whose CP-computed vector derives from this job's own
        # output must go to a later job)
        if group.members and _depends_on_group_via_outside(hop, group.phases):
            return False

        # broadcast inputs must be materialized before the job starts
        for b in broadcasts:
            if b.hop_id in group.phases:
                return False
            if (
                b.exec_type is ExecType.MR
                and not isinstance(b, H.DataOp)
                and b.hop_id not in assigned_elsewhere
            ):
                return False
        extra_broadcast = sum(
            b.output_mem for b in broadcasts
        )
        if group.broadcast_mem + extra_broadcast > self.mr_budget:
            return False

        # classify producers
        producer_phases = []
        for inp in inputs:
            if inp.hop_id in broadcast_ids or inp.is_scalar:
                continue
            if inp.hop_id in group.phases:
                producer_phases.append(group.phases[inp.hop_id])
            elif (
                inp.exec_type is ExecType.MR
                and not isinstance(inp, H.DataOp)
                and inp.hop_id not in assigned_elsewhere
            ):
                return False  # MR producer not yet materialized anywhere
            else:
                producer_phases.append(Phase.MAP)  # job input (HDFS var)

        all_map = all(p is Phase.MAP for p in producer_phases)
        any_reduce = any(p is not Phase.MAP for p in producer_phases)

        if spec.uses_shuffle:
            if group.shuffle_used or not all_map:
                return False
            phase = Phase.SHUFFLE
            group.shuffle_used = True
        elif spec.needs_aggregation:
            if not all_map:
                return False
            phase = Phase.REDUCE
        elif spec.map_capable and all_map:
            phase = Phase.MAP
        elif spec.reduce_capable and not all_map:
            # consumers of reduce-phase results: every non-broadcast
            # producer must itself be reduce-phase in this job
            in_job_ok = all(
                p in (Phase.REDUCE, Phase.SHUFFLE) for p in producer_phases
            )
            boundary_inputs = [
                inp
                for inp in inputs
                if inp.hop_id not in group.phases
                and inp.hop_id not in broadcast_ids
                and not inp.is_scalar
            ]
            # boundary matrices in reduce must be broadcastable
            extra = sum(b.output_mem for b in boundary_inputs)
            if not in_job_ok:
                return False
            if boundary_inputs:
                if group.broadcast_mem + extra_broadcast + extra > self.mr_budget:
                    return False
                extra_broadcast += extra
            phase = Phase.REDUCE
        else:
            return False

        group.job_type = new_type
        group.members.append(hop)
        group.phases[hop.hop_id] = phase
        group.broadcast_mem += extra_broadcast
        group.extra_job_latency += spec.extra_job_latency
        return True


def pack_jobs(roots, mr_budget_bytes):
    """Pack the MR operators of one DAG into jobs.

    Returns ``(jobs, skipped)`` where ``jobs`` is a list of
    :class:`JobGroup` in dependency order and ``skipped`` is the set of
    hop ids folded into fused operators.
    """
    skipped = collect_skipped_hops(roots)
    mr_hops = [
        hop
        for hop in H.iter_dag(roots)
        if hop.exec_type is ExecType.MR and hop.hop_id not in skipped
        and not (isinstance(hop, H.DataOp))
    ]
    jobs = []
    assigned_elsewhere = {}
    remaining = list(mr_hops)
    while remaining:
        builder = _JobBuilder(mr_budget_bytes, assigned_elsewhere)
        taken = []
        for hop in remaining:
            if builder.try_assign(hop, assigned_elsewhere):
                taken.append(hop)
        if not taken:
            # should not happen: force-open a dedicated job for the head
            head = remaining[0]
            builder = _JobBuilder(float("inf"), assigned_elsewhere)
            builder.try_assign(head, assigned_elsewhere)
            taken = [head]
        for hop in taken:
            assigned_elsewhere[hop.hop_id] = builder.group
        jobs.append(builder.group)
        taken_ids = {hop.hop_id for hop in taken}
        remaining = [hop for hop in remaining if hop.hop_id not in taken_ids]
    return jobs, skipped
