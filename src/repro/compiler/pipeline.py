"""End-to-end compilation pipeline driver.

``compile_program`` runs the full chain: parse -> validate -> statement
blocks -> HOP DAGs -> rewrites -> size propagation -> memory estimates,
and (when a resource configuration is given) operator selection,
piggybacking, and instruction generation for every block.

``compile_plans`` / ``recompile_block_plans`` regenerate only the
resource-dependent phases (operator selection downward); the resource
optimizer calls them thousands of times during grid enumeration, so they
deliberately avoid touching DAG structure or size propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import ResourceConfig
from repro.compiler import statement_blocks as SB
from repro.compiler.hop_builder import build_hops
from repro.compiler.memory_estimates import estimate_program_memory
from repro.compiler.operator_selection import select_operators
from repro.compiler.rewrites import apply_dynamic_rewrites, apply_static_rewrites
from repro.compiler.runtime_prog import (
    generate_block_plan,
    generate_predicate_plan,
)
from repro.compiler.size_propagation import propagate_sizes
from repro.compiler.statement_blocks import build_program
from repro.dml import parse, validate
from repro.obs import get_tracer

_INF = float("inf")

#: maximum local worker count of a task-parallel (parfor) loop; SystemML
#: bounds local parfor parallelism by the number of cores
PARFOR_MAX_LOCAL_DOP = 8


def parfor_dop(block):
    """Degree of parallelism of a parfor loop: bounded by its trip count
    (when known) and the local worker cap."""
    from repro.compiler.size_propagation import DEFAULT_LOOP_ITERATIONS

    trip = (
        block.known_iterations
        if block.known_iterations is not None
        else DEFAULT_LOOP_ITERATIONS
    )
    return max(1, min(trip, PARFOR_MAX_LOCAL_DOP))


def _assign_parfor_budget_divisors(block_program):
    """Multiply the CP-budget divisor of blocks nested in parfor loops:
    k concurrent workers each hold their own intermediates, so each works
    against budget/k (paper Section 6: "the degree of parallelism
    affects memory requirements ... additional pruning strategies")."""

    def visit(blocks, divisor):
        for block in blocks:
            if isinstance(block, SB.GenericBlock):
                block.budget_divisor = divisor
            elif isinstance(block, SB.IfBlock):
                visit(block.body, divisor)
                visit(block.else_body, divisor)
            elif isinstance(block, SB.WhileBlock):
                visit(block.body, divisor)
            elif isinstance(block, SB.ForBlock):
                inner = divisor * (parfor_dop(block) if block.parallel else 1)
                visit(block.body, inner)

    visit(block_program.blocks, 1)
    for func in block_program.functions.values():
        visit(func.blocks, 1)


@dataclass
class CompileStats:
    """Counters exposed for the optimization-overhead experiments
    (Table 3 reports block recompilations and cost-model invocations)."""

    block_compilations: int = 0

    def reset(self):
        self.block_compilations = 0


@dataclass
class CompiledProgram:
    """A fully compiled program plus its compilation context."""

    block_program: SB.BlockProgram = None
    input_meta: dict = field(default_factory=dict)
    resource: ResourceConfig = None
    stats: CompileStats = field(default_factory=CompileStats)
    #: memoizing :class:`~repro.compiler.plan_cache.PlanCache` attached
    #: by the resource optimizer (None until one runs with caching on);
    #: dynamic recompilation invalidates through this reference
    plan_cache: object = field(default=None, repr=False, compare=False)

    @property
    def blocks(self):
        return self.block_program.blocks

    @property
    def functions(self):
        return self.block_program.functions

    def all_blocks(self, include_functions=True):
        return self.block_program.all_blocks(include_functions)

    def num_blocks(self, include_functions=True):
        return self.block_program.num_blocks(include_functions)

    def last_level_blocks(self, include_functions=True):
        for block in self.all_blocks(include_functions):
            if isinstance(block, SB.GenericBlock):
                yield block


def build_and_analyze(source, script_args=None, input_meta=None):
    """Front half of the pipeline: everything up to memory estimates
    (resource independent)."""
    program_ast = parse(source)
    validate(program_ast, script_args)
    block_program = build_program(program_ast, script_args, source)
    build_hops(block_program)
    # initial propagation fills constants needed by branch removal
    propagate_sizes(block_program, input_meta)
    apply_static_rewrites(block_program)
    propagate_sizes(block_program, input_meta)
    apply_dynamic_rewrites(block_program)
    propagate_sizes(block_program, input_meta)
    estimate_program_memory(block_program)
    _assign_parfor_budget_divisors(block_program)
    return block_program


def compile_plans(compiled, resource):
    """Generate plans for every block under ``resource`` (in place)."""
    compiled.resource = resource
    for block in compiled.all_blocks():
        _compile_block(compiled, block, resource)
    return compiled


def _compile_block(compiled, block, resource):
    if isinstance(block, SB.GenericBlock):
        recompile_block_plan(compiled, block, resource)
    elif isinstance(block, SB.IfBlock):
        _compile_predicate(block.predicate, resource)
    elif isinstance(block, SB.WhileBlock):
        _compile_predicate(block.predicate, resource)
    elif isinstance(block, SB.ForBlock):
        for holder in (block.from_holder, block.to_holder, block.incr_holder):
            if holder is not None:
                _compile_predicate(holder, resource)


def _compile_predicate(holder, resource):
    # predicates evaluate in CP: compile with unconstrained CP budget
    select_operators([holder.hop_root], _INF, _INF)
    holder.plan = generate_predicate_plan(holder, resource)


def recompile_block_plan(compiled, block, resource, cache=None):
    """Re-run the resource-dependent phases for one generic block.

    This is the cheap path used by the resource optimizer's what-if
    enumeration: operator selection -> piggybacking -> instructions.

    With a :class:`~repro.compiler.plan_cache.PlanCache`, budgets that
    stay within a block's memory-estimate bucket return the previously
    generated plan without recompiling (and without counting a block
    compilation — ``stats.block_compilations`` reports real compiles).
    """
    key = None
    if cache is not None:
        key = cache.key_for(block, resource)
        plan = cache.lookup(key)
        if plan is not None:
            block.plan = plan
            return plan
    select_operators(
        block.hop_roots,
        resource.cp_budget_bytes / block.budget_divisor,
        resource.mr_budget_bytes(block.block_id),
    )
    block.plan = generate_block_plan(block, resource)
    compiled.stats.block_compilations += 1
    get_tracer().incr("compile.block_compilations")
    if key is not None:
        cache.store(key, block.plan)
    return block.plan


def _plan_holders(compiled):
    """Yield every object carrying a compiled plan (blocks + predicates)."""
    for block in compiled.all_blocks():
        if isinstance(block, SB.GenericBlock):
            yield block
        elif isinstance(block, (SB.IfBlock, SB.WhileBlock)):
            yield block.predicate
        elif isinstance(block, SB.ForBlock):
            for holder in (block.from_holder, block.to_holder,
                           block.incr_holder):
                if holder is not None:
                    yield holder


def capture_plans(compiled):
    """Snapshot the resource-dependent compilation state.

    Returns an opaque token for :func:`restore_plans`; together they let
    what-if analyses (``ElasticMLSession.estimate_cost``) recompile under
    a hypothetical configuration and then put the program back exactly as
    it was.
    """
    return (
        compiled.resource,
        compiled.stats.block_compilations,
        [(holder, getattr(holder, "plan", None))
         for holder in _plan_holders(compiled)],
    )


def restore_plans(compiled, snapshot):
    """Undo plan mutations made since :func:`capture_plans`."""
    resource, block_compilations, plans = snapshot
    compiled.resource = resource
    compiled.stats.block_compilations = block_compilations
    for holder, plan in plans:
        holder.plan = plan


def compile_program(source, script_args=None, input_meta=None, resource=None):
    """Compile a DML script into a :class:`CompiledProgram`.

    ``input_meta`` maps input file names to
    :class:`~repro.common.MatrixCharacteristics`.  When ``resource`` is
    None, a minimum configuration (512 MB / 512 MB) is used; callers that
    run the resource optimizer re-plan afterwards via
    :func:`compile_plans`.
    """
    block_program = build_and_analyze(source, script_args, input_meta)
    compiled = CompiledProgram(
        block_program=block_program, input_meta=dict(input_meta or {})
    )
    if resource is None:
        resource = ResourceConfig(cp_heap_mb=512.0, mr_heap_mb=512.0)
    compile_plans(compiled, resource)
    return compiled
