"""Memoizing plan cache for the recompilation hot path.

Grid enumeration (Algorithm 1) recompiles every last-level block at
every (r_c, r_i) grid point, yet all compilation decisions are
*threshold* comparisons of operator memory estimates against the CP/MR
budgets (operator selection's ``fits`` checks, piggybacking's broadcast
sums).  The generated plan therefore only changes when a budget crosses
one of finitely many per-block thresholds — costing generated plans by
structural signature (Boehm et al., "Costing Generated Runtime Execution
Plans", 2017) and memory-threshold bucketing of the search space (Will
et al., "Crispy", 2022) both exploit exactly this.

:func:`block_thresholds` enumerates a block's thresholds from its HOP
DAG:

* **CP budget**: every comparison is ``mem_estimate <= cp_budget`` or
  ``output_mem <= cp_budget`` (operator selection), so the thresholds
  are the finite ``mem_estimate``/``output_mem`` values of the DAG;
* **MR budget**: operator selection compares single ``output_mem``
  values and small sums of broadcast-vector memories (mapmmchain, tak),
  and piggybacking compares cumulative broadcast sums of a job group —
  so the thresholds are the ``output_mem`` values plus subset sums of
  the broadcastable (vector-shaped) outputs.

Two budgets falling between the same pair of consecutive thresholds make
*identical* decisions everywhere, hence compile to an identical plan:
:class:`PlanCache` keys cached plans by ``(block_id, cp_bucket,
mr_bucket)`` and :func:`repro.compiler.pipeline.recompile_block_plan`
returns the cached plan without recompiling on a hit.

Cached plans are invalidated per block by dynamic recompilation
(:mod:`repro.compiler.recompile`) and by the runtime adapter's size
refresh: both update memory estimates, which moves the thresholds.

Note: a cache hit returns the plan object generated at the *first*
budget of the bucket, so ``BlockPlan.cp_heap_mb``/``mr_heap_mb`` record
that generation-time configuration, not the current probe point; the
instructions are identical either way, and execution paths
(:meth:`Interpreter.run`) regenerate plans without the cache.
"""

from __future__ import annotations

import itertools
import math
import threading
from bisect import bisect_right

from repro.compiler import hops as H
from repro.obs import get_tracer

#: broadcast subset sums are enumerated exhaustively up to this size;
#: piggyback groups with more simultaneous broadcasts are vanishingly
#: rare (each broadcast is a whole extra distributed-cache input)
_MAX_BROADCAST_SUBSET = 3
#: above this many broadcast candidates, fall back to pairwise sums
_MAX_BROADCAST_CANDIDATES = 12


def _is_broadcastable(hop):
    """Vector-shaped outputs are the broadcast candidates of operator
    selection (mapmm/map_binary/mmchain/tak) and piggybacking."""
    if not hop.is_matrix:
        return False
    mc = hop.mc
    return mc.rows == 1 or mc.cols == 1


def block_thresholds(block):
    """Budget thresholds (bytes) of one generic block.

    Returns ``(cp_thresholds, mr_thresholds)`` as sorted tuples; budgets
    with equal ``bisect_right`` positions in them compile identically.
    """
    cp_values = set()
    mr_values = set()
    broadcast_mems = []
    for hop in H.iter_dag(block.hop_roots):
        for value in (hop.mem_estimate, hop.output_mem):
            if math.isfinite(value) and value > 0:
                cp_values.add(value)
        out = hop.output_mem
        if math.isfinite(out) and out > 0:
            mr_values.add(out)
            if _is_broadcastable(hop):
                broadcast_mems.append(out)
    if len(broadcast_mems) > _MAX_BROADCAST_CANDIDATES:
        sizes = (2,)
        mr_values.add(sum(broadcast_mems))
    else:
        sizes = range(2, _MAX_BROADCAST_SUBSET + 1)
    for size in sizes:
        for combo in itertools.combinations(broadcast_mems, size):
            mr_values.add(sum(combo))
    return tuple(sorted(cp_values)), tuple(sorted(mr_values))


class PlanCache:
    """Cache of compiled block plans, keyed by budget buckets.

    One instance serves one program (or one deep copy of it: the
    task-parallel optimizer's workers each hold their own cache, sharing
    the thresholds computed by the master — ``copy.deepcopy`` of a cache
    yields an *empty* cache with the same thresholds, so deep-copying a
    :class:`CompiledProgram` does the right thing automatically).

    Unlike deep copy, *pickling* preserves the full cache state
    (thresholds, plans, and counters): the process-pool optimizer
    backend ships one pickled program snapshot — cache included — to
    each worker at startup, and every worker then grows its own private
    copy.  Worker caches are folded back via :meth:`merge`.

    All operations take an internal lock, so one instance can be shared
    by concurrent threads — the serving layer attaches a single cache to
    every deep copy of a cached master program, and cross-tenant merges
    cannot observe (or produce) a torn state.  ``max_plans`` bounds the
    cache with LRU eviction (None = unbounded, the single-program
    optimizer default; long-lived cross-tenant caches should be
    bounded).
    """

    def __init__(self, thresholds=None, max_plans=None):
        #: block_id -> (cp_thresholds, mr_thresholds)
        self.thresholds = dict(thresholds) if thresholds else {}
        #: (block_id, cp_bucket, mr_bucket) -> BlockPlan, in LRU order
        #: (least recently used first)
        self.plans = {}
        self.max_plans = max_plans
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def __deepcopy__(self, memo):
        clone = PlanCache(max_plans=self.max_plans)
        clone.thresholds = self.thresholds  # shared, by design
        return clone

    def __getstate__(self):
        # locks do not pickle; the unpickling process gets a fresh one
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # pre-LRU pickles (older snapshots) lack the bound/counter
        self.__dict__.setdefault("max_plans", None)
        self.__dict__.setdefault("evictions", 0)
        self._lock = threading.Lock()

    # -- bucketing -----------------------------------------------------------

    def thresholds_for(self, block):
        # lock-free on purpose (hot path): get/setitem are atomic, and a
        # racing recomputation writes the identical tuple
        entry = self.thresholds.get(block.block_id)
        if entry is None:
            entry = self.thresholds[block.block_id] = block_thresholds(block)
        return entry

    def cp_bucket(self, block, resource):
        """Bucket index of the block-effective CP budget (the parfor
        divisor scales the budget exactly as compilation sees it)."""
        cp_thresholds, _ = self.thresholds_for(block)
        budget = resource.cp_budget_bytes / block.budget_divisor
        return bisect_right(cp_thresholds, budget)

    def mr_bucket(self, block, resource):
        """Bucket index of the block's MR task budget."""
        _, mr_thresholds = self.thresholds_for(block)
        return bisect_right(mr_thresholds, resource.mr_budget_bytes(block.block_id))

    def key_for(self, block, resource):
        return (
            block.block_id,
            self.cp_bucket(block, resource),
            self.mr_bucket(block, resource),
        )

    # -- cache operations ----------------------------------------------------

    def lookup(self, key):
        with self._lock:
            plan = self.plans.get(key)
            if plan is not None:
                # LRU touch: re-insert at the back
                self.plans[key] = self.plans.pop(key)
                self.hits += 1
            else:
                self.misses += 1
        if plan is not None:
            get_tracer().incr("plancache.hits")
        else:
            get_tracer().incr("plancache.misses")
        return plan

    def store(self, key, plan):
        with self._lock:
            self.plans[key] = plan
            self._evict_locked()

    def _evict_locked(self):
        if self.max_plans is None:
            return
        while len(self.plans) > self.max_plans:
            self.plans.pop(next(iter(self.plans)))
            self.evictions += 1

    def merge(self, other):
        """Fold a worker's cache into this one (task-parallel optimizer
        teardown): counters accumulate, and plans/thresholds present in
        ``other`` but missing here are adopted.  Adoption is sound
        because bucket keys identify *identical* generated plans — the
        worker's plan is exactly what a recompilation here would
        regenerate."""
        if other is self:
            return self
        # snapshot under the source lock, apply under ours: lock
        # ordering (other then self, never held together) cannot
        # deadlock, and a concurrently mutated source cannot tear the
        # iteration
        with other._lock:
            counters = (
                other.hits, other.misses, other.invalidations,
                other.evictions,
            )
            thresholds = list(other.thresholds.items())
            plans = list(other.plans.items())
        with self._lock:
            self.hits += counters[0]
            self.misses += counters[1]
            self.invalidations += counters[2]
            self.evictions += counters[3]
            for block_id, entry in thresholds:
                self.thresholds.setdefault(block_id, entry)
            for key, plan in plans:
                self.plans.setdefault(key, plan)
            self._evict_locked()
        return self

    def invalidate_block(self, block_id):
        """Drop a block's plans *and* thresholds (dynamic recompilation
        updates size/memory estimates, which moves the thresholds)."""
        with self._lock:
            stale = [key for key in self.plans if key[0] == block_id]
            for key in stale:
                del self.plans[key]
            self.thresholds.pop(block_id, None)
            self.invalidations += 1
        get_tracer().incr("plancache.invalidations")

    def clear(self):
        with self._lock:
            self.plans.clear()
            self.thresholds.clear()
