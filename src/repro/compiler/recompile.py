"""Dynamic recompilation of individual program blocks.

Used by the runtime when a block was marked ``requires_recompile``
(unknown intermediate sizes at initial compile time): the symbol table's
*actual* matrix characteristics are seeded into the block's transient
reads, sizes are re-propagated, dynamic rewrites re-applied, memory
re-estimated, and the plan regenerated (paper Section 2.1 and
Appendix B, "Runtime-Level").
"""

from __future__ import annotations

from repro.compiler import statement_blocks as SB
from repro.compiler.memory_estimates import estimate_dag_memory
from repro.compiler.pipeline import recompile_block_plan
from repro.compiler.rewrites import (
    apply_dynamic_simplifications,
    eliminate_common_subexpressions,
)
from repro.compiler.size_propagation import Env, Propagator, VarState


def make_env_from_states(var_states):
    """Build a propagation :class:`Env` from runtime variable knowledge.

    ``var_states`` maps variable name -> (data_type, MatrixCharacteristics,
    scalar_const_or_None).
    """
    env = Env()
    for name, (dtype, mc, const) in var_states.items():
        env.set(name, VarState(dtype, mc.copy(), const))
    return env


def recompile_block(compiled, block, resource, env):
    """Dynamically recompile one generic block with runtime knowledge.

    Returns the regenerated :class:`BlockPlan`.
    """
    assert isinstance(block, SB.GenericBlock)
    # runtime size knowledge changes memory estimates, which moves the
    # plan cache's budget thresholds: drop the block's cached plans (and
    # thresholds) before re-deriving them from the refreshed DAG
    cache = getattr(compiled, "plan_cache", None)
    if cache is not None:
        cache.invalidate_block(block.block_id)
    propagator = Propagator(compiled.block_program, compiled.input_meta)
    propagator.propagate_dag(block.hop_roots, env, update_env=False)
    block.hop_roots = apply_dynamic_simplifications(block.hop_roots)
    block.hop_roots = eliminate_common_subexpressions(block.hop_roots)
    propagator.propagate_dag(block.hop_roots, env, update_env=False)
    estimate_dag_memory(block.hop_roots)
    return recompile_block_plan(compiled, block, resource, cache=cache)


def recompile_predicate(compiled, holder, resource, env):
    """Re-propagate and re-plan a predicate DAG with runtime knowledge."""
    from repro.compiler.pipeline import _compile_predicate

    propagator = Propagator(compiled.block_program, compiled.input_meta)
    propagator.propagate_dag([holder.hop_root], env, update_env=False)
    estimate_dag_memory([holder.hop_root])
    _compile_predicate(holder, resource)
    return holder.plan
