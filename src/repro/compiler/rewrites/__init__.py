"""HOP-level program rewrites.

Split into *static* rewrites (size-independent: constant folding, common
subexpression elimination, ``X*X -> X^2``, double-transpose elimination,
branch removal) and *dynamic* rewrites (size-dependent: ``sum(X^2)`` on a
column vector to ``t(X) %*% X``, fused ternary aggregates, matrix-multiply
chain reordering).  Dynamic rewrites are re-applied during dynamic
recompilation once sizes become known, mirroring SystemML (Appendix B).
"""

from repro.compiler.rewrites.branch_removal import remove_constant_branches
from repro.compiler.rewrites.constant_folding import fold_constants
from repro.compiler.rewrites.cse import eliminate_common_subexpressions
from repro.compiler.rewrites.algebraic import (
    apply_dynamic_simplifications,
    apply_static_simplifications,
)
from repro.compiler.rewrites.mmchain import optimize_matmult_chains


def _dag_holders(block_program):
    """Yield (container, attr, roots) handles for every HOP DAG."""
    from repro.compiler import statement_blocks as SB

    for block in block_program.all_blocks():
        if isinstance(block, SB.GenericBlock):
            yield block, "hop_roots", block.hop_roots
        elif isinstance(block, SB.IfBlock):
            yield block.predicate, "hop_root", [block.predicate.hop_root]
        elif isinstance(block, SB.WhileBlock):
            yield block.predicate, "hop_root", [block.predicate.hop_root]
        elif isinstance(block, SB.ForBlock):
            for holder in (block.from_holder, block.to_holder, block.incr_holder):
                if holder is not None:
                    yield holder, "hop_root", [holder.hop_root]


def apply_static_rewrites(block_program):
    """Apply all size-independent rewrites in place."""
    remove_constant_branches(block_program)
    for holder, attr, roots in _dag_holders(block_program):
        roots = fold_constants(roots)
        roots = apply_static_simplifications(roots)
        roots = eliminate_common_subexpressions(roots)
        _store(holder, attr, roots)


def apply_dynamic_rewrites(block_program):
    """Apply all size-dependent rewrites in place (requires propagated
    sizes)."""
    for holder, attr, roots in _dag_holders(block_program):
        roots = apply_dynamic_simplifications(roots)
        roots = optimize_matmult_chains(roots)
        roots = eliminate_common_subexpressions(roots)
        _store(holder, attr, roots)


def _store(holder, attr, roots):
    if attr == "hop_roots":
        holder.hop_roots = roots
    else:
        holder.hop_root = roots[0]


__all__ = [
    "apply_static_rewrites",
    "apply_dynamic_rewrites",
    "fold_constants",
    "remove_constant_branches",
    "eliminate_common_subexpressions",
    "apply_static_simplifications",
    "apply_dynamic_simplifications",
    "optimize_matmult_chains",
]
