"""Algebraic simplification rewrites.

*Static* (size independent):

* ``X * X``  ->  ``X ^ 2``            (unary ops parallelize better)
* ``t(t(X))`` ->  ``X``
* ``X * 1`` / ``1 * X`` -> ``X``; ``X + 0`` / ``0 + X`` -> ``X``
* ``sum(t(X))`` -> ``sum(X)``

*Dynamic* (require propagated sizes — re-applied during recompilation):

* ``sum(X ^ 2)`` on a column vector -> ``as.scalar(t(X) %*% X)``
  (the paper's Appendix B example for ``sum(s * s)``)
* ``sum(a * b * c)`` with conforming vectors -> fused ternary aggregate
  ``tak+*`` (paper's tertiary-aggregate example for lines 29/30 of L2SVM)
* ``colSums(X)`` on a row vector -> ``X`` (no-op aggregate)
"""

from __future__ import annotations

from repro.compiler import hops as H
from repro.obs import get_tracer


def _iter_with_parents(roots):
    parents = H.build_parent_map(roots)
    return H.iter_dag(roots), parents


def _replace(roots, parents, old, new):
    for parent in parents.get(old.hop_id, []):
        parent.replace_input(old, new)
        parents.setdefault(new.hop_id, []).append(parent)
    return [new if root is old else root for root in roots]


# -- static rules --------------------------------------------------------


def apply_static_simplifications(roots):
    hops_order, parents = _iter_with_parents(roots)
    for hop in hops_order:
        new = _static_rule(hop)
        if new is not None:
            roots = _replace(roots, parents, hop, new)
            get_tracer().incr("rewrite.algebraic_static")
    return roots


def _static_rule(hop):
    # X * X -> X^2
    if (
        isinstance(hop, H.BinaryOp)
        and hop.op is H.OpCode.MULT
        and hop.inputs[0] is hop.inputs[1]
        and hop.is_matrix
    ):
        return H.BinaryOp(H.OpCode.POW, hop.inputs[0], H.LiteralOp(2),
                          data_type=hop.data_type)
    # t(t(X)) -> X
    if (
        isinstance(hop, H.ReorgOp)
        and hop.op is H.OpCode.TRANSPOSE
        and isinstance(hop.inputs[0], H.ReorgOp)
        and hop.inputs[0].op is H.OpCode.TRANSPOSE
    ):
        return hop.inputs[0].inputs[0]
    # X * 1 -> X ; X + 0 -> X (and mirrored)
    if isinstance(hop, H.BinaryOp) and hop.is_matrix:
        left, right = hop.inputs
        for matrix, scalar in ((left, right), (right, left)):
            if not (matrix.is_matrix and isinstance(scalar, H.LiteralOp)):
                continue
            if hop.op is H.OpCode.MULT and scalar.value == 1:
                return matrix
            if hop.op is H.OpCode.PLUS and scalar.value == 0:
                return matrix
            if (
                hop.op is H.OpCode.MINUS
                and scalar.value == 0
                and scalar is right
            ):
                return matrix
            if hop.op is H.OpCode.DIV and scalar.value == 1 and scalar is right:
                return matrix
    # sum(t(X)) -> sum(X)
    if (
        isinstance(hop, H.AggUnaryOp)
        and hop.direction is H.AggDirection.ALL
        and isinstance(hop.inputs[0], H.ReorgOp)
        and hop.inputs[0].op is H.OpCode.TRANSPOSE
    ):
        return H.AggUnaryOp(hop.op, H.AggDirection.ALL, hop.inputs[0].inputs[0])
    return None


# -- dynamic rules -------------------------------------------------------


def apply_dynamic_simplifications(roots):
    hops_order, parents = _iter_with_parents(roots)
    for hop in hops_order:
        new = _dynamic_rule(hop)
        if new is not None:
            roots = _replace(roots, parents, hop, new)
            get_tracer().incr("rewrite.algebraic_dynamic")
    return roots


def _flatten_mult_chain(hop):
    """Flatten nested elementwise multiplications into factor list."""
    if isinstance(hop, H.BinaryOp) and hop.op is H.OpCode.MULT and hop.is_matrix_matrix:
        return _flatten_mult_chain(hop.inputs[0]) + _flatten_mult_chain(hop.inputs[1])
    return [hop]


def _dynamic_rule(hop):
    if not isinstance(hop, H.AggUnaryOp) or hop.op is not H.OpCode.SUM:
        return None
    if hop.direction is not H.AggDirection.ALL:
        return None
    inner = hop.inputs[0]
    # sum(X^2) on column vector -> as.scalar(t(X) %*% X)
    if (
        isinstance(inner, H.BinaryOp)
        and inner.op is H.OpCode.POW
        and isinstance(inner.inputs[1], H.LiteralOp)
        and inner.inputs[1].value == 2
        and inner.inputs[0].mc.cols == 1
        and inner.inputs[0].is_matrix
    ):
        vec = inner.inputs[0]
        tsmm = H.AggBinaryOp(H.ReorgOp(H.OpCode.TRANSPOSE, vec), vec)
        return H.UnaryOp(
            H.OpCode.CAST_AS_SCALAR,
            tsmm,
            data_type=hop.data_type,
        )
    # sum(a * b * c) on conforming vectors -> tak+*
    if isinstance(inner, H.BinaryOp) and inner.op is H.OpCode.MULT:
        factors = _flatten_mult_chain(inner)
        if len(factors) == 3 and all(
            f.is_matrix and f.mc.dims_known for f in factors
        ):
            dims = {(f.mc.rows, f.mc.cols) for f in factors}
            if len(dims) == 1:
                return H.TernaryAggOp(*factors)
    return None
