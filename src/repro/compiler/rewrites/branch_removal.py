"""Branch removal: eliminate ``if`` blocks with compile-time constant
predicates (and ``while`` loops whose predicate is constantly false).

This is the rewrite the paper highlights for the intercept branch of
L2SVM (Appendix B): after constant folding of ``$icpt == 1`` the branch is
removed, which unblocks unconditional size propagation through the rest
of the program.
"""

from __future__ import annotations

from repro.compiler import statement_blocks as SB
from repro.obs import get_tracer


def _predicate_const(block):
    root = block.predicate.hop_root
    if root is None:
        return None
    return root.const_value


def _rewrite_block_list(blocks):
    out = []
    for block in blocks:
        if isinstance(block, SB.IfBlock):
            const = _predicate_const(block)
            if const is not None:
                get_tracer().incr("rewrite.branch_removal")
                taken = block.body if const else block.else_body
                out.extend(_rewrite_block_list(taken))
                continue
            block.body = _rewrite_block_list(block.body)
            block.else_body = _rewrite_block_list(block.else_body)
        elif isinstance(block, SB.WhileBlock):
            const = _predicate_const(block)
            if const is not None and not const:
                get_tracer().incr("rewrite.branch_removal")
                continue
            block.body = _rewrite_block_list(block.body)
        elif isinstance(block, SB.ForBlock):
            if block.known_iterations == 0:
                continue
            block.body = _rewrite_block_list(block.body)
        out.append(block)
    return out


def remove_constant_branches(block_program):
    """Remove constant branches program-wide, in place."""
    block_program.blocks = _rewrite_block_list(block_program.blocks)
    for func in block_program.functions.values():
        func.blocks = _rewrite_block_list(func.blocks)
    return block_program
