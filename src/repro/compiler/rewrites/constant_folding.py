"""Constant folding: replace scalar HOPs with compile-time known values
by literal operators.

Relies on :mod:`repro.compiler.size_propagation` having filled
``const_value`` on scalar hops.  Data ops (reads/writes), prints, and
literals themselves are never folded; transient reads keep their variable
linkage, but pure scalar computation trees collapse to single literals,
which both shrinks DAGs and enables branch removal.
"""

from __future__ import annotations

from repro.compiler import hops as H
from repro.obs import get_tracer

_NEVER_FOLD = (H.LiteralOp, H.DataOp, H.FunctionOp, H.FunctionOutput)


def _foldable(hop):
    if isinstance(hop, _NEVER_FOLD):
        return False
    if not hop.is_scalar:
        return False
    if isinstance(hop, H.UnaryOp) and hop.op in (H.OpCode.PRINT, H.OpCode.STOP):
        return False
    # cast-from-matrix reads runtime data even though output is scalar
    if isinstance(hop, H.UnaryOp) and hop.op is H.OpCode.CAST_AS_SCALAR:
        return False
    return hop.const_value is not None


def fold_constants(roots):
    """Fold constant scalar sub-DAGs into literals; returns new roots."""
    parents = H.build_parent_map(roots)
    for hop in H.iter_dag(roots):
        if not _foldable(hop):
            continue
        literal = H.LiteralOp(hop.const_value)
        literal.value_type = hop.value_type
        for parent in parents.get(hop.hop_id, []):
            parent.replace_input(hop, literal)
        roots = [literal if root is hop else root for root in roots]
        get_tracer().incr("rewrite.constant_folding")
    return roots
