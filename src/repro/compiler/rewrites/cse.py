"""Common subexpression elimination within a HOP DAG.

Two hops are merged when they have the same operator class, opcode,
attributes, and identical input hops.  Data ops are merged only for
transient/persistent *reads* of the same source (writes are side
effects); literals merge by value and type.
"""

from __future__ import annotations

from repro.compiler import hops as H
from repro.obs import get_tracer


def _signature(hop, canonical):
    """Structural signature of a hop given canonical ids of its inputs."""
    ins = tuple(canonical[inp.hop_id] for inp in hop.inputs)
    if isinstance(hop, H.LiteralOp):
        return ("lit", type(hop.value).__name__, hop.value)
    if isinstance(hop, H.DataOp):
        if hop.is_write:
            return None  # never merge writes
        return ("read", hop.kind, hop.name)
    if isinstance(hop, H.UnaryOp):
        if hop.op in (H.OpCode.PRINT, H.OpCode.STOP):
            return None
        return ("un", hop.op, ins)
    if isinstance(hop, H.BinaryOp):
        return ("bin", hop.op, ins)
    if isinstance(hop, H.AggUnaryOp):
        return ("agg", hop.op, hop.direction, ins)
    if isinstance(hop, H.AggBinaryOp):
        return ("mm", ins)
    if isinstance(hop, H.TernaryAggOp):
        return ("tak", tuple(sorted(ins)))
    if isinstance(hop, H.ReorgOp):
        return ("reorg", hop.op, ins)
    if isinstance(hop, H.DataGenOp):
        # rand() without fixed seed is non-deterministic: merge only
        # deterministic generators (constant matrices / seq)
        if hop.gen_method is H.OpCode.SEQ:
            return ("seq", ins)
        min_hop = hop.param("min")
        max_hop = hop.param("max")
        if (
            min_hop is not None
            and max_hop is not None
            and isinstance(min_hop, H.LiteralOp)
            and isinstance(max_hop, H.LiteralOp)
            and min_hop.value == max_hop.value
        ):
            keys = tuple(sorted(hop.params))
            return ("const-gen", keys, ins)
        return None
    if isinstance(hop, H.IndexingOp):
        return ("rix", hop.all_rows, hop.all_cols, ins)
    # left indexing, function ops: side effects / opaque -> no merge
    return None


def eliminate_common_subexpressions(roots):
    """Merge structurally identical hops; returns the updated roots."""
    canonical = {}  # hop_id -> canonical hop_id
    by_signature = {}
    replacements = {}  # hop_id -> canonical hop
    for hop in H.iter_dag(roots):
        # rewire inputs to canonical representatives first
        hop.inputs = [replacements.get(inp.hop_id, inp) for inp in hop.inputs]
        sig = _signature(hop, canonical)
        if sig is None:
            canonical[hop.hop_id] = hop.hop_id
            continue
        existing = by_signature.get(sig)
        if existing is None:
            by_signature[sig] = hop
            canonical[hop.hop_id] = hop.hop_id
        else:
            canonical[hop.hop_id] = existing.hop_id
            replacements[hop.hop_id] = existing
    if replacements:
        get_tracer().incr("rewrite.cse", len(replacements))
    return [replacements.get(root.hop_id, root) for root in roots]
