"""Sparsity-aware matrix-multiplication chain reordering.

Finds maximal chains of matrix multiplications (nested ``AggBinaryOp``
whose intermediate results have no other consumers), and reorders them
with the classic dynamic-programming algorithm over known dimensions.
Chains containing unknown dimensions are left untouched (they are
revisited during dynamic recompilation once sizes are known).
"""

from __future__ import annotations

from repro.compiler import hops as H
from repro.obs import get_tracer


def _collect_chain(hop, parents):
    """Flatten a matmult tree into its factor list, respecting sharing."""

    def factors(node, is_root):
        if (
            isinstance(node, H.AggBinaryOp)
            and (is_root or len(parents.get(node.hop_id, [])) <= 1)
        ):
            return factors(node.inputs[0], False) + factors(node.inputs[1], False)
        return [node]

    return factors(hop, True)


def _optimal_order(dims):
    """Matrix-chain DP; returns the split table for reconstruction."""
    n = len(dims) - 1
    cost = [[0.0] * n for _ in range(n)]
    split = [[0] * n for _ in range(n)]
    for length in range(2, n + 1):
        for i in range(n - length + 1):
            j = i + length - 1
            best = None
            for k in range(i, j):
                c = cost[i][k] + cost[k + 1][j] + dims[i] * dims[k + 1] * dims[j + 1]
                if best is None or c < best:
                    best = c
                    split[i][j] = k
            cost[i][j] = best
    return split


def _rebuild(factors, split, i, j):
    if i == j:
        return factors[i]
    k = split[i][j]
    left = _rebuild(factors, split, i, k)
    right = _rebuild(factors, split, k + 1, j)
    return H.AggBinaryOp(left, right)


def optimize_matmult_chains(roots):
    """Reorder eligible matmult chains in the DAG; returns new roots."""
    parents = H.build_parent_map(roots)
    # visit top-of-chain nodes only: matmults whose parent is not a matmult
    for hop in H.iter_dag(roots):
        if not isinstance(hop, H.AggBinaryOp):
            continue
        hop_parents = parents.get(hop.hop_id, [])
        if any(isinstance(p, H.AggBinaryOp) for p in hop_parents):
            continue
        factors = _collect_chain(hop, parents)
        if len(factors) < 3:
            continue
        if not all(f.mc.dims_known for f in factors):
            continue
        dims = [factors[0].mc.rows] + [f.mc.cols for f in factors]
        if any(d is None for d in dims):
            continue
        split = _optimal_order(dims)
        new_root = _rebuild(factors, split, 0, len(factors) - 1)
        for parent in hop_parents:
            parent.replace_input(hop, new_root)
        roots = [new_root if root is hop else root for root in roots]
        parents = H.build_parent_map(roots)
        get_tracer().incr("rewrite.mmchain")
    return roots
