"""Shared DAG-surgery helpers for rewrite passes."""

from __future__ import annotations

from repro.compiler import hops as H


def replace_hop(roots, old, new, parents=None):
    """Replace ``old`` with ``new`` everywhere in the DAG under ``roots``.

    Returns the (possibly updated) roots list.  ``parents`` may be a
    precomputed parent map from :func:`repro.compiler.hops.build_parent_map`;
    note it is *not* updated, so passes doing many replacements should
    rebuild it or perform replacements bottom-up.
    """
    if parents is None:
        parents = H.build_parent_map(roots)
    for parent in parents.get(old.hop_id, []):
        parent.replace_input(old, new)
    return [new if root is old else root for root in roots]
