"""Executable runtime-program generation (instructions).

Lowers an annotated HOP DAG (after operator selection and piggybacking)
into a :class:`BlockPlan`: an ordered list of CP instructions and MR job
instructions.  Instructions reference symbol-table variables by name;
each operator output gets a temporary name ``_mVar<hop_id>`` and
transient writes bind temporaries to logical variable names.

MR job instructions embed their member operators as :class:`MRStep`
entries (semantic opcode + physical method + phase) so that

* the cost model can price map/shuffle/reduce phases from the step
  characteristics snapshots, and
* the runtime can execute the same semantic kernels on sample data while
  charging distributed-execution time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common import DataType, ExecType, MatrixCharacteristics
from repro.compiler import hops as H
from repro.compiler.lops import Phase, method_spec
from repro.compiler.piggybacking import (
    _broadcast_input_hops,
    _effective_inputs,
    pack_jobs,
)
from repro.errors import CompilerError

# -- operands and instructions -----------------------------------------------


@dataclass
class Operand:
    """An instruction operand: a variable reference or an inline literal."""

    name: str = None
    literal: object = None

    @property
    def is_literal(self):
        return self.name is None

    def __str__(self):
        return self.name if self.name is not None else f"lit({self.literal!r})"


@dataclass
class CPInstruction:
    opcode: str
    inputs: list = field(default_factory=list)
    output: str = None
    attrs: dict = field(default_factory=dict)
    hop_id: int = 0
    out_mc: MatrixCharacteristics = field(
        default_factory=MatrixCharacteristics.unknown
    )
    in_mcs: list = field(default_factory=list)
    out_is_matrix: bool = False

    def __str__(self):
        ins = ", ".join(str(op) for op in self.inputs)
        return f"CP {self.opcode} [{ins}] -> {self.output}"


@dataclass
class MRStep:
    opcode: str
    method: str
    phase: Phase
    inputs: list = field(default_factory=list)
    output: str = None
    attrs: dict = field(default_factory=dict)
    hop_id: int = 0
    out_mc: MatrixCharacteristics = field(
        default_factory=MatrixCharacteristics.unknown
    )
    in_mcs: list = field(default_factory=list)
    broadcast_names: list = field(default_factory=list)


@dataclass
class MRJobInstruction:
    job_type: object = None  # lops.JobType
    steps: list = field(default_factory=list)
    input_vars: list = field(default_factory=list)
    broadcast_vars: list = field(default_factory=list)
    output_vars: list = field(default_factory=list)
    extra_job_latency: int = 0
    block_id: int = 0

    def __str__(self):
        ops = "+".join(step.method for step in self.steps)
        return (
            f"MR-{self.job_type.value} [{ops}] in={self.input_vars} "
            f"out={self.output_vars}"
        )


#: monotonically increasing ids stamped on every generated plan; two
#: plans share a signature iff they are the same generation (the plan
#: cache returns one object for a whole budget bucket), which lets the
#: cost model memoize per-plan costs without structural hashing
_plan_signatures = itertools.count(1)


@dataclass
class BlockPlan:
    """Compiled plan of one generic block under a resource configuration."""

    instructions: list = field(default_factory=list)
    num_mr_jobs: int = 0
    cp_heap_mb: float = 0.0
    mr_heap_mb: float = 0.0
    #: structural identity for plan-signature memoization (see above)
    signature: int = field(default_factory=lambda: next(_plan_signatures))

    def mr_jobs(self):
        return [ins for ins in self.instructions if isinstance(ins, MRJobInstruction)]


@dataclass
class PredicatePlan:
    instructions: list = field(default_factory=list)
    result: Operand = None


# -- opcode mapping ------------------------------------------------------

_AGG_SUFFIX = {
    H.OpCode.SUM: "+",
    H.OpCode.MEAN: "mean",
    H.OpCode.MIN: "min",
    H.OpCode.MAX: "max",
    H.OpCode.TRACE: "trace",
    H.OpCode.ROWINDEXMAX: "imax",
}

_AGG_PREFIX = {
    H.AggDirection.ALL: "ua",
    H.AggDirection.ROW: "uar",
    H.AggDirection.COL: "uac",
}


def semantic_opcode(hop):
    """Canonical semantic opcode string for an executable hop."""
    if isinstance(hop, H.UnaryOp):
        return hop.op.value
    if isinstance(hop, H.BinaryOp):
        return hop.op.value
    if isinstance(hop, H.AggUnaryOp):
        return _AGG_PREFIX[hop.direction] + _AGG_SUFFIX[hop.op]
    if isinstance(hop, H.AggBinaryOp):
        return "ba+*"
    if isinstance(hop, H.TernaryAggOp):
        return "tak+*"
    if isinstance(hop, H.ReorgOp):
        return "r'" if hop.op is H.OpCode.TRANSPOSE else "rdiag"
    if isinstance(hop, H.DataGenOp):
        return "seq" if hop.gen_method is H.OpCode.SEQ else "rand"
    if isinstance(hop, H.TernaryOp):
        return "ctable"
    if isinstance(hop, H.IndexingOp):
        return "rix"
    if isinstance(hop, H.LeftIndexingOp):
        return "lix"
    raise CompilerError(f"no opcode for {type(hop).__name__}")


def _temp_name(hop):
    return f"_mVar{hop.hop_id}"


def _hop_attrs(hop):
    attrs = {}
    if isinstance(hop, H.UnaryOp) and hop.op is H.OpCode.REMOVE_EMPTY:
        attrs["margin"] = getattr(hop, "margin", "rows")
    if isinstance(hop, H.DataGenOp):
        attrs["params"] = list(hop.params.keys())
        attrs["gen"] = hop.gen_method.value
    elif isinstance(hop, (H.IndexingOp, H.LeftIndexingOp)):
        attrs["all_rows"] = hop.all_rows
        attrs["all_cols"] = hop.all_cols
    elif isinstance(hop, H.AggBinaryOp) and hop.transpose_rewrite:
        attrs["transpose_left"] = True
    return attrs


class _PlanGenerator:
    """Generates the instruction list of one DAG."""

    def __init__(self, roots, cp_budget, mr_budget, block_id=0):
        self.roots = [r for r in roots if r is not None]
        self.cp_budget = cp_budget
        self.mr_budget = mr_budget
        self.block_id = block_id
        self.parents = H.build_parent_map(self.roots)

    # -- operand handling --------------------------------------------------

    def operand(self, hop):
        if isinstance(hop, H.LiteralOp):
            return Operand(literal=hop.value)
        if isinstance(hop, H.DataOp) and hop.kind is H.DataOpKind.TRANSIENT_READ:
            return Operand(name=hop.name)
        if isinstance(hop, H.FunctionOutput):
            return Operand(name=f"_mVar{hop.inputs[0].hop_id}_{hop.index}")
        return Operand(name=_temp_name(hop))

    # -- emission ----------------------------------------------------------

    def generate(self):
        jobs, skipped = pack_jobs(self.roots, self.mr_budget)
        job_of = {}
        for job in jobs:
            for member in job.members:
                job_of[member.hop_id] = job

        units = []  # emission units: ("cp", hop) or ("job", job)
        unit_of_hop = {}
        emitted_jobs = set()
        for hop in H.iter_dag(self.roots):
            if hop.hop_id in skipped:
                continue
            if isinstance(hop, H.LiteralOp):
                continue
            if (
                isinstance(hop, H.DataOp)
                and hop.kind is H.DataOpKind.TRANSIENT_READ
            ):
                continue
            if isinstance(hop, H.FunctionOutput):
                continue
            job = job_of.get(hop.hop_id)
            if job is not None:
                if id(job) not in emitted_jobs:
                    emitted_jobs.add(id(job))
                    units.append(("job", job))
                unit_of_hop[hop.hop_id] = job
            else:
                units.append(("cp", hop))
                unit_of_hop[hop.hop_id] = hop

        # order units by dependencies (Kahn over unit graph)
        ordered = self._order_units(units, unit_of_hop, skipped)
        instructions = []
        for kind, payload in ordered:
            if kind == "cp":
                instr = self._emit_cp(payload)
                if instr is not None:
                    instructions.append(instr)
            else:
                instructions.append(self._emit_job(payload, unit_of_hop, skipped))
        return instructions

    def _order_units(self, units, unit_of_hop, skipped):
        index = {id(payload): i for i, (kind, payload) in enumerate(units)}
        deps = {i: set() for i in range(len(units))}
        for i, (kind, payload) in enumerate(units):
            hops = payload.members if kind == "job" else [payload]
            for hop in hops:
                for inp in self._dependency_inputs(hop, skipped):
                    producer = self._producer_unit(inp, unit_of_hop, skipped)
                    if producer is None or id(producer) not in index:
                        continue
                    j = index[id(producer)]
                    if j != i:
                        deps[i].add(j)
        done = set()
        ordered = []
        # stable Kahn: repeatedly take the first unit with satisfied deps
        pending = list(range(len(units)))
        while pending:
            progress = False
            for i in list(pending):
                if deps[i] <= done:
                    ordered.append(units[i])
                    done.add(i)
                    pending.remove(i)
                    progress = True
            if not progress:
                raise CompilerError("cyclic dependency between plan units")
        return ordered

    def _dependency_inputs(self, hop, skipped):
        """All hops whose values this (possibly fused) hop consumes."""
        inputs = _effective_inputs(hop)
        # indexing bounds etc. are in raw inputs already
        raw = [inp for inp in hop.inputs if inp not in inputs]
        return inputs + raw

    def _producer_unit(self, hop, unit_of_hop, skipped):
        while hop.hop_id in skipped:
            # folded hops delegate to their data producer (scan target)
            hop = hop.inputs[0]
        if isinstance(hop, H.FunctionOutput):
            hop = hop.inputs[0]
        return unit_of_hop.get(hop.hop_id)

    # -- CP instruction emission ---------------------------------------------

    def _emit_cp(self, hop):
        if isinstance(hop, H.DataOp):
            return self._emit_dataop(hop)
        if isinstance(hop, H.FunctionOp):
            outputs = [f"_mVar{hop.hop_id}_{i}" for i in range(len(hop.output_names))]
            return CPInstruction(
                opcode="fcall",
                inputs=[self.operand(inp) for inp in hop.inputs],
                output=None,
                attrs={"func": hop.func_name, "outputs": outputs},
                hop_id=hop.hop_id,
                out_mc=hop.mc.copy(),
                in_mcs=[inp.mc.copy() for inp in hop.inputs],
            )
        if isinstance(hop, H.UnaryOp) and hop.op in (H.OpCode.PRINT, H.OpCode.STOP):
            return CPInstruction(
                opcode=hop.op.value,
                inputs=[self.operand(hop.inputs[0])],
                output=None,
                hop_id=hop.hop_id,
                in_mcs=[hop.inputs[0].mc.copy()],
            )
        opcode = semantic_opcode(hop)
        inputs = _effective_inputs(hop)
        if isinstance(hop, H.AggBinaryOp) and hop.method == "tsmm":
            opcode = "tsmm"
        elif isinstance(hop, H.AggBinaryOp) and hop.method == "mapmmchain":
            opcode = "mapmmchain"
            attrs = _hop_attrs(hop)
            attrs["chain"] = "XtwXv" if len(inputs) == 3 else "XtXv"
            return CPInstruction(
                opcode=opcode,
                inputs=[self.operand(inp) for inp in inputs],
                output=_temp_name(hop),
                attrs=attrs,
                hop_id=hop.hop_id,
                out_mc=hop.mc.copy(),
                in_mcs=[inp.mc.copy() for inp in inputs],
                out_is_matrix=hop.is_matrix,
            )
        return CPInstruction(
            opcode=opcode,
            inputs=[self.operand(inp) for inp in inputs],
            output=_temp_name(hop),
            attrs=_hop_attrs(hop),
            hop_id=hop.hop_id,
            out_mc=hop.mc.copy(),
            in_mcs=[inp.mc.copy() for inp in inputs],
            out_is_matrix=hop.is_matrix,
        )

    def _emit_dataop(self, hop):
        if hop.kind is H.DataOpKind.PERSISTENT_READ:
            return CPInstruction(
                opcode="createvar",
                inputs=[],
                output=_temp_name(hop),
                attrs={"fname": hop.fname, "format": hop.fmt},
                hop_id=hop.hop_id,
                out_mc=hop.mc.copy(),
                out_is_matrix=hop.is_matrix,
            )
        if hop.kind is H.DataOpKind.TRANSIENT_WRITE:
            src = self.operand(hop.inputs[0])
            if src.name == hop.name:
                return None  # writing a variable back to itself
            return CPInstruction(
                opcode="mvvar",
                inputs=[src],
                output=hop.name,
                hop_id=hop.hop_id,
                out_mc=hop.mc.copy(),
                in_mcs=[hop.mc.copy()],
                out_is_matrix=hop.is_matrix,
            )
        if hop.kind is H.DataOpKind.PERSISTENT_WRITE:
            return CPInstruction(
                opcode="write",
                inputs=[self.operand(hop.inputs[0])],
                output=None,
                attrs={"fname": hop.fname, "format": hop.fmt},
                hop_id=hop.hop_id,
                out_mc=hop.mc.copy(),
                in_mcs=[hop.inputs[0].mc.copy()],
            )
        raise CompilerError(f"unexpected data op {hop.kind}")

    # -- MR job emission -------------------------------------------------

    def _emit_job(self, job, unit_of_hop, skipped):
        members = set(hop.hop_id for hop in job.members)
        steps = []
        input_vars = []
        broadcast_vars = []
        output_vars = []
        for hop in job.members:
            inputs = _effective_inputs(hop)
            broadcasts = _broadcast_input_hops(hop)
            broadcast_ids = {b.hop_id for b in broadcasts}
            operands = []
            in_mcs = []
            bc_names = []
            for inp in inputs:
                op = self.operand(inp)
                operands.append(op)
                in_mcs.append(inp.mc.copy())
                if op.name is None:
                    continue
                if inp.hop_id in members:
                    continue  # in-job temp, flows through the pipeline
                if inp.hop_id in broadcast_ids:
                    bc_names.append(op.name)
                    if op.name not in broadcast_vars:
                        broadcast_vars.append(op.name)
                elif inp.is_matrix:
                    if op.name not in input_vars:
                        input_vars.append(op.name)
            # extra scalar operands (indexing bounds) ride in the job
            # conf; folded matrix hops (fused transposes/chains) do not
            raw_extras = [
                i for i in hop.inputs if i not in inputs and i.is_scalar
            ]
            for extra in raw_extras:
                operands.append(self.operand(extra))
                in_mcs.append(extra.mc.copy())
            opcode = semantic_opcode(hop)
            attrs = _hop_attrs(hop)
            if hop.method == "mapmmchain":
                opcode = "mapmmchain"
                attrs["chain"] = "XtwXv" if len(inputs) == 3 else "XtXv"
            elif hop.method == "tsmm":
                opcode = "tsmm"
            steps.append(
                MRStep(
                    opcode=opcode,
                    method=hop.method,
                    phase=job.phase_of(hop),
                    inputs=operands,
                    output=_temp_name(hop),
                    attrs=attrs,
                    hop_id=hop.hop_id,
                    out_mc=hop.mc.copy(),
                    in_mcs=in_mcs,
                    broadcast_names=bc_names,
                )
            )
            # outputs consumed outside the job are materialized on HDFS
            consumers = self.parents.get(hop.hop_id, [])
            external = [
                c
                for c in consumers
                if c.hop_id not in members and c.hop_id not in skipped
            ]
            # folded consumers delegate to their fused root
            for c in consumers:
                if c.hop_id in skipped:
                    external.append(c)  # conservatively materialize
            if external or not consumers:
                output_vars.append(_temp_name(hop))
        return MRJobInstruction(
            job_type=job.job_type,
            steps=steps,
            input_vars=input_vars,
            broadcast_vars=broadcast_vars,
            output_vars=output_vars,
            extra_job_latency=job.extra_job_latency,
            block_id=self.block_id,
        )


def generate_block_plan(block, resource, cluster=None):
    """Generate the :class:`BlockPlan` of a generic block (operator
    selection must already have run for this resource configuration)."""
    gen = _PlanGenerator(
        block.hop_roots,
        resource.cp_budget_bytes,
        resource.mr_budget_bytes(block.block_id),
        block_id=block.block_id,
    )
    instructions = gen.generate()
    plan = BlockPlan(
        instructions=instructions,
        num_mr_jobs=sum(
            1 for ins in instructions if isinstance(ins, MRJobInstruction)
        ),
        cp_heap_mb=resource.cp_heap_mb,
        mr_heap_mb=resource.mr_heap_for_block(block.block_id),
    )
    return plan


def generate_predicate_plan(holder, resource):
    """Generate CP instructions evaluating a predicate DAG."""
    root = holder.hop_root
    gen = _PlanGenerator([root], resource.cp_budget_bytes, float("inf"))
    instructions = gen.generate()
    # all predicate work runs in CP: downgrade any job to CP instructions
    flat = []
    for ins in instructions:
        if isinstance(ins, MRJobInstruction):
            for step in ins.steps:
                flat.append(
                    CPInstruction(
                        opcode=step.opcode,
                        inputs=step.inputs,
                        output=step.output,
                        attrs=step.attrs,
                        hop_id=step.hop_id,
                        out_mc=step.out_mc,
                        out_is_matrix=True,
                    )
                )
        else:
            flat.append(ins)
    return PredicatePlan(instructions=flat, result=gen.operand(root))
