"""Intra- and inter-procedural size, sparsity, and scalar-constant
propagation over HOP DAGs.

The propagator walks the block hierarchy in program order, maintaining an
environment mapping each variable to a :class:`VarState` (matrix
characteristics + scalar constant, when compile-time known).  Per-operator
output rules mirror SystemML's:

* loops are handled with the *reset rule*: variables whose characteristics
  change across one trial pass of the body are reset to unknown before the
  final pass, so in-loop knowledge is a fixpoint;
* branches merge environments, keeping only facts valid on both paths;
* ``table()`` (ctable) output dimensions are unknown at compile time —
  the paper's canonical source of unknowns driving runtime adaptation;
* scalar constants fold through arithmetic, enabling branch removal and
  data-generator size inference (``matrix(0, rows=n, cols=1)``).

The same propagator is reused by dynamic recompilation: the runtime seeds
the environment with *actual* characteristics from the symbol table and
re-propagates a single block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common import (
    DataType,
    MatrixCharacteristics,
    ValueType,
    binary_nnz_estimate,
    mult_nnz_estimate,
)
from repro.compiler import hops as H
from repro.compiler import statement_blocks as SB

#: default loop trip count assumed when unknown (paper Section 3.1: "a
#: constant which at least reflects that the body is executed multiple
#: times")
DEFAULT_LOOP_ITERATIONS = 10


@dataclass
class VarState:
    """Propagated knowledge about one variable."""

    data_type: DataType = DataType.MATRIX
    mc: MatrixCharacteristics = field(default_factory=MatrixCharacteristics.unknown)
    const: object = None  # scalar compile-time constant, None if unknown

    def copy(self):
        return VarState(self.data_type, self.mc.copy(), self.const)

    def equivalent(self, other):
        return (
            self.data_type is other.data_type
            and self.mc.rows == other.mc.rows
            and self.mc.cols == other.mc.cols
            and self.mc.nnz == other.mc.nnz
            and self.const == other.const
        )


class Env:
    """Variable environment for propagation."""

    def __init__(self, vars=None):
        self.vars = dict(vars or {})

    def get(self, name):
        return self.vars.get(name)

    def set(self, name, state):
        self.vars[name] = state

    def copy(self):
        return Env({k: v.copy() for k, v in self.vars.items()})

    def merge_with(self, other):
        """Keep only facts that hold in both environments (branch join)."""
        merged = {}
        for name, state in self.vars.items():
            other_state = other.vars.get(name)
            if other_state is None:
                # defined on one path only: keep but drop value knowledge
                merged[name] = VarState(
                    state.data_type, MatrixCharacteristics.unknown(), None
                )
                continue
            mc = MatrixCharacteristics(
                state.mc.rows if state.mc.rows == other_state.mc.rows else None,
                state.mc.cols if state.mc.cols == other_state.mc.cols else None,
                state.mc.nnz if state.mc.nnz == other_state.mc.nnz else None,
            )
            const = state.const if state.const == other_state.const else None
            merged[name] = VarState(state.data_type, mc, const)
        for name, state in other.vars.items():
            if name not in self.vars:
                merged[name] = VarState(
                    state.data_type, MatrixCharacteristics.unknown(), None
                )
        return Env(merged)

    def reset_changed(self, trial):
        """Loop reset rule: drop facts that changed in a trial body pass."""
        for name, state in self.vars.items():
            after = trial.vars.get(name)
            if after is None:
                continue
            if state.mc.rows != after.mc.rows:
                state.mc.rows = None
            if state.mc.cols != after.mc.cols:
                state.mc.cols = None
            if state.mc.nnz != after.mc.nnz:
                state.mc.nnz = None
            if state.const != after.const:
                state.const = None
        # variables first defined inside the loop: unknown at loop entry
        for name, after in trial.vars.items():
            if name not in self.vars:
                self.vars[name] = VarState(
                    after.data_type, MatrixCharacteristics.unknown(), None
                )


# -- scalar constant folding ---------------------------------------------


def eval_scalar_binary(op, a, b):
    """Evaluate a binary op on two scalar constants; None if not possible."""
    try:
        if op is H.OpCode.PLUS:
            if isinstance(a, str) or isinstance(b, str):
                return _to_display(a) + _to_display(b)
            return a + b
        if op is H.OpCode.MINUS:
            return a - b
        if op is H.OpCode.MULT:
            return a * b
        if op is H.OpCode.DIV:
            return a / b
        if op is H.OpCode.POW:
            return a**b
        if op is H.OpCode.MOD:
            return a % b
        if op is H.OpCode.INTDIV:
            return a // b
        if op is H.OpCode.MIN:
            return min(a, b)
        if op is H.OpCode.MAX:
            return max(a, b)
        if op is H.OpCode.EQ:
            return a == b
        if op is H.OpCode.NEQ:
            return a != b
        if op is H.OpCode.LT:
            return a < b
        if op is H.OpCode.LE:
            return a <= b
        if op is H.OpCode.GT:
            return a > b
        if op is H.OpCode.GE:
            return a >= b
        if op is H.OpCode.AND:
            return bool(a) and bool(b)
        if op is H.OpCode.OR:
            return bool(a) or bool(b)
    except (TypeError, ZeroDivisionError, ValueError):
        return None
    return None


def eval_scalar_unary(op, a):
    try:
        if op is H.OpCode.NEG:
            return -a
        if op is H.OpCode.NOT:
            return not bool(a)
        if op is H.OpCode.EXP:
            return math.exp(a)
        if op is H.OpCode.LOG:
            return math.log(a)
        if op is H.OpCode.SQRT:
            return math.sqrt(a)
        if op is H.OpCode.ABS:
            return abs(a)
        if op is H.OpCode.ROUND:
            return round(a)
        if op is H.OpCode.FLOOR:
            return math.floor(a)
        if op is H.OpCode.CEIL:
            return math.ceil(a)
        if op is H.OpCode.SIGN:
            return (a > 0) - (a < 0)
        if op is H.OpCode.CAST_AS_DOUBLE:
            return float(a)
        if op is H.OpCode.CAST_AS_INT:
            return int(a)
        if op is H.OpCode.CAST_AS_BOOLEAN:
            return bool(a)
    except (TypeError, ValueError, OverflowError):
        return None
    return None


def _to_display(value):
    """R/DML-style string rendering for print/concat."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)


def _as_int(value):
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return None


# -- per-operator output rules -----------------------------------------------


def _matrix_scalar_nnz(op, matrix_mc, scalar_const, scalar_on_left):
    """Output nnz for a matrix-scalar elementwise operation."""
    cells = matrix_mc.cells
    if cells is None:
        return None
    nnz = matrix_mc.nnz
    if op is H.OpCode.MULT:
        return nnz
    if op is H.OpCode.AND:
        return nnz
    if op is H.OpCode.DIV and not scalar_on_left:
        return nnz
    if scalar_const is None:
        return cells
    if op in (H.OpCode.PLUS, H.OpCode.MINUS, H.OpCode.OR):
        return nnz if scalar_const == 0 else cells
    if op is H.OpCode.POW:
        try:
            preserves = scalar_const > 0 and not scalar_on_left
        except TypeError:
            preserves = False
        return nnz if preserves else cells
    if op in (H.OpCode.GT, H.OpCode.LT, H.OpCode.NEQ):
        # comparisons against 0 keep the zero pattern (0>0 etc. is 0)
        return nnz if scalar_const == 0 else cells
    if op is H.OpCode.MIN and not scalar_on_left:
        try:
            return nnz if scalar_const >= 0 else cells
        except TypeError:
            return cells
    if op is H.OpCode.MAX and not scalar_on_left:
        try:
            return nnz if scalar_const <= 0 else cells
        except TypeError:
            return cells
    return cells


def _combine_broadcast_dim(a, b):
    """One output dimension of a broadcasting elementwise operation.

    With both sides known the output is the larger (vectors broadcast).
    With one side unknown: a known side > 1 pins the output (valid DML
    requires equal dims or a broadcast vector), while a known side of 1
    leaves it unknown (the other side may be any width).
    """
    if a is not None and b is not None:
        return max(a, b)
    known = a if a is not None else b
    if known is None or known <= 1:
        return None
    return known


def _broadcast_dims(left, right):
    """Output dims for elementwise matrix-matrix ops with vector
    broadcasting (column vector across columns, row vector across rows)."""
    return (
        _combine_broadcast_dim(left.rows, right.rows),
        _combine_broadcast_dim(left.cols, right.cols),
    )


class Propagator:
    """Size/constant propagation over a :class:`SB.BlockProgram`."""

    def __init__(self, block_program, input_meta=None):
        self.program = block_program
        #: filename -> MatrixCharacteristics for persistent reads
        self.input_meta = dict(input_meta or {})
        self._active_functions = set()

    # -- program walk ----------------------------------------------------

    def run(self):
        env = Env()
        self.propagate_blocks(self.program.blocks, env)
        return env

    def propagate_blocks(self, blocks, env):
        for block in blocks:
            self.propagate_block(block, env)

    def propagate_block(self, block, env):
        if isinstance(block, SB.GenericBlock):
            self.propagate_dag(block.hop_roots, env, update_env=True)
        elif isinstance(block, SB.IfBlock):
            self.propagate_dag([block.predicate.hop_root], env, update_env=False)
            then_env = env.copy()
            self.propagate_blocks(block.body, then_env)
            else_env = env.copy()
            self.propagate_blocks(block.else_body, else_env)
            merged = then_env.merge_with(else_env)
            # the if may not execute at all only when there is no else; in
            # DML semantics the merge with the pre-state covers that, but
            # variables not updated in either branch keep their facts
            if not block.else_body:
                merged = merged.merge_with(env)
            env.vars = merged.vars
        elif isinstance(block, SB.WhileBlock):
            self._propagate_loop(block, env, loop_var=None)
        elif isinstance(block, SB.ForBlock):
            for holder in (block.from_holder, block.to_holder, block.incr_holder):
                if holder is not None:
                    self.propagate_dag([holder.hop_root], env, update_env=False)
            block.known_iterations = self._trip_count(block)
            self._propagate_loop(block, env, loop_var=block.var)
        else:
            raise TypeError(f"unknown block type {type(block).__name__}")

    def _trip_count(self, block):
        frm = block.from_holder.hop_root.const_value
        to = block.to_holder.hop_root.const_value
        incr = (
            block.incr_holder.hop_root.const_value
            if block.incr_holder is not None
            else 1
        )
        frm, to, incr = _as_int(frm), _as_int(to), _as_int(incr)
        if frm is None or to is None or incr in (None, 0):
            return None
        return max(0, (to - frm) // incr + 1)

    def _propagate_loop(self, block, env, loop_var):
        if loop_var is not None:
            env.set(loop_var, VarState(DataType.SCALAR,
                                       MatrixCharacteristics(0, 0, 0), None))
        # trial pass to discover loop-variant facts, then reset and redo;
        # bounded fixpoint iteration (size lattice has depth 2 per field)
        for _ in range(3):
            trial = env.copy()
            if isinstance(block, SB.WhileBlock):
                self.propagate_dag([block.predicate.hop_root], trial,
                                   update_env=False)
            self.propagate_blocks(block.body, trial)
            before = env.copy()
            env.reset_changed(trial)
            if all(
                env.get(name).equivalent(state)
                for name, state in before.vars.items()
            ):
                break
        # final pass with stable entry facts fills hop DAGs of the body
        if isinstance(block, SB.WhileBlock):
            self.propagate_dag([block.predicate.hop_root], env, update_env=False)
        self.propagate_blocks(block.body, env)

    # -- DAG propagation -------------------------------------------------

    def propagate_dag(self, roots, env, update_env):
        """Propagate through one HOP DAG; optionally commit transient
        writes back into ``env``."""
        roots = [r for r in roots if r is not None]
        for hop in H.iter_dag(roots):
            self._propagate_hop(hop, env)
        if update_env:
            for root in roots:
                if (
                    isinstance(root, H.DataOp)
                    and root.kind is H.DataOpKind.TRANSIENT_WRITE
                ):
                    src = root.inputs[0]
                    env.set(
                        root.name,
                        VarState(src.data_type, src.mc.copy(), src.const_value),
                    )

    def _propagate_hop(self, hop, env):
        # reset per-pass fields (idempotent re-propagation)
        if not isinstance(hop, H.LiteralOp):
            hop.const_value = None

        if isinstance(hop, H.LiteralOp):
            return
        if isinstance(hop, H.DataOp):
            self._propagate_dataop(hop, env)
            return
        if isinstance(hop, H.UnaryOp):
            self._propagate_unary(hop)
            return
        if isinstance(hop, H.BinaryOp):
            self._propagate_binary(hop)
            return
        if isinstance(hop, H.AggUnaryOp):
            self._propagate_agg_unary(hop)
            return
        if isinstance(hop, H.AggBinaryOp):
            left, right = hop.inputs[0].mc, hop.inputs[1].mc
            hop.mc = MatrixCharacteristics(
                left.rows, right.cols, mult_nnz_estimate(left, right)
            )
            return
        if isinstance(hop, H.TernaryAggOp):
            hop.mc = MatrixCharacteristics(0, 0, 0)
            return
        if isinstance(hop, H.ReorgOp):
            self._propagate_reorg(hop)
            return
        if isinstance(hop, H.DataGenOp):
            self._propagate_datagen(hop)
            return
        if isinstance(hop, H.TernaryOp):
            # ctable: output dimensions are data dependent -> unknown
            hop.mc = MatrixCharacteristics.unknown()
            return
        if isinstance(hop, H.IndexingOp):
            self._propagate_indexing(hop)
            return
        if isinstance(hop, H.LeftIndexingOp):
            target = hop.inputs[0].mc
            source = hop.inputs[1].mc
            nnz = None
            if target.nnz is not None and source.nnz is not None:
                nnz = target.nnz + source.nnz
                if target.cells is not None:
                    nnz = min(nnz, target.cells)
            hop.mc = MatrixCharacteristics(target.rows, target.cols, nnz)
            return
        if isinstance(hop, H.FunctionOp):
            self._propagate_function(hop, env)
            return
        if isinstance(hop, H.FunctionOutput):
            fop = hop.inputs[0]
            outs = getattr(fop, "output_mcs", None)
            if outs is not None and hop.index < len(outs):
                mc, const = outs[hop.index]
                hop.mc = mc.copy()
                hop.const_value = const
            else:
                hop.mc = MatrixCharacteristics.unknown()
            return
        raise TypeError(f"unknown hop type {type(hop).__name__}")

    # -- individual operator rules ---------------------------------------

    def _propagate_dataop(self, hop, env):
        if hop.kind is H.DataOpKind.PERSISTENT_READ:
            meta = self.input_meta.get(hop.fname)
            hop.mc = meta.copy() if meta is not None else MatrixCharacteristics.unknown()
        elif hop.kind is H.DataOpKind.TRANSIENT_READ:
            state = env.get(hop.name)
            if state is not None:
                hop.mc = state.mc.copy()
                hop.const_value = state.const
                hop.data_type = state.data_type
            else:
                hop.mc = MatrixCharacteristics.unknown()
        else:  # writes mirror their input
            src = hop.inputs[0]
            hop.mc = src.mc.copy()
            hop.const_value = src.const_value

    def _propagate_unary(self, hop):
        inp = hop.inputs[0]
        op = hop.op
        if op in (H.OpCode.NROW, H.OpCode.NCOL, H.OpCode.LENGTH):
            hop.mc = MatrixCharacteristics(0, 0, 0)
            mc = inp.mc
            if op is H.OpCode.NROW and mc.rows is not None:
                hop.const_value = mc.rows
            elif op is H.OpCode.NCOL and mc.cols is not None:
                hop.const_value = mc.cols
            elif op is H.OpCode.LENGTH and mc.cells is not None:
                hop.const_value = mc.cells
            return
        if op is H.OpCode.CAST_AS_SCALAR:
            hop.mc = MatrixCharacteristics(0, 0, 0)
            return
        if op is H.OpCode.CAST_AS_MATRIX:
            hop.mc = MatrixCharacteristics(1, 1, 1)
            return
        if hop.is_scalar:
            hop.mc = MatrixCharacteristics(0, 0, 0)
            if inp.const_value is not None:
                hop.const_value = eval_scalar_unary(op, inp.const_value)
            return
        if op is H.OpCode.CUMSUM:
            mc = inp.mc
            hop.mc = MatrixCharacteristics(mc.rows, mc.cols, mc.cells)
            return
        if op is H.OpCode.REMOVE_EMPTY:
            # the compacted dimension is data dependent -> unknown
            mc = inp.mc
            if getattr(hop, "margin", "rows") == "rows":
                hop.mc = MatrixCharacteristics(None, mc.cols, mc.nnz)
            else:
                hop.mc = MatrixCharacteristics(mc.rows, None, mc.nnz)
            return
        # elementwise matrix math
        mc = inp.mc
        if op in H.ZERO_PRESERVING_UNARY:
            nnz = mc.nnz
        else:
            nnz = mc.cells
        hop.mc = MatrixCharacteristics(mc.rows, mc.cols, nnz)

    def _propagate_binary(self, hop):
        left, right = hop.inputs
        op = hop.op
        if hop.is_scalar:
            hop.mc = MatrixCharacteristics(0, 0, 0)
            if left.const_value is not None and right.const_value is not None:
                hop.const_value = eval_scalar_binary(
                    op, left.const_value, right.const_value
                )
            return
        if op is H.OpCode.SOLVE:
            hop.mc = MatrixCharacteristics(
                left.mc.cols,
                right.mc.cols,
                (
                    left.mc.cols * right.mc.cols
                    if left.mc.cols is not None and right.mc.cols is not None
                    else None
                ),
            )
            return
        if op is H.OpCode.CBIND:
            rows = left.mc.rows if left.mc.rows is not None else right.mc.rows
            cols = (
                left.mc.cols + right.mc.cols
                if left.mc.cols is not None and right.mc.cols is not None
                else None
            )
            nnz = (
                left.mc.nnz + right.mc.nnz
                if left.mc.nnz is not None and right.mc.nnz is not None
                else None
            )
            hop.mc = MatrixCharacteristics(rows, cols, nnz)
            return
        if op is H.OpCode.RBIND:
            rows = (
                left.mc.rows + right.mc.rows
                if left.mc.rows is not None and right.mc.rows is not None
                else None
            )
            cols = left.mc.cols if left.mc.cols is not None else right.mc.cols
            nnz = (
                left.mc.nnz + right.mc.nnz
                if left.mc.nnz is not None and right.mc.nnz is not None
                else None
            )
            hop.mc = MatrixCharacteristics(rows, cols, nnz)
            return
        if left.is_matrix and right.is_matrix:
            rows, cols = _broadcast_dims(left.mc, right.mc)
            nnz = binary_nnz_estimate(
                op in H.ZERO_PRESERVING_BINARY, left.mc, right.mc
            )
            hop.mc = MatrixCharacteristics(rows, cols, nnz)
            return
        # matrix-scalar
        matrix, scalar = (left, right) if left.is_matrix else (right, left)
        scalar_on_left = scalar is left
        nnz = _matrix_scalar_nnz(op, matrix.mc, scalar.const_value, scalar_on_left)
        hop.mc = MatrixCharacteristics(matrix.mc.rows, matrix.mc.cols, nnz)

    def _propagate_agg_unary(self, hop):
        mc = hop.inputs[0].mc
        if hop.direction is H.AggDirection.ALL:
            hop.mc = MatrixCharacteristics(0, 0, 0)
            return
        if hop.direction is H.AggDirection.ROW:
            hop.mc = MatrixCharacteristics(mc.rows, 1, mc.rows)
            return
        hop.mc = MatrixCharacteristics(1, mc.cols, mc.cols)

    def _propagate_reorg(self, hop):
        mc = hop.inputs[0].mc
        if hop.op is H.OpCode.TRANSPOSE:
            hop.mc = MatrixCharacteristics(mc.cols, mc.rows, mc.nnz)
            return
        # diag: vector -> diagonal matrix; matrix -> diagonal extraction
        if mc.cols == 1 and mc.rows is not None:
            hop.mc = MatrixCharacteristics(mc.rows, mc.rows, mc.nnz)
        elif mc.dims_known:
            nnz = min(mc.rows, mc.nnz) if mc.nnz is not None else mc.rows
            hop.mc = MatrixCharacteristics(mc.rows, 1, nnz)
        else:
            hop.mc = MatrixCharacteristics.unknown()

    def _propagate_datagen(self, hop):
        if hop.gen_method is H.OpCode.SEQ:
            frm = hop.param("from")
            to = hop.param("to")
            incr = hop.param("incr")
            frm_v = frm.const_value if frm is not None else None
            to_v = to.const_value if to is not None else None
            incr_v = incr.const_value if incr is not None else 1
            if frm_v is not None and to_v is not None and incr_v not in (None, 0):
                rows = int(max(0, math.floor((to_v - frm_v) / incr_v) + 1))
                hop.mc = MatrixCharacteristics(rows, 1, rows)
            else:
                hop.mc = MatrixCharacteristics(None, 1, None)
            return
        rows_hop = hop.param("rows")
        cols_hop = hop.param("cols")
        rows = _as_int(rows_hop.const_value) if rows_hop is not None else None
        cols = _as_int(cols_hop.const_value) if cols_hop is not None else None
        min_hop = hop.param("min")
        max_hop = hop.param("max")
        sp_hop = hop.param("sparsity")
        min_v = min_hop.const_value if min_hop is not None else None
        max_v = max_hop.const_value if max_hop is not None else None
        if min_v == 0 and max_v == 0:
            sparsity = 0.0
        elif sp_hop is not None and sp_hop.const_value is not None:
            sparsity = float(sp_hop.const_value)
        elif min_v is not None and max_v is not None and min_v * max_v > 0:
            sparsity = 1.0  # range excludes zero
        elif min_v == max_v and min_v is not None:
            sparsity = 0.0 if min_v == 0 else 1.0
        else:
            sparsity = 1.0
        nnz = None
        if rows is not None and cols is not None:
            nnz = int(round(rows * cols * sparsity))
        hop.mc = MatrixCharacteristics(rows, cols, nnz)

    def _propagate_indexing(self, hop):
        inp, rl, ru, cl, cu = hop.inputs
        mc = inp.mc

        def span(lower, upper, full, is_all):
            if is_all:
                return full
            lo = _as_int(lower.const_value)
            hi = _as_int(upper.const_value)
            if lo is not None and hi is not None:
                return max(0, hi - lo + 1)
            return None

        rows = span(rl, ru, mc.rows, hop.all_rows)
        cols = span(cl, cu, mc.cols, hop.all_cols)
        nnz = None
        if (
            rows is not None
            and cols is not None
            and mc.cells not in (None, 0)
            and mc.nnz is not None
        ):
            fraction = (rows * cols) / mc.cells
            nnz = min(rows * cols, int(math.ceil(mc.nnz * fraction)))
        elif rows is not None and cols is not None and mc.cells == 0:
            nnz = 0
        hop.mc = MatrixCharacteristics(rows, cols, nnz)

    def _propagate_function(self, hop, env):
        """Inter-procedural propagation: push argument characteristics into
        the function body and pull output characteristics back."""
        func = self.program.functions.get(hop.func_name)
        hop.mc = MatrixCharacteristics.unknown()
        if func is None or hop.func_name in self._active_functions:
            hop.output_mcs = None
            return
        self._active_functions.add(hop.func_name)
        try:
            fenv = Env()
            for param, arg in zip(func.inputs, hop.inputs):
                dtype = (
                    DataType.MATRIX if param.data_type == "matrix" else DataType.SCALAR
                )
                fenv.set(
                    param.name,
                    VarState(dtype, arg.mc.copy(), arg.const_value),
                )
            self.propagate_blocks(func.blocks, fenv)
            outs = []
            for param in func.outputs:
                state = fenv.get(param.name)
                if state is None:
                    outs.append((MatrixCharacteristics.unknown(), None))
                else:
                    outs.append((state.mc.copy(), state.const))
            hop.output_mcs = outs
        finally:
            self._active_functions.discard(hop.func_name)


def propagate_sizes(block_program, input_meta=None):
    """Run size/constant propagation over the whole program in place."""
    return Propagator(block_program, input_meta).run()
