"""Statement-block hierarchy construction.

DML programs compile into a hierarchy of program blocks defined by the
control structure (paper Section 2.1, Appendix B Figure 16(a)): runs of
straight-line statements form *generic* blocks; ``if``/``while``/``for``
statements form structured blocks whose predicates compile into small
DAGs and whose bodies are themselves block lists.

Each block records the variables it *reads* (live on entry) and
*updates* (assigned inside), which drives transient read/write insertion
during HOP construction and the scoping of dynamic recompilation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.dml import ast

_block_ids = itertools.count(1)


@dataclass
class BlockBase:
    """Common fields of all statement blocks."""

    block_id: int = field(default_factory=lambda: next(_block_ids))
    #: variables read before being assigned within this block (transitively
    #: including child blocks)
    read_vars: set = field(default_factory=set)
    #: variables assigned within this block (transitively)
    updated_vars: set = field(default_factory=set)
    line: int = 0

    def all_blocks(self):
        """Yield this block and all nested blocks, pre-order."""
        yield self

    def last_level_blocks(self):
        """Yield only last-level (generic) blocks, the recompilation and
        per-block MR-resource granularity of the paper."""
        for block in self.all_blocks():
            if isinstance(block, GenericBlock):
                yield block


@dataclass
class GenericBlock(BlockBase):
    """A run of straight-line statements; compiles to one HOP DAG."""

    statements: list = field(default_factory=list)
    # filled by the HOP builder:
    hop_roots: list = field(default_factory=list)
    requires_recompile: bool = False
    #: memory-budget divisor from enclosing parfor loops: k concurrent
    #: workers each hold their own intermediates (paper Section 6,
    #: "usually the degree of parallelism affects memory requirements")
    budget_divisor: int = 1


@dataclass
class PredicateHolder:
    """Wraps a predicate expression and its compiled HOP root."""

    expr: object = None
    hop_root: object = None
    read_vars: set = field(default_factory=set)


@dataclass
class IfBlock(BlockBase):
    predicate: PredicateHolder = None
    body: list = field(default_factory=list)
    else_body: list = field(default_factory=list)

    def all_blocks(self):
        yield self
        for child in itertools.chain(self.body, self.else_body):
            yield from child.all_blocks()


@dataclass
class WhileBlock(BlockBase):
    predicate: PredicateHolder = None
    body: list = field(default_factory=list)

    def all_blocks(self):
        yield self
        for child in self.body:
            yield from child.all_blocks()


@dataclass
class ForBlock(BlockBase):
    var: str = ""
    from_holder: PredicateHolder = None
    to_holder: PredicateHolder = None
    incr_holder: PredicateHolder = None
    body: list = field(default_factory=list)
    #: constant trip count when derivable at compile time, else None
    known_iterations: int = None
    #: task-parallel loop (parfor): iterations are independent
    parallel: bool = False

    def all_blocks(self):
        yield self
        for child in self.body:
            yield from child.all_blocks()


@dataclass
class FunctionProgram:
    """A user-defined function: parameter lists plus a block list."""

    name: str = ""
    inputs: list = field(default_factory=list)
    outputs: list = field(default_factory=list)
    blocks: list = field(default_factory=list)

    def all_blocks(self):
        for block in self.blocks:
            yield from block.all_blocks()


@dataclass
class BlockProgram:
    """A full program: top-level blocks plus function programs."""

    blocks: list = field(default_factory=list)
    functions: dict = field(default_factory=dict)
    script_args: dict = field(default_factory=dict)
    source: str = ""

    def all_blocks(self, include_functions=True):
        for block in self.blocks:
            yield from block.all_blocks()
        if include_functions:
            for func in self.functions.values():
                yield from func.all_blocks()

    def num_blocks(self, include_functions=True):
        return sum(1 for _ in self.all_blocks(include_functions))


# -- variable read/update analysis -------------------------------------------


def _expr_reads(expr, reads, assigned):
    """Add variables read by ``expr`` (not yet assigned locally) to ``reads``."""
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.Identifier) and node.name not in assigned:
            reads.add(node.name)


def _analyze_statements(statements, reads, assigned):
    """Flow-sensitive read/update analysis over a statement list.

    ``reads`` collects variables read before assignment; ``assigned``
    collects assigned names.  Control-flow bodies are analyzed with a copy
    of ``assigned`` because assignments inside a branch/loop may not
    execute — reads after the construct of such variables remain
    conservative reads of the outer value.
    """
    for stmt in statements:
        if isinstance(stmt, ast.Assignment):
            _expr_reads(stmt.expr, reads, assigned)
            if stmt.is_left_indexing:
                # left indexing reads the current value of the target
                if stmt.target not in assigned:
                    reads.add(stmt.target)
                for rng in (stmt.row_range, stmt.col_range):
                    if rng is not None:
                        _expr_reads(rng.lower, reads, assigned)
                        _expr_reads(rng.upper, reads, assigned)
            assigned.add(stmt.target)
        elif isinstance(stmt, ast.MultiAssignment):
            _expr_reads(stmt.call, reads, assigned)
            assigned.update(stmt.targets)
        elif isinstance(stmt, ast.ExprStatement):
            _expr_reads(stmt.expr, reads, assigned)
        elif isinstance(stmt, ast.IfStatement):
            _expr_reads(stmt.predicate, reads, assigned)
            then_assigned = set(assigned)
            _analyze_statements(stmt.body, reads, then_assigned)
            else_assigned = set(assigned)
            _analyze_statements(stmt.else_body, reads, else_assigned)
            # conservatively treat possibly-assigned names as assigned; a
            # later read still registers as a block read via child analysis
            assigned.update(then_assigned | else_assigned)
        elif isinstance(stmt, ast.WhileStatement):
            _expr_reads(stmt.predicate, reads, assigned)
            body_assigned = set(assigned)
            # loop body may read its own updates from a prior iteration;
            # analyze with fresh "assigned" view to catch first-iteration reads
            _analyze_statements(stmt.body, reads, body_assigned)
            assigned.update(body_assigned)
        elif isinstance(stmt, ast.ForStatement):
            _expr_reads(stmt.from_expr, reads, assigned)
            _expr_reads(stmt.to_expr, reads, assigned)
            if stmt.increment is not None:
                _expr_reads(stmt.increment, reads, assigned)
            body_assigned = set(assigned) | {stmt.var}
            _analyze_statements(stmt.body, reads, body_assigned)
            assigned.update(body_assigned - {stmt.var})


def _analyze_block(block):
    """Fill read/updated var sets for ``block`` (recursively)."""
    reads = set()
    assigned = set()
    if isinstance(block, GenericBlock):
        _analyze_statements(block.statements, reads, assigned)
    elif isinstance(block, IfBlock):
        _expr_reads(block.predicate.expr, reads, assigned)
        block.predicate.read_vars = set(reads)
        for child in itertools.chain(block.body, block.else_body):
            _analyze_block(child)
            reads.update(child.read_vars - assigned)
            assigned.update(child.updated_vars)
    elif isinstance(block, WhileBlock):
        _expr_reads(block.predicate.expr, reads, assigned)
        block.predicate.read_vars = set(reads)
        for child in block.body:
            _analyze_block(child)
            reads.update(child.read_vars - assigned)
            assigned.update(child.updated_vars)
        # loop-carried: anything updated in the loop and read anywhere in
        # the loop (or its predicate) is also a read of the block
        again = set()
        for child in block.body:
            again.update(child.read_vars)
        again.update(block.predicate.read_vars)
        reads.update(again & assigned)
    elif isinstance(block, ForBlock):
        for holder in (block.from_holder, block.to_holder, block.incr_holder):
            if holder is not None:
                _expr_reads(holder.expr, reads, assigned)
                holder.read_vars = set(reads)
        assigned.add(block.var)
        for child in block.body:
            _analyze_block(child)
            reads.update(child.read_vars - assigned)
            assigned.update(child.updated_vars)
        again = set()
        for child in block.body:
            again.update(child.read_vars)
        reads.update(again & assigned)
        assigned.discard(block.var)
    block.read_vars = reads
    block.updated_vars = assigned


# -- construction ------------------------------------------------------------


def _build_blocks(statements):
    """Split a statement list into a list of statement blocks."""
    blocks = []
    pending = []

    def flush():
        if pending:
            blocks.append(
                GenericBlock(statements=list(pending), line=pending[0].line)
            )
            pending.clear()

    for stmt in statements:
        if isinstance(stmt, ast.IfStatement):
            flush()
            blocks.append(
                IfBlock(
                    predicate=PredicateHolder(expr=stmt.predicate),
                    body=_build_blocks(stmt.body),
                    else_body=_build_blocks(stmt.else_body),
                    line=stmt.line,
                )
            )
        elif isinstance(stmt, ast.WhileStatement):
            flush()
            blocks.append(
                WhileBlock(
                    predicate=PredicateHolder(expr=stmt.predicate),
                    body=_build_blocks(stmt.body),
                    line=stmt.line,
                )
            )
        elif isinstance(stmt, ast.ForStatement):
            flush()
            blocks.append(
                ForBlock(
                    var=stmt.var,
                    from_holder=PredicateHolder(expr=stmt.from_expr),
                    to_holder=PredicateHolder(expr=stmt.to_expr),
                    incr_holder=(
                        PredicateHolder(expr=stmt.increment)
                        if stmt.increment is not None
                        else None
                    ),
                    body=_build_blocks(stmt.body),
                    parallel=stmt.parallel,
                    line=stmt.line,
                )
            )
        else:
            pending.append(stmt)
    flush()
    return blocks


def build_program(program, script_args=None, source=""):
    """Build a :class:`BlockProgram` from a parsed :class:`ast.Program`."""
    block_program = BlockProgram(
        blocks=_build_blocks(program.statements),
        script_args=dict(script_args or {}),
        source=source,
    )
    for name, func in program.functions.items():
        block_program.functions[name] = FunctionProgram(
            name=name,
            inputs=func.inputs,
            outputs=func.outputs,
            blocks=_build_blocks(func.body),
        )
    for block in block_program.blocks:
        _analyze_block(block)
    for func in block_program.functions.values():
        for block in func.blocks:
            _analyze_block(block)
    return block_program
