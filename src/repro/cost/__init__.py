"""White-box analytical cost model (paper Section 3.1).

Estimates execution time of generated runtime plans by scanning
instructions in execution order, tracking sizes and in-memory/HDFS states
of live variables, and pricing IO, compute, and latency per instruction.
Costing always happens on runtime plans — never on HOPs — so every
compilation decision (rewrites, operator selection, piggybacking) is
automatically reflected.
"""

from repro.cost.calibrate import (
    CalibrationCollector,
    CalibrationProfile,
    NULL_COLLECTOR,
    drifted_parameters,
    fit_profile,
    get_collector,
    set_collector,
    use_collector,
)
from repro.cost.constants import CostParameters
from repro.cost.model import CostModel

__all__ = [
    "CostModel",
    "CostParameters",
    "CalibrationCollector",
    "CalibrationProfile",
    "NULL_COLLECTOR",
    "drifted_parameters",
    "fit_profile",
    "get_collector",
    "set_collector",
    "use_collector",
]
