"""Calibration: fit :class:`CostParameters` from traced runtime actuals.

The optimizer's white-box cost model and the runtime simulator share one
set of hardware constants (:mod:`repro.cost.constants`), hand-tuned to
2014 commodity nodes.  On a cluster whose real bandwidths and latencies
differ, every estimate the optimizer ranks plans by is systematically
off.  This module closes the loop the tracer opened:

* the **runtime** emits one *(component, work, seconds)* sample per
  charged IO/compute/latency event through a
  :class:`CalibrationCollector` (a thread-local/default slot mirroring
  :func:`repro.obs.tracer.get_tracer`, so emission costs one global read
  plus an empty method call when calibration is off);
* :func:`fit_profile` turns the collected samples into a
  :class:`CalibrationProfile` by robust least-squares per component —
  an origin-constrained slope fit with a few Huber-weighted IRLS
  rounds, so a handful of outlier samples (fault retries, thrashing
  tasks) cannot hijack a constant;
* the profile persists as JSON and later sessions (or the serving
  layer's shared slot) feed ``profile.parameters()`` into
  :class:`~repro.cost.model.CostModel` as the optimizer's *belief*,
  while the simulated hardware truth stays wherever it was.

Each sample's *work* is expressed in units that make the modelled time
``t = work / param`` (rates: bandwidths, FLOP rates) or ``t = work *
param`` (latencies), so the slope of ``seconds`` against ``work``
through the origin recovers the constant directly.  Components below
``min_samples`` observed samples fall back to the base parameters —
calibration never extrapolates from noise.

Everything here is stdlib-only and deterministic: fitting the same
samples always yields the same profile, and with calibration off no
code path in the runtime or cost model behaves differently (the
fidelity ablation in ``benchmarks/bench_calibration.py`` asserts
byte-identical figures).
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, fields

from repro.cost.constants import DEFAULT_PARAMETERS, CostParameters
from repro.obs.tracer import get_tracer

#: components with fewer observed samples than this keep their defaults
DEFAULT_MIN_SAMPLES = 8

#: per-component cap on retained (work, seconds) pairs; first-N keeps
#: collection deterministic and bounded regardless of run length
MAX_SAMPLES_PER_COMPONENT = 2048

#: IRLS rounds for the Huber-weighted slope re-fit
_IRLS_ROUNDS = 3

#: Huber tuning constant (residuals beyond k scaled-MADs are downweighted)
_HUBER_K = 1.345


@dataclass(frozen=True)
class Component:
    """One calibratable constant: its sample stream and fit semantics."""

    name: str
    #: the :class:`CostParameters` field the fit updates
    param: str
    #: ``rate`` — ``t = work / param`` (work in bytes or FLOPs);
    #: ``latency`` — ``t = work * param`` (work in latency units)
    kind: str


#: the calibratable subset of :class:`CostParameters`.  Structural
#: factors (sparse/text IO multipliers, thrash penalty) are folded into
#: each sample's *work* by the emitter, so they stay fixed.
COMPONENTS = (
    Component("hdfs_read", "hdfs_read_bw", "rate"),
    Component("hdfs_write", "hdfs_write_bw", "rate"),
    Component("local_disk", "local_disk_bw", "rate"),
    Component("cp_compute", "cp_flops", "rate"),
    Component("mr_compute", "mr_task_flops", "rate"),
    Component("shuffle", "shuffle_bw_per_node", "rate"),
    Component("mr_job_latency", "mr_job_latency", "latency"),
    Component("mr_task_latency", "mr_task_latency", "latency"),
)

COMPONENT_BY_NAME = {component.name: component for component in COMPONENTS}


class ComponentSamples:
    """Bounded (work, seconds) sample set for one cost component."""

    __slots__ = ("n", "sum_work", "sum_seconds", "pairs", "max_samples")

    def __init__(self, max_samples=MAX_SAMPLES_PER_COMPONENT):
        self.n = 0
        self.sum_work = 0.0
        self.sum_seconds = 0.0
        self.pairs = []
        self.max_samples = max_samples

    def add(self, work, seconds):
        self.n += 1
        self.sum_work += work
        self.sum_seconds += seconds
        if len(self.pairs) < self.max_samples:
            self.pairs.append((work, seconds))

    def merge(self, other):
        self.n += other.n
        self.sum_work += other.sum_work
        self.sum_seconds += other.sum_seconds
        room = self.max_samples - len(self.pairs)
        if room > 0:
            self.pairs.extend(other.pairs[:room])

    def to_dict(self):
        return {
            "n": self.n,
            "sum_work": self.sum_work,
            "sum_seconds": self.sum_seconds,
            "pairs": [list(pair) for pair in self.pairs],
        }


class CalibrationCollector:
    """Thread-safe accumulator of per-component calibration samples.

    Runtime emission sites call :meth:`add`; a session (or the serving
    layer, which shares one collector across tenants under its own
    lock) later hands the collector to :func:`fit_profile`.
    """

    #: emission sites may consult this to skip computing work units
    enabled = True

    def __init__(self, max_samples=MAX_SAMPLES_PER_COMPONENT):
        self._lock = threading.Lock()
        self._components = {}
        self._max_samples = max_samples

    def add(self, component, work, seconds):
        """Record one observed (work, seconds) pair for ``component``.

        Non-positive work or negative/non-finite values are dropped: a
        zero-work sample carries no slope information and a charge of
        exactly zero seconds (empty IO) would only dilute the fit.
        """
        if not (work > 0.0 and seconds >= 0.0):
            return
        if not (math.isfinite(work) and math.isfinite(seconds)):
            return
        with self._lock:
            samples = self._components.get(component)
            if samples is None:
                samples = ComponentSamples(self._max_samples)
                self._components[component] = samples
            samples.add(work, seconds)
        get_tracer().incr("calib.samples")

    def merge(self, other):
        """Fold another collector's samples into this one."""
        with other._lock:
            snapshot = {
                name: (s.n, s.sum_work, s.sum_seconds, list(s.pairs))
                for name, s in other._components.items()
            }
        with self._lock:
            for name, (n, sum_work, sum_seconds, pairs) in snapshot.items():
                samples = self._components.get(name)
                if samples is None:
                    samples = ComponentSamples(self._max_samples)
                    self._components[name] = samples
                samples.n += n
                samples.sum_work += sum_work
                samples.sum_seconds += sum_seconds
                room = samples.max_samples - len(samples.pairs)
                if room > 0:
                    samples.pairs.extend(pairs[:room])
        return self

    def snapshot(self):
        """Consistent copy of the per-component pair lists (for fitting)."""
        with self._lock:
            return {
                name: (samples.n, list(samples.pairs))
                for name, samples in self._components.items()
            }

    def counts(self):
        """Observed sample count per component name."""
        with self._lock:
            return {
                name: samples.n for name, samples in self._components.items()
            }

    def totals(self):
        """Per-component ``(n, sum_work, sum_seconds)`` aggregates — the
        actual side of estimate-vs-actual divergence reports."""
        with self._lock:
            return {
                name: (samples.n, samples.sum_work, samples.sum_seconds)
                for name, samples in self._components.items()
            }

    @property
    def total_samples(self):
        with self._lock:
            return sum(s.n for s in self._components.values())

    def clear(self):
        with self._lock:
            self._components.clear()


class _NullCollector:
    """Disabled collector: :meth:`add` is a no-op (the default slot)."""

    enabled = False

    def add(self, component, work, seconds):
        pass

    def merge(self, other):
        return self

    def snapshot(self):
        return {}

    def counts(self):
        return {}

    def totals(self):
        return {}

    @property
    def total_samples(self):
        return 0

    def clear(self):
        pass


NULL_COLLECTOR = _NullCollector()

#: process-wide default collector, overridable per thread — the same
#: shape as the tracer slot, so concurrent serving tenants can feed one
#: shared collector while unrelated threads stay uninstrumented
_default_collector = NULL_COLLECTOR
_active_collector = threading.local()


def get_collector():
    """The active collector: this thread's override if installed, else
    the process-wide default (:data:`NULL_COLLECTOR` unless
    :func:`set_collector` changed it)."""
    collector = getattr(_active_collector, "collector", None)
    return collector if collector is not None else _default_collector


def set_collector(collector):
    """Install ``collector`` process-wide; ``None`` restores the null
    collector.  Threads inside a :func:`use_collector` block are
    unaffected."""
    global _default_collector
    _default_collector = (
        collector if collector is not None else NULL_COLLECTOR
    )
    return _default_collector


@contextmanager
def use_collector(collector):
    """Activate ``collector`` on *this thread* for the ``with`` block."""
    previous = getattr(_active_collector, "collector", None)
    _active_collector.collector = (
        collector if collector is not None else NULL_COLLECTOR
    )
    try:
        yield get_collector()
    finally:
        _active_collector.collector = previous


# -- fitting ----------------------------------------------------------------


def _median(values):
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def fit_slope(pairs):
    """Robust slope of seconds against work through the origin.

    Weighted least squares ``m = Σ(w·x·t) / Σ(w·x²)`` seeded with unit
    weights (plain OLS), then a few IRLS rounds with Huber weights on
    the residuals scaled by their MAD.  Deterministic; returns ``None``
    when no positive, finite slope is identifiable.
    """
    xs = [x for x, _ in pairs]
    ts = [t for _, t in pairs]
    if not xs or all(x == 0.0 for x in xs):
        return None
    weights = [1.0] * len(xs)
    slope = None
    for _ in range(1 + _IRLS_ROUNDS):
        num = sum(w * x * t for w, x, t in zip(weights, xs, ts))
        den = sum(w * x * x for w, x in zip(weights, xs))
        if den <= 0.0:
            return None
        slope = num / den
        residuals = [t - slope * x for x, t in zip(xs, ts)]
        mad = _median([abs(r) for r in residuals])
        scale = 1.4826 * mad
        if scale <= 0.0:
            break  # perfect (or degenerate) fit — no reweighting needed
        cutoff = _HUBER_K * scale
        weights = [
            1.0 if abs(r) <= cutoff else cutoff / abs(r) for r in residuals
        ]
    if slope is None or not math.isfinite(slope) or slope <= 0.0:
        return None
    return slope


def cluster_signature(cluster):
    """Stable digest of the cluster profile a calibration belongs to."""
    return hashlib.sha256(repr(cluster).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CalibrationProfile:
    """Fitted cost constants for one cluster profile, JSON-persistable.

    ``base`` snapshots the full :class:`CostParameters` the fit started
    from; ``fitted`` holds only the fields the fit had enough samples to
    update.  ``parameters()`` overlays the two, so loading a profile
    reproduces the exact fit-time constants bit-for-bit (JSON round-trips
    Python floats exactly via ``repr`` shortest-form).
    """

    cluster_signature: str
    base: dict
    fitted: dict = field(default_factory=dict)
    sample_counts: dict = field(default_factory=dict)
    min_samples: int = DEFAULT_MIN_SAMPLES

    def parameters(self):
        """The calibrated :class:`CostParameters` (base overlaid with fits)."""
        values = dict(self.base)
        values.update(self.fitted)
        return CostParameters(**values)

    def matches(self, cluster):
        """Whether this profile was fitted for ``cluster``."""
        return self.cluster_signature == cluster_signature(cluster)

    def to_dict(self):
        return {
            "cluster_signature": self.cluster_signature,
            "base": dict(self.base),
            "fitted": dict(self.fitted),
            "sample_counts": dict(self.sample_counts),
            "min_samples": self.min_samples,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            cluster_signature=data["cluster_signature"],
            base=dict(data["base"]),
            fitted=dict(data.get("fitted", {})),
            sample_counts=dict(data.get("sample_counts", {})),
            min_samples=data.get("min_samples", DEFAULT_MIN_SAMPLES),
        )

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def fit_profile(collector, cluster, base_params=None,
                min_samples=DEFAULT_MIN_SAMPLES):
    """Fit a :class:`CalibrationProfile` from collected samples.

    Components with fewer than ``min_samples`` samples — or whose fit is
    degenerate — keep the base parameter.  Each successfully fitted
    constant increments the ``calib.fitted`` counter on the active
    tracer.
    """
    base = base_params if base_params is not None else DEFAULT_PARAMETERS
    snapshot = collector.snapshot()
    tracer = get_tracer()
    fitted = {}
    sample_counts = {}
    for component in COMPONENTS:
        n, pairs = snapshot.get(component.name, (0, []))
        sample_counts[component.name] = n
        if n < min_samples:
            continue
        slope = fit_slope(pairs)
        if slope is None:
            continue
        if component.kind == "rate":
            fitted[component.param] = 1.0 / slope
        else:
            fitted[component.param] = slope
        tracer.incr("calib.fitted")
    tracer.incr("calib.fit_runs")
    return CalibrationProfile(
        cluster_signature=cluster_signature(cluster),
        base=asdict(base),
        fitted=fitted,
        sample_counts=sample_counts,
        min_samples=min_samples,
    )


def drifted_parameters(seed, base=None, spread=0.6):
    """Deterministically perturb the calibratable constants.

    Used as the simulated hardware *truth* in benchmarks and the CLI
    demo: each calibratable field of ``base`` is scaled by a log-uniform
    factor in ``[e^-spread, e^spread]`` drawn from ``random.Random(seed)``,
    modelling a cluster whose hardware differs from the 2014 defaults.
    """
    base = base if base is not None else DEFAULT_PARAMETERS
    rng = random.Random(seed)
    values = asdict(base)
    for component in COMPONENTS:
        factor = math.exp(rng.uniform(-spread, spread))
        values[component.param] = values[component.param] * factor
    return CostParameters(**values)


def resolve_profile(profile, cluster=None):
    """Normalise a profile argument: a :class:`CalibrationProfile`, a
    path to a saved one, or ``None``.  When ``cluster`` is given, a
    profile fitted for a different cluster raises ``ValueError`` — using
    constants learned on other hardware silently would defeat the point
    of per-cluster calibration.
    """
    if profile is None:
        return None
    if isinstance(profile, (str, bytes)):
        profile = CalibrationProfile.load(profile)
    if not isinstance(profile, CalibrationProfile):
        raise TypeError(
            "calibration_profile must be a CalibrationProfile or a path, "
            f"got {type(profile).__name__}"
        )
    if cluster is not None and not profile.matches(cluster):
        raise ValueError(
            "calibration profile was fitted for a different cluster "
            f"(profile {profile.cluster_signature}, "
            f"cluster {cluster_signature(cluster)})"
        )
    return profile


def parameter_fields():
    """Names of all :class:`CostParameters` fields (for reporting)."""
    return [f.name for f in fields(CostParameters)]
