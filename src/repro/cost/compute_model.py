"""Operation-specific floating-point operation counts.

``operation_flops`` maps a semantic opcode plus the (compile-time or
runtime) matrix characteristics of its inputs/output to an estimated
FLOP count.  Sparse inputs scale matrix-multiply work by sparsity, which
is what makes sparse scenarios prefer single-node plans in the paper's
experiments.
"""

from __future__ import annotations


def _cells(mc):
    cells = mc.cells
    return 0 if cells is None else cells


def _nnz(mc):
    if mc is None:
        return 0
    if mc.nnz is not None:
        return mc.nnz
    return _cells(mc)


_ELEMENTWISE = {
    "+", "-", "*", "/", "^", "%%", "%/%", "min", "max",
    "==", "!=", "<", "<=", ">", ">=", "&", "|", "!",
    "u-", "abs", "round", "floor", "ceil", "sign",
}

#: transcendental elementwise functions cost several flops per cell
_EXPENSIVE_UNARY = {"exp": 20.0, "log": 20.0, "sqrt": 4.0}


def operation_flops(opcode, out_mc, in_mcs, attrs=None):
    """Estimated floating point operations of one operator execution."""
    attrs = attrs or {}
    if opcode in _ELEMENTWISE:
        return float(max(_cells(out_mc), 1))
    if opcode in _EXPENSIVE_UNARY:
        return _EXPENSIVE_UNARY[opcode] * max(_cells(out_mc), 1)
    if opcode == "ba+*":
        if not in_mcs:
            return float(_cells(out_mc))
        left = in_mcs[0]
        right = in_mcs[1] if len(in_mcs) > 1 else None
        common = left.cols if left.cols is not None else 1
        if attrs.get("transpose_left"):
            # semantic t(X) %*% v computed by scanning X = in_mcs[0]
            common = left.rows if left.rows is not None else 1
            return 2.0 * _nnz(left) * (right.cols or 1 if right else 1)
        out_cols = right.cols if right is not None and right.cols else 1
        return 2.0 * _nnz(left) * out_cols
    if opcode == "tsmm":
        x = in_mcs[0]
        return 2.0 * _nnz(x) * (x.cols or 1)
    if opcode == "mapmmchain":
        x = in_mcs[0]
        return 4.0 * _nnz(x)
    if opcode == "tak+*":
        return 3.0 * max(_cells(out_mc), _cells(in_mcs[0]) if in_mcs else 1, 1)
    if opcode.startswith("ua"):
        return float(max(_nnz(in_mcs[0]) if in_mcs else 1, 1))
    if opcode in ("ucumk+", "rmempty"):
        return float(max(_cells(in_mcs[0]) if in_mcs else 1, 1))
    if opcode == "r'":
        return float(max(_nnz(in_mcs[0]) if in_mcs else 1, 1))
    if opcode == "rdiag":
        return float(max(_cells(out_mc), 1))
    if opcode in ("rand", "seq"):
        return float(max(_cells(out_mc), 1))
    if opcode == "ctable":
        return 4.0 * max(_cells(in_mcs[0]) if in_mcs else 1, 1)
    if opcode in ("rix", "lix", "cbind", "rbind"):
        return float(max(_cells(out_mc), 1))
    if opcode == "solve":
        n = in_mcs[0].rows if in_mcs and in_mcs[0].rows else 1
        m = in_mcs[1].cols if len(in_mcs) > 1 and in_mcs[1].cols else 1
        return (2.0 / 3.0) * n**3 + 2.0 * n**2 * m
    if opcode == "castdtm":
        return 1.0
    # scalar ops, casts, metadata, prints
    return 1.0
