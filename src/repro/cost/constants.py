"""Default performance constants of the simulated cluster hardware.

The absolute values are calibrated to 2014-era commodity hardware (the
paper's 10 GbE / 12-disk nodes) so that the *relative* behaviours the
paper reports emerge: MR job latency dominating small jobs, IO-bound
iterative scripts preferring large CP memory, and shuffle-heavy plans
losing to map-only plans.  They are deliberately exposed as a dataclass
so experiments can explore sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import MB


@dataclass
class CostParameters:
    """Bandwidths (bytes/s), compute rates (FLOP/s), and latencies (s)."""

    # -- IO bandwidths -----------------------------------------------------
    #: per-process HDFS read bandwidth, dense binary blocks
    hdfs_read_bw: float = 150.0 * MB
    #: per-process HDFS write bandwidth
    hdfs_write_bw: float = 100.0 * MB
    #: local disk bandwidth (buffer-pool evictions/restores, dist. cache)
    local_disk_bw: float = 250.0 * MB
    #: extra per-byte cost factor for sparse deserialization
    sparse_io_factor: float = 1.4
    #: extra per-byte cost factor for text formats
    text_io_factor: float = 2.5

    # -- compute -------------------------------------------------------------
    #: single-threaded CP peak floating-point rate (SystemML CP runtime is
    #: single-threaded; paper Section 6)
    cp_flops: float = 2.0e9
    #: per-map/reduce-task floating-point rate
    mr_task_flops: float = 1.5e9

    # -- network ---------------------------------------------------------
    #: aggregate shuffle bandwidth per participating node
    shuffle_bw_per_node: float = 80.0 * MB

    # -- latencies ---------------------------------------------------------
    #: submit-to-first-task latency of an MR job (incl. the per-job MR AM)
    mr_job_latency: float = 18.0
    #: startup latency of one task wave
    mr_task_latency: float = 1.5
    #: YARN container allocation round trip
    container_alloc_latency: float = 2.0
    #: CP application-master startup (JVM + runtime init)
    am_startup_latency: float = 8.0

    # -- misc ------------------------------------------------------------
    #: fraction of task memory usable before cache thrashing penalties
    #: kick in for very small task heaps (paper 5.2: B-SS cache trashing)
    small_task_thrash_heap_mb: float = 768.0
    #: slowdown factor applied to map compute for thrashing-sized tasks
    thrash_penalty: float = 1.6
    #: per-byte factor for the memory-elastic spill penalty: records that
    #: no longer fit a below-ideal task heap are written to local disk and
    #: re-read (factor 2 = one write + one read at ``local_disk_bw``)
    spill_penalty_factor: float = 2.0


DEFAULT_PARAMETERS = CostParameters()
