"""IO time model: serialized sizes and read/write/transfer times.

Shared by the optimizer's cost model and the runtime simulator (the
latter feeds *actual* characteristics through the same functions, which
is how estimate-vs-actual divergence stays principled).
"""

from __future__ import annotations

from repro.common import FileFormat, is_sparse_representation


def serialized_bytes(mc, fmt=FileFormat.BINARY_BLOCK):
    """Serialized size of a matrix on (simulated) HDFS."""
    return mc.serialized_estimate(fmt)


def _io_factor(mc, fmt, params):
    factor = 1.0
    if is_sparse_representation(mc.sparsity_or_default(), mc.cols):
        factor *= params.sparse_io_factor
    if fmt is not None and fmt is not FileFormat.BINARY_BLOCK:
        factor *= params.text_io_factor
    return factor


def hdfs_read_time(mc, params, fmt=FileFormat.BINARY_BLOCK, parallelism=1.0):
    """Time to read a matrix from HDFS with the given read parallelism."""
    size = serialized_bytes(mc, fmt)
    bw = params.hdfs_read_bw * max(parallelism, 1.0)
    return size * _io_factor(mc, fmt, params) / bw


def hdfs_write_time(mc, params, fmt=FileFormat.BINARY_BLOCK, parallelism=1.0):
    size = serialized_bytes(mc, fmt)
    bw = params.hdfs_write_bw * max(parallelism, 1.0)
    return size * _io_factor(mc, fmt, params) / bw


def local_read_time(size_bytes, params):
    """Buffer-pool restore / distributed-cache load from local disk."""
    return size_bytes / params.local_disk_bw


def local_write_time(size_bytes, params):
    """Buffer-pool eviction write to local disk."""
    return size_bytes / params.local_disk_bw


def shuffle_time(size_bytes, params, nodes):
    """Time to shuffle ``size_bytes`` across ``nodes`` participants."""
    bw = params.shuffle_bw_per_node * max(nodes, 1)
    return size_bytes / bw
