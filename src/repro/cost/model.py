"""The cost model C(P, R_P, cc): estimated execution time of runtime plans.

Scans the runtime plan in execution order tracking sizes and states of
live variables (paper Section 3.1):

* a CP instruction charges read IO for inputs not in memory, compute at
  the CP peak rate, and flips its inputs/output to in-memory;
* an MR job instruction charges job and task-wave latency, export of
  dirty in-memory inputs, map read (HDFS, parallel across tasks),
  broadcast loads per wave, map compute, shuffle transfer, reduce
  compute/merge, and reduce write; the degree of parallelism derives
  from the CP/MR resource configuration and cluster cores;
* block aggregation: branches are weighted sums, loops cost one cold
  pass plus (n-1) warm passes — which captures the read-once-then-
  in-memory advantage of large CP memory for iterative algorithms;
* buffer-pool evictions are only *partially* considered (as in the
  paper, which identifies them as a source of suboptimality): the cost
  state approximates an LRU working set against the CP budget but does
  not charge eviction writes — the runtime simulator models the pool
  exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import FileFormat, MatrixCharacteristics
from repro.compiler import statement_blocks as SB
from repro.compiler.runtime_prog import CPInstruction, MRJobInstruction
from repro.compiler.size_propagation import DEFAULT_LOOP_ITERATIONS
from repro.cost import io_model
from repro.cost.compute_model import operation_flops
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.cost.mr_timing import (
    grid_supported,
    job_input_bytes,
    spill_penalty_time,
    time_mr_job,
    time_mr_job_grid,
)
from repro.obs import get_tracer

try:  # vectorized grid costing only; the scalar paths never need numpy
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: instruction opcodes that neither read matrix data nor compute
_METADATA_OPS = {
    "createvar", "mvvar", "nrow", "ncol", "length",
    "castvtd", "castvti", "castvtb", "print", "stop",
}


@dataclass
class VarCostState:
    """Tracked knowledge about one live variable during costing."""

    mc: MatrixCharacteristics
    in_memory: bool = False
    dirty: bool = False  # in-memory copy newer than its HDFS representation
    fmt: object = FileFormat.BINARY_BLOCK

    def copy(self):
        return VarCostState(self.mc.copy(), self.in_memory, self.dirty, self.fmt)


class CostState(dict):
    """Variable name -> VarCostState with branch-merge support."""

    def copy(self):
        return CostState({k: v.copy() for k, v in self.items()})

    def merge_with(self, other):
        merged = CostState()
        for name, state in self.items():
            o = other.get(name)
            if o is None:
                merged[name] = state.copy()
                continue
            m = state.copy()
            m.in_memory = state.in_memory and o.in_memory
            m.dirty = state.dirty or o.dirty
            merged[name] = m
        for name, o in other.items():
            if name not in self:
                merged[name] = o.copy()
        return merged


class CostModel:
    """Estimates runtime-plan execution time for a cluster and resources."""

    def __init__(self, cluster, params=None, exclude_provisional=True):
        self.cluster = cluster
        self.params = params or DEFAULT_PARAMETERS
        #: number of cost-model invocations (Table 3's "# Cost.")
        self.invocations = 0
        #: exclude blocks marked for dynamic recompilation from
        #: program-level aggregation (ablation switch; see _cost_block)
        self.exclude_provisional = exclude_provisional
        #: plan-signature block-cost memo (see :meth:`estimate_block`)
        self._block_cost_memo = {}
        self._plan_has_fcall = {}
        #: memo hits (returned without counting an invocation)
        self.memo_hits = 0
        #: when set (a dict), the cost walk accumulates estimated seconds
        #: per calibration component into it (see estimate_components)
        self.component_totals = None

    # -- public API ----------------------------------------------------------

    def estimate_program(self, compiled, resource, initial_state=None):
        """Estimated execution time (seconds) of the whole program."""
        self.invocations += 1
        get_tracer().incr("cost.invocations")
        state = initial_state.copy() if initial_state else CostState()
        return self._cost_blocks(
            compiled.blocks, resource, state, compiled, set()
        )

    def estimate_components(self, compiled, resource, initial_state=None):
        """Per-component estimated seconds for the whole program.

        The component names match :data:`repro.cost.calibrate.COMPONENTS`
        (plus ``"total"``), so the result lines up one-to-one with the
        runtime's calibration samples — the estimate side of the
        estimate-vs-actual divergence the benchmarks report.
        """
        self.component_totals = {}
        try:
            total = self.estimate_program(compiled, resource, initial_state)
        finally:
            totals, self.component_totals = self.component_totals, None
        totals["total"] = total
        return totals

    def estimate_blocks(self, compiled, blocks, resource, initial_state=None):
        """Estimated time of a block subsequence (re-optimization scope)."""
        self.invocations += 1
        get_tracer().incr("cost.invocations")
        state = initial_state.copy() if initial_state else CostState()
        return self._cost_blocks(blocks, resource, state, compiled, set())

    def estimate_block(self, compiled, block, resource, initial_state=None,
                       use_memo=False):
        """Estimated time of a single generic block's plan.

        With ``use_memo`` (the resource optimizer's plan-cache mode) the
        result is memoized on the plan's signature plus the exact
        projection of ``resource`` the cost depends on — a memo hit skips
        the cost walk entirely and does not count as an invocation.
        """
        key = None
        if use_memo and initial_state is None:
            key = self._block_memo_key(block, resource)
            if key is not None and key in self._block_cost_memo:
                self.memo_hits += 1
                get_tracer().incr("costcache.hits")
                return self._block_cost_memo[key]
        self.invocations += 1
        get_tracer().incr("cost.invocations")
        state = initial_state.copy() if initial_state else CostState()
        cost = self._cost_generic(block, resource, state, compiled, set())
        if key is not None:
            self._block_cost_memo[key] = cost
            get_tracer().incr("costcache.misses")
        return cost

    def estimate_grid(self, compiled, block, resources, use_memo=False):
        """Batch :meth:`estimate_block` over many MR points of one plan.

        The vectorized fast path of the resource optimizer: every
        ``resources`` entry must share the block's *current* plan (the
        caller recompiles once per plan-cache bucket) and the same CP
        heap — only the block's MR heap varies across points.  One cost
        walk hoists the per-plan invariants (instruction list, operand
        metadata, state evolution, which is MR-point-independent) and
        batches the per-instruction MR arithmetic over the point vector
        with numpy.

        Returns a list of per-point costs bit-identical to calling
        :meth:`estimate_block` per point, or ``None`` when the batch is
        structurally resource-dependent and the caller must fall back to
        the scalar path: plans calling functions (callee plans vary),
        granted resources (spill depends on the ideal config),
        per-component accounting, or numpy unavailable.

        With ``use_memo``, memo keys are computed *per point* via
        :meth:`_block_memo_key` — never one key for the whole batch —
        so two points whose MR cost signatures differ can never share a
        memo entry (see the batched-memo regression tests).  The whole
        batch counts as a single cost invocation; memo hits are counted
        per point.
        """
        if not grid_supported() or _np is None:
            return None
        if self.component_totals is not None:
            return None
        n = len(resources)
        tracer = get_tracer()
        plan = block.plan
        if plan is None:
            self.invocations += 1
            tracer.incr("cost.invocations")
            return [0.0] * n
        signature = getattr(plan, "signature", None)
        if signature is not None:
            has_fcall = self._plan_has_fcall.get(signature)
            if has_fcall is None:
                has_fcall = any(
                    getattr(ins, "opcode", None) == "fcall"
                    for ins in plan.instructions
                )
                self._plan_has_fcall[signature] = has_fcall
        else:
            has_fcall = any(
                getattr(ins, "opcode", None) == "fcall"
                for ins in plan.instructions
            )
        if has_fcall:
            return None
        if any(getattr(r, "ideal", None) is not None for r in resources):
            return None

        keys = (
            [self._block_memo_key(block, r) for r in resources]
            if use_memo else [None] * n
        )
        memo = self._block_cost_memo
        results = [None] * n
        pending = []
        hits = 0
        for i, key in enumerate(keys):
            if key is not None and key in memo:
                results[i] = memo[key]
                hits += 1
            else:
                pending.append(i)
        if hits:
            self.memo_hits += hits
            tracer.incr("costcache.hits", hits)
        if not pending:
            return results

        self.invocations += 1
        tracer.incr("cost.invocations")
        totals = self._grid_totals(block, resources)
        stores = 0
        for i in pending:
            cost = float(totals[i])
            results[i] = cost
            key = keys[i]
            if key is not None and key not in memo:
                memo[key] = cost
                stores += 1
        if stores:
            tracer.incr("costcache.misses", stores)
        return results

    def _grid_totals(self, block, resources):
        """One vectorized cost walk of ``block``'s plan over the batch.

        CP instruction costs and the cost-state evolution depend only on
        the shared CP heap, so they are computed once (as scalars) and
        broadcast; MR jobs are batched over the hoisted per-point
        parallelism/thrash vectors.  Accumulation follows the scalar
        walk's instruction order for bitwise parity.
        """
        plan = block.plan
        rep = resources[0]
        block_id = block.block_id
        cp_container = self.cluster.container_mb_for_heap(rep.cp_heap_mb)
        mr_heaps = [r.mr_heap_for_block(block_id) for r in resources]
        dop_base = _np.array(
            [float(max(1, self.cluster.map_task_parallelism(h, cp_container)))
             for h in mr_heaps],
            dtype=_np.float64,
        )
        thrash = _np.array(
            [h < self.params.small_task_thrash_heap_mb for h in mr_heaps],
            dtype=bool,
        )
        state = CostState()
        acc = _np.zeros(len(resources), dtype=_np.float64)
        for ins in plan.instructions:
            if isinstance(ins, MRJobInstruction):
                acc = acc + self._cost_mr_job_grid(
                    ins, rep, state, dop_base, thrash
                )
            else:
                acc = acc + self._cost_cp(ins, rep, state)
        return acc

    # -- block-cost memoization ---------------------------------------------

    def mr_cost_signature(self, block_id, resource):
        """Exact projection of ``resource`` that MR-job timing depends
        on for one block: the raw map-task parallelism and the
        small-heap thrash flag (see :func:`repro.cost.mr_timing.time_mr_job`
        — every other term is determined by the plan and the CP heap)."""
        mr_heap = resource.mr_heap_for_block(block_id)
        cp_container = self.cluster.container_mb_for_heap(resource.cp_heap_mb)
        # a Brain grant adds a spill term that depends on the ideal heap
        # too, so grants get a distinct memo signature
        ideal = getattr(resource, "ideal", None)
        return (
            self.cluster.map_task_parallelism(mr_heap, cp_container),
            mr_heap < self.params.small_task_thrash_heap_mb,
            None if ideal is None
            else (mr_heap, ideal.mr_heap_for_block(block_id)),
        )

    def _block_memo_key(self, block, resource):
        """Memo key, or None when memoization would be unsound.

        A block cost is a pure function of (plan, cp_heap, budget
        divisor, MR cost signature) — except plans calling functions,
        whose cost also depends on the callee blocks' current plans, so
        those are never memoized.  CP-only plans drop the MR component
        entirely (their cost is independent of the task heap).

        The budget divisor is defense-in-depth: plan signatures are
        unique per generated plan and the cost walk itself uses the
        undivided CP budget, so today two divisors can never share a
        memo entry — but recompilation *selects operators* under
        ``cp_budget_bytes / block.budget_divisor`` (parfor bodies), and
        keying on the divisor keeps the memo sound if plan signatures
        ever become content-based."""
        plan = block.plan
        if plan is None:
            return None
        signature = getattr(plan, "signature", None)
        if signature is None:
            return None
        has_fcall = self._plan_has_fcall.get(signature)
        if has_fcall is None:
            has_fcall = any(
                getattr(ins, "opcode", None) == "fcall"
                for ins in plan.instructions
            )
            self._plan_has_fcall[signature] = has_fcall
        if has_fcall:
            return None
        mr_key = (
            self.mr_cost_signature(block.block_id, resource)
            if plan.num_mr_jobs
            else None
        )
        return (
            signature,
            resource.cp_heap_mb,
            getattr(block, "budget_divisor", 1),
            mr_key,
        )

    def clear_memo(self):
        """Drop all memoized block costs (plan signatures make stale
        entries unreachable anyway; this just frees memory)."""
        self._block_cost_memo.clear()
        self._plan_has_fcall.clear()

    def _add_component(self, name, seconds):
        totals = self.component_totals
        if totals is not None and seconds:
            totals[name] = totals.get(name, 0.0) + seconds

    # -- program aggregation -----------------------------------------------

    def _cost_blocks(self, blocks, resource, state, compiled, active_funcs):
        total = 0.0
        for block in blocks:
            total += self._cost_block(block, resource, state, compiled, active_funcs)
        return total

    def _cost_block(self, block, resource, state, compiled, active_funcs):
        if isinstance(block, SB.GenericBlock):
            # blocks with unknown intermediate sizes carry provisional
            # plans that dynamic recompilation will replace: their what-if
            # costs are meaningless noise, so program-level aggregation
            # excludes them.  This keeps unknown-dominated programs tied
            # across CP points, and Definition 1's minimality tie-break
            # then selects minimal resources — the behaviour the paper
            # reports for MLogreg/GLM (Section 5.5), later corrected by
            # runtime re-optimization once sizes are known.
            if block.requires_recompile and self.exclude_provisional:
                return 0.0
            return self._cost_generic(block, resource, state, compiled, active_funcs)
        if isinstance(block, SB.IfBlock):
            cost = self._cost_predicate(block.predicate, resource, state, compiled)
            then_state = state.copy()
            then_cost = self._cost_blocks(
                block.body, resource, then_state, compiled, active_funcs
            )
            else_state = state.copy()
            else_cost = self._cost_blocks(
                block.else_body, resource, else_state, compiled, active_funcs
            )
            merged = then_state.merge_with(else_state)
            state.clear()
            state.update(merged)
            return cost + 0.5 * then_cost + 0.5 * else_cost
        if isinstance(block, SB.WhileBlock):
            iterations = DEFAULT_LOOP_ITERATIONS
            return self._cost_loop(
                block.body,
                [block.predicate],
                iterations,
                resource,
                state,
                compiled,
                active_funcs,
            )
        if isinstance(block, SB.ForBlock):
            iterations = (
                block.known_iterations
                if block.known_iterations is not None
                else DEFAULT_LOOP_ITERATIONS
            )
            holders = [
                h
                for h in (block.from_holder, block.to_holder, block.incr_holder)
                if h is not None
            ]
            loop_cost = self._cost_loop(
                block.body, holders, iterations, resource, state, compiled,
                active_funcs,
            )
            if block.parallel:
                from repro.compiler.pipeline import parfor_dop

                dop = parfor_dop(block)
                # k local workers share the iteration space; worker
                # startup costs a small constant each
                return loop_cost / dop + 0.1 * dop
            return loop_cost
        raise TypeError(f"unknown block type {type(block).__name__}")

    def _cost_loop(self, body, holders, iterations, resource, state, compiled,
                   active_funcs):
        """One cold pass plus (iterations - 1) warm passes."""
        if iterations <= 0:
            return 0.0
        pred_cost = sum(
            self._cost_predicate(holder, resource, state, compiled)
            for holder in holders
        )
        cold = self._cost_blocks(body, resource, state, compiled, active_funcs)
        if iterations == 1:
            return pred_cost + cold
        warm = self._cost_blocks(body, resource, state, compiled, active_funcs)
        return pred_cost * iterations + cold + warm * (iterations - 1)

    def _cost_predicate(self, holder, resource, state, compiled):
        plan = getattr(holder, "plan", None)
        if plan is None:
            return 0.0
        total = 0.0
        for ins in plan.instructions:
            total += self._cost_cp(ins, resource, state)
        return total

    # -- instruction-level costing -----------------------------------------

    def _cost_generic(self, block, resource, state, compiled, active_funcs):
        plan = block.plan
        if plan is None:
            return 0.0
        total = 0.0
        for ins in plan.instructions:
            if isinstance(ins, MRJobInstruction):
                total += self._cost_mr_job(ins, resource, state)
            elif ins.opcode == "fcall":
                total += self._cost_fcall(
                    ins, resource, state, compiled, active_funcs
                )
            else:
                total += self._cost_cp(ins, resource, state)
        return total

    def _ensure_state(self, name, mc, resource):
        """Default state for variables first seen mid-plan (partial
        costing): resident in memory when they fit the CP budget."""
        fits = mc.memory_estimate() <= resource.cp_budget_bytes
        return VarCostState(mc.copy(), in_memory=fits, dirty=False)

    def _input_state(self, operand, mc, state, resource):
        if operand.name is None:
            return None
        vstate = state.get(operand.name)
        if vstate is None:
            vstate = self._ensure_state(operand.name, mc, resource)
            state[operand.name] = vstate
        return vstate

    def _cost_cp(self, ins, resource, state):
        params = self.params
        if ins.opcode == "createvar":
            state[ins.output] = VarCostState(ins.out_mc.copy())
            fmt = ins.attrs.get("format")
            if fmt in ("text", "csv"):
                state[ins.output].fmt = FileFormat.CSV
            return 0.0
        if ins.opcode == "mvvar":
            src = ins.inputs[0]
            if src.name is not None and src.name in state:
                state[ins.output] = state[src.name]
            else:
                mc = ins.out_mc
                state[ins.output] = VarCostState(
                    mc.copy(), in_memory=True, dirty=True
                )
            return 0.0
        if ins.opcode == "write":
            src = ins.inputs[0]
            mc = ins.in_mcs[0] if ins.in_mcs else ins.out_mc
            vstate = self._input_state(src, mc, state, resource)
            fmt = (
                FileFormat.CSV
                if ins.attrs.get("format") in ("text", "csv")
                else FileFormat.BINARY_BLOCK
            )
            write_mc = vstate.mc if vstate else mc
            if not write_mc.dims_known:
                return 0.0  # unknown outputs cannot be costed
            write_time = io_model.hdfs_write_time(write_mc, params, fmt)
            self._add_component("hdfs_write", write_time)
            return write_time
        if ins.opcode in _METADATA_OPS:
            return 0.0

        # IO: pull HDFS-resident matrix inputs into memory
        io_time = 0.0
        in_mcs = []
        pinned = []
        for idx, operand in enumerate(ins.inputs):
            mc = (
                ins.in_mcs[idx]
                if idx < len(ins.in_mcs)
                else MatrixCharacteristics(0, 0, 0)
            )
            vstate = self._input_state(operand, mc, state, resource)
            if vstate is None:
                in_mcs.append(mc)
                continue
            in_mcs.append(vstate.mc)
            pinned.append(vstate)
            if vstate.mc.dims_known and vstate.mc.cells > 0 and not vstate.in_memory:
                io_time += io_model.hdfs_read_time(vstate.mc, params, vstate.fmt)
                # the buffer pool retains only matrices that fit the CP
                # budget; larger ones are streamed and re-read on the
                # next access (the cost model's partial account of the
                # buffer pool, paper Section 5)
                vstate.in_memory = (
                    vstate.mc.memory_estimate() <= resource.cp_budget_bytes
                )

        flops = operation_flops(ins.opcode, ins.out_mc, in_mcs, ins.attrs)
        compute_time = flops / params.cp_flops
        if ins.output is not None:
            fits = ins.out_mc.memory_estimate() <= resource.cp_budget_bytes
            vstate = VarCostState(
                ins.out_mc.copy(), in_memory=fits, dirty=True
            )
            state[ins.output] = vstate
            pinned.append(vstate)
        self._balance_pool(state, resource, pinned)
        self._add_component("hdfs_read", io_time)
        self._add_component("cp_compute", compute_time)
        return io_time + compute_time

    def _balance_pool(self, state, resource, pinned):
        """Approximate LRU working-set accounting: when the in-memory
        variables exceed the CP budget, the least recently touched ones
        are dropped (their next access re-reads) — the cost model's
        partial account of buffer-pool evictions."""
        budget = resource.cp_budget_bytes
        live = []
        seen = set()
        total = 0.0
        for name in state:
            vstate = state[name]
            if id(vstate) in seen or not vstate.in_memory:
                continue
            seen.add(id(vstate))
            size = vstate.mc.memory_estimate()
            if math.isfinite(size):
                live.append((vstate, size))
                total += size
        if total <= budget:
            return
        pinned_ids = {id(v) for v in pinned}
        # evict insertion-ordered (oldest first), keeping current operands
        for vstate, size in live:
            if total <= budget:
                break
            if id(vstate) in pinned_ids:
                continue
            vstate.in_memory = False
            total -= size

    def _cost_fcall(self, ins, resource, state, compiled, active_funcs):
        func_name = ins.attrs.get("func")
        func = compiled.functions.get(func_name) if compiled else None
        if func is None or func_name in active_funcs:
            return 0.0
        active_funcs = active_funcs | {func_name}
        fstate = CostState()
        cost = self._cost_blocks(
            func.blocks, resource, fstate, compiled, active_funcs
        )
        for out in ins.attrs.get("outputs", []):
            state[out] = VarCostState(
                ins.out_mc.copy(), in_memory=True, dirty=True
            )
        return cost

    # -- MR job costing -------------------------------------------------

    def _cost_mr_job(self, job, resource, state):
        params = self.params
        total = 0.0
        # export dirty in-memory inputs to HDFS so the job can read them
        for name in list(job.input_vars) + list(job.broadcast_vars):
            vstate = state.get(name)
            if vstate is None:
                mc = self._find_job_input_mc(job, name)
                vstate = VarCostState(mc, in_memory=True, dirty=True)
                state[name] = vstate
            if vstate.dirty and vstate.mc.dims_known:
                export_time = io_model.hdfs_write_time(vstate.mc, params)
                self._add_component("hdfs_write", export_time)
                total += export_time
            vstate.dirty = False

        def mc_of(name):
            vstate = state.get(name)
            return vstate.mc if vstate is not None else None

        def fmt_of(name):
            vstate = state.get(name)
            return vstate.fmt if vstate is not None else FileFormat.BINARY_BLOCK

        timing = time_mr_job(job, mc_of, fmt_of, resource, self.cluster, params)
        total += timing.total
        # memory-elastic grant: charge the modeled spill penalty for
        # running this job's tasks below their ideal heap (time-only)
        ideal = getattr(resource, "ideal", None)
        if ideal is not None:
            spill = spill_penalty_time(
                job_input_bytes(job, mc_of, fmt_of),
                ideal.mr_heap_for_block(job.block_id),
                resource.mr_heap_for_block(job.block_id),
                params,
            )
            if spill > 0:
                total += spill
                self._add_component("spill", spill)
        if self.component_totals is not None:
            self._add_component("hdfs_read", timing.map_read)
            self._add_component("local_disk", timing.broadcast_read)
            self._add_component(
                "mr_compute", timing.map_compute + timing.reduce_compute
            )
            self._add_component(
                "hdfs_write", timing.map_write + timing.reduce_write
            )
            self._add_component("shuffle", timing.shuffle)
            self._add_component(
                "mr_job_latency",
                params.mr_job_latency * timing.job_latency_units,
            )
            self._add_component(
                "mr_task_latency",
                params.mr_task_latency * timing.task_latency_units,
            )

        # job outputs land on HDFS (clean, not in CP memory)
        for step in job.steps:
            if step.output in job.output_vars:
                state[step.output] = VarCostState(
                    step.out_mc.copy(), in_memory=False, dirty=False
                )
        return total

    def _cost_mr_job_grid(self, job, resource, state, dop_base, thrash):
        """Grid variant of :meth:`_cost_mr_job`.

        Exports and state updates are MR-point-independent (they depend
        on the cost state and the shared CP heap only), so they run once;
        the job timing is batched.  Grants and per-component accounting
        never reach here — :meth:`estimate_grid` falls back to the
        scalar path for those.
        """
        params = self.params
        exports = 0.0
        # export dirty in-memory inputs to HDFS so the job can read them
        for name in list(job.input_vars) + list(job.broadcast_vars):
            vstate = state.get(name)
            if vstate is None:
                mc = self._find_job_input_mc(job, name)
                vstate = VarCostState(mc, in_memory=True, dirty=True)
                state[name] = vstate
            if vstate.dirty and vstate.mc.dims_known:
                exports += io_model.hdfs_write_time(vstate.mc, params)
            vstate.dirty = False

        def mc_of(name):
            vstate = state.get(name)
            return vstate.mc if vstate is not None else None

        def fmt_of(name):
            vstate = state.get(name)
            return vstate.fmt if vstate is not None else FileFormat.BINARY_BLOCK

        totals = exports + time_mr_job_grid(
            job, mc_of, fmt_of, dop_base, thrash, self.cluster, params
        )

        # job outputs land on HDFS (clean, not in CP memory)
        for step in job.steps:
            if step.output in job.output_vars:
                state[step.output] = VarCostState(
                    step.out_mc.copy(), in_memory=False, dirty=False
                )
        return totals

    def _find_job_input_mc(self, job, name):
        for step in job.steps:
            for operand, mc in zip(step.inputs, step.in_mcs):
                if operand.name == name:
                    return mc.copy()
        return MatrixCharacteristics.unknown()
