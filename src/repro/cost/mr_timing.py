"""MR job timing: the shared white-box model of one MapReduce job.

Used by the optimizer's cost model with compile-time characteristics and
by the runtime simulator with actual characteristics — the same formula,
different inputs, which keeps estimate-vs-actual divergence principled.

A job's time consists of (paper Section 3.1): job and task latency,
in-memory variable export (charged by the caller), map read, map compute,
map write, shuffle, reduce read/compute, and reduce write, with IO and
compute divided by the degree of parallelism inferred from the CP/MR
resources and the cluster's cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import FileFormat
from repro.compiler.lops import Phase
from repro.cost import io_model
from repro.cost.compute_model import operation_flops

try:  # the vectorized grid path needs numpy; scalar costing does not
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


def grid_supported():
    """True when the vectorized grid-costing fast path is available."""
    return _np is not None

#: cap on the number of partial aggregates merged in the reduce phase
#: (combiners bound the fan-in in real MR deployments)
_AGG_PARTIAL_CAP = 64

_AGG_METHODS = {
    "uagg", "tsmm", "mapmmchain", "tak", "tak_shuffle", "mapmm_agg", "cpmm",
}


@dataclass
class MRJobTiming:
    """Breakdown of one job's estimated time."""

    latency: float = 0.0
    map_read: float = 0.0
    broadcast_read: float = 0.0
    map_compute: float = 0.0
    map_write: float = 0.0
    shuffle: float = 0.0
    reduce_compute: float = 0.0
    reduce_write: float = 0.0
    n_tasks: int = 1
    waves: int = 1
    dop: int = 1
    #: multiples of ``params.mr_job_latency`` / ``params.mr_task_latency``
    #: inside :attr:`latency` — the work units calibration fits against
    job_latency_units: float = 0.0
    task_latency_units: float = 0.0

    @property
    def total(self):
        return (
            self.latency
            + self.map_read
            + self.broadcast_read
            + self.map_compute
            + self.map_write
            + self.shuffle
            + self.reduce_compute
            + self.reduce_write
        )


def job_input_bytes(job, mc_of, fmt_of):
    """Total serialized bytes of a job's HDFS inputs (0.0 if unknown)."""
    input_bytes = 0.0
    for name in job.input_vars:
        mc = mc_of(name)
        if mc is not None and mc.dims_known:
            input_bytes += io_model.serialized_bytes(mc, fmt_of(name))
    if not math.isfinite(input_bytes):
        return 0.0
    return input_bytes


def spill_penalty_time(input_bytes, ideal_heap_mb, granted_heap_mb, params):
    """Memory-elastic spill penalty: seconds of extra local-disk traffic
    for running a task below its ideal heap.

    The fraction of per-task state that no longer fits in a
    ``granted < ideal`` heap is spilled to local disk and re-read, so the
    penalty scales with the input volume times the missing heap fraction.
    Time-only by construction: it charges the clock, never the numerics.
    """
    if ideal_heap_mb <= 0 or granted_heap_mb >= ideal_heap_mb:
        return 0.0
    missing = 1.0 - granted_heap_mb / ideal_heap_mb
    return params.spill_penalty_factor * input_bytes * missing / params.local_disk_bw


def time_mr_job(job, mc_of, fmt_of, resource, cluster, params):
    """Estimate the execution time of one MR job.

    ``mc_of(name)`` returns the :class:`MatrixCharacteristics` of a job
    input/broadcast variable (compile-time or actual); ``fmt_of(name)``
    its file format.  Step output characteristics come from the step
    snapshots, which dynamic recompilation refreshes.
    """
    timing = MRJobTiming()
    mr_heap = resource.mr_heap_for_block(job.block_id)
    cp_container = cluster.container_mb_for_heap(resource.cp_heap_mb)

    # task layout
    input_bytes = job_input_bytes(job, mc_of, fmt_of)
    n_tasks = max(1, int(math.ceil(input_bytes / cluster.hdfs_block_size_bytes)))
    dop = max(1, cluster.map_task_parallelism(mr_heap, cp_container))
    dop = min(dop, n_tasks)
    waves = int(math.ceil(n_tasks / dop))
    eff_dop = n_tasks / waves
    timing.n_tasks = n_tasks
    timing.waves = waves
    timing.dop = dop

    # map-phase IO
    for name in job.input_vars:
        mc = mc_of(name)
        if mc is not None and mc.dims_known:
            timing.map_read += io_model.hdfs_read_time(
                mc, params, fmt_of(name), parallelism=eff_dop
            )
    broadcast_bytes = 0.0
    for name in job.broadcast_vars:
        mc = mc_of(name)
        if mc is not None and mc.dims_known:
            broadcast_bytes += io_model.serialized_bytes(mc)
    timing.broadcast_read = waves * io_model.local_read_time(
        broadcast_bytes, params
    )

    # phase compute and data volumes
    map_flops = 0.0
    reduce_flops = 0.0
    shuffle_bytes = 0.0
    reducers = min(cluster.num_reducers, max(1, n_tasks))
    for step in job.steps:
        flops = operation_flops(step.opcode, step.out_mc, step.in_mcs, step.attrs)
        if step.phase is Phase.MAP:
            map_flops += flops
            if step.output in job.output_vars and step.out_mc.dims_known:
                timing.map_write += io_model.hdfs_write_time(
                    step.out_mc, params, parallelism=eff_dop
                )
        elif step.phase is Phase.SHUFFLE:
            map_flops += flops
            for mc in step.in_mcs:
                if mc.dims_known and mc.cells and mc.cells > 0:
                    shuffle_bytes += io_model.serialized_bytes(mc)
            if step.output in job.output_vars and step.out_mc.dims_known:
                timing.reduce_write += io_model.hdfs_write_time(
                    step.out_mc, params, parallelism=reducers
                )
        else:  # REDUCE
            reduce_flops += flops
            if step.method in _AGG_METHODS and step.out_mc.dims_known:
                partials = min(n_tasks, _AGG_PARTIAL_CAP)
                shuffle_bytes += io_model.serialized_bytes(step.out_mc) * partials
                reduce_flops += (step.out_mc.cells or 0) * partials
            if step.output in job.output_vars and step.out_mc.dims_known:
                timing.reduce_write += io_model.hdfs_write_time(
                    step.out_mc, params, parallelism=reducers
                )

    timing.map_compute = map_flops / (params.mr_task_flops * eff_dop)
    if mr_heap < params.small_task_thrash_heap_mb:
        timing.map_compute *= params.thrash_penalty
    timing.reduce_compute = reduce_flops / (params.mr_task_flops * reducers)
    timing.shuffle = io_model.shuffle_time(
        shuffle_bytes, params, min(cluster.num_nodes, reducers)
    )

    timing.job_latency_units = 1 + job.extra_job_latency
    timing.task_latency_units = float(waves)
    if shuffle_bytes > 0 or reduce_flops > 0:
        timing.task_latency_units += 1
    timing.latency = params.mr_job_latency * timing.job_latency_units
    timing.latency += params.mr_task_latency * timing.task_latency_units
    return timing


def time_mr_job_grid(job, mc_of, fmt_of, dop_base, thrash, cluster, params):
    """Vectorized :func:`time_mr_job` totals over a vector of MR points.

    ``dop_base`` is the per-point ``max(1, map_task_parallelism(...))``
    as a float64 array and ``thrash`` the per-point small-heap flag;
    both are hoisted by the caller because every MR job of a block
    shares the block's MR heap.  Everything else about a job — input
    bytes, task count, flops, shuffle volume, reducer count — is
    plan-determined, so it is computed once and broadcast.

    Parity contract: this mirrors the scalar op sequence elementwise in
    float64 — the same IEEE operations in the same order, with no
    reassociation — so each point's total is bit-identical to the
    ``MRJobTiming.total`` :func:`time_mr_job` returns for that point.
    """
    input_bytes = job_input_bytes(job, mc_of, fmt_of)
    n_tasks = max(1, int(math.ceil(input_bytes / cluster.hdfs_block_size_bytes)))
    dop = _np.minimum(dop_base, float(n_tasks))
    waves = _np.ceil(n_tasks / dop)
    eff_dop = n_tasks / waves
    eff_clamped = _np.maximum(eff_dop, 1.0)

    # map-phase IO: one vectorized quotient per input, accumulated in
    # input order exactly like the scalar loop
    map_read = _np.zeros_like(dop)
    for name in job.input_vars:
        mc = mc_of(name)
        if mc is not None and mc.dims_known:
            fmt = fmt_of(name)
            num = (io_model.serialized_bytes(mc, fmt)
                   * io_model._io_factor(mc, fmt, params))
            map_read = map_read + num / (params.hdfs_read_bw * eff_clamped)
    broadcast_bytes = 0.0
    for name in job.broadcast_vars:
        mc = mc_of(name)
        if mc is not None and mc.dims_known:
            broadcast_bytes += io_model.serialized_bytes(mc)
    broadcast_read = waves * (broadcast_bytes / params.local_disk_bw)

    # phase compute and data volumes (all point-independent except the
    # eff_dop divisor of map writes)
    map_flops = 0.0
    reduce_flops = 0.0
    shuffle_bytes = 0.0
    reducers = min(cluster.num_reducers, max(1, n_tasks))
    map_write = _np.zeros_like(dop)
    reduce_write = 0.0
    for step in job.steps:
        flops = operation_flops(step.opcode, step.out_mc, step.in_mcs, step.attrs)
        if step.phase is Phase.MAP:
            map_flops += flops
            if step.output in job.output_vars and step.out_mc.dims_known:
                num = (io_model.serialized_bytes(step.out_mc)
                       * io_model._io_factor(
                           step.out_mc, FileFormat.BINARY_BLOCK, params))
                map_write = map_write + num / (
                    params.hdfs_write_bw * eff_clamped
                )
        elif step.phase is Phase.SHUFFLE:
            map_flops += flops
            for mc in step.in_mcs:
                if mc.dims_known and mc.cells and mc.cells > 0:
                    shuffle_bytes += io_model.serialized_bytes(mc)
            if step.output in job.output_vars and step.out_mc.dims_known:
                reduce_write += io_model.hdfs_write_time(
                    step.out_mc, params, parallelism=reducers
                )
        else:  # REDUCE
            reduce_flops += flops
            if step.method in _AGG_METHODS and step.out_mc.dims_known:
                partials = min(n_tasks, _AGG_PARTIAL_CAP)
                shuffle_bytes += io_model.serialized_bytes(step.out_mc) * partials
                reduce_flops += (step.out_mc.cells or 0) * partials
            if step.output in job.output_vars and step.out_mc.dims_known:
                reduce_write += io_model.hdfs_write_time(
                    step.out_mc, params, parallelism=reducers
                )

    map_compute = map_flops / (params.mr_task_flops * eff_dop)
    map_compute = _np.where(
        thrash, map_compute * params.thrash_penalty, map_compute
    )
    reduce_compute = reduce_flops / (params.mr_task_flops * reducers)
    shuffle = io_model.shuffle_time(
        shuffle_bytes, params, min(cluster.num_nodes, reducers)
    )

    task_units = waves + 1.0 if shuffle_bytes > 0 or reduce_flops > 0 else waves
    latency = (params.mr_job_latency * (1 + job.extra_job_latency)
               + params.mr_task_latency * task_units)
    # same accumulation order as MRJobTiming.total
    return (latency + map_read + broadcast_read + map_compute + map_write
            + shuffle + reduce_compute + reduce_write)
