"""DML (Declarative Machine Learning language) front-end.

This subpackage implements a lexer, recursive-descent parser, and semantic
validator for the R-like DML subset used by the paper's five ML programs:
linear algebra expressions, control flow (``if``/``while``/``for``),
user-defined functions, command-line arguments (``$name``), and the
builtin functions listed in :mod:`repro.dml.builtins`.
"""

from repro.dml.lexer import tokenize
from repro.dml.parser import parse
from repro.dml.validate import validate

__all__ = ["tokenize", "parse", "validate"]
