"""Abstract syntax tree node definitions for the DML subset.

Every node carries the 1-based source ``line`` for error reporting and for
program-size statistics (Table 1 of the paper reports script line counts).
Nodes are plain dataclasses; the compiler consumes them read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)


# -- expressions -------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class Literal(Expr):
    """A numeric, boolean, or string literal."""

    value: object = None
    vtype: str = "double"  # double | int | boolean | string


@dataclass
class Identifier(Expr):
    """A variable reference."""

    name: str = ""


@dataclass
class CommandLineArg(Expr):
    """A ``$name`` script argument reference."""

    name: str = ""


@dataclass
class BinaryExpr(Expr):
    """Binary arithmetic, relational, boolean, or matrix-multiply op.

    ``op`` is one of: ``+ - * / ^ %% %/% %*% < <= > >= == != & |``.
    """

    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class UnaryExpr(Expr):
    """Unary ``-``, ``+`` or ``!``."""

    op: str = ""
    operand: Expr = None


@dataclass
class FunctionCall(Expr):
    """A builtin or user-defined function call.

    ``args`` are positional arguments; ``named_args`` maps parameter names
    (e.g. ``rows=``, ``cols=``) to expressions.
    """

    name: str = ""
    args: list = field(default_factory=list)
    named_args: dict = field(default_factory=dict)


@dataclass
class IndexRange:
    """One dimension of an indexing expression.

    ``lower``/``upper`` are expressions or ``None``; a ``None`` pair means
    "all"; ``lower`` set with ``upper`` None and ``is_range`` False means a
    single index.
    """

    lower: Expr | None = None
    upper: Expr | None = None
    is_range: bool = False

    @property
    def is_all(self):
        return self.lower is None and self.upper is None


@dataclass
class IndexingExpr(Expr):
    """Right indexing ``X[rows, cols]``."""

    target: Expr = None
    row_range: IndexRange = None
    col_range: IndexRange = None


# -- statements ----------------------------------------------------------


@dataclass
class Statement(Node):
    """Base class for statements."""


@dataclass
class Assignment(Statement):
    """``target = expr`` including left-indexing targets."""

    target: str = ""
    expr: Expr = None
    # for left indexing X[a:b, c:d] = expr
    row_range: IndexRange | None = None
    col_range: IndexRange | None = None

    @property
    def is_left_indexing(self):
        return self.row_range is not None or self.col_range is not None


@dataclass
class MultiAssignment(Statement):
    """``[a, b] = f(...)`` for multi-output function calls."""

    targets: list = field(default_factory=list)
    call: FunctionCall = None


@dataclass
class ExprStatement(Statement):
    """A bare call statement such as ``print(...)`` or ``write(...)``."""

    expr: Expr = None


@dataclass
class IfStatement(Statement):
    predicate: Expr = None
    body: list = field(default_factory=list)
    else_body: list = field(default_factory=list)


@dataclass
class WhileStatement(Statement):
    predicate: Expr = None
    body: list = field(default_factory=list)


@dataclass
class ForStatement(Statement):
    """``for (var in from:to)`` with optional increment; ``parallel``
    marks a task-parallel ``parfor`` loop (independent iterations)."""

    var: str = ""
    from_expr: Expr = None
    to_expr: Expr = None
    increment: Expr | None = None
    body: list = field(default_factory=list)
    parallel: bool = False


# -- functions and program ----------------------------------------------


@dataclass
class Param(Node):
    """A formal function parameter or return value."""

    name: str = ""
    data_type: str = "matrix"  # matrix | scalar
    value_type: str = "double"  # double | int | boolean | string
    default: Expr | None = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    inputs: list = field(default_factory=list)
    outputs: list = field(default_factory=list)
    body: list = field(default_factory=list)


@dataclass
class Program(Node):
    """A parsed DML script: top-level statements plus named functions."""

    statements: list = field(default_factory=list)
    functions: dict = field(default_factory=dict)


def walk_expr(expr):
    """Yield ``expr`` and all sub-expressions, depth first."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinaryExpr):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryExpr):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expr(arg)
        for arg in expr.named_args.values():
            yield from walk_expr(arg)
    elif isinstance(expr, IndexingExpr):
        yield from walk_expr(expr.target)
        for rng in (expr.row_range, expr.col_range):
            if rng is not None:
                yield from walk_expr(rng.lower)
                yield from walk_expr(rng.upper)


def walk_statements(statements):
    """Yield every statement in a statement list, recursing into bodies."""
    for stmt in statements:
        yield stmt
        if isinstance(stmt, IfStatement):
            yield from walk_statements(stmt.body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, (WhileStatement, ForStatement)):
            yield from walk_statements(stmt.body)
