"""Builtin function registry for the DML subset.

Each builtin is described by a :class:`BuiltinSpec` giving its arity, the
accepted named arguments, and how to derive the output data type from the
argument data types.  The validator uses this table to type-check calls;
the HOP builder uses it to select operator classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import DataType, ValueType

# output-type derivation rules
SCALAR = "scalar"  # always scalar
MATRIX = "matrix"  # always matrix
SAME = "same"  # same data type as the first argument
AGG = "agg"  # matrix arg -> scalar; scalar args -> scalar


@dataclass
class BuiltinSpec:
    name: str
    min_args: int
    max_args: int  # -1 for unbounded
    output: str  # one of SCALAR / MATRIX / SAME / AGG
    value_type: ValueType = ValueType.FP64
    named_args: tuple = field(default_factory=tuple)
    #: True for statement-style builtins with no value (print, write, stop)
    is_void: bool = False


_SPECS = [
    # -- IO --
    BuiltinSpec("read", 1, 1, MATRIX,
                named_args=("rows", "cols", "format", "value_type", "nnz")),
    BuiltinSpec("write", 2, 3, SCALAR, named_args=("format",), is_void=True),
    BuiltinSpec("print", 1, 1, SCALAR, is_void=True),
    BuiltinSpec("stop", 1, 1, SCALAR, is_void=True),
    # -- metadata --
    BuiltinSpec("nrow", 1, 1, SCALAR, ValueType.INT64),
    BuiltinSpec("ncol", 1, 1, SCALAR, ValueType.INT64),
    BuiltinSpec("length", 1, 1, SCALAR, ValueType.INT64),
    # -- full aggregates (matrix -> scalar) or scalar binary min/max --
    BuiltinSpec("sum", 1, 1, SCALAR),
    BuiltinSpec("mean", 1, 1, SCALAR),
    BuiltinSpec("min", 1, 2, AGG),
    BuiltinSpec("max", 1, 2, AGG),
    BuiltinSpec("trace", 1, 1, SCALAR),
    # -- row/col aggregates --
    BuiltinSpec("rowSums", 1, 1, MATRIX),
    BuiltinSpec("colSums", 1, 1, MATRIX),
    BuiltinSpec("rowMeans", 1, 1, MATRIX),
    BuiltinSpec("colMeans", 1, 1, MATRIX),
    BuiltinSpec("rowMaxs", 1, 1, MATRIX),
    BuiltinSpec("colMaxs", 1, 1, MATRIX),
    BuiltinSpec("rowMins", 1, 1, MATRIX),
    BuiltinSpec("colMins", 1, 1, MATRIX),
    BuiltinSpec("rowIndexMax", 1, 1, MATRIX),
    # -- reorganizations --
    BuiltinSpec("t", 1, 1, MATRIX),
    BuiltinSpec("diag", 1, 1, MATRIX),
    BuiltinSpec("cumsum", 1, 1, MATRIX),
    BuiltinSpec("removeEmpty", 0, 1, MATRIX,
                named_args=("target", "margin")),
    # -- data generation --
    BuiltinSpec("matrix", 1, 3, MATRIX, named_args=("rows", "cols")),
    BuiltinSpec("seq", 2, 3, MATRIX),
    BuiltinSpec("rand", 0, 0, MATRIX,
                named_args=("rows", "cols", "min", "max", "sparsity", "pdf", "seed")),
    # -- linear solvers --
    BuiltinSpec("solve", 2, 2, MATRIX),
    # -- elementwise unary (SAME: matrix->matrix, scalar->scalar) --
    BuiltinSpec("exp", 1, 1, SAME),
    BuiltinSpec("log", 1, 2, SAME),
    BuiltinSpec("sqrt", 1, 1, SAME),
    BuiltinSpec("abs", 1, 1, SAME),
    BuiltinSpec("round", 1, 1, SAME),
    BuiltinSpec("floor", 1, 1, SAME),
    BuiltinSpec("ceil", 1, 1, SAME),
    BuiltinSpec("sign", 1, 1, SAME),
    # -- comparisons / ternary --
    BuiltinSpec("ppred", 3, 3, MATRIX),
    BuiltinSpec("table", 2, 3, MATRIX),
    # -- append / binds --
    BuiltinSpec("append", 2, 2, MATRIX),
    BuiltinSpec("cbind", 2, 2, MATRIX),
    BuiltinSpec("rbind", 2, 2, MATRIX),
    # -- casts --
    BuiltinSpec("as.scalar", 1, 1, SCALAR),
    BuiltinSpec("as.matrix", 1, 1, MATRIX),
    BuiltinSpec("as.double", 1, 1, SCALAR, ValueType.FP64),
    BuiltinSpec("as.integer", 1, 1, SCALAR, ValueType.INT64),
    BuiltinSpec("as.logical", 1, 1, SCALAR, ValueType.BOOLEAN),
    # -- conditional default for command-line args --
    BuiltinSpec("ifdef", 2, 2, SCALAR),
]

BUILTINS = {spec.name: spec for spec in _SPECS}

#: builtins whose matrix output preserves the zero pattern of their input
#: (relevant for sparsity propagation)
ZERO_PRESERVING_UNARY = {"sqrt", "abs", "round", "floor", "ceil", "sign"}


def is_builtin(name):
    return name in BUILTINS


def get_builtin(name):
    return BUILTINS.get(name)


def infer_output_data_type(spec, arg_data_types):
    """Derive the output :class:`DataType` of a builtin call.

    ``arg_data_types`` is a list of :class:`DataType` for positional args.
    """
    if spec.output == SCALAR:
        return DataType.SCALAR
    if spec.output == MATRIX:
        return DataType.MATRIX
    if spec.output == SAME:
        if arg_data_types and arg_data_types[0] is DataType.MATRIX:
            return DataType.MATRIX
        return DataType.SCALAR
    if spec.output == AGG:
        # min/max: single matrix arg aggregates; any scalar combination is
        # scalar; matrix-scalar min/max yields a matrix (elementwise)
        if len(arg_data_types) == 1:
            return DataType.SCALAR
        if any(dt is DataType.MATRIX for dt in arg_data_types):
            return DataType.MATRIX
        return DataType.SCALAR
    raise ValueError(f"unknown output rule {spec.output!r}")
