"""Tokenizer for the DML subset.

Produces a flat list of :class:`Token` objects with line/column positions.
Comments (``#`` to end of line) and whitespace are skipped; newlines are
emitted as ``NEWLINE`` tokens so the parser can use them as statement
separators (semicolons are also accepted and treated the same way).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DMLSyntaxError

KEYWORDS = {
    "if",
    "else",
    "while",
    "for",
    "parfor",
    "in",
    "function",
    "return",
    "TRUE",
    "FALSE",
}

#: multi-character operators, longest first so maximal munch works
_MULTI_OPS = [
    "%*%",
    "%/%",
    "%%",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "<-",
]

_SINGLE_OPS = set("+-*/^<>=!&|(){}[],:;$")


@dataclass
class Token:
    kind: str  # ID, INT, DOUBLE, STRING, KEYWORD, OP, NEWLINE, EOF
    text: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source):
    """Tokenize DML ``source`` text into a list of tokens ending with EOF.

    Raises :class:`DMLSyntaxError` on unrecognized characters or unclosed
    string literals.
    """
    tokens = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def add(kind, text, tline, tcol):
        tokens.append(Token(kind, text, tline, tcol))

    while i < n:
        ch = source[i]
        # newline -> statement separator
        if ch == "\n":
            add("NEWLINE", "\n", line, col)
            line += 1
            col = 1
            i += 1
            continue
        # other whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # comments
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        # strings
        if ch in "\"'":
            quote = ch
            start_line, start_col = line, col
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise DMLSyntaxError(
                        "unterminated string literal", start_line, start_col
                    )
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", "\\": "\\"}.get(esc, esc))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise DMLSyntaxError(
                    "unterminated string literal", start_line, start_col
                )
            add("STRING", "".join(buf), start_line, start_col)
            col += j + 1 - i
            i = j + 1
            continue
        # numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i
            is_double = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_double = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                is_double = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                if j >= n or not source[j].isdigit():
                    raise DMLSyntaxError(
                        "malformed exponent in numeric literal",
                        start_line,
                        start_col,
                    )
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            add("DOUBLE" if is_double else "INT", text, start_line, start_col)
            col += j - i
            i = j
            continue
        # identifiers and keywords
        if ch.isalpha() or ch == "_" or ch == ".":
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] in "._"):
                j += 1
            text = source[i:j]
            kind = "KEYWORD" if text in KEYWORDS else "ID"
            add(kind, text, start_line, start_col)
            col += j - i
            i = j
            continue
        # multi-char operators
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                add("OP", op, line, col)
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        # single-char operators / punctuation
        if ch in _SINGLE_OPS:
            add("OP", ch, line, col)
            i += 1
            col += 1
            continue
        raise DMLSyntaxError(f"unexpected character {ch!r}", line, col)

    add("EOF", "", line, col)
    return tokens
