"""Recursive-descent parser for the DML subset.

Entry point is :func:`parse`, which returns a :class:`repro.dml.ast.Program`.
The grammar follows DML/R conventions:

* newlines or semicolons separate statements (newlines inside parentheses,
  brackets, or immediately around binary operators are ignored);
* ``^`` is right-associative and binds tightest, then unary ``+/-``, then
  ``%*%``/``%%``/``%/%``, then ``*``/``/``, then ``+``/``-``, relational
  operators, ``!``, ``&``, ``|``;
* functions are defined as ``name = function(args) return (outs) { body }``.
"""

from __future__ import annotations

from repro.dml import ast
from repro.dml.lexer import tokenize
from repro.errors import DMLSyntaxError

_RELATIONAL = {"<", "<=", ">", ">=", "==", "!="}
_OPENERS = {"(", "["}
_CLOSERS = {")", "]"}
#: tokens after which a newline cannot end a statement
_CONTINUATION_OPS = {
    "+", "-", "*", "/", "^", "%*%", "%%", "%/%",
    "<", "<=", ">", ">=", "==", "!=", "&", "|", "&&", "||",
    "=", "<-", ",", "{",
}


def _filter_newlines(tokens):
    """Drop NEWLINE tokens that cannot be statement separators.

    A newline is dropped when it occurs inside parentheses/brackets, right
    after an operator that requires a right operand, or right before an
    ``else`` keyword or a closing punctuation that does not need separating.
    """
    out = []
    depth = 0
    for i, tok in enumerate(tokens):
        if tok.kind == "OP" and tok.text in _OPENERS:
            depth += 1
        elif tok.kind == "OP" and tok.text in _CLOSERS:
            depth = max(0, depth - 1)
        if tok.kind == "NEWLINE":
            if depth > 0:
                continue
            if out and out[-1].kind == "OP" and out[-1].text in _CONTINUATION_OPS:
                continue
            # lookahead: collapse before 'else' so `}\n else` parses
            j = i + 1
            while j < len(tokens) and tokens[j].kind == "NEWLINE":
                j += 1
            if (
                j < len(tokens)
                and tokens[j].kind == "KEYWORD"
                and tokens[j].text in ("else", "return")
            ):
                continue
            if out and out[-1].kind == "NEWLINE":
                continue
        out.append(tok)
    return out


class _Parser:
    """Stateful token-stream parser; one instance per :func:`parse` call."""

    def __init__(self, tokens):
        self.tokens = _filter_newlines(tokens)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, offset=0):
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def check(self, kind, text=None):
        tok = self.peek()
        if tok.kind != kind:
            return False
        return text is None or tok.text == text

    def check_op(self, text):
        return self.check("OP", text)

    def match(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        tok = self.peek()
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise DMLSyntaxError(
                f"expected {want!r} but found {tok.text!r}", tok.line, tok.column
            )
        return self.advance()

    def skip_separators(self):
        while self.check("NEWLINE") or self.check_op(";"):
            self.advance()

    # -- program level -------------------------------------------------------

    def parse_program(self):
        program = ast.Program(line=1)
        self.skip_separators()
        while not self.check("EOF"):
            if self._at_function_def():
                func = self.parse_function_def()
                if func.name in program.functions:
                    raise DMLSyntaxError(
                        f"duplicate function definition {func.name!r}", func.line
                    )
                program.functions[func.name] = func
            else:
                program.statements.append(self.parse_statement())
            self.skip_separators()
        return program

    def _at_function_def(self):
        return (
            self.check("ID")
            and self.peek(1).kind == "OP"
            and self.peek(1).text in ("=", "<-")
            and self.peek(2).kind == "KEYWORD"
            and self.peek(2).text == "function"
        )

    def parse_function_def(self):
        name_tok = self.expect("ID")
        self.advance()  # '=' or '<-'
        self.expect("KEYWORD", "function")
        self.expect("OP", "(")
        inputs = self.parse_param_list(")")
        self.expect("OP", ")")
        self.expect("KEYWORD", "return")
        self.expect("OP", "(")
        outputs = self.parse_param_list(")")
        self.expect("OP", ")")
        body = self.parse_block()
        return ast.FunctionDef(
            name=name_tok.text,
            inputs=inputs,
            outputs=outputs,
            body=body,
            line=name_tok.line,
        )

    def parse_param_list(self, closer):
        params = []
        while not self.check_op(closer):
            params.append(self.parse_param())
            if not self.match("OP", ","):
                break
        return params

    def parse_param(self):
        """Parse ``Matrix[double] X`` or ``double x = 0.01`` style params."""
        type_tok = self.expect("ID")
        type_name = type_tok.text.lower()
        value_type = "double"
        if type_name == "matrix":
            data_type = "matrix"
            if self.match("OP", "["):
                vt_tok = self.expect("ID")
                value_type = vt_tok.text.lower()
                self.expect("OP", "]")
        elif type_name in ("double", "int", "integer", "boolean", "string"):
            data_type = "scalar"
            value_type = "int" if type_name == "integer" else type_name
        else:
            raise DMLSyntaxError(
                f"unknown parameter type {type_tok.text!r}",
                type_tok.line,
                type_tok.column,
            )
        name_tok = self.expect("ID")
        default = None
        if self.match("OP", "="):
            default = self.parse_expr()
        return ast.Param(
            name=name_tok.text,
            data_type=data_type,
            value_type=value_type,
            default=default,
            line=type_tok.line,
        )

    # -- statements ------------------------------------------------------

    def parse_block(self):
        """Parse ``{ stmts }`` or a single statement without braces."""
        if self.match("OP", "{"):
            statements = []
            self.skip_separators()
            while not self.check_op("}"):
                if self.check("EOF"):
                    tok = self.peek()
                    raise DMLSyntaxError("unterminated block", tok.line, tok.column)
                statements.append(self.parse_statement())
                self.skip_separators()
            self.expect("OP", "}")
            return statements
        return [self.parse_statement()]

    def parse_statement(self):
        tok = self.peek()
        if tok.kind == "KEYWORD":
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text in ("for", "parfor"):
                return self.parse_for()
            raise DMLSyntaxError(
                f"unexpected keyword {tok.text!r}", tok.line, tok.column
            )
        if tok.kind == "OP" and tok.text == "[":
            return self.parse_multi_assignment()
        if tok.kind == "ID":
            return self.parse_assignment_or_call()
        raise DMLSyntaxError(
            f"unexpected token {tok.text!r} at statement start", tok.line, tok.column
        )

    def parse_if(self):
        tok = self.expect("KEYWORD", "if")
        self.expect("OP", "(")
        predicate = self.parse_expr()
        self.expect("OP", ")")
        self.skip_separators()
        body = self.parse_block()
        else_body = []
        save = self.pos
        self.skip_separators()
        if self.match("KEYWORD", "else"):
            self.skip_separators()
            if self.check("KEYWORD", "if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        else:
            self.pos = save
        return ast.IfStatement(
            predicate=predicate, body=body, else_body=else_body, line=tok.line
        )

    def parse_while(self):
        tok = self.expect("KEYWORD", "while")
        self.expect("OP", "(")
        predicate = self.parse_expr()
        self.expect("OP", ")")
        self.skip_separators()
        body = self.parse_block()
        return ast.WhileStatement(predicate=predicate, body=body, line=tok.line)

    def parse_for(self):
        tok = self.advance()  # for | parfor
        parallel = tok.text == "parfor"
        self.expect("OP", "(")
        var_tok = self.expect("ID")
        self.expect("KEYWORD", "in")
        if self.check("ID", "seq") or (
            self.check("ID") and self.peek().text == "seq"
        ):
            # for (i in seq(a, b, c))
            call = self.parse_expr()
            if not isinstance(call, ast.FunctionCall) or call.name != "seq":
                raise DMLSyntaxError(
                    "for-loop iterable must be a range or seq()",
                    tok.line,
                    tok.column,
                )
            from_expr = call.args[0]
            to_expr = call.args[1]
            increment = call.args[2] if len(call.args) > 2 else None
        else:
            from_expr = self.parse_add_expr()
            self.expect("OP", ":")
            to_expr = self.parse_add_expr()
            increment = None
        self.expect("OP", ")")
        self.skip_separators()
        body = self.parse_block()
        return ast.ForStatement(
            var=var_tok.text,
            from_expr=from_expr,
            to_expr=to_expr,
            increment=increment,
            body=body,
            parallel=parallel,
            line=tok.line,
        )

    def parse_multi_assignment(self):
        tok = self.expect("OP", "[")
        targets = [self.expect("ID").text]
        while self.match("OP", ","):
            targets.append(self.expect("ID").text)
        self.expect("OP", "]")
        self.expect("OP", "=")
        call = self.parse_expr()
        if not isinstance(call, ast.FunctionCall):
            raise DMLSyntaxError(
                "multi-assignment requires a function call on the right",
                tok.line,
                tok.column,
            )
        return ast.MultiAssignment(targets=targets, call=call, line=tok.line)

    def parse_assignment_or_call(self):
        tok = self.peek()
        # function-call statement, e.g. print(...), write(...)
        if self.peek(1).kind == "OP" and self.peek(1).text == "(":
            expr = self.parse_expr()
            if not isinstance(expr, ast.FunctionCall):
                raise DMLSyntaxError(
                    "expected a function-call statement", tok.line, tok.column
                )
            return ast.ExprStatement(expr=expr, line=tok.line)
        name_tok = self.expect("ID")
        row_range = col_range = None
        if self.match("OP", "["):
            row_range, col_range = self.parse_index_ranges()
            self.expect("OP", "]")
        if self.check_op("=") or self.check_op("<-"):
            self.advance()
        else:
            bad = self.peek()
            raise DMLSyntaxError(
                f"expected '=' in assignment to {name_tok.text!r}",
                bad.line,
                bad.column,
            )
        expr = self.parse_expr()
        return ast.Assignment(
            target=name_tok.text,
            expr=expr,
            row_range=row_range,
            col_range=col_range,
            line=name_tok.line,
        )

    # -- expressions -------------------------------------------------------

    def parse_expr(self):
        return self.parse_or_expr()

    def parse_or_expr(self):
        left = self.parse_and_expr()
        while self.check_op("|") or self.check_op("||"):
            tok = self.advance()
            right = self.parse_and_expr()
            left = ast.BinaryExpr(op="|", left=left, right=right, line=tok.line)
        return left

    def parse_and_expr(self):
        left = self.parse_not_expr()
        while self.check_op("&") or self.check_op("&&"):
            tok = self.advance()
            right = self.parse_not_expr()
            left = ast.BinaryExpr(op="&", left=left, right=right, line=tok.line)
        return left

    def parse_not_expr(self):
        if self.check_op("!"):
            tok = self.advance()
            operand = self.parse_not_expr()
            return ast.UnaryExpr(op="!", operand=operand, line=tok.line)
        return self.parse_relational_expr()

    def parse_relational_expr(self):
        left = self.parse_add_expr()
        if self.peek().kind == "OP" and self.peek().text in _RELATIONAL:
            tok = self.advance()
            right = self.parse_add_expr()
            return ast.BinaryExpr(op=tok.text, left=left, right=right, line=tok.line)
        return left

    def parse_add_expr(self):
        left = self.parse_mul_expr()
        while self.check_op("+") or self.check_op("-"):
            tok = self.advance()
            right = self.parse_mul_expr()
            left = ast.BinaryExpr(op=tok.text, left=left, right=right, line=tok.line)
        return left

    def parse_mul_expr(self):
        left = self.parse_matmul_expr()
        while self.check_op("*") or self.check_op("/"):
            tok = self.advance()
            right = self.parse_matmul_expr()
            left = ast.BinaryExpr(op=tok.text, left=left, right=right, line=tok.line)
        return left

    def parse_matmul_expr(self):
        left = self.parse_unary_expr()
        while (
            self.check_op("%*%") or self.check_op("%%") or self.check_op("%/%")
        ):
            tok = self.advance()
            right = self.parse_unary_expr()
            left = ast.BinaryExpr(op=tok.text, left=left, right=right, line=tok.line)
        return left

    def parse_unary_expr(self):
        if self.check_op("-") or self.check_op("+"):
            tok = self.advance()
            operand = self.parse_unary_expr()
            if tok.text == "+":
                return operand
            # fold negative numeric literals directly
            if isinstance(operand, ast.Literal) and operand.vtype in ("int", "double"):
                return ast.Literal(
                    value=-operand.value, vtype=operand.vtype, line=tok.line
                )
            return ast.UnaryExpr(op="-", operand=operand, line=tok.line)
        return self.parse_power_expr()

    def parse_power_expr(self):
        base = self.parse_postfix_expr()
        if self.check_op("^"):
            tok = self.advance()
            # right associative: recurse through unary to allow 2^-3
            exponent = self.parse_unary_expr()
            return ast.BinaryExpr(op="^", left=base, right=exponent, line=tok.line)
        return base

    def parse_postfix_expr(self):
        expr = self.parse_primary()
        while self.check_op("["):
            tok = self.advance()
            row_range, col_range = self.parse_index_ranges()
            self.expect("OP", "]")
            expr = ast.IndexingExpr(
                target=expr, row_range=row_range, col_range=col_range, line=tok.line
            )
        return expr

    def parse_index_ranges(self):
        """Parse the inside of ``X[rows, cols]`` (after the ``[``)."""
        row_range = self.parse_one_range(terminators=(",", "]"))
        col_range = ast.IndexRange(None, None)
        if self.match("OP", ","):
            col_range = self.parse_one_range(terminators=("]",))
        return row_range, col_range

    def parse_one_range(self, terminators):
        if self.peek().kind == "OP" and self.peek().text in terminators:
            return ast.IndexRange(None, None)
        if self.check_op(":"):
            self.advance()
            upper = self.parse_add_expr()
            return ast.IndexRange(None, upper, is_range=True)
        lower = self.parse_add_expr()
        if self.match("OP", ":"):
            if self.peek().kind == "OP" and self.peek().text in terminators:
                return ast.IndexRange(lower, None, is_range=True)
            upper = self.parse_add_expr()
            return ast.IndexRange(lower, upper, is_range=True)
        return ast.IndexRange(lower, None, is_range=False)

    def parse_primary(self):
        tok = self.peek()
        if tok.kind == "INT":
            self.advance()
            return ast.Literal(value=int(tok.text), vtype="int", line=tok.line)
        if tok.kind == "DOUBLE":
            self.advance()
            return ast.Literal(value=float(tok.text), vtype="double", line=tok.line)
        if tok.kind == "STRING":
            self.advance()
            return ast.Literal(value=tok.text, vtype="string", line=tok.line)
        if tok.kind == "KEYWORD" and tok.text in ("TRUE", "FALSE"):
            self.advance()
            return ast.Literal(
                value=(tok.text == "TRUE"), vtype="boolean", line=tok.line
            )
        if tok.kind == "OP" and tok.text == "$":
            self.advance()
            name_tok = self.expect("ID")
            return ast.CommandLineArg(name=name_tok.text, line=tok.line)
        if tok.kind == "OP" and tok.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("OP", ")")
            return expr
        if tok.kind == "ID":
            self.advance()
            if self.check_op("("):
                return self.parse_call(tok)
            return ast.Identifier(name=tok.text, line=tok.line)
        raise DMLSyntaxError(
            f"unexpected token {tok.text!r} in expression", tok.line, tok.column
        )

    def parse_call(self, name_tok):
        self.expect("OP", "(")
        args = []
        named_args = {}
        while not self.check_op(")"):
            if (
                self.check("ID")
                and self.peek(1).kind == "OP"
                and self.peek(1).text == "="
                and not (self.peek(2).kind == "OP" and self.peek(2).text == "=")
            ):
                key_tok = self.advance()
                self.advance()  # '='
                named_args[key_tok.text] = self.parse_expr()
            else:
                if named_args:
                    bad = self.peek()
                    raise DMLSyntaxError(
                        "positional argument after named argument",
                        bad.line,
                        bad.column,
                    )
                args.append(self.parse_expr())
            if not self.match("OP", ","):
                break
        self.expect("OP", ")")
        return ast.FunctionCall(
            name=name_tok.text, args=args, named_args=named_args, line=name_tok.line
        )


def parse(source):
    """Parse DML ``source`` text and return an :class:`ast.Program`."""
    return _Parser(tokenize(source)).parse_program()
