"""DML pretty-printer: renders an AST back to parseable source.

Used by tooling (plan diffs, migration logs) and by the round-trip
property tests: ``parse(print_program(parse(src)))`` must yield an
equivalent AST.  Expressions are fully parenthesized where precedence
could be ambiguous, so the printer never changes meaning.
"""

from __future__ import annotations

from repro.dml import ast

#: binding strength per binary operator (higher binds tighter)
_PRECEDENCE = {
    "|": 1,
    "&": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5,
    "%*%": 6, "%%": 6, "%/%": 6,
    "^": 8,
}


def _escape(text):
    return text.replace("\\", "\\\\").replace('"', '\\"')


def print_expr(expr, parent_precedence=0):
    """Render one expression."""
    if isinstance(expr, ast.Literal):
        if expr.vtype == "string":
            return f'"{_escape(expr.value)}"'
        if expr.vtype == "boolean":
            return "TRUE" if expr.value else "FALSE"
        return repr(expr.value)
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.CommandLineArg):
        return f"${expr.name}"
    if isinstance(expr, ast.UnaryExpr):
        inner = print_expr(expr.operand, 7)
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.BinaryExpr):
        prec = _PRECEDENCE[expr.op]
        # ^ is right-associative (left operand of a nested power needs
        # parentheses); relational operators are non-associative (both
        # sides need parentheses); the rest are left-associative
        relational = prec == 3
        left_prec = prec + 1 if (expr.op == "^" or relational) else prec
        right_prec = prec if expr.op == "^" else prec + 1
        left = print_expr(expr.left, left_prec)
        right = print_expr(expr.right, right_prec)
        text = f"{left} {expr.op} {right}"
        if prec < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, ast.FunctionCall):
        parts = [print_expr(arg) for arg in expr.args]
        parts += [
            f"{key}={print_expr(value)}"
            for key, value in expr.named_args.items()
        ]
        return f"{expr.name}({', '.join(parts)})"
    if isinstance(expr, ast.IndexingExpr):
        target = print_expr(expr.target, 9)
        return f"{target}[{_print_ranges(expr.row_range, expr.col_range)}]"
    raise TypeError(f"cannot print expression {type(expr).__name__}")


def _print_range(rng):
    if rng is None or rng.is_all:
        return ""
    lower = print_expr(rng.lower) if rng.lower is not None else ""
    if not rng.is_range:
        return lower
    upper = print_expr(rng.upper) if rng.upper is not None else ""
    return f"{lower}:{upper}"


def _print_ranges(row_range, col_range):
    return f"{_print_range(row_range)}, {_print_range(col_range)}"


def _print_statement(stmt, indent):
    pad = "  " * indent
    if isinstance(stmt, ast.Assignment):
        if stmt.is_left_indexing:
            ranges = _print_ranges(stmt.row_range, stmt.col_range)
            return [f"{pad}{stmt.target}[{ranges}] = {print_expr(stmt.expr)}"]
        return [f"{pad}{stmt.target} = {print_expr(stmt.expr)}"]
    if isinstance(stmt, ast.MultiAssignment):
        targets = ", ".join(stmt.targets)
        return [f"{pad}[{targets}] = {print_expr(stmt.call)}"]
    if isinstance(stmt, ast.ExprStatement):
        return [f"{pad}{print_expr(stmt.expr)}"]
    if isinstance(stmt, ast.IfStatement):
        lines = [f"{pad}if ({print_expr(stmt.predicate)}) {{"]
        for child in stmt.body:
            lines.extend(_print_statement(child, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for child in stmt.else_body:
                lines.extend(_print_statement(child, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.WhileStatement):
        lines = [f"{pad}while ({print_expr(stmt.predicate)}) {{"]
        for child in stmt.body:
            lines.extend(_print_statement(child, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.ForStatement):
        keyword = "parfor" if stmt.parallel else "for"
        if stmt.increment is not None:
            iterable = (
                f"seq({print_expr(stmt.from_expr)}, "
                f"{print_expr(stmt.to_expr)}, {print_expr(stmt.increment)})"
            )
        else:
            iterable = (
                f"{print_expr(stmt.from_expr, 5)}:"
                f"{print_expr(stmt.to_expr, 5)}"
            )
        lines = [f"{pad}{keyword} ({stmt.var} in {iterable}) {{"]
        for child in stmt.body:
            lines.extend(_print_statement(child, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot print statement {type(stmt).__name__}")


def _print_param(param):
    if param.data_type == "matrix":
        type_text = f"Matrix[{param.value_type}]"
    else:
        type_text = param.value_type
    text = f"{type_text} {param.name}"
    if param.default is not None:
        text += f" = {print_expr(param.default)}"
    return text


def print_program(program):
    """Render a full :class:`ast.Program` back to DML source."""
    lines = []
    for func in program.functions.values():
        inputs = ", ".join(_print_param(p) for p in func.inputs)
        outputs = ", ".join(_print_param(p) for p in func.outputs)
        lines.append(
            f"{func.name} = function({inputs}) return ({outputs}) {{"
        )
        for stmt in func.body:
            lines.extend(_print_statement(stmt, 1))
        lines.append("}")
        lines.append("")
    for stmt in program.statements:
        lines.extend(_print_statement(stmt, 0))
    return "\n".join(lines) + "\n"
