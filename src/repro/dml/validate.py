"""Semantic validation of parsed DML programs.

Performs a flow-sensitive walk over the program to check:

* variables are defined before use (a variable assigned in only one branch
  of an ``if`` counts as conditionally defined and is accepted, matching
  DML's permissive semantics);
* builtin calls have valid arity and named arguments;
* user-defined function calls match declared inputs/outputs;
* data types are consistent (e.g., ``%*%`` requires matrix operands,
  predicates must be scalar);
* command-line arguments are declared via ``$name`` / ``ifdef``.

Returns a :class:`ValidationResult` listing referenced command-line args
and the inferred data type of every top-level variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import DataType
from repro.dml import ast
from repro.dml.builtins import BUILTINS, infer_output_data_type
from repro.errors import ValidationError

_MATRIX_ONLY_OPS = {"%*%"}


@dataclass
class ValidationResult:
    """Outcome of validation: referenced ``$args`` and final var types."""

    cmdline_args: set = field(default_factory=set)
    variable_types: dict = field(default_factory=dict)


class _Scope:
    """A lexical scope mapping variable name -> DataType."""

    def __init__(self, parent=None):
        self.vars = {}
        self.parent = parent

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def define(self, name, dtype):
        self.vars[name] = dtype

    def copy(self):
        clone = _Scope(self.parent)
        clone.vars = dict(self.vars)
        return clone


class _Validator:
    def __init__(self, program, script_args):
        self.program = program
        self.script_args = script_args or {}
        self.result = ValidationResult()

    def run(self):
        for func in self.program.functions.values():
            self._validate_function(func)
        scope = _Scope()
        self._validate_statements(self.program.statements, scope)
        self.result.variable_types = dict(scope.vars)
        return self.result

    # -- functions -----------------------------------------------------------

    def _validate_function(self, func):
        scope = _Scope()
        for param in func.inputs:
            dtype = DataType.MATRIX if param.data_type == "matrix" else DataType.SCALAR
            scope.define(param.name, dtype)
        self._validate_statements(func.body, scope)
        for out in func.outputs:
            if scope.lookup(out.name) is None:
                raise ValidationError(
                    f"function {func.name!r} never assigns output {out.name!r}"
                )

    # -- statements ------------------------------------------------------

    def _validate_statements(self, statements, scope):
        for stmt in statements:
            self._validate_statement(stmt, scope)

    def _validate_statement(self, stmt, scope):
        if isinstance(stmt, ast.Assignment):
            dtype = self._expr_type(stmt.expr, scope)
            if stmt.is_left_indexing:
                existing = scope.lookup(stmt.target)
                if existing is None:
                    raise ValidationError(
                        f"left indexing of undefined variable {stmt.target!r} "
                        f"(line {stmt.line})"
                    )
                if existing is not DataType.MATRIX:
                    raise ValidationError(
                        f"left indexing requires a matrix target (line {stmt.line})"
                    )
                self._check_ranges(stmt.row_range, stmt.col_range, scope, stmt.line)
            else:
                scope.define(stmt.target, dtype)
        elif isinstance(stmt, ast.MultiAssignment):
            out_types = self._call_output_types(stmt.call, scope)
            if len(out_types) != len(stmt.targets):
                raise ValidationError(
                    f"function {stmt.call.name!r} returns {len(out_types)} values "
                    f"but {len(stmt.targets)} targets given (line {stmt.line})"
                )
            for target, dtype in zip(stmt.targets, out_types):
                scope.define(target, dtype)
        elif isinstance(stmt, ast.ExprStatement):
            call = stmt.expr
            if not isinstance(call, ast.FunctionCall):
                raise ValidationError(
                    f"expression statement must be a call (line {stmt.line})"
                )
            self._expr_type(call, scope)
        elif isinstance(stmt, ast.IfStatement):
            self._check_predicate(stmt.predicate, scope, stmt.line)
            then_scope = scope.copy()
            else_scope = scope.copy()
            self._validate_statements(stmt.body, then_scope)
            self._validate_statements(stmt.else_body, else_scope)
            # merge: a var is defined after the if when defined in either
            # branch (conditional definition, accepted permissively)
            for name, dtype in then_scope.vars.items():
                scope.define(name, dtype)
            for name, dtype in else_scope.vars.items():
                scope.define(name, dtype)
        elif isinstance(stmt, ast.WhileStatement):
            self._check_predicate(stmt.predicate, scope, stmt.line)
            body_scope = scope.copy()
            self._validate_statements(stmt.body, body_scope)
            for name, dtype in body_scope.vars.items():
                scope.define(name, dtype)
        elif isinstance(stmt, ast.ForStatement):
            self._expr_type(stmt.from_expr, scope)
            self._expr_type(stmt.to_expr, scope)
            if stmt.increment is not None:
                self._expr_type(stmt.increment, scope)
            body_scope = scope.copy()
            body_scope.define(stmt.var, DataType.SCALAR)
            self._validate_statements(stmt.body, body_scope)
            for name, dtype in body_scope.vars.items():
                if name != stmt.var:
                    scope.define(name, dtype)
        else:
            raise ValidationError(f"unknown statement type {type(stmt).__name__}")

    def _check_predicate(self, predicate, scope, line):
        dtype = self._expr_type(predicate, scope)
        if dtype is not DataType.SCALAR:
            raise ValidationError(
                f"control-flow predicate must be scalar (line {line})"
            )

    def _check_ranges(self, row_range, col_range, scope, line):
        for rng in (row_range, col_range):
            if rng is None:
                continue
            for bound in (rng.lower, rng.upper):
                if bound is not None:
                    dtype = self._expr_type(bound, scope)
                    if dtype is not DataType.SCALAR:
                        raise ValidationError(
                            f"index bounds must be scalar (line {line})"
                        )

    # -- expressions -------------------------------------------------------

    def _expr_type(self, expr, scope):
        if isinstance(expr, ast.Literal):
            return DataType.SCALAR
        if isinstance(expr, ast.CommandLineArg):
            self.result.cmdline_args.add(expr.name)
            return DataType.SCALAR
        if isinstance(expr, ast.Identifier):
            dtype = scope.lookup(expr.name)
            if dtype is None:
                raise ValidationError(
                    f"use of undefined variable {expr.name!r} (line {expr.line})"
                )
            return dtype
        if isinstance(expr, ast.UnaryExpr):
            return self._expr_type(expr.operand, scope)
        if isinstance(expr, ast.BinaryExpr):
            left = self._expr_type(expr.left, scope)
            right = self._expr_type(expr.right, scope)
            if expr.op in _MATRIX_ONLY_OPS:
                if left is not DataType.MATRIX or right is not DataType.MATRIX:
                    raise ValidationError(
                        f"operator {expr.op!r} requires matrix operands "
                        f"(line {expr.line})"
                    )
                return DataType.MATRIX
            if DataType.MATRIX in (left, right):
                return DataType.MATRIX
            return DataType.SCALAR
        if isinstance(expr, ast.IndexingExpr):
            target = self._expr_type(expr.target, scope)
            if target is not DataType.MATRIX:
                raise ValidationError(
                    f"indexing requires a matrix (line {expr.line})"
                )
            self._check_ranges(expr.row_range, expr.col_range, scope, expr.line)
            return DataType.MATRIX
        if isinstance(expr, ast.FunctionCall):
            out_types = self._call_output_types(expr, scope)
            if len(out_types) != 1:
                raise ValidationError(
                    f"function {expr.name!r} used in expression must return "
                    f"exactly one value (line {expr.line})"
                )
            return out_types[0]
        raise ValidationError(f"unknown expression type {type(expr).__name__}")

    def _call_output_types(self, call, scope):
        """Validate a call and return the list of its output data types."""
        arg_types = [self._expr_type(arg, scope) for arg in call.args]
        for value in call.named_args.values():
            self._expr_type(value, scope)
        if call.name in self.program.functions:
            func = self.program.functions[call.name]
            required = [p for p in func.inputs if p.default is None]
            if len(call.args) + len(call.named_args) < len(required) or len(
                call.args
            ) > len(func.inputs):
                raise ValidationError(
                    f"call to {call.name!r} has wrong arity (line {call.line})"
                )
            valid_names = {p.name for p in func.inputs}
            for key in call.named_args:
                if key not in valid_names:
                    raise ValidationError(
                        f"unknown argument {key!r} in call to {call.name!r} "
                        f"(line {call.line})"
                    )
            return [
                DataType.MATRIX if p.data_type == "matrix" else DataType.SCALAR
                for p in func.outputs
            ]
        spec = BUILTINS.get(call.name)
        if spec is None:
            raise ValidationError(
                f"call to unknown function {call.name!r} (line {call.line})"
            )
        n_args = len(call.args)
        if n_args < spec.min_args or (spec.max_args >= 0 and n_args > spec.max_args):
            raise ValidationError(
                f"builtin {call.name!r} called with {n_args} arguments "
                f"(expects {spec.min_args}..{spec.max_args}) (line {call.line})"
            )
        for key in call.named_args:
            if key not in spec.named_args:
                raise ValidationError(
                    f"builtin {call.name!r} has no named argument {key!r} "
                    f"(line {call.line})"
                )
        if call.name == "ifdef":
            arg = call.args[0]
            if not isinstance(arg, ast.CommandLineArg):
                raise ValidationError(
                    f"ifdef() first argument must be a $arg (line {call.line})"
                )
        return [infer_output_data_type(spec, arg_types)]


def validate(program, script_args=None):
    """Validate ``program`` and return a :class:`ValidationResult`.

    ``script_args`` optionally maps ``$name`` arguments to values; it is
    only used to improve error reporting, not required for validation.
    """
    return _Validator(program, script_args).run()
