"""Continuous resource elasticity: the autoscaling Brain.

This package closes the monitor→decide→rescale loop over the paper's
one-shot resource optimization: a deterministic controller
(:class:`ElasticBrain`) polls a cluster-load signal at statement-block
boundaries and grows/shrinks the *granted* fraction of a run's ideal
resource configuration — memory-elastic execution with a cost-model
spill penalty charged to time only, never to numerics.  The trace
module records/generates multi-tenant load traces and the simulator
replays them in deterministic virtual time (the substrate of
``bench_elastic`` and the scenario/property test harness).
"""

from repro.cluster.resources import GrantedResource
from repro.elastic.brain import BrainPolicy, ElasticBrain
from repro.elastic.simulator import (
    SimulatedRun,
    SimulationResult,
    TraceSimulator,
    simulate_arms,
)
from repro.elastic.trace import (
    ElasticTrace,
    TraceEntry,
    TraceRecorder,
    bursty_trace,
)

__all__ = [
    "BrainPolicy",
    "ElasticBrain",
    "GrantedResource",
    "ElasticTrace",
    "TraceEntry",
    "TraceRecorder",
    "bursty_trace",
    "SimulatedRun",
    "SimulationResult",
    "TraceSimulator",
    "simulate_arms",
]
