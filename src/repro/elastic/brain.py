"""The autoscaling Brain: continuous, deterministic resource elasticity.

The paper's elasticity is one-shot — resources are optimized up front and
only re-chosen at AM-migration/recompile points.  The Brain closes the
monitor→decide→rescale loop: it polls a cluster-load signal at statement
-block boundaries (the interpreter's natural decision points) and issues
mid-run grow/shrink decisions over the *granted* fraction of the run's
ideal resource configuration.  Shrinking trades memory for time via the
memory-elastic spill penalty ("Don't cry over spilled records"): MR task
heaps below ideal charge modeled spill seconds, and the CP buffer pool is
resized down (more evictions) — both time-only effects.  Plans are always
compiled against the *ideal* configuration, so a rescaled run executes
the same instruction sequence and produces byte-identical outputs.

The same policy drives memory-elastic *admission*: when the cluster
cannot place a run's ideal AM container, the Brain walks a shrink ladder
``{1, s, s^2, ...}`` and admits the largest fraction whose container fits
the free capacity (and the tenant's quota) right now — running shrunk
instead of queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import GrantedResource
from repro.errors import ClusterError
from repro.obs import get_tracer


@dataclass(frozen=True)
class BrainPolicy:
    """Knobs of the autoscaling Brain (all deterministic)."""

    #: poll the load signal every Nth statement block
    poll_interval: int = 1
    #: shrink the grant when observed utilization is at/above this
    hot_utilization: float = 0.75
    #: grow the grant back when utilization is at/below this
    cool_utilization: float = 0.45
    #: multiplicative step of the shrink ladder (grow divides by it, so
    #: fractions stay on the exact ``shrink_step**k`` lattice)
    shrink_step: float = 0.75
    #: hard floor of the granted fraction
    min_grant_fraction: float = 0.25
    #: cap on mid-run rescale decisions per run
    max_rescales: int = 64
    #: elastic admission is vetoed when the cost model predicts the
    #: shrunk run to be slower than this factor of the ideal estimate
    max_spill_slowdown: float = 2.5
    #: allow admitting runs below their ideal grant when the cluster is
    #: full (False = strict queueing, the paper's behavior)
    elastic_admission: bool = True

    def __post_init__(self):
        if not 0 < self.shrink_step < 1:
            raise ValueError(f"shrink_step must be in (0, 1): {self.shrink_step}")
        if not 0 < self.min_grant_fraction <= 1:
            raise ValueError(
                f"min_grant_fraction must be in (0, 1]: {self.min_grant_fraction}"
            )
        if self.cool_utilization > self.hot_utilization:
            raise ValueError(
                "cool_utilization must not exceed hot_utilization "
                f"({self.cool_utilization} > {self.hot_utilization})"
            )


class ElasticBrain:
    """Per-run autoscaling controller.

    ``utilization`` is a callable ``f(virtual_time) -> [0, 1]`` supplying
    the load signal (a :class:`~repro.cluster.load.ClusterLoad` schedule,
    a simulator occupancy closure, or a live ``rm.utilization`` probe).
    Decisions are a pure function of the signal and the policy, so a run
    replayed under the same trace rescales identically.
    """

    def __init__(self, policy=None, cluster=None, *, utilization=None,
                 tenant=None, base_time=0.0, fraction=1.0):
        self.policy = policy if policy is not None else BrainPolicy()
        self.cluster = cluster
        self.utilization = utilization
        self.tenant = tenant
        self.base_time = float(base_time)
        self.fraction = float(fraction)
        #: (absolute_time, observed_utilization, granted_fraction) per poll
        self.decisions = []
        self.polls = 0
        self.rescales = 0
        self._seen_resource = None

    # -- pure policy steps ---------------------------------------------------

    def next_fraction(self, fraction, utilization):
        """One control step: shrink when hot, grow when cool, hold
        otherwise.  Monotone non-increasing in ``utilization``."""
        p = self.policy
        if utilization >= p.hot_utilization:
            return max(p.min_grant_fraction, fraction * p.shrink_step)
        if utilization <= p.cool_utilization:
            return min(1.0, fraction / p.shrink_step)
        return fraction

    def admission_fraction(self, ideal, rm, tenant=None):
        """Largest fraction on the shrink ladder whose AM container the
        resource manager can place right now (within the tenant's
        quota), or None when even the floor does not fit.

        Monotone in free capacity: more free memory never yields a
        smaller admitted fraction.
        """
        p = self.policy
        fraction = 1.0
        while True:
            granted = GrantedResource.of(ideal, fraction, self.cluster)
            try:
                fits = rm.can_fit(
                    granted.container_request_mb(rm.cluster), tenant=tenant
                )
            except ClusterError:
                fits = False
            if fits:
                return fraction
            if not p.elastic_admission:
                return None
            next_fraction = fraction * p.shrink_step
            if next_fraction < p.min_grant_fraction:
                return None
            fraction = next_fraction

    # -- interpreter hooks ---------------------------------------------------

    def apply(self, interp):
        """Install the current fraction as the interpreter's grant."""
        self._seen_resource = interp.resource
        if self.fraction >= 1.0:
            interp.set_grant(None)
        else:
            interp.set_grant(
                GrantedResource.of(interp.resource, self.fraction, self.cluster)
            )

    def on_block(self, interp):
        """Statement-block boundary: poll the load signal and rescale.

        Called by the interpreter after recompilation/adaptation for the
        block, so a grant is always re-derived from the *current* ideal
        resource (adaptation may have migrated the AM mid-run).
        """
        self.polls += 1
        tracer = get_tracer()
        tracer.incr("elastic.polls")
        if self.polls % max(1, self.policy.poll_interval) != 0:
            return
        now = self.base_time + interp.clock
        load = self.utilization(now) if self.utilization is not None else 0.0
        new_fraction = self.fraction
        if self.rescales < self.policy.max_rescales:
            new_fraction = self.next_fraction(self.fraction, load)
        if new_fraction != self.fraction:
            grew = new_fraction > self.fraction
            self.fraction = new_fraction
            self.rescales += 1
            tracer.incr("elastic.rescales")
            tracer.incr("elastic.grows" if grew else "elastic.shrinks")
            tracer.event(
                "elastic.rescale", time=now, utilization=load,
                fraction=new_fraction, tenant=self.tenant,
            )
            self.apply(interp)
        elif interp.resource is not self._seen_resource:
            # adaptation replaced the ideal resource; refresh the grant
            self.apply(interp)
        self.decisions.append((round(now, 9), round(load, 9), self.fraction))
