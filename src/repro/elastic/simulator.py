"""Deterministic virtual-time simulation of a multi-tenant trace.

A :class:`TraceSimulator` replays an :class:`~repro.elastic.trace
.ElasticTrace` against a single :class:`~repro.cluster.yarn
.ResourceManager` in *virtual* time: a single-threaded event loop over
arrival and finish events, FIFO admission under the paper's
1.5x-heap-container rule, and — with ``elastic=True`` — the Brain's
memory-elastic admission ladder plus mid-run rescaling driven by the
simulated cluster occupancy.  Runs execute eagerly (the simulated
interpreter) at their admission instant; their simulated duration
schedules the finish event.

Everything is deterministic: no wall clock, no threads, no RNG beyond
the seeded trace and the seeded kernels — so two simulations of the
same (trace, cluster, policy) are identical down to every rescale
decision, which is what the replay harness and the property suite
assert.  The elastic and static arms of ``bench_elastic`` are two
simulations differing only in the ``elastic`` flag.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.chaos import FaultInjector, FaultPlan
from repro.cluster import ResourceManager, small_cluster
from repro.cluster.resources import GrantedResource
from repro.cost import CostModel
from repro.elastic.brain import BrainPolicy, ElasticBrain
from repro.errors import ClusterError
from repro.obs import Tracer, use_tracer
from repro.optimizer import ResourceAdapter
from repro.runtime import Interpreter
from repro.workloads import prepare_inputs, scenario


@dataclass
class SimulatedRun:
    """One admitted trace entry and its simulated execution."""

    entry: object
    admitted_s: float
    finish_s: float
    wait_s: float
    container_mb: int
    #: granted fraction at admission (1.0 = ideal)
    fraction: float
    #: mid-run rescale decisions taken by this run's Brain
    rescales: int
    #: (time, utilization, fraction) per Brain poll
    decisions: list
    outcome: object

    @property
    def duration_s(self):
        return self.finish_s - self.admitted_s


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated arm."""

    label: str
    elastic: bool
    runs: list = field(default_factory=list)
    rejected: list = field(default_factory=list)
    makespan_s: float = 0.0
    #: memory-time integral over makespan (allocated MB-seconds over
    #: total capacity MB-seconds)
    utilization: float = 0.0
    counters: dict = field(default_factory=dict)

    @property
    def mean_wait_s(self):
        if not self.runs:
            return 0.0
        return sum(run.wait_s for run in self.runs) / len(self.runs)

    @property
    def total_spill_s(self):
        return self.counters.get("elastic.spill_s", 0.0)

    def summary(self):
        """JSON-ready digest (benchmarks, CLI)."""
        elastic_counters = {
            name: value for name, value in sorted(self.counters.items())
            if name.startswith(("elastic.", "yarn.quota"))
        }
        return {
            "label": self.label,
            "elastic": self.elastic,
            "completed": len(self.runs),
            "rejected": len(self.rejected),
            "makespan_s": round(self.makespan_s, 3),
            "utilization": round(self.utilization, 4),
            "mean_wait_s": round(self.mean_wait_s, 3),
            "total_spill_s": round(self.total_spill_s, 3),
            "rescales": int(self.counters.get("elastic.rescales", 0)),
            "elastic_admissions": int(
                self.counters.get("elastic.elastic_admissions", 0)
            ),
            "counters": elastic_counters,
        }


class TraceSimulator:
    """Virtual-time replay of a trace on one simulated cluster.

    The occupancy signal fed to each run's Brain is the sum of the AM
    containers of runs admitted *before* it (plus any ``background``
    load schedule) — a run never observes later admissions, which keeps
    the loop causal and deterministic.
    """

    def __init__(self, trace, *, cluster=None, params=None, config=None,
                 elastic=False, brain_policy=None, background=None,
                 quota_share=None, sample_cap=64, session=None):
        from repro.api import ElasticMLSession, SessionConfig

        self.trace = trace
        self.cluster = cluster if cluster is not None else small_cluster()
        self.elastic = elastic
        self.brain_policy = (
            brain_policy if brain_policy is not None else BrainPolicy()
        )
        self.background = background
        self.quota_share = quota_share
        self.tracer = Tracer()
        self.session = session if session is not None else ElasticMLSession(
            cluster=self.cluster, params=params, sample_cap=sample_cap,
            config=config if config is not None else SessionConfig(),
        )
        self._prepared = {}

    # -- input preparation ---------------------------------------------------

    def prepare(self):
        """Generate the deterministic input data of every recipe the
        trace references (idempotent)."""
        for script, size, cols in self.trace.workloads():
            key = (script, size, cols)
            if key not in self._prepared:
                self._prepared[key] = prepare_inputs(
                    self.session.hdfs, script, scenario(size, cols=cols)
                )
        return self._prepared

    def args_for(self, entry):
        return self._prepared[(entry.script, entry.size, entry.cols)]

    # -- the event loop ------------------------------------------------------

    def run(self, label=None):
        with use_tracer(self.tracer):
            return self._run(
                label if label is not None
                else ("brain" if self.elastic else "static")
            )

    def _run(self, label):
        self.prepare()
        rm = ResourceManager(self.cluster)
        total_mb = float(self.cluster.total_memory_mb)
        intervals = []  # (admit_s, finish_s, container_mb)

        def occupancy(t):
            used = sum(mb for start, end, mb in intervals if start <= t < end)
            load = used / total_mb if total_mb > 0 else 0.0
            if self.background is not None:
                load += self.background.utilization(t)
            return min(load, 1.0)

        if self.quota_share:
            quota_mb = max(
                self.cluster.min_allocation_mb,
                int(self.quota_share * total_mb),
            )
            for tenant in self.trace.tenants():
                rm.set_tenant_quota(tenant, quota_mb)

        result = SimulationResult(label=label, elastic=self.elastic)
        sequence = itertools.count()
        events = []  # (time, seq, kind, payload)
        for entry in self.trace.entries:
            heapq.heappush(
                events, (entry.arrival_s, next(sequence), "arrival", entry)
            )
        waiting = []  # FIFO queue of pending entries
        clock = 0.0
        while events or waiting:
            if not events:
                # nothing will ever free capacity for the waiting head;
                # admission marks such entries rejected, so this is a bug
                raise RuntimeError(
                    f"simulation deadlock: {len(waiting)} entries waiting "
                    "with no scheduled events"
                )
            clock, _, kind, payload = heapq.heappop(events)
            self._handle(kind, payload, rm, waiting)
            # drain simultaneous events before re-running admission
            while events and events[0][0] == clock:
                _, _, kind, payload = heapq.heappop(events)
                self._handle(kind, payload, rm, waiting)
            # FIFO admission pass (head-of-line blocking, as the paper's
            # throughput setup models)
            while waiting:
                entry = waiting[0]
                admitted = self._try_admit(
                    entry, rm, clock, occupancy, intervals, events,
                    sequence, result,
                )
                if not admitted:
                    break
                waiting.pop(0)
        if result.runs:
            result.makespan_s = max(run.finish_s for run in result.runs)
            busy = sum(
                (end - start) * mb for start, end, mb in intervals
            )
            if result.makespan_s > 0 and total_mb > 0:
                result.utilization = busy / (total_mb * result.makespan_s)
        result.counters = dict(self.tracer.counters)
        return result

    def _handle(self, kind, payload, rm, waiting):
        if kind == "arrival":
            waiting.append(payload)
        else:  # finish: release the run's AM container
            rm.release(payload)

    # -- admission -----------------------------------------------------------

    def _try_admit(self, entry, rm, clock, occupancy, intervals, events,
                   sequence, result):
        compiled, opt_result, ideal = self._prepare_run(entry)
        ideal_container = ideal.container_request_mb(self.cluster)
        quota = rm.tenant_quota_mb(entry.tenant)
        try:
            impossible = rm.max_concurrent(ideal_container) == 0
        except ClusterError:
            impossible = True
        if impossible or (quota is not None and ideal_container > quota):
            # would never fit even an empty cluster / this quota
            self.tracer.incr("elastic.admission_impossible")
            result.rejected.append(entry)
            return True  # pop it, don't block the line forever

        brain = None
        fraction = 1.0
        if self.elastic:
            brain = ElasticBrain(
                policy=self.brain_policy, cluster=self.cluster,
                utilization=occupancy, tenant=entry.tenant,
                base_time=clock,
            )
            admitted_fraction = brain.admission_fraction(
                ideal, rm, tenant=entry.tenant
            )
            if admitted_fraction is None:
                return False  # wait for capacity
            fraction = admitted_fraction
            if fraction < 1.0 and not self._spill_acceptable(
                compiled, ideal, fraction
            ):
                # predicted elastic slowdown too high: queue instead
                self.tracer.incr("elastic.admission_vetoes")
                return False
            brain.fraction = fraction
        else:
            if not rm.can_fit(ideal_container, tenant=entry.tenant):
                return False

        granted = (
            ideal if fraction >= 1.0
            else GrantedResource.of(ideal, fraction, self.cluster)
        )
        container = rm.try_allocate(
            granted.container_request_mb(self.cluster), tenant=entry.tenant
        )
        if container is None:
            return False
        if fraction < 1.0:
            self.tracer.incr("elastic.elastic_admissions")

        exec_result = self._execute(compiled, ideal, entry, brain)
        finish = clock + exec_result.total_time
        intervals.append((clock, finish, container.memory_mb))
        heapq.heappush(events, (finish, next(sequence), "finish", container))
        from repro.api import RunOutcome

        result.runs.append(SimulatedRun(
            entry=entry,
            admitted_s=clock,
            finish_s=finish,
            wait_s=clock - entry.arrival_s,
            container_mb=container.memory_mb,
            fraction=fraction,
            rescales=brain.rescales if brain is not None else 0,
            decisions=list(brain.decisions) if brain is not None else [],
            outcome=RunOutcome(
                result=exec_result,
                resource=exec_result.final_resource,
                optimizer_result=opt_result,
                compiled=compiled,
            ),
        ))
        return True

    def _spill_acceptable(self, compiled, ideal, fraction):
        """Cost-model gate on elastic admission: the granted estimate
        (ideal plans, granted timing + spill term) must stay within
        ``max_spill_slowdown`` of the ideal estimate."""
        model = CostModel(self.cluster, self.session.model_params)
        est_ideal = model.estimate_program(compiled, ideal)
        granted = GrantedResource.of(ideal, fraction, self.cluster)
        est_granted = CostModel(
            self.cluster, self.session.model_params
        ).estimate_program(compiled, granted)
        if est_ideal <= 0:
            return True
        return est_granted / est_ideal <= self.brain_policy.max_spill_slowdown

    # -- execution -----------------------------------------------------------

    def _prepare_run(self, entry):
        from repro.scripts import SCRIPTS, load_script

        args = self.args_for(entry)
        source = (
            load_script(entry.script) if entry.script in SCRIPTS
            else entry.script
        )
        compiled = self.session.compile_script(source, args)
        opt_result = self.session.optimize_cached(source, args, compiled)
        return compiled, opt_result, opt_result.resource

    def _execute(self, compiled, ideal, entry, brain):
        injector = None
        hdfs = self.session.hdfs
        if entry.chaos_seed is not None:
            injector = FaultInjector(
                FaultPlan.from_rate(entry.chaos_seed, entry.fault_rate)
            )
            hdfs = hdfs.view(injector=injector)
        adapter = (
            ResourceAdapter(self.session.make_optimizer(parallel=False))
            if entry.adapt else None
        )
        interpreter = Interpreter(
            self.cluster,
            params=self.session.params,
            hdfs=hdfs,
            sample_cap=self.session.sample_cap,
            adapter=adapter,
            seed=entry.seed,
            cluster_load=self.background,
            injector=injector,
            brain=brain,
        )
        return interpreter.run(compiled, ideal)


def simulate_arms(trace, *, cluster=None, params=None, config=None,
                  brain_policy=None, background=None, quota_share=None,
                  sample_cap=64):
    """Run the static and Brain arms of a trace; returns
    ``(static, brain)`` :class:`SimulationResult` pairs — the benchmark
    comparison in one call."""
    static = TraceSimulator(
        trace, cluster=cluster, params=params, config=config,
        elastic=False, background=background, quota_share=quota_share,
        sample_cap=sample_cap,
    ).run()
    brain = TraceSimulator(
        trace, cluster=cluster, params=params, config=config,
        elastic=True, brain_policy=brain_policy, background=background,
        quota_share=quota_share, sample_cap=sample_cap,
    ).run()
    return static, brain
