"""Multi-tenant load traces: generation, recording, JSON persistence.

A trace is a list of :class:`TraceEntry` arrivals — (tenant, script,
data-scenario recipe, arrival offset).  Entries carry input *recipes*
(script, size, cols) rather than file paths, so replaying a trace
re-prepares identical deterministic input data (datagen is seeded) and a
saved JSON trace is fully self-contained: the same trace replayed on the
same cluster reproduces admissions, rescale decisions, and outputs
byte-for-byte (see :class:`repro.elastic.simulator.TraceSimulator`).

:class:`TraceRecorder` hooks an :class:`~repro.serving.ElasticMLServer`
(``recorder=`` constructor knob) and captures every accepted submission
with its wall-clock arrival offset — turning any live serving session
into a replayable regression scenario.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class TraceEntry:
    """One arrival in a multi-tenant load trace."""

    tenant: str
    script: str
    #: seconds since trace start
    arrival_s: float = 0.0
    #: data-scenario recipe (repro.workloads.scenario)
    size: str = "XS"
    cols: int = 100
    #: interpreter kernel-sampling seed for the run
    seed: int = 0
    #: runtime resource adaptation on/off for the run
    adapt: bool = False
    #: chaos fault-plan seed (None = no fault injection)
    chaos_seed: int | None = None
    fault_rate: float = 0.1


@dataclass
class ElasticTrace:
    """An ordered multi-tenant trace, JSON-serializable."""

    entries: list = field(default_factory=list)
    name: str = "trace"

    def __post_init__(self):
        self.entries = sorted(
            self.entries, key=lambda e: (e.arrival_s, e.tenant, e.script)
        )

    def __len__(self):
        return len(self.entries)

    def tenants(self):
        return sorted({entry.tenant for entry in self.entries})

    def workloads(self):
        """Distinct (script, size, cols) input recipes, first-seen order."""
        seen = []
        for entry in self.entries:
            key = (entry.script, entry.size, entry.cols)
            if key not in seen:
                seen.append(key)
        return seen

    # -- persistence ---------------------------------------------------------

    def to_payload(self):
        return {
            "name": self.name,
            "entries": [asdict(entry) for entry in self.entries],
        }

    @classmethod
    def from_payload(cls, payload):
        return cls(
            name=payload.get("name", "trace"),
            entries=[TraceEntry(**entry) for entry in payload["entries"]],
        )

    def save(self, path):
        with open(path, "w") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_payload(json.load(fh))


def bursty_trace(seed=0, tenants=24, bursts=3, burst_gap_s=480.0,
                 intra_gap_s=3.0, tenant_pool=8,
                 mix=(("LinregDS", "XS", 100), ("LinregCG", "XS", 100))):
    """A seeded bursty multi-tenant trace: ``bursts`` waves of arrivals
    ``burst_gap_s`` apart, each wave packing its share of ``tenants``
    submissions a jittered ``intra_gap_s`` apart.  Deterministic given
    the seed — the scenario the elasticity benchmark drives."""
    rng = random.Random(seed)
    per_burst = int(math.ceil(tenants / bursts))
    entries = []
    index = 0
    for burst in range(bursts):
        start = burst * burst_gap_s
        for slot in range(per_burst):
            if index >= tenants:
                break
            script, size, cols = mix[index % len(mix)]
            jitter = rng.uniform(0.0, intra_gap_s)
            entries.append(TraceEntry(
                tenant=f"tenant-{index % tenant_pool:02d}",
                script=script,
                arrival_s=round(start + slot * intra_gap_s + jitter, 3),
                size=size,
                cols=cols,
            ))
            index += 1
    return ElasticTrace(name=f"bursty-{seed}", entries=entries)


class TraceRecorder:
    """Records accepted server submissions as a replayable trace.

    ``workloads`` maps script name -> (size, cols) — the input recipe
    each script's arguments were prepared with, which is what makes the
    recorded trace self-contained.  Thread-safe: the server calls
    :meth:`record` from :meth:`~repro.serving.ElasticMLServer.submit`.
    """

    def __init__(self, workloads, clock=None):
        self.workloads = dict(workloads)
        self._clock = clock if clock is not None else time.monotonic
        self._start = None
        self._entries = []
        self._lock = threading.Lock()

    def record(self, submission):
        if submission.script not in self.workloads:
            raise KeyError(
                f"no input recipe registered for script "
                f"{submission.script!r}; pass it in TraceRecorder(workloads=...)"
            )
        size, cols = self.workloads[submission.script]
        now = self._clock()
        with self._lock:
            if self._start is None:
                self._start = now
            chaos = getattr(submission, "chaos", None)
            self._entries.append(TraceEntry(
                tenant=submission.tenant,
                script=submission.script,
                arrival_s=round(now - self._start, 6),
                size=size,
                cols=cols,
                seed=submission.seed,
                adapt=submission.adapt,
                chaos_seed=getattr(chaos, "seed", None),
            ))

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def trace(self, name="recorded"):
        """Snapshot the recording as an :class:`ElasticTrace`."""
        with self._lock:
            return ElasticTrace(name=name, entries=list(self._entries))
