"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch a single base class.  The hierarchy mirrors the pipeline stages:
parsing, validation, compilation, execution, and resource optimization.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DMLSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed DML input.

    Carries the 1-based source ``line`` and ``column`` of the offending
    token when available.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" (line {line}"
            location += f", col {column})" if column is not None else ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class ValidationError(ReproError):
    """Raised during semantic validation of a parsed DML program."""


class CompilerError(ReproError):
    """Raised when HOP/LOP construction or plan generation fails."""


class ExecutionError(ReproError):
    """Raised by the runtime interpreter when an instruction fails."""


class OptimizationError(ReproError):
    """Raised by the resource optimizer (e.g., infeasible constraints)."""


class ClusterError(ReproError):
    """Raised by the simulated cluster (e.g., container request exceeds
    the maximum allocation constraint)."""
