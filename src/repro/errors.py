"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch a single base class.  The hierarchy mirrors the pipeline stages:
parsing, validation, compilation, execution, and resource optimization.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DMLSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed DML input.

    Carries the 1-based source ``line`` and ``column`` of the offending
    token when available.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" (line {line}"
            location += f", col {column})" if column is not None else ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class ValidationError(ReproError):
    """Raised during semantic validation of a parsed DML program."""


class CompilerError(ReproError):
    """Raised when HOP/LOP construction or plan generation fails."""


class ExecutionError(ReproError):
    """Raised by the runtime interpreter when an instruction fails."""


class OptimizationError(ReproError):
    """Raised by the resource optimizer (e.g., infeasible constraints)."""


class ClusterError(ReproError):
    """Raised by the simulated cluster (e.g., container request exceeds
    the maximum allocation constraint)."""


class TransientIOError(ExecutionError):
    """A flaky/slow HDFS read stalled for ``delay_s`` and then failed.

    Safe to retry: the simulated file is intact, only this read attempt
    was lost.  Raised by :meth:`repro.runtime.hdfs.SimulatedHDFS.read_matrix`
    under fault injection and caught by the interpreter's retry loop."""

    def __init__(self, path, delay_s=0.0):
        super().__init__(
            f"transient HDFS read failure on {path!r} "
            f"after {delay_s:.1f}s stall"
        )
        self.path = path
        self.delay_s = delay_s


class RetryExhaustedError(ExecutionError):
    """Recovery gave up: the per-site retry budget is spent.

    Carries the injection ``site`` and the number of ``attempts`` made
    before surfacing, so chaos tests can assert the budget was honored."""

    def __init__(self, message, site=None, attempts=0):
        super().__init__(message)
        self.site = site
        self.attempts = attempts


class AllocationDeniedError(ClusterError):
    """The Resource Manager denied a container allocation and no smaller
    feasible configuration exists (or retries were exhausted)."""
