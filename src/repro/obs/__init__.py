"""Observability: tracing + metrics for the whole stack (``repro.obs``).

The paper's central dynamic is the divergence between the optimizer's
*estimates* and the runtime's *actuals* — unknown sizes, buffer-pool
evictions, migration triggers.  This subsystem makes that divergence
visible: a :class:`Tracer` threaded through optimizer, compiler,
runtime, and cluster collects a span tree (where wall/simulated time
went), named counters (what fired how often), and ring-buffered
structured events (individual decisions), all exportable as JSON and
renderable as text via ``python -m repro trace``.

Counter namespace (the load-bearing ones):

========================  ====================================================
``cost.invocations``      cost-model calls (Table 3's "# Cost.")
``compile.block_compilations``  what-if block plan generations ("# Comp.")
``optimizer.grid_points`` CP grid points enumerated
``optimizer.pruned_*``    blocks pruned as small / unknown (Section 3.4)
``rewrite.*``             compiler rewrite hits per rewrite family
``recompile.dynamic``     runtime plan regenerations (AM-startup recompile
                          under the final configuration + in-loop dynamic
                          recompilation of unknown-size blocks)
``bufferpool.*``          hits / misses / evictions / writebacks / restores
``hdfs.bytes_read.*``     HDFS bytes read per file format
``runtime.*``             CP instructions, MR jobs, per-opcode simulated time
``mr.phase.*``            MR job phase seconds (map read, shuffle, ...)
``adaptation.*``          re-optimizations and CP migrations (Section 4)
``yarn.*``                container allocations / releases
========================  ====================================================

Tracing is *off* by default: the active tracer is :data:`NULL_TRACER`,
whose methods are no-ops.  ``ElasticMLSession(trace=True)`` installs a
real tracer for the duration of each ``run()`` and exposes it as
``RunOutcome.trace``.
"""

from repro.obs.tracer import (
    DEFAULT_EVENT_CAPACITY,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    merge_gauge_values,
    set_tracer,
    use_tracer,
)
from repro.obs.render import (
    render_counters,
    render_events,
    render_spans,
    render_trace,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "get_tracer",
    "merge_gauge_values",
    "set_tracer",
    "use_tracer",
    "render_trace",
    "render_spans",
    "render_counters",
    "render_events",
    "DEFAULT_EVENT_CAPACITY",
]
