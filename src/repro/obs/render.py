"""Text rendering of a trace: span tree, counters table, recent events.

Repeated sibling spans (loop iterations re-executing the same block)
are aggregated into one line with a multiplicity marker; numeric
attributes are summed across the aggregated instances so e.g. a block's
total simulated seconds survive the aggregation.
"""

from __future__ import annotations


def _fmt_value(value):
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def _fmt_attrs(attrs):
    if not attrs:
        return ""
    parts = [f"{k}={_fmt_value(v)}" for k, v in sorted(attrs.items())]
    return "  [" + " ".join(parts) + "]"


class _Aggregate:
    __slots__ = ("name", "count", "wall", "attrs", "children")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.wall = 0.0
        self.attrs = {}
        self.children = []


def _aggregate(spans):
    """Group same-named siblings, summing durations and numeric attrs."""
    groups = {}
    order = []
    for span in spans:
        agg = groups.get(span.name)
        if agg is None:
            agg = groups[span.name] = _Aggregate(span.name)
            order.append(span.name)
        agg.count += 1
        if span.duration is not None:
            agg.wall += span.duration
        for key, value in span.attrs.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                agg.attrs[key] = agg.attrs.get(key, 0) + value
            else:
                agg.attrs[key] = value
        agg.children.extend(span.children)
    return [groups[name] for name in order]


def _render_tree(spans, lines, prefix=""):
    aggregates = _aggregate(spans)
    for idx, agg in enumerate(aggregates):
        last = idx == len(aggregates) - 1
        branch = "└─ " if last else "├─ "
        mult = f" ×{agg.count}" if agg.count > 1 else ""
        lines.append(
            f"{prefix}{branch}{agg.name}{mult}  "
            f"wall {agg.wall * 1000:.1f}ms{_fmt_attrs(agg.attrs)}"
        )
        child_prefix = prefix + ("   " if last else "│  ")
        _render_tree(agg.children, lines, child_prefix)


def render_spans(roots):
    lines = []
    _render_tree(roots, lines)
    return "\n".join(lines)


def render_counters(counters):
    if not counters:
        return "(no counters)"
    width = max(len(name) for name in counters)
    lines = []
    for name in sorted(counters):
        lines.append(f"  {name:<{width}}  {_fmt_value(counters[name])}")
    return "\n".join(lines)


def render_events(events, limit=12):
    events = list(events)
    lines = []
    if len(events) > limit:
        lines.append(f"  ... {len(events) - limit} earlier events elided")
        events = events[-limit:]
    for record in events:
        fields = {k: v for k, v in record.items() if k != "event"}
        lines.append(f"  {record.get('event', '?')}{_fmt_attrs(fields)}")
    return "\n".join(lines)


def render_trace(tracer):
    """Full textual report of one tracer's contents."""
    sections = []
    if tracer.roots:
        sections.append("spans:\n" + render_spans(tracer.roots))
    else:
        sections.append("spans: (none)")
    sections.append("counters:\n" + render_counters(tracer.counters))
    if tracer.gauges:
        sections.append("gauges:\n" + render_counters(tracer.gauges))
    if tracer.events:
        sections.append(
            f"events ({len(tracer.events)}):\n" + render_events(tracer.events)
        )
    return "\n\n".join(sections)
