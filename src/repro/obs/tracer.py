"""Tracing and metrics primitives.

A :class:`Tracer` collects three kinds of telemetry during a session run:

* a **span tree** — nested wall-clock timers opened with
  :meth:`Tracer.span`, each carrying free-form attributes (e.g. the
  simulated seconds a block accounted for);
* **counters and gauges** — named scalars; counters accumulate
  (``incr``), gauges overwrite (``gauge``);
* **structured events** — a bounded ring buffer of dicts (``event``),
  used for per-decision records such as optimizer grid points or
  migration decisions, where unbounded growth would be a liability.

The module keeps one *active* tracer in a module-global slot.  The
default is :data:`NULL_TRACER`, a null object whose methods are no-ops,
so instrumented call sites cost one global read plus an empty method
call when tracing is off.  :func:`use_tracer` installs a real tracer for
the duration of a ``with`` block (this is how
``ElasticMLSession(trace=True)`` scopes collection to one run).

Everything here is dependency-free (stdlib only) and importable from
any layer of the stack without cycles.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager

#: default capacity of the structured-event ring buffer
DEFAULT_EVENT_CAPACITY = 4096


class Span:
    """One node of the span tree: a named, attributed wall-clock timer."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name, attrs=None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start = None
        self.end = None
        self.children = []

    @property
    def duration(self):
        """Wall-clock seconds, or None while the span is still open."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def set(self, key, value):
        """Attach/overwrite one attribute."""
        self.attrs[key] = value

    def to_dict(self):
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data):
        span = cls(data["name"], data.get("attrs"))
        span.start = data.get("start")
        span.end = data.get("end")
        span.children = [
            cls.from_dict(child) for child in data.get("children", [])
        ]
        return span

    def __repr__(self):
        dur = self.duration
        timing = f"{dur:.4f}s" if dur is not None else "open"
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class _NullSpan:
    """Shared do-nothing span; its own (reentrant) context manager."""

    __slots__ = ()

    def set(self, key, value):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def _is_nan(value):
    return isinstance(value, float) and value != value


def merge_gauge_values(current, incoming):
    """Deterministic, order-independent merge of two gauge values.

    Comparable values keep the larger (for the usual numeric gauges this
    is max, a commutative/associative fold); incomparable types fall
    back to a total order over ``(type name, repr)``.  NaN always loses,
    so it cannot poison the comparison asymmetrically.
    """
    if _is_nan(incoming):
        return current
    if _is_nan(current):
        return incoming
    try:
        return current if current >= incoming else incoming
    except TypeError:
        pass

    def order(value):
        return (type(value).__name__, repr(value))

    return current if order(current) >= order(incoming) else incoming


class Tracer:
    """Collects spans, counters, gauges, and events for one run."""

    #: instrumentation sites may consult this to skip building labels
    enabled = True

    def __init__(self, event_capacity=DEFAULT_EVENT_CAPACITY,
                 clock=time.perf_counter):
        self.roots = []
        self.counters = {}
        self.gauges = {}
        self.events = deque(maxlen=event_capacity)
        self._stack = []
        self._clock = clock

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name, **attrs):
        """Open a nested span for the duration of the ``with`` block."""
        span = Span(name, attrs)
        span.start = self._clock()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self._clock()
            self._stack.pop()

    @property
    def current_span(self):
        return self._stack[-1] if self._stack else None

    # -- metrics -------------------------------------------------------------

    def incr(self, name, value=1):
        """Add ``value`` to the named counter (creates it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name, value):
        """Set the named gauge to ``value`` (last write wins)."""
        self.gauges[name] = value

    def event(self, name, **fields):
        """Append a structured event to the ring buffer."""
        record = {"event": name}
        record.update(fields)
        self.events.append(record)

    def counter(self, name, default=0):
        """Read one counter (0 when it never fired)."""
        return self.counters.get(name, default)

    def absorb(self, other, spans=True):
        """Fold another tracer's telemetry into this one.

        Counters accumulate, gauges merge deterministically (max for
        numeric values — see :func:`merge_gauge_values` — so the result
        is independent of absorb order), events append, and (with
        ``spans``) the other tracer's root spans become roots here.  The
        serving layer runs every submission under its own tracer —
        concurrent tenants would otherwise interleave one span stack —
        and absorbs each finished submission into the server-level
        tracer; tenant completion order varies across runs, which is why
        gauges must not merge last-write-wins."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            if name in self.gauges:
                self.gauges[name] = merge_gauge_values(
                    self.gauges[name], value
                )
            else:
                self.gauges[name] = value
        self.events.extend(other.events)
        if spans:
            self.roots.extend(other.roots)
        return self

    # -- export --------------------------------------------------------------

    def to_dict(self):
        return {
            "spans": [span.to_dict() for span in self.roots],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "events": list(self.events),
        }

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_dict(cls, data):
        tracer = cls()
        tracer.roots = [Span.from_dict(s) for s in data.get("spans", [])]
        tracer.counters = dict(data.get("counters", {}))
        tracer.gauges = dict(data.get("gauges", {}))
        tracer.events.extend(data.get("events", []))
        return tracer

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def render(self):
        """Human-readable span tree + counters table."""
        from repro.obs.render import render_trace

        return render_trace(self)


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    A single shared instance (:data:`NULL_TRACER`) is the default active
    tracer, so instrumentation adds near-zero overhead when tracing is
    off.
    """

    enabled = False

    def __init__(self):
        super().__init__(event_capacity=0)

    def span(self, name, **attrs):
        return _NULL_SPAN

    def incr(self, name, value=1):
        pass

    def gauge(self, name, value):
        pass

    def event(self, name, **fields):
        pass


NULL_TRACER = NullTracer()

#: process-wide default, overridable per thread (concurrent serving
#: submissions each activate their own tracer without clobbering each
#: other's span stacks or counters)
_default = NULL_TRACER
_active = threading.local()


def get_tracer():
    """The active tracer: this thread's override if one is installed
    (:func:`use_tracer`), else the process-wide default
    (:data:`NULL_TRACER` unless :func:`set_tracer` changed it)."""
    tracer = getattr(_active, "tracer", None)
    return tracer if tracer is not None else _default


def set_tracer(tracer):
    """Install ``tracer`` as the process-wide default; ``None`` restores
    the null tracer.  Threads with a :func:`use_tracer` override are
    unaffected."""
    global _default
    _default = tracer if tracer is not None else NULL_TRACER
    return _default


@contextmanager
def use_tracer(tracer):
    """Activate ``tracer`` on *this thread* for the ``with`` block.

    Thread-local by design: each serving worker activates its
    submission's tracer without disturbing other threads.  Helper
    threads spawned inside the block (e.g. the thread-backend optimizer
    workers) must re-enter ``use_tracer`` themselves — thread locals do
    not inherit."""
    previous = getattr(_active, "tracer", None)
    _active.tracer = tracer if tracer is not None else NULL_TRACER
    try:
        yield get_tracer()
    finally:
        _active.tracer = previous
