"""The resource optimizer (paper Sections 3 and 4).

* :mod:`repro.optimizer.grids` — equi-spaced, exponentially-spaced,
  memory-based, and hybrid grid point generators (Section 3.3.2);
* :mod:`repro.optimizer.pruning` — pruning of blocks of small
  operations and blocks of unknowns (Section 3.4);
* :mod:`repro.optimizer.enumerate` — the overall grid enumeration
  algorithm (Algorithm 1) solving the ML Program Resource Allocation
  Problem (Definition 1);
* :mod:`repro.optimizer.parallel` — the task-parallel optimizer
  (Appendix C);
* :mod:`repro.optimizer.adaptation` — runtime resource adaptation and
  CP migration (Section 4).
"""

from repro.optimizer.enumerate import (
    OptimizerOptions,
    OptimizerResult,
    OptimizerStats,
    ResourceOptimizer,
)
from repro.optimizer.grids import (
    collect_memory_estimates_mb,
    equi_grid,
    exp_grid,
    hybrid_grid,
    memory_grid,
)
from repro.optimizer.adaptation import ResourceAdapter
from repro.optimizer.parallel import (
    DEFAULT_AUTO_SERIAL_POINTS,
    ParallelOptimizerResult,
    ParallelResourceOptimizer,
)
from repro.optimizer.utilization import UtilizationAwareAdapter

__all__ = [
    "DEFAULT_AUTO_SERIAL_POINTS",
    "ResourceOptimizer",
    "OptimizerOptions",
    "OptimizerResult",
    "OptimizerStats",
    "ParallelOptimizerResult",
    "ParallelResourceOptimizer",
    "ResourceAdapter",
    "UtilizationAwareAdapter",
    "equi_grid",
    "exp_grid",
    "memory_grid",
    "hybrid_grid",
    "collect_memory_estimates_mb",
]
