"""Runtime resource adaptation (paper Section 4).

Hooked into dynamic recompilation: when a recompiled block still emits
MR jobs, the adapter

1. determines the re-optimization scope — from the current position,
   expanded to the outermost enclosing loop (or top level) of the
   current call context, through the end of that context (Section 4.2);
2. refreshes the scope's sizes with actual runtime characteristics and
   re-runs the core resource optimizer twice: globally (R*) and with
   the CP dimension pinned to the current configuration (R*|rc);
3. migrates the CP application master iff the cost benefit
   |C(P',R*) - C(P',R*|rc)| amortizes the migration cost (live-variable
   export IO + container allocation/AM startup latency); otherwise only
   the MR configurations are updated (Section 4.2, "Adaptation
   Decision").

Migration is modelled after the paper's AM process chaining: dirty live
variables are written to HDFS, the buffer pool restarts empty in the
new container (subsequent accesses re-read — the "reading the input
data again" overhead the paper observes), and execution resumes.
"""

from __future__ import annotations

from repro.chaos import FaultKind
from repro.cluster.resources import ResourceConfig
from repro.compiler.memory_estimates import estimate_dag_memory
from repro.compiler.pipeline import recompile_block_plan
from repro.compiler.recompile import make_env_from_states
from repro.compiler import statement_blocks as SB
from repro.compiler.size_propagation import Propagator
from repro.cost import io_model
from repro.obs import get_tracer


class ResourceAdapter:
    """Implements the interpreter's runtime-adaptation hook."""

    def __init__(self, optimizer, max_migrations=5):
        self.optimizer = optimizer
        self.max_migrations = max_migrations

    def _select_optimizer(self, interp):
        """Hook: pick the optimizer for this re-optimization (the
        utilization-aware subclass substitutes a degraded-cluster view
        when background load is high)."""
        return self.optimizer

    def should_trigger(self, interp, block):
        """Extended trigger hook (paper Section 6): the base adapter
        only reacts to dynamic recompilation; subclasses may trigger on
        other runtime conditions (e.g. cluster utilization shifts)."""
        return False

    # -- hook ----------------------------------------------------------------

    def on_recompile(self, interp, block, frame):
        tracer = get_tracer()
        with tracer.span("adaptation.reoptimize", block=block.block_id):
            self._reoptimize(interp, block, frame, tracer)

    def _reoptimize(self, interp, block, frame, tracer):
        compiled = interp.compiled
        scope = self._reopt_scope(compiled, block)
        if not scope:
            return
        tracer.incr("adaptation.reoptimizations")

        # refresh scope sizes with actual runtime characteristics
        env = make_env_from_states(interp._var_states(frame))
        propagator = Propagator(compiled.block_program, compiled.input_meta)
        for scope_block in scope:
            propagator.propagate_block(scope_block, env)
        cache = getattr(compiled, "plan_cache", None)
        for scope_block in _generic_blocks(scope):
            # memory re-estimation with actual sizes; blocks whose sizes
            # are now fully known drop their provisional flag so the
            # what-if cost model includes them in the re-optimization
            scope_block.requires_recompile = estimate_dag_memory(
                scope_block.hop_roots
            )
            if cache is not None:
                # refreshed estimates move the plan-cache thresholds
                cache.invalidate_block(scope_block.block_id)

        current_cp = interp.resource.cp_heap_mb
        optimizer = self._select_optimizer(interp)
        global_result = optimizer.optimize(compiled, scope_blocks=scope)
        local_result = optimizer.optimize(
            compiled, scope_blocks=scope, fixed_cp_mb=current_cp
        )
        if global_result.resource is None or local_result.resource is None:
            return

        benefit = local_result.cost - global_result.cost  # = -delta C >= 0
        migration_cost = self._migration_cost(interp, frame)
        should_migrate = (
            benefit > migration_cost
            and global_result.resource.cp_heap_mb != current_cp
            and interp.result.migrations < self.max_migrations
        )
        if tracer.enabled:
            # the paper's adaptation decision: migrate iff |ΔC| > C_M
            tracer.event(
                "adaptation.decision",
                block=block.block_id,
                benefit_s=benefit,
                migration_cost_s=migration_cost,
                migrate=should_migrate,
                cp_current_mb=current_cp,
                cp_target_mb=global_result.resource.cp_heap_mb,
            )

        migrated = should_migrate and self._migrate(
            interp, frame, migration_cost
        )
        if migrated:
            new_resource = ResourceConfig(
                cp_heap_mb=global_result.resource.cp_heap_mb,
                mr_heap_mb=global_result.resource.mr_heap_mb,
                mr_heap_per_block=dict(
                    global_result.resource.mr_heap_per_block
                ),
            )
        else:
            # stay in the current container (no migration wanted, or the
            # migration attempt failed and rolled back); adopt the
            # locally optimal MR configurations (stateless jobs adapt
            # for free)
            new_resource = ResourceConfig(
                cp_heap_mb=current_cp,
                mr_heap_mb=local_result.resource.mr_heap_mb,
                mr_heap_per_block=dict(
                    local_result.resource.mr_heap_per_block
                ),
            )

        interp.resource = new_resource
        interp.pool.set_capacity(new_resource.cp_budget_bytes)
        # regenerate plans program-wide under the new configuration (the
        # original script recompiles to the same plan the optimizer saw)
        for any_block in compiled.last_level_blocks():
            recompile_block_plan(compiled, any_block, new_resource)
        compiled.resource = new_resource

    # -- scope ----------------------------------------------------------

    def _reopt_scope(self, compiled, block):
        """Expand from the current block to the outermost enclosing loop
        or top level, through the end of the current call context."""
        for blocks in self._contexts(compiled):
            for idx, top in enumerate(blocks):
                if any(b is block for b in top.all_blocks()):
                    return blocks[idx:]
        return []

    def _contexts(self, compiled):
        yield compiled.blocks
        for func in compiled.functions.values():
            yield func.blocks

    # -- migration ----------------------------------------------------------

    def _migration_cost(self, interp, frame):
        """Live-variable export IO plus container allocation latency."""
        from repro.runtime.matrix import MatrixObject

        io_cost = 0.0
        for value in frame.values():
            if isinstance(value, MatrixObject) and value.dirty:
                io_cost += io_model.hdfs_write_time(value.mc, interp.params)
        latency = (
            interp.params.container_alloc_latency
            + interp.params.am_startup_latency
        )
        return io_cost + latency

    def _migrate(self, interp, frame, migration_cost):
        """Write dirty state, move to the new container, restart the
        buffer pool (matrices are re-read on next access).

        Returns True on success.  Under fault injection the new AM
        container may never come up (MIGRATION_FAILURE): the migration
        rolls back — execution keeps running in the old container with
        all live variables and the buffer pool untouched — and only the
        failed attempt's cost (the wasted export IO plus allocation
        latency) is charged.
        """
        from repro.runtime.matrix import MatrixObject

        injector = getattr(interp, "injector", None)
        if injector is not None:
            fault = injector.fire(
                FaultKind.MIGRATION_FAILURE, site="am_migration"
            )
            if fault is not None:
                interp.charge(migration_cost, "migration_failed")
                injector.record_wasted(migration_cost)
                tracer = get_tracer()
                tracer.incr("adaptation.migration_failures")
                tracer.event(
                    "adaptation.migration_failed",
                    cost_s=migration_cost,
                    migrations_so_far=interp.result.migrations,
                )
                return False

        interp.charge(migration_cost, "migration")
        for name, value in frame.items():
            if not isinstance(value, MatrixObject):
                continue
            if value.dirty:
                path = interp._scratch_path(f"migrate_{name}")
                interp.hdfs.write_matrix(path, value)
                value.hdfs_path = path
                value.dirty = False
            value.in_memory = False
            value.local_copy = False  # the new container is a new node
        interp.pool.release_all()
        interp.result.migrations += 1
        get_tracer().incr("adaptation.migrations")
        return True


def _generic_blocks(blocks):
    for block in blocks:
        for inner in block.all_blocks():
            if isinstance(inner, SB.GenericBlock):
                yield inner
