"""The core resource optimizer: grid enumeration (Algorithm 1).

Solves the ML Program Resource Allocation Problem (Definition 1): find
the minimal resource configuration with minimal estimated cost, by

1. materializing ascending grid points per dimension (Section 3.3.2);
2. for each CP memory r_c: baseline-compiling the program at
   (r_c, min_cc), pruning blocks whose costs are independent of MR
   resources (Section 3.4), then enumerating the MR dimension per
   remaining block with memoization of the best (r_i, cost) — the
   semi-independent 2-dimensional subproblems of Section 3.2;
3. recompiling the whole program under the memoized vector and costing
   it end-to-end to account for the control structure;
4. returning the cheapest (ties broken towards minimal resources).

Costing always happens on generated runtime plans, which automatically
reflects every compilation phase (rewrites, operator selection,
piggybacking) — the robustness argument of Section 2.4.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceConfig
from repro.compiler.pipeline import recompile_block_plan
from repro.compiler.plan_cache import PlanCache
from repro.cost import CostModel
from repro.errors import OptimizationError
from repro.obs import get_tracer
from repro.optimizer.grids import collect_memory_estimates_mb, generate_grid
from repro.optimizer.pruning import prune_program_blocks

#: relative tolerance for "equal" program costs: two grid points whose
#: estimates differ by float noise are a tie, and Definition 1 then
#: prefers the minimal resource configuration
COST_TIE_RTOL = 1e-9


def costs_tie(a, b, rtol=COST_TIE_RTOL):
    """Near-equality for estimated costs (exact == never fires on the
    accumulated float sums two recompilations produce)."""
    if a == b:
        return True
    if not (math.isfinite(a) and math.isfinite(b)):
        return False
    return abs(a - b) <= rtol * max(abs(a), abs(b))


def update_best(best_resource, best_cost, chosen, cost):
    """One step of Definition 1's selection rule: cheapest configuration,
    near-ties broken towards minimal resources.  Returns the updated
    ``(best_resource, best_cost)``; shared by the serial and the
    task-parallel optimizer so both select identically."""
    if best_resource is None:
        return chosen, cost
    if costs_tie(cost, best_cost):
        if chosen.footprint() < best_resource.footprint():
            best_resource = chosen
        return best_resource, min(best_cost, cost)
    if cost < best_cost:
        return chosen, cost
    return best_resource, best_cost


def enumerate_block_mr(compiled, block, rc, min_mb, srm, cost_model,
                       baseline_cost, cache=None, deadline=None, stats=None,
                       vectorize=False):
    """Enumerate the MR grid for one block at fixed CP memory ``rc``.

    Implements the inner loop of Algorithm 1's semi-independent
    subproblems; shared by the serial and the task-parallel optimizer.
    Returns ``((best_ri, best_cost), exhausted)`` where ``exhausted``
    reports hitting ``deadline`` mid-enumeration.

    With ``vectorize`` (and a plan cache, no deadline), the whole MR
    grid is costed in one batched pass per plan-cache bucket via
    :meth:`CostModel.estimate_grid`; the scalar loop below remains the
    fallback for structurally resource-dependent blocks and is the
    bitwise-parity reference (see ``tests/optimizer/test_vector_costing``).

    With a plan cache, points whose budget stays in an already-visited
    ``(mr_bucket, thrash)`` class with no more task parallelism than a
    visited point are skipped outright: the plan is identical (same
    bucket) and its MR cost is weakly increasing as parallelism drops,
    so the skipped point can never *strictly* beat the memoized best —
    and the strict ``<`` keeps the earlier, smaller r_i on exact ties,
    matching the uncached enumeration.  (The vectorized path costs the
    skipped points too — they lose the same strict-``<`` selection, so
    both paths choose identically.)
    """
    if vectorize and cache is not None and deadline is None:
        best = _enumerate_block_mr_grid(
            compiled, block, rc, min_mb, srm, cost_model,
            baseline_cost, cache, stats,
        )
        if best is not None:
            return best, False
    best = (min_mb, baseline_cost)
    use_memo = cache is not None
    #: (mr_bucket, thrash) -> max map-task parallelism already costed
    seen = {}
    if use_memo:
        baseline = ResourceConfig(cp_heap_mb=rc, mr_heap_mb=min_mb)
        # the trailing spill element is always None for the plain
        # configs the optimizer enumerates (grants never reach here)
        dop, thrash, _ = cost_model.mr_cost_signature(
            block.block_id, baseline
        )
        seen[(cache.mr_bucket(block, baseline), thrash)] = dop
    for ri in srm:
        if ri == min_mb:
            continue
        if deadline is not None and time.perf_counter() > deadline:
            return best, True
        candidate = ResourceConfig(
            cp_heap_mb=rc,
            mr_heap_mb=min_mb,
            mr_heap_per_block={block.block_id: ri},
        )
        if use_memo:
            bucket = cache.mr_bucket(block, candidate)
            dop, thrash, _ = cost_model.mr_cost_signature(
                block.block_id, candidate
            )
            prev_dop = seen.get((bucket, thrash))
            if prev_dop is not None and dop <= prev_dop:
                if stats is not None:
                    stats.mr_points_skipped += 1
                continue
            seen[(bucket, thrash)] = dop
        recompile_block_plan(compiled, block, candidate, cache=cache)
        cost = cost_model.estimate_block(
            compiled, block, candidate, use_memo=use_memo
        )
        if cost < best[1]:
            best = (ri, cost)
    return best, False


def _enumerate_block_mr_grid(compiled, block, rc, min_mb, srm, cost_model,
                             baseline_cost, cache, stats):
    """Vectorized MR enumeration for one block: one recompilation and
    one batched costing call per plan-cache bucket.

    Returns ``(best_ri, best_cost)``, or ``None`` when any batch is
    structurally resource-dependent (function calls, grants, component
    accounting, numpy unavailable) and the caller must fall back to the
    scalar loop.  Selection replays the scalar rule — strict ``<`` in
    ``srm`` order against the baseline — over the batched costs, which
    :meth:`CostModel.estimate_grid` guarantees are bit-identical to
    per-point :meth:`CostModel.estimate_block`.
    """
    block_id = block.block_id
    groups = {}  # mr_bucket -> [(ri, candidate), ...]; insertion-ordered
    for ri in srm:
        if ri == min_mb:
            continue
        candidate = ResourceConfig(
            cp_heap_mb=rc,
            mr_heap_mb=min_mb,
            mr_heap_per_block={block_id: ri},
        )
        groups.setdefault(cache.mr_bucket(block, candidate), []).append(
            (ri, candidate)
        )
    costs = {}
    for group in groups.values():
        # same bucket -> identical recompiled plan, so one compilation
        # covers the whole group
        recompile_block_plan(compiled, block, group[0][1], cache=cache)
        batch = cost_model.estimate_grid(
            compiled, block, [cand for _, cand in group], use_memo=True
        )
        if batch is None:
            return None
        for (ri, _), cost in zip(group, batch):
            costs[ri] = cost
    if stats is not None:
        stats.mr_points_batched += len(costs)
    best = (min_mb, baseline_cost)
    for ri in srm:
        if ri == min_mb:
            continue
        if costs[ri] < best[1]:
            best = (ri, costs[ri])
    return best


@dataclass(frozen=True)
class OptimizerOptions:
    """Configuration of one :class:`ResourceOptimizer`.

    Groups what used to be loose keyword arguments so the session API,
    the CLI, and the adaptation path all speak the same vocabulary
    (Section 5.1 defaults: hybrid grids with m = 15).
    """

    grid_cp: str = "hybrid"
    grid_mr: str = "hybrid"
    m: int = 15
    w: float = 2.0
    #: optional wall-clock budget in seconds for the enumeration
    time_budget: float | None = None
    #: ablation switch: disable Section 3.4 block pruning
    enable_pruning: bool = True
    #: ablation switch: disable the memoizing plan/cost cache
    enable_plan_cache: bool = True
    #: run grid enumeration on parallel workers (Appendix C); when set,
    #: :meth:`ElasticMLSession.make_optimizer` builds a
    #: :class:`~repro.optimizer.parallel.ParallelResourceOptimizer`
    parallel: bool = False
    #: worker count of the parallel enumeration
    num_workers: int = 4
    #: parallel enumeration backend: ``"process"`` (real wall-clock
    #: parallelism, the default) or ``"thread"`` (GIL-bound; kept for
    #: the paper's Appendix C task model and the makespan benchmark)
    backend: str = "process"
    #: auto backend policy: when the enumeration work (CP points x MR
    #: points x blocks) is below this threshold, the process backend
    #: falls back to serial enumeration — pool startup and snapshot
    #: pickling dominate tiny grids.  0 disables the fallback (always
    #: honor ``backend``); the session default enables it
    auto_serial_points: int = 0
    #: ablation switch: batch MR-grid costing with numpy
    #: (:meth:`CostModel.estimate_grid`); chosen configurations are
    #: byte-identical either way (parity-tested), the switch exists for
    #: ablation benchmarks and as an escape hatch
    enable_vector_costing: bool = True
    #: r_c points per parallel-enumeration chunk; ``None`` sizes chunks
    #: adaptively to ``grid_work / (workers * target_chunks_per_worker)``
    chunk_points: int | None = None
    #: worker snapshot transport for the process backend: ``"auto"``
    #: (fork inheritance when the platform supports it), ``"fork"``, or
    #: ``"pickle"``
    snapshot: str = "auto"

    def decision_signature(self):
        """The subset of fields the optimization *decision* depends on.

        Parallelism knobs (including the auto-serial fallback, which
        only swaps the backend, chunk sizing, and the snapshot
        transport) are excluded: every backend chooses the identical
        configuration (the parity regression test enforces this), so
        the cross-run result cache keys on this signature and
        serial/thread/process runs share entries.
        ``enable_vector_costing`` is *included* even though the two
        paths are parity-tested bit-identical: the ablation switch must
        observably run the path it names, not replay a cached result
        computed by the other one.
        """
        return (self.grid_cp, self.grid_mr, self.m, self.w,
                self.time_budget, self.enable_pruning,
                self.enable_plan_cache, self.enable_vector_costing)


@dataclass
class OptimizerStats:
    """Counters reported in Table 3."""

    block_compilations: int = 0
    cost_invocations: int = 0
    optimization_time: float = 0.0
    cp_points: int = 0
    mr_points: int = 0
    total_blocks: int = 0
    pruned_small: int = 0
    pruned_unknown: int = 0
    remaining_blocks: int = 0
    #: True when the time budget expired before the grid was exhausted
    budget_exhausted: bool = False
    #: plan-cache bucket hits / misses during this optimization
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: block-cost estimates answered from the cost memo
    cost_memo_hits: int = 0
    #: MR grid points skipped because a same-bucket point with at least
    #: as much task parallelism was already costed (dominance)
    mr_points_skipped: int = 0
    #: MR grid points costed through the vectorized batch path
    mr_points_batched: int = 0

    @property
    def remaining_fraction(self):
        if self.total_blocks == 0:
            return 0.0
        return self.remaining_blocks / self.total_blocks


@dataclass
class OptimizerResult:
    """Outcome of one resource optimization."""

    resource: ResourceConfig = None
    cost: float = float("inf")
    stats: OptimizerStats = field(default_factory=OptimizerStats)
    #: (cp_heap_mb, program_cost) samples for analysis/plots
    cp_profile: list = field(default_factory=list)
    #: True when this result was answered by the session's cross-run
    #: optimizer result cache (no enumeration ran)
    from_cache: bool = False


class ResourceOptimizer:
    """Cost-based optimizer for CP/MR memory configurations."""

    def __init__(self, cluster, params=None, grid_cp="hybrid",
                 grid_mr="hybrid", m=15, w=2.0, time_budget=None,
                 cost_model=None, enable_pruning=True,
                 enable_plan_cache=True, enable_vector_costing=True,
                 options=None):
        if options is not None:
            grid_cp, grid_mr = options.grid_cp, options.grid_mr
            m, w = options.m, options.w
            time_budget = options.time_budget
            enable_pruning = options.enable_pruning
            enable_plan_cache = options.enable_plan_cache
            enable_vector_costing = options.enable_vector_costing
        self.cluster = cluster
        self.grid_cp = grid_cp
        self.grid_mr = grid_mr
        self.m = m
        self.w = w
        #: optional wall-clock budget in seconds for the enumeration
        self.time_budget = time_budget
        self.cost_model = cost_model or CostModel(cluster, params)
        #: ablation switch: disable Section 3.4 block pruning
        self.enable_pruning = enable_pruning
        #: ablation switch: disable the memoizing plan/cost cache
        self.enable_plan_cache = enable_plan_cache
        #: ablation switch: disable vectorized MR-grid batch costing
        self.enable_vector_costing = enable_vector_costing

    @property
    def options(self):
        """This optimizer's configuration as an :class:`OptimizerOptions`."""
        return OptimizerOptions(
            grid_cp=self.grid_cp,
            grid_mr=self.grid_mr,
            m=self.m,
            w=self.w,
            time_budget=self.time_budget,
            enable_pruning=self.enable_pruning,
            enable_plan_cache=self.enable_plan_cache,
            enable_vector_costing=self.enable_vector_costing,
        )

    # -- public API ----------------------------------------------------------

    def optimize(self, compiled, scope_blocks=None, fixed_cp_mb=None):
        """Find a near-optimal resource configuration.

        ``scope_blocks`` restricts optimization to a block subsequence
        (used by runtime re-optimization); ``fixed_cp_mb`` pins the CP
        dimension (used for the locally-optimal configuration R*|rc).
        """
        tracer = get_tracer()
        with tracer.span(
            "optimizer.optimize",
            scope="program" if scope_blocks is None else "blocks",
        ) as span:
            result = self._optimize(compiled, scope_blocks, fixed_cp_mb,
                                    tracer)
            if tracer.enabled:
                span.set("cost_s", result.cost)
                span.set("resource", result.resource.describe()
                         if result.resource else None)
                tracer.incr("optimizer.runs")
                tracer.incr("optimizer.pruned_small",
                            result.stats.pruned_small)
                tracer.incr("optimizer.pruned_unknown",
                            result.stats.pruned_unknown)
            return result

    def _optimize(self, compiled, scope_blocks, fixed_cp_mb, tracer):
        start = time.perf_counter()
        compiled.stats.reset()
        cost_before = self.cost_model.invocations
        memo_hits_before = self.cost_model.memo_hits
        cache = None
        if self.enable_plan_cache:
            cache = PlanCache()
            compiled.plan_cache = cache
            self.cost_model.clear_memo()

        min_mb = self.cluster.min_heap_mb
        max_mb = self.cluster.max_heap_mb
        estimates = collect_memory_estimates_mb(compiled)
        if fixed_cp_mb is not None:
            src = [float(fixed_cp_mb)]
        else:
            src = generate_grid(
                self.grid_cp, min_mb, max_mb, estimates, self.m, self.w
            )
        srm = generate_grid(
            self.grid_mr, min_mb, max_mb, estimates, self.m, self.w
        )
        if not src or not srm:
            raise OptimizationError("empty resource grid")

        blocks = list(
            compiled.last_level_blocks()
            if scope_blocks is None
            else _last_level(scope_blocks)
        )
        cost_blocks = (
            None if scope_blocks is None else list(scope_blocks)
        )

        result = OptimizerResult()
        result.stats.cp_points = len(src)
        result.stats.mr_points = len(srm)
        result.stats.total_blocks = len(blocks)

        best_cost = float("inf")
        best_resource = None
        deadline = (
            start + self.time_budget if self.time_budget is not None else None
        )

        for rc in src:
            exhausted = False
            # baseline compilation at (rc, min_cc)
            baseline = ResourceConfig(cp_heap_mb=rc, mr_heap_mb=min_mb)
            for block in blocks:
                recompile_block_plan(compiled, block, baseline, cache=cache)
            if self.enable_pruning:
                remaining, pruned_small, pruned_unknown = (
                    prune_program_blocks(blocks)
                )
            else:
                remaining, pruned_small, pruned_unknown = (
                    list(blocks), [], []
                )
            if rc == src[0]:
                # report pruning at min_cc, where MR usage is maximal
                result.stats.pruned_small = len(pruned_small)
                result.stats.pruned_unknown = len(pruned_unknown)
                result.stats.remaining_blocks = len(remaining)

            # per-block enumeration of the MR dimension (memoized best)
            memo = {}
            for block in remaining:
                if deadline is not None and time.perf_counter() > deadline:
                    exhausted = True
                    break
                memo[block.block_id] = (
                    min_mb,
                    self.cost_model.estimate_block(
                        compiled, block, baseline,
                        use_memo=cache is not None,
                    ),
                )
            if not exhausted:
                for block in remaining:
                    memo[block.block_id], exhausted = enumerate_block_mr(
                        compiled, block, rc, min_mb, srm, self.cost_model,
                        memo[block.block_id][1], cache=cache,
                        deadline=deadline, stats=result.stats,
                        vectorize=self.enable_vector_costing,
                    )
                    if exhausted:
                        break

            # whole-program compilation under the memoized vector (on
            # budget exhaustion: under the partial memo, so the point
            # still contributes a valid configuration + profile sample)
            chosen = ResourceConfig(
                cp_heap_mb=rc,
                mr_heap_mb=min_mb,
                mr_heap_per_block={
                    block_id: ri for block_id, (ri, _) in memo.items()
                },
            )
            for block in blocks:
                recompile_block_plan(compiled, block, chosen, cache=cache)
            if cost_blocks is None:
                program_cost = self.cost_model.estimate_program(
                    compiled, chosen
                )
            else:
                program_cost = self.cost_model.estimate_blocks(
                    compiled, cost_blocks, chosen
                )
            result.cp_profile.append((rc, program_cost))
            if tracer.enabled:
                tracer.incr("optimizer.grid_points")
                tracer.event(
                    "optimizer.grid_point",
                    cp_mb=rc,
                    estimated_cost_s=program_cost,
                    mr_blocks=len(memo),
                )

            best_resource, best_cost = update_best(
                best_resource, best_cost, chosen, program_cost
            )

            if exhausted or (
                deadline is not None and time.perf_counter() > deadline
            ):
                result.stats.budget_exhausted = True
                break

        result.resource = best_resource
        result.cost = best_cost
        if best_resource is not None:
            # leave the program compiled under the *returned*
            # configuration, not whatever grid point ran last
            for block in blocks:
                recompile_block_plan(
                    compiled, block, best_resource, cache=cache
                )
            if scope_blocks is None:
                compiled.resource = best_resource
        result.stats.block_compilations = compiled.stats.block_compilations
        result.stats.cost_invocations = (
            self.cost_model.invocations - cost_before
        )
        result.stats.cost_memo_hits = (
            self.cost_model.memo_hits - memo_hits_before
        )
        if cache is not None:
            result.stats.plan_cache_hits = cache.hits
            result.stats.plan_cache_misses = cache.misses
        result.stats.optimization_time = time.perf_counter() - start
        return result


def _last_level(blocks):
    from repro.compiler import statement_blocks as SB

    for block in blocks:
        for inner in block.all_blocks():
            if isinstance(inner, SB.GenericBlock):
                yield inner
