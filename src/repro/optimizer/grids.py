"""Grid point generators (paper Section 3.3.2, Figure 5).

All generators emit ascending max-heap sizes in MB, bounded by the
cluster's min/max allocation constraints (expressed as heaps):

* **equi**: fixed-size gaps; ``m`` points when given, else gaps of the
  minimum allocation;
* **exp**: exponentially increasing gaps, ``g_i = w^(i-1) * min``
  (default w = 2) — logarithmically many points;
* **mem**: program-aware — whenever an operation memory estimate falls
  between two points of the base equi grid, both neighbours are
  enumerated; estimates outside the constraints clamp to the extremes;
* **hybrid** (default): union of mem and exp, combining directed and
  systematic search.
"""

from __future__ import annotations

import math

from repro.cluster.config import BUDGET_FRACTION
from repro.common import MB
from repro.compiler import hops as H
from repro.compiler import statement_blocks as SB


def equi_grid(min_mb, max_mb, m=15):
    """Equi-spaced grid with ``m`` points (Figure 5(a))."""
    if max_mb <= min_mb:
        return [float(min_mb)]
    if m is None or m <= 1:
        gap = float(min_mb)
        points = []
        value = float(min_mb)
        while value < max_mb:
            points.append(value)
            value += gap
        points.append(float(max_mb))
        return points
    gap = (max_mb - min_mb) / (m - 1)
    return [min_mb + i * gap for i in range(m)]


def exp_grid(min_mb, max_mb, w=2.0):
    """Exponentially-spaced grid (Figure 5(b)): gap_i = w^(i-1)*min."""
    points = [float(min_mb)]
    gap = float(min_mb)
    value = float(min_mb)
    while True:
        value += gap
        if value >= max_mb:
            break
        points.append(value)
        gap *= w
    if points[-1] != float(max_mb):
        points.append(float(max_mb))
    return points


def memory_grid(min_mb, max_mb, estimates_mb, m=15):
    """Memory-based grid (Figure 5(c)): neighbours of each estimate on
    the base equi grid; out-of-range estimates clamp to the extremes."""
    base = equi_grid(min_mb, max_mb, m)
    chosen = set()
    any_low = any_high = False
    for est in estimates_mb:
        if est <= min_mb:
            any_low = True
            continue
        if est >= max_mb:
            any_high = True
            continue
        # find the surrounding base points
        for i in range(len(base) - 1):
            if base[i] <= est <= base[i + 1]:
                chosen.add(base[i])
                chosen.add(base[i + 1])
                break
    if any_low or not chosen:
        chosen.add(base[0])
    if any_high:
        chosen.add(base[-1])
    return sorted(chosen)


def hybrid_grid(min_mb, max_mb, estimates_mb, m=15, w=2.0):
    """Default composite grid (Section 3.3.2): mem ∪ exp."""
    points = set(memory_grid(min_mb, max_mb, estimates_mb, m))
    points.update(exp_grid(min_mb, max_mb, w))
    return sorted(points)


def collect_memory_estimates_mb(compiled):
    """Operation memory estimates of all program blocks, converted to
    the max-heap size (MB) that would fit them (estimate / 0.7)."""
    estimates = []
    for block in compiled.all_blocks():
        if not isinstance(block, SB.GenericBlock):
            continue
        for hop in H.iter_dag(block.hop_roots):
            est = hop.mem_estimate
            if math.isfinite(est) and est > 0:
                estimates.append(est / BUDGET_FRACTION / MB)
    return estimates


GENERATORS = {"equi", "exp", "mem", "hybrid"}


def generate_grid(kind, min_mb, max_mb, estimates_mb=(), m=15, w=2.0):
    """Dispatch by generator name."""
    if kind == "equi":
        return equi_grid(min_mb, max_mb, m)
    if kind == "exp":
        return exp_grid(min_mb, max_mb, w)
    if kind == "mem":
        return memory_grid(min_mb, max_mb, estimates_mb, m)
    if kind == "hybrid":
        return hybrid_grid(min_mb, max_mb, estimates_mb, m, w)
    raise KeyError(f"unknown grid generator {kind!r}; one of {GENERATORS}")
