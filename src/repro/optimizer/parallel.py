"""Task-parallel resource optimizer (paper Appendix C, Figure 17).

Two backends share one public class, :class:`ParallelResourceOptimizer`:

* ``backend="process"`` (the default) — real wall-clock parallelism on
  a :class:`~concurrent.futures.ProcessPoolExecutor`.  The master
  generates the grids, pickles **one snapshot** of the compiled program
  (plan cache included) that ships to each worker at pool startup, and
  dispatches *batched* task chunks: each chunk covers every
  ``(r_c, block)`` enumeration point of one or more CP grid points, so
  one IPC round trip amortizes hundreds of
  :func:`recompile_block_plan` + :meth:`CostModel.estimate_block`
  calls.  Workers run the exact per-``r_c`` loop of the serial
  optimizer (baseline compile, prune, per-block MR enumeration,
  whole-program aggregate costing) against their private program copy,
  plan cache, and cost memo, and return the chosen per-block MR vector,
  the aggregate cost, measured task durations, and counter deltas.  The
  master merges worker stats/cache counters back, replays the serial
  selection rule (:func:`update_best`) over the CP grid in ascending
  order, and therefore chooses the byte-identical ``(resource, cost)``
  the serial optimizer would.

* ``backend="thread"`` — the paper's master/worker architecture with a
  central task queue (``Enum_Srm`` / ``Agg_rc`` tasks, lock-free memo
  updates).  CPython's GIL prevents real compute parallelism here, so
  alongside the measured wall clock the module provides
  :func:`schedule_makespan` — a list-scheduling model over the measured
  per-task durations that reports what a k-worker schedule achieves
  (used for Figure 18's speedup shape; the benchmark prints model and
  measured process-backend reality side by side).
"""

from __future__ import annotations

import copy
import math
import multiprocessing as mp
import pickle
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceConfig
from repro.compiler.pipeline import recompile_block_plan
from repro.compiler.plan_cache import PlanCache
from repro.cost import CostModel
from repro.errors import OptimizationError
from repro.obs import get_tracer, use_tracer
from repro.optimizer.enumerate import (
    OptimizerResult,
    OptimizerStats,
    ResourceOptimizer,
    enumerate_block_mr,
    update_best,
)
from repro.optimizer.grids import collect_memory_estimates_mb, generate_grid
from repro.optimizer.pruning import prune_program_blocks

#: recognised enumeration backends
BACKENDS = ("process", "thread")

#: recognised worker snapshot transports (process backend)
SNAPSHOT_MODES = ("auto", "fork", "pickle")

#: adaptive chunk sizing targets this many chunks per worker: large
#: enough chunks to amortize IPC, small enough that a straggler chunk
#: cannot idle the rest of the pool for long
TARGET_CHUNKS_PER_WORKER = 4

#: default auto-backend threshold used by the session layer: below this
#: many enumeration points (CP grid x MR grid x blocks) the process
#: backend falls back to serial.  Calibrated on the Table-1 programs:
#: MLogreg M (1440 points, 41 ms serial) loses badly to a 4-worker pool
#: while GLM M (6192 points, ~700 ms serial) amortizes it
DEFAULT_AUTO_SERIAL_POINTS = 4096


@dataclass
class TaskRecord:
    """Measured duration of one optimizer task (for makespan modelling)."""

    kind: str  # "baseline" | "enum" | "agg"
    rc: float = 0.0
    block_id: int = 0
    duration: float = 0.0


@dataclass
class ParallelOptimizerResult(OptimizerResult):
    task_records: list = field(default_factory=list)
    num_workers: int = 1
    #: which enumeration backend produced this result
    backend: str = "thread"
    #: task chunks dispatched to the pool (process backend)
    tasks_dispatched: int = 0
    #: serialized snapshot size shipped to workers (0 under fork
    #: inheritance — nothing is serialized)
    snapshot_bytes: int = 0
    #: r_c points per dispatched chunk (process backend)
    chunk_points: int = 0
    #: worker start method actually used: "fork" (copy-on-write
    #: inheritance) or the multiprocessing default for pickle transport
    start_method: str = ""
    #: per-phase wall-clock breakdown of the process backend
    snapshot_s: float = 0.0
    dispatch_s: float = 0.0
    enumerate_s: float = 0.0
    fold_s: float = 0.0


class ParallelResourceOptimizer:
    """Grid enumeration fanned out over worker processes or threads."""

    def __init__(self, cluster, params=None, grid_cp="hybrid",
                 grid_mr="hybrid", m=15, w=2.0, num_workers=4,
                 enable_plan_cache=True, backend="process",
                 batch_size=None, auto_serial_points=0,
                 enable_vector_costing=True, chunk_points=None,
                 snapshot="auto", options=None):
        if options is not None:
            grid_cp, grid_mr = options.grid_cp, options.grid_mr
            m, w = options.m, options.w
            enable_plan_cache = options.enable_plan_cache
            num_workers = options.num_workers
            backend = options.backend
            auto_serial_points = options.auto_serial_points
            enable_vector_costing = options.enable_vector_costing
            chunk_points = options.chunk_points
            snapshot = options.snapshot
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown enumeration backend {backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if snapshot not in SNAPSHOT_MODES:
            raise ValueError(
                f"unknown snapshot mode {snapshot!r}; "
                f"expected one of {SNAPSHOT_MODES}"
            )
        if chunk_points is None and batch_size is not None:
            # deprecated alias from the first process-backend release
            chunk_points = batch_size
        self.cluster = cluster
        self.params = params
        self.grid_cp = grid_cp
        self.grid_mr = grid_mr
        self.m = m
        self.w = w
        self.num_workers = max(1, num_workers)
        #: ablation switch: disable the memoizing plan/cost cache
        self.enable_plan_cache = enable_plan_cache
        #: ablation switch: disable vectorized MR-grid batch costing
        self.enable_vector_costing = enable_vector_costing
        #: "process" (wall-clock parallel) or "thread" (Appendix C model)
        self.backend = backend
        #: CP grid points per dispatched task chunk (process backend);
        #: None sizes chunks adaptively — see :meth:`_resolve_chunk_points`
        self.chunk_points = chunk_points
        #: worker snapshot transport: "auto" picks fork inheritance when
        #: the platform supports it, pickle otherwise
        self.snapshot = snapshot
        #: auto backend policy threshold (0 = off): see
        #: :attr:`OptimizerOptions.auto_serial_points`
        self.auto_serial_points = auto_serial_points

    @property
    def batch_size(self):
        """Deprecated alias of :attr:`chunk_points`."""
        return self.chunk_points

    def _resolve_chunk_points(self, n_src):
        """r_c points per chunk: explicit knob, or adaptive sizing that
        targets :data:`TARGET_CHUNKS_PER_WORKER` chunks per worker (the
        old one-r_c-per-chunk default paid one IPC round trip per grid
        point, which dominated small per-point work)."""
        if self.chunk_points is not None:
            return max(1, self.chunk_points)
        return max(
            1,
            math.ceil(n_src / (self.num_workers * TARGET_CHUNKS_PER_WORKER)),
        )

    def _resolve_snapshot(self):
        """The snapshot transport to use: "fork" or "pickle"."""
        if self.snapshot != "auto":
            return self.snapshot
        return (
            "fork" if "fork" in mp.get_all_start_methods() else "pickle"
        )

    def _enumeration_work(self, compiled):
        """Upper bound on enumeration points: CP grid x MR grid x
        last-level blocks (the auto backend policy's work measure)."""
        estimates = collect_memory_estimates_mb(compiled)
        min_mb = self.cluster.min_heap_mb
        max_mb = self.cluster.max_heap_mb
        src = generate_grid(self.grid_cp, min_mb, max_mb, estimates,
                            self.m, self.w)
        srm = generate_grid(self.grid_mr, min_mb, max_mb, estimates,
                            self.m, self.w)
        blocks = len(list(compiled.last_level_blocks()))
        return len(src) * len(srm) * max(1, blocks)

    def _serial_fallback(self, compiled, work):
        """Run the serial optimizer on a grid too small to amortize the
        process pool (IPC + snapshot pickling dominate), repackaged so
        callers still see a backend-annotated result."""
        tracer = get_tracer()
        tracer.incr("optpar.auto_serial")
        tracer.event("optimizer.auto_serial", work=work,
                     threshold=self.auto_serial_points)
        serial = ResourceOptimizer(
            self.cluster, self.params, grid_cp=self.grid_cp,
            grid_mr=self.grid_mr, m=self.m, w=self.w,
            enable_plan_cache=self.enable_plan_cache,
            enable_vector_costing=self.enable_vector_costing,
        ).optimize(compiled)
        return ParallelOptimizerResult(
            resource=serial.resource,
            cost=serial.cost,
            stats=serial.stats,
            cp_profile=serial.cp_profile,
            num_workers=1,
            backend="serial",
            tasks_dispatched=0,
        )

    def optimize(self, compiled):
        tracer = get_tracer()
        if self.backend == "process" and self.auto_serial_points > 0:
            work = self._enumeration_work(compiled)
            if work < self.auto_serial_points:
                return self._serial_fallback(compiled, work)
        with tracer.span(
            "optimizer.optimize", scope="program",
            backend=self.backend, workers=self.num_workers,
        ) as span:
            if self.backend == "process":
                result = self._optimize_process(compiled)
            else:
                result = self._optimize_thread(compiled)
            if tracer.enabled:
                span.set("cost_s", result.cost)
                span.set("resource", result.resource.describe()
                         if result.resource else None)
                tracer.incr("optimizer.runs")
                tracer.incr("optimizer.pruned_small",
                            result.stats.pruned_small)
                tracer.incr("optimizer.pruned_unknown",
                            result.stats.pruned_unknown)
                tracer.incr("optimizer.grid_points",
                            len(result.cp_profile))
                tracer.incr("optpar.tasks", result.tasks_dispatched)
                tracer.incr("optpar.enum_records",
                            len(result.task_records))
                tracer.gauge("optpar.workers", result.num_workers)
                if result.backend == "process":
                    tracer.gauge("optpar.snapshot_bytes",
                                 result.snapshot_bytes)
                    tracer.gauge("optpar.chunk_points",
                                 result.chunk_points)
                    tracer.incr("optpar.phase.snapshot_s",
                                result.snapshot_s)
                    tracer.incr("optpar.phase.dispatch_s",
                                result.dispatch_s)
                    tracer.incr("optpar.phase.enumerate_s",
                                result.enumerate_s)
                    tracer.incr("optpar.phase.fold_s", result.fold_s)
                if self.backend == "process":
                    # pool workers traced into the void (their processes
                    # hold no tracer): mirror the counters the serial
                    # path would have recorded on the session tracer —
                    # thread workers share this tracer and have already
                    # incremented them directly
                    tracer.incr("cost.invocations",
                                result.stats.cost_invocations)
                    tracer.incr("costcache.hits",
                                result.stats.cost_memo_hits)
                    tracer.incr("plancache.hits",
                                result.stats.plan_cache_hits)
                    tracer.incr("plancache.misses",
                                result.stats.plan_cache_misses)
            return result

    # -- process backend -----------------------------------------------------

    def _optimize_process(self, compiled):
        start = time.perf_counter()
        compiled.stats.reset()
        min_mb = self.cluster.min_heap_mb
        max_mb = self.cluster.max_heap_mb
        estimates = collect_memory_estimates_mb(compiled)
        src = generate_grid(self.grid_cp, min_mb, max_mb, estimates,
                            self.m, self.w)
        srm = generate_grid(self.grid_mr, min_mb, max_mb, estimates,
                            self.m, self.w)
        if not src or not srm:
            raise OptimizationError("empty resource grid")

        result = ParallelOptimizerResult(
            num_workers=self.num_workers, backend="process"
        )
        result.stats = OptimizerStats(cp_points=len(src), mr_points=len(srm))
        blocks = list(compiled.last_level_blocks())
        result.stats.total_blocks = len(blocks)

        # one snapshot ships to every worker: attach a fresh (empty)
        # plan cache first so workers inherit caching without a second
        # message (None detaches any stale cache from a previous run)
        cache = PlanCache() if self.enable_plan_cache else None
        compiled.plan_cache = cache
        state = {
            "compiled": compiled,
            "cluster": self.cluster,
            "params": self.params,
            "min_mb": min_mb,
            "srm": srm,
            "enable_plan_cache": self.enable_plan_cache,
            "enable_vector_costing": self.enable_vector_costing,
        }
        mode = self._resolve_snapshot()

        batch = self._resolve_chunk_points(len(src))
        chunks = [src[i:i + batch] for i in range(0, len(src), batch)]
        result.tasks_dispatched = len(chunks)
        result.chunk_points = batch

        points = {}  # rc -> packed worker-reported point tuple
        totals = [0] * 7  # counter deltas, see _process_enumerate_chunk
        t0 = time.perf_counter()
        if mode == "fork":
            # zero-copy transport: the snapshot rides into the workers
            # through fork's copy-on-write address space — nothing is
            # serialized.  Workers mutate only their private COW pages.
            ctx = mp.get_context("fork")
            payload = None
            result.snapshot_bytes = 0
            result.start_method = "fork"
            pool_kwargs = dict(
                mp_context=ctx,
                initializer=_fork_worker_init,
                initargs=(),
            )
        else:
            ctx = None
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            result.snapshot_bytes = len(payload)
            result.start_method = mp.get_start_method()
            pool_kwargs = dict(
                initializer=_process_worker_init,
                initargs=(payload,),
            )
        result.snapshot_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        try:
            if mode == "fork":
                # hold the lock across pool creation + submission: the
                # executor forks workers lazily during submit, and every
                # fork must see *this* optimizer's snapshot global
                _FORK_LOCK.acquire()
                _set_fork_snapshot(state)
            pool = ProcessPoolExecutor(
                max_workers=self.num_workers, **pool_kwargs
            )
            try:
                futures = [
                    pool.submit(_process_enumerate_chunk, chunk)
                    for chunk in chunks
                ]
            finally:
                if mode == "fork":
                    _FORK_LOCK.release()
            result.dispatch_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            with pool:
                try:
                    for future in as_completed(futures):
                        chunk_points, *deltas = future.result()
                        for point in chunk_points:
                            points[point[0]] = point
                        for i, delta in enumerate(deltas):
                            totals[i] += delta
                except BaseException:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        finally:
            if mode == "fork":
                _set_fork_snapshot(None)  # unpin the snapshot's memory
        result.enumerate_s = time.perf_counter() - t0
        if len(points) != len(src):
            raise OptimizationError(
                "process enumeration lost grid points: "
                f"expected {len(src)}, got {len(points)}"
            )

        t0 = time.perf_counter()
        # pruning is reported at the first CP point, exactly like the
        # serial optimizer (MR usage is maximal at min heap)
        _, _, _, pruned_small, pruned_unknown, remaining, _ = points[src[0]]
        result.stats.pruned_small = pruned_small
        result.stats.pruned_unknown = pruned_unknown
        result.stats.remaining_blocks = remaining

        # replay the serial selection rule over the CP grid in ascending
        # order: identical update_best sequence => identical choice
        best_resource = None
        best_cost = float("inf")
        for rc in src:
            _, vector, cost, _, _, _, records = points[rc]
            chosen = ResourceConfig(
                cp_heap_mb=rc,
                mr_heap_mb=min_mb,
                mr_heap_per_block=dict(vector),
            )
            result.cp_profile.append((rc, cost))
            best_resource, best_cost = update_best(
                best_resource, best_cost, chosen, cost
            )
            result.task_records.extend(
                TaskRecord(*record) for record in records
            )

        # leave the master program compiled under the returned
        # configuration (workers only mutated their snapshot copies)
        for block in blocks:
            recompile_block_plan(compiled, block, best_resource, cache=cache)
        compiled.resource = best_resource
        result.fold_s = time.perf_counter() - t0

        result.resource = best_resource
        result.cost = best_cost
        result.stats.optimization_time = time.perf_counter() - start
        (compilations, cost_invocations, cost_memo_hits, cache_hits,
         cache_misses, mr_points_skipped, mr_points_batched) = totals
        result.stats.block_compilations = (
            compiled.stats.block_compilations + compilations
        )
        result.stats.cost_invocations = cost_invocations
        result.stats.cost_memo_hits = cost_memo_hits
        result.stats.mr_points_skipped = mr_points_skipped
        result.stats.mr_points_batched = mr_points_batched
        if cache is not None:
            result.stats.plan_cache_hits = cache.hits + cache_hits
            result.stats.plan_cache_misses = cache.misses + cache_misses
        return result

    # -- thread backend ------------------------------------------------------

    def _optimize_thread(self, compiled):
        """Master/worker enumeration with a central task queue.

        The master enumerates CP memory budgets, performs the per-r_c
        baseline compilation and pruning, and enqueues ``Enum_Srm``
        tasks (one per remaining (r_c, block): enumerate the MR
        dimension, update the shared memo) and ``Agg_rc`` tasks (once
        all block entries for r_c are present, compile the program under
        the memoized vector and record the aggregate cost).  Workers own
        deep copies of the program so concurrent recompilation never
        races; memo updates are lock-free dictionary writes (exactly the
        design of the paper).
        """
        start = time.perf_counter()
        compiled.stats.reset()
        min_mb = self.cluster.min_heap_mb
        max_mb = self.cluster.max_heap_mb
        estimates = collect_memory_estimates_mb(compiled)
        src = generate_grid(self.grid_cp, min_mb, max_mb, estimates,
                            self.m, self.w)
        srm = generate_grid(self.grid_mr, min_mb, max_mb, estimates,
                            self.m, self.w)

        result = ParallelOptimizerResult(
            num_workers=self.num_workers, backend="thread"
        )
        result.stats = OptimizerStats(cp_points=len(src), mr_points=len(srm))

        cache = None
        if self.enable_plan_cache:
            # attach before workers deep-copy the program: each copy gets
            # its own empty PlanCache sharing the master's thresholds
            cache = PlanCache()
            compiled.plan_cache = cache

        memo = {}  # (rc, block_id) -> (ri, cost)
        expected = {}  # rc -> set of block ids workers must fill
        agg_costs = {}  # rc -> program cost
        records = []
        records_lock = threading.Lock()
        errors = []  # first worker exception wins, re-raised after join
        tasks = queue.Queue()
        stop = object()
        tasks_dispatched = 0

        def record(kind, rc, block_id, duration):
            with records_lock:
                records.append(TaskRecord(kind, rc, block_id, duration))

        # master phase: per-rc baseline compilation and pruning, task gen
        blocks = list(compiled.last_level_blocks())
        result.stats.total_blocks = len(blocks)
        baseline_costs = {}
        master_cost_model = CostModel(self.cluster, self.params)
        for rc in src:
            t0 = time.perf_counter()
            baseline = ResourceConfig(cp_heap_mb=rc, mr_heap_mb=min_mb)
            for block in blocks:
                recompile_block_plan(compiled, block, baseline, cache=cache)
            remaining, pruned_small, pruned_unknown = prune_program_blocks(
                blocks
            )
            if rc == src[0]:
                result.stats.pruned_small = len(pruned_small)
                result.stats.pruned_unknown = len(pruned_unknown)
                result.stats.remaining_blocks = len(remaining)
            expected[rc] = {b.block_id for b in remaining}
            for block in remaining:
                baseline_costs[(rc, block.block_id)] = (
                    master_cost_model.estimate_block(
                        compiled, block, baseline,
                        use_memo=cache is not None,
                    )
                )
            record("baseline", rc, 0, time.perf_counter() - t0)
            for block in remaining:
                tasks.put(("enum", rc, block.block_id))
                tasks_dispatched += 1
            tasks.put(("agg", rc, None))
            tasks_dispatched += 1
        result.tasks_dispatched = tasks_dispatched

        worker_caches = []
        worker_cost_models = []
        worker_compilations = []

        # workers inherit the master's tracer explicitly: the active
        # tracer is thread-local, so a freshly spawned thread would
        # otherwise record into the process default
        master_tracer = get_tracer()

        # workers
        def worker():
            with use_tracer(master_tracer):
                _worker_loop()

        def _worker_loop():
            try:
                local = copy.deepcopy(compiled)
                local_blocks = {
                    b.block_id: b for b in local.last_level_blocks()
                }
                local_cache = local.plan_cache if cache is not None else None
                cost_model = CostModel(self.cluster, self.params)
                compiled_at_copy = local.stats.block_compilations
                with records_lock:
                    if local_cache is not None:
                        worker_caches.append(local_cache)
                    worker_cost_models.append(cost_model)
            except Exception as exc:  # noqa: BLE001 - reported to master
                with records_lock:
                    errors.append(exc)
                # drain so tasks.join() cannot hang on our share of tasks
                while True:
                    task = tasks.get()
                    if task is stop:
                        tasks.put(stop)
                        return
                    tasks.task_done()
            while True:
                task = tasks.get()
                if task is stop:
                    tasks.put(stop)
                    with records_lock:
                        worker_compilations.append(
                            local.stats.block_compilations - compiled_at_copy
                        )
                    return
                try:
                    if errors:
                        continue  # a worker failed: just drain the queue
                    kind, rc, block_id = task
                    t0 = time.perf_counter()
                    if kind == "enum":
                        block = local_blocks[block_id]
                        best, _ = enumerate_block_mr(
                            local, block, rc, min_mb, srm, cost_model,
                            baseline_costs[(rc, block_id)],
                            cache=local_cache,
                            vectorize=self.enable_vector_costing,
                        )
                        memo[(rc, block_id)] = best  # lock-free update
                        record("enum", rc, block_id,
                               time.perf_counter() - t0)
                    else:  # agg: probe until all block entries are present
                        failed = False
                        while not all(
                            (rc, bid) in memo for bid in expected[rc]
                        ):
                            if errors:
                                # the producer died; entries never arrive
                                failed = True
                                break
                            time.sleep(0.0005)
                        if not failed:
                            chosen = ResourceConfig(
                                cp_heap_mb=rc,
                                mr_heap_mb=min_mb,
                                mr_heap_per_block={
                                    bid: memo[(rc, bid)][0]
                                    for bid in expected[rc]
                                },
                            )
                            for block in local_blocks.values():
                                recompile_block_plan(
                                    local, block, chosen, cache=local_cache
                                )
                            agg_costs[rc] = cost_model.estimate_program(
                                local, chosen
                            )
                            record("agg", rc, 0, time.perf_counter() - t0)
                except Exception as exc:  # noqa: BLE001 - reported to master
                    with records_lock:
                        errors.append(exc)
                finally:
                    # unconditionally, or tasks.join() deadlocks when a
                    # task raises
                    tasks.task_done()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(self.num_workers)
        ]
        for thread in threads:
            thread.start()
        tasks.join()
        tasks.put(stop)
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        if not agg_costs:
            raise OptimizationError(
                "parallel enumeration produced no grid points"
            )

        # same selection rule as the serial optimizer: walk the CP grid
        # in ascending order, keep the cheapest, break near-ties towards
        # the minimal footprint
        best_resource = None
        best_cost = float("inf")
        for rc in src:
            if rc not in agg_costs:
                continue
            chosen = ResourceConfig(
                cp_heap_mb=rc,
                mr_heap_mb=min_mb,
                mr_heap_per_block={
                    bid: memo[(rc, bid)][0] for bid in expected[rc]
                },
            )
            best_resource, best_cost = update_best(
                best_resource, best_cost, chosen, agg_costs[rc]
            )

        # leave the master program compiled under the returned
        # configuration (workers only mutated their deep copies)
        for block in blocks:
            recompile_block_plan(compiled, block, best_resource, cache=cache)
        compiled.resource = best_resource

        result.resource = best_resource
        result.cost = best_cost
        result.cp_profile = sorted(agg_costs.items())
        result.task_records = records
        result.stats.optimization_time = time.perf_counter() - start
        result.stats.block_compilations = (
            compiled.stats.block_compilations + sum(worker_compilations)
        )
        result.stats.cost_invocations = (
            master_cost_model.invocations
            + sum(cm.invocations for cm in worker_cost_models)
        )
        result.stats.cost_memo_hits = (
            master_cost_model.memo_hits
            + sum(cm.memo_hits for cm in worker_cost_models)
        )
        if cache is not None:
            # fold the per-worker caches back into the master's: counter
            # totals for the stats, and worker-generated plans so later
            # recompilations (e.g. runtime adaptation) start warm
            for worker_cache in worker_caches:
                cache.merge(worker_cache)
            result.stats.plan_cache_hits = cache.hits
            result.stats.plan_cache_misses = cache.misses
        return result


# -- process-pool worker side ------------------------------------------------
#
# Worker state lives in a module global set by the pool initializer: the
# snapshot reaches each worker exactly once — unpickled from the
# initializer payload under pickle transport, or inherited copy-on-write
# under fork transport — and is reused for every task chunk, so
# per-chunk IPC carries only grid points and packed result tuples.

_WORKER_STATE = None

#: fork-transport snapshot: the master parks the state dict here, holds
#: :data:`_FORK_LOCK` across pool creation + submission (the executor
#: forks workers lazily), and clears it once all chunks completed.  The
#: children's :func:`_fork_worker_init` reads their inherited copy —
#: mutations stay in private copy-on-write pages, so concurrent
#: optimizers and later master work never observe worker state.
_FORK_SNAPSHOT = None
_FORK_LOCK = threading.Lock()


def _set_fork_snapshot(state):
    global _FORK_SNAPSHOT
    _FORK_SNAPSHOT = state


def _build_worker_state(state):
    """Materialize this process's private worker state from a snapshot
    dict (shared by the pickle and fork initializers)."""
    compiled = state["compiled"]
    return {
        "compiled": compiled,
        "blocks": list(compiled.last_level_blocks()),
        "cache": compiled.plan_cache if state["enable_plan_cache"] else None,
        "cost_model": CostModel(state["cluster"], state["params"]),
        "min_mb": state["min_mb"],
        "srm": state["srm"],
        "vectorize": state.get("enable_vector_costing", False),
    }


def _process_worker_init(payload):
    """Pool initializer (pickle transport): unpack the snapshot."""
    global _WORKER_STATE
    _WORKER_STATE = _build_worker_state(pickle.loads(payload))


def _fork_worker_init():
    """Pool initializer (fork transport): adopt the snapshot this
    process inherited copy-on-write at fork time."""
    global _WORKER_STATE
    if _FORK_SNAPSHOT is None:  # pragma: no cover - master bug
        raise OptimizationError("fork snapshot missing in worker")
    _WORKER_STATE = _build_worker_state(_FORK_SNAPSHOT)


def _process_enumerate_chunk(rcs):
    """Run the full per-r_c enumeration for a chunk of CP grid points.

    Mirrors the serial optimizer's inner loop exactly (baseline compile,
    prune, baseline costing, per-block MR enumeration, whole-program
    aggregate costing) so the reported costs are the byte-identical
    floats the serial optimizer computes.  Returns a packed tuple
    ``(points, *counter_deltas)`` — positional, not keyed, to keep the
    per-chunk result payload small (the master unpacks by position).
    """
    st = _WORKER_STATE
    compiled = st["compiled"]
    cache = st["cache"]
    cost_model = st["cost_model"]
    comp0 = compiled.stats.block_compilations
    inv0, memo0 = cost_model.invocations, cost_model.memo_hits
    hits0 = cache.hits if cache is not None else 0
    miss0 = cache.misses if cache is not None else 0
    local_stats = OptimizerStats()
    points = [_enumerate_rc(st, rc, local_stats) for rc in rcs]
    return (
        points,
        compiled.stats.block_compilations - comp0,
        cost_model.invocations - inv0,
        cost_model.memo_hits - memo0,
        (cache.hits - hits0) if cache is not None else 0,
        (cache.misses - miss0) if cache is not None else 0,
        local_stats.mr_points_skipped,
        local_stats.mr_points_batched,
    )


def _enumerate_rc(st, rc, local_stats):
    """One CP grid point, start to finish, on this worker's snapshot.

    Returns the packed tuple ``(rc, vector_items, cost, pruned_small,
    pruned_unknown, remaining, records)``.
    """
    compiled, blocks = st["compiled"], st["blocks"]
    cache, cost_model = st["cache"], st["cost_model"]
    min_mb, srm = st["min_mb"], st["srm"]
    records = []

    t0 = time.perf_counter()
    baseline = ResourceConfig(cp_heap_mb=rc, mr_heap_mb=min_mb)
    for block in blocks:
        recompile_block_plan(compiled, block, baseline, cache=cache)
    remaining, pruned_small, pruned_unknown = prune_program_blocks(blocks)
    memo = {}
    for block in remaining:
        memo[block.block_id] = (
            min_mb,
            cost_model.estimate_block(
                compiled, block, baseline, use_memo=cache is not None
            ),
        )
    records.append(("baseline", rc, 0, time.perf_counter() - t0))

    for block in remaining:
        t1 = time.perf_counter()
        memo[block.block_id], _ = enumerate_block_mr(
            compiled, block, rc, min_mb, srm, cost_model,
            memo[block.block_id][1], cache=cache, stats=local_stats,
            vectorize=st["vectorize"],
        )
        records.append(("enum", rc, block.block_id,
                        time.perf_counter() - t1))

    t2 = time.perf_counter()
    chosen = ResourceConfig(
        cp_heap_mb=rc,
        mr_heap_mb=min_mb,
        mr_heap_per_block={bid: ri for bid, (ri, _) in memo.items()},
    )
    for block in blocks:
        recompile_block_plan(compiled, block, chosen, cache=cache)
    cost = cost_model.estimate_program(compiled, chosen)
    records.append(("agg", rc, 0, time.perf_counter() - t2))

    return (
        rc,
        tuple(chosen.mr_heap_per_block.items()),
        cost,
        len(pruned_small),
        len(pruned_unknown),
        len(remaining),
        records,
    )


def schedule_makespan(records, num_workers, include_pipelining=True):
    """List-scheduling makespan of the measured task durations on
    ``num_workers`` workers.

    Models the paper's architecture: the master's per-r_c baseline
    compilations pipeline with worker enumeration (a worker can start a
    r_c's enum tasks only after that baseline finished), and each agg
    task additionally waits for its r_c's enum tasks.
    """
    baselines = [r for r in records if r.kind == "baseline"]
    master_time = 0.0
    release = {}
    for rec in sorted(baselines, key=lambda r: r.rc):
        master_time += rec.duration
        release[rec.rc] = master_time

    workers = [0.0] * max(1, num_workers)
    enum_done = {}
    for rec in [r for r in records if r.kind == "enum"]:
        idx = min(range(len(workers)), key=lambda i: workers[i])
        start = max(
            workers[idx], release.get(rec.rc, 0.0) if include_pipelining else 0.0
        )
        workers[idx] = start + rec.duration
        enum_done[rec.rc] = max(enum_done.get(rec.rc, 0.0), workers[idx])
    for rec in [r for r in records if r.kind == "agg"]:
        idx = min(range(len(workers)), key=lambda i: workers[i])
        start = max(workers[idx], enum_done.get(rec.rc, release.get(rec.rc, 0.0)))
        workers[idx] = start + rec.duration
    return max([master_time] + workers) if include_pipelining else (
        master_time + max(workers)
    )
