"""Task-parallel resource optimizer (paper Appendix C, Figure 17).

A master enumerates CP memory budgets, performs the per-r_c baseline
compilation and pruning, and enqueues

* ``Enum_Srm`` tasks — one per (r_c, remaining block): enumerate the MR
  dimension for that block and update the shared memo structure with
  the locally optimal (r_i, cost); and
* ``Agg_rc`` tasks — one per r_c: once all block entries for r_c are
  present, compile the whole program under the memoized vector and
  record the aggregate program cost.

Workers own deep copies of the program (and their HOP DAGs) so
concurrent recompilation never races; memo updates are lock-free
dictionary writes (exactly the design of the paper).  CPython's GIL
prevents real compute parallelism, so alongside the measured wall
clock the module provides :func:`schedule_makespan` — a list-scheduling
model over the measured per-task durations that reports what a k-worker
schedule achieves (used for Figure 18's speedup shape; both numbers are
printed by the benchmark).
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceConfig
from repro.compiler.pipeline import recompile_block_plan
from repro.compiler.plan_cache import PlanCache
from repro.cost import CostModel
from repro.errors import OptimizationError
from repro.optimizer.enumerate import (
    OptimizerResult,
    OptimizerStats,
    enumerate_block_mr,
    update_best,
)
from repro.optimizer.grids import collect_memory_estimates_mb, generate_grid
from repro.optimizer.pruning import prune_program_blocks


@dataclass
class TaskRecord:
    """Measured duration of one optimizer task (for makespan modelling)."""

    kind: str  # "baseline" | "enum" | "agg"
    rc: float = 0.0
    block_id: int = 0
    duration: float = 0.0


@dataclass
class ParallelOptimizerResult(OptimizerResult):
    task_records: list = field(default_factory=list)
    num_workers: int = 1


class ParallelResourceOptimizer:
    """Master/worker grid enumeration with a central task queue."""

    def __init__(self, cluster, params=None, grid_cp="hybrid",
                 grid_mr="hybrid", m=15, w=2.0, num_workers=4,
                 enable_plan_cache=True):
        self.cluster = cluster
        self.params = params
        self.grid_cp = grid_cp
        self.grid_mr = grid_mr
        self.m = m
        self.w = w
        self.num_workers = max(1, num_workers)
        #: ablation switch: disable the memoizing plan/cost cache
        self.enable_plan_cache = enable_plan_cache

    def optimize(self, compiled):
        start = time.perf_counter()
        compiled.stats.reset()
        min_mb = self.cluster.min_heap_mb
        max_mb = self.cluster.max_heap_mb
        estimates = collect_memory_estimates_mb(compiled)
        src = generate_grid(self.grid_cp, min_mb, max_mb, estimates,
                            self.m, self.w)
        srm = generate_grid(self.grid_mr, min_mb, max_mb, estimates,
                            self.m, self.w)

        result = ParallelOptimizerResult(num_workers=self.num_workers)
        result.stats = OptimizerStats(cp_points=len(src), mr_points=len(srm))

        cache = None
        if self.enable_plan_cache:
            # attach before workers deep-copy the program: each copy gets
            # its own empty PlanCache sharing the master's thresholds
            cache = PlanCache()
            compiled.plan_cache = cache

        memo = {}  # (rc, block_id) -> (ri, cost)
        expected = {}  # rc -> set of block ids workers must fill
        agg_costs = {}  # rc -> program cost
        records = []
        records_lock = threading.Lock()
        errors = []  # first worker exception wins, re-raised after join
        tasks = queue.Queue()
        stop = object()

        def record(kind, rc, block_id, duration):
            with records_lock:
                records.append(TaskRecord(kind, rc, block_id, duration))

        # master phase: per-rc baseline compilation and pruning, task gen
        blocks = list(compiled.last_level_blocks())
        result.stats.total_blocks = len(blocks)
        baseline_costs = {}
        master_cost_model = CostModel(self.cluster, self.params)
        for rc in src:
            t0 = time.perf_counter()
            baseline = ResourceConfig(cp_heap_mb=rc, mr_heap_mb=min_mb)
            for block in blocks:
                recompile_block_plan(compiled, block, baseline, cache=cache)
            remaining, pruned_small, pruned_unknown = prune_program_blocks(
                blocks
            )
            if rc == src[0]:
                result.stats.pruned_small = len(pruned_small)
                result.stats.pruned_unknown = len(pruned_unknown)
                result.stats.remaining_blocks = len(remaining)
            expected[rc] = {b.block_id for b in remaining}
            for block in remaining:
                baseline_costs[(rc, block.block_id)] = (
                    master_cost_model.estimate_block(
                        compiled, block, baseline,
                        use_memo=cache is not None,
                    )
                )
            record("baseline", rc, 0, time.perf_counter() - t0)
            for block in remaining:
                tasks.put(("enum", rc, block.block_id))
            tasks.put(("agg", rc, None))

        worker_caches = []
        worker_cost_models = []
        worker_compilations = []

        # workers
        def worker():
            try:
                local = copy.deepcopy(compiled)
                local_blocks = {
                    b.block_id: b for b in local.last_level_blocks()
                }
                local_cache = local.plan_cache if cache is not None else None
                cost_model = CostModel(self.cluster, self.params)
                compiled_at_copy = local.stats.block_compilations
                with records_lock:
                    if local_cache is not None:
                        worker_caches.append(local_cache)
                    worker_cost_models.append(cost_model)
            except Exception as exc:  # noqa: BLE001 - reported to master
                with records_lock:
                    errors.append(exc)
                # drain so tasks.join() cannot hang on our share of tasks
                while True:
                    task = tasks.get()
                    if task is stop:
                        tasks.put(stop)
                        return
                    tasks.task_done()
            while True:
                task = tasks.get()
                if task is stop:
                    tasks.put(stop)
                    with records_lock:
                        worker_compilations.append(
                            local.stats.block_compilations - compiled_at_copy
                        )
                    return
                try:
                    if errors:
                        continue  # a worker failed: just drain the queue
                    kind, rc, block_id = task
                    t0 = time.perf_counter()
                    if kind == "enum":
                        block = local_blocks[block_id]
                        best, _ = enumerate_block_mr(
                            local, block, rc, min_mb, srm, cost_model,
                            baseline_costs[(rc, block_id)],
                            cache=local_cache,
                        )
                        memo[(rc, block_id)] = best  # lock-free update
                        record("enum", rc, block_id,
                               time.perf_counter() - t0)
                    else:  # agg: probe until all block entries are present
                        failed = False
                        while not all(
                            (rc, bid) in memo for bid in expected[rc]
                        ):
                            if errors:
                                # the producer died; entries never arrive
                                failed = True
                                break
                            time.sleep(0.0005)
                        if not failed:
                            chosen = ResourceConfig(
                                cp_heap_mb=rc,
                                mr_heap_mb=min_mb,
                                mr_heap_per_block={
                                    bid: memo[(rc, bid)][0]
                                    for bid in expected[rc]
                                },
                            )
                            for block in local_blocks.values():
                                recompile_block_plan(
                                    local, block, chosen, cache=local_cache
                                )
                            agg_costs[rc] = cost_model.estimate_program(
                                local, chosen
                            )
                            record("agg", rc, 0, time.perf_counter() - t0)
                except Exception as exc:  # noqa: BLE001 - reported to master
                    with records_lock:
                        errors.append(exc)
                finally:
                    # unconditionally, or tasks.join() deadlocks when a
                    # task raises
                    tasks.task_done()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(self.num_workers)
        ]
        for thread in threads:
            thread.start()
        tasks.join()
        tasks.put(stop)
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        if not agg_costs:
            raise OptimizationError(
                "parallel enumeration produced no grid points"
            )

        # same selection rule as the serial optimizer: walk the CP grid
        # in ascending order, keep the cheapest, break near-ties towards
        # the minimal footprint
        best_resource = None
        best_cost = float("inf")
        for rc in src:
            if rc not in agg_costs:
                continue
            chosen = ResourceConfig(
                cp_heap_mb=rc,
                mr_heap_mb=min_mb,
                mr_heap_per_block={
                    bid: memo[(rc, bid)][0] for bid in expected[rc]
                },
            )
            best_resource, best_cost = update_best(
                best_resource, best_cost, chosen, agg_costs[rc]
            )

        # leave the master program compiled under the returned
        # configuration (workers only mutated their deep copies)
        for block in blocks:
            recompile_block_plan(compiled, block, best_resource, cache=cache)
        compiled.resource = best_resource

        result.resource = best_resource
        result.cost = best_cost
        result.cp_profile = sorted(agg_costs.items())
        result.task_records = records
        result.stats.optimization_time = time.perf_counter() - start
        result.stats.block_compilations = (
            compiled.stats.block_compilations + sum(worker_compilations)
        )
        result.stats.cost_invocations = (
            master_cost_model.invocations
            + sum(cm.invocations for cm in worker_cost_models)
        )
        result.stats.cost_memo_hits = (
            master_cost_model.memo_hits
            + sum(cm.memo_hits for cm in worker_cost_models)
        )
        if cache is not None:
            result.stats.plan_cache_hits = (
                cache.hits + sum(c.hits for c in worker_caches)
            )
            result.stats.plan_cache_misses = (
                cache.misses + sum(c.misses for c in worker_caches)
            )
        return result


def schedule_makespan(records, num_workers, include_pipelining=True):
    """List-scheduling makespan of the measured task durations on
    ``num_workers`` workers.

    Models the paper's architecture: the master's per-r_c baseline
    compilations pipeline with worker enumeration (a worker can start a
    r_c's enum tasks only after that baseline finished), and each agg
    task additionally waits for its r_c's enum tasks.
    """
    baselines = [r for r in records if r.kind == "baseline"]
    master_time = 0.0
    release = {}
    for rec in sorted(baselines, key=lambda r: r.rc):
        master_time += rec.duration
        release[rec.rc] = master_time

    workers = [0.0] * max(1, num_workers)
    enum_done = {}
    for rec in [r for r in records if r.kind == "enum"]:
        idx = min(range(len(workers)), key=lambda i: workers[i])
        start = max(
            workers[idx], release.get(rec.rc, 0.0) if include_pipelining else 0.0
        )
        workers[idx] = start + rec.duration
        enum_done[rec.rc] = max(enum_done.get(rec.rc, 0.0), workers[idx])
    for rec in [r for r in records if r.kind == "agg"]:
        idx = min(range(len(workers)), key=lambda i: workers[i])
        start = max(workers[idx], enum_done.get(rec.rc, release.get(rec.rc, 0.0)))
        workers[idx] = start + rec.duration
    return max([master_time] + workers) if include_pipelining else (
        master_time + max(workers)
    )
