"""Task-parallel resource optimizer (paper Appendix C, Figure 17).

A master enumerates CP memory budgets, performs the per-r_c baseline
compilation and pruning, and enqueues

* ``Enum_Srm`` tasks — one per (r_c, remaining block): enumerate the MR
  dimension for that block and update the shared memo structure with
  the locally optimal (r_i, cost); and
* ``Agg_rc`` tasks — one per r_c: once all block entries for r_c are
  present, compile the whole program under the memoized vector and
  record the aggregate program cost.

Workers own deep copies of the program (and their HOP DAGs) so
concurrent recompilation never races; memo updates are lock-free
dictionary writes (exactly the design of the paper).  CPython's GIL
prevents real compute parallelism, so alongside the measured wall
clock the module provides :func:`schedule_makespan` — a list-scheduling
model over the measured per-task durations that reports what a k-worker
schedule achieves (used for Figure 18's speedup shape; both numbers are
printed by the benchmark).
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceConfig
from repro.compiler.pipeline import recompile_block_plan
from repro.cost import CostModel
from repro.optimizer.enumerate import OptimizerResult, OptimizerStats
from repro.optimizer.grids import collect_memory_estimates_mb, generate_grid
from repro.optimizer.pruning import prune_program_blocks


@dataclass
class TaskRecord:
    """Measured duration of one optimizer task (for makespan modelling)."""

    kind: str  # "baseline" | "enum" | "agg"
    rc: float = 0.0
    block_id: int = 0
    duration: float = 0.0


@dataclass
class ParallelOptimizerResult(OptimizerResult):
    task_records: list = field(default_factory=list)
    num_workers: int = 1


class ParallelResourceOptimizer:
    """Master/worker grid enumeration with a central task queue."""

    def __init__(self, cluster, params=None, grid_cp="hybrid",
                 grid_mr="hybrid", m=15, w=2.0, num_workers=4):
        self.cluster = cluster
        self.params = params
        self.grid_cp = grid_cp
        self.grid_mr = grid_mr
        self.m = m
        self.w = w
        self.num_workers = max(1, num_workers)

    def optimize(self, compiled):
        start = time.perf_counter()
        min_mb = self.cluster.min_heap_mb
        max_mb = self.cluster.max_heap_mb
        estimates = collect_memory_estimates_mb(compiled)
        src = generate_grid(self.grid_cp, min_mb, max_mb, estimates,
                            self.m, self.w)
        srm = generate_grid(self.grid_mr, min_mb, max_mb, estimates,
                            self.m, self.w)

        result = ParallelOptimizerResult(num_workers=self.num_workers)
        result.stats = OptimizerStats(cp_points=len(src), mr_points=len(srm))

        memo = {}  # (rc, block_id) -> (ri, cost)
        expected = {}  # rc -> set of block ids workers must fill
        agg_costs = {}  # rc -> program cost
        records = []
        records_lock = threading.Lock()
        tasks = queue.Queue()
        stop = object()

        def record(kind, rc, block_id, duration):
            with records_lock:
                records.append(TaskRecord(kind, rc, block_id, duration))

        # master phase: per-rc baseline compilation and pruning, task gen
        blocks = list(compiled.last_level_blocks())
        result.stats.total_blocks = len(blocks)
        baseline_costs = {}
        master_cost_model = CostModel(self.cluster, self.params)
        for rc in src:
            t0 = time.perf_counter()
            baseline = ResourceConfig(cp_heap_mb=rc, mr_heap_mb=min_mb)
            for block in blocks:
                recompile_block_plan(compiled, block, baseline)
            remaining, pruned_small, pruned_unknown = prune_program_blocks(
                blocks
            )
            if rc == src[0]:
                result.stats.pruned_small = len(pruned_small)
                result.stats.pruned_unknown = len(pruned_unknown)
                result.stats.remaining_blocks = len(remaining)
            expected[rc] = {b.block_id for b in remaining}
            for block in remaining:
                baseline_costs[(rc, block.block_id)] = (
                    master_cost_model.estimate_block(compiled, block, baseline)
                )
            record("baseline", rc, 0, time.perf_counter() - t0)
            for block in remaining:
                tasks.put(("enum", rc, block.block_id))
            tasks.put(("agg", rc, None))

        # workers
        def worker():
            local = copy.deepcopy(compiled)
            local_blocks = {
                b.block_id: b for b in local.last_level_blocks()
            }
            cost_model = CostModel(self.cluster, self.params)
            while True:
                task = tasks.get()
                if task is stop:
                    tasks.put(stop)
                    return
                kind, rc, block_id = task
                t0 = time.perf_counter()
                if kind == "enum":
                    block = local_blocks[block_id]
                    best = (min_mb, baseline_costs[(rc, block_id)])
                    for ri in srm:
                        if ri == min_mb:
                            continue
                        candidate = ResourceConfig(
                            cp_heap_mb=rc,
                            mr_heap_mb=min_mb,
                            mr_heap_per_block={block_id: ri},
                        )
                        recompile_block_plan(local, block, candidate)
                        cost = cost_model.estimate_block(
                            local, block, candidate
                        )
                        if cost < best[1]:
                            best = (ri, cost)
                    memo[(rc, block_id)] = best  # lock-free update
                    record("enum", rc, block_id, time.perf_counter() - t0)
                else:  # agg: probe until all block entries are present
                    while not all(
                        (rc, bid) in memo for bid in expected[rc]
                    ):
                        time.sleep(0.0005)
                    chosen = ResourceConfig(
                        cp_heap_mb=rc,
                        mr_heap_mb=min_mb,
                        mr_heap_per_block={
                            bid: memo[(rc, bid)][0] for bid in expected[rc]
                        },
                    )
                    for block in local_blocks.values():
                        recompile_block_plan(local, block, chosen)
                    agg_costs[rc] = cost_model.estimate_program(local, chosen)
                    record("agg", rc, 0, time.perf_counter() - t0)
                tasks.task_done()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(self.num_workers)
        ]
        for thread in threads:
            thread.start()
        tasks.join()
        tasks.put(stop)
        for thread in threads:
            thread.join()

        best_rc = min(agg_costs, key=lambda rc: (agg_costs[rc], rc))
        best_resource = ResourceConfig(
            cp_heap_mb=best_rc,
            mr_heap_mb=min_mb,
            mr_heap_per_block={
                bid: memo[(best_rc, bid)][0] for bid in expected[best_rc]
            },
        )
        result.resource = best_resource
        result.cost = agg_costs[best_rc]
        result.cp_profile = sorted(agg_costs.items())
        result.task_records = records
        result.stats.optimization_time = time.perf_counter() - start
        result.stats.block_compilations = compiled.stats.block_compilations
        return result


def schedule_makespan(records, num_workers, include_pipelining=True):
    """List-scheduling makespan of the measured task durations on
    ``num_workers`` workers.

    Models the paper's architecture: the master's per-r_c baseline
    compilations pipeline with worker enumeration (a worker can start a
    r_c's enum tasks only after that baseline finished), and each agg
    task additionally waits for its r_c's enum tasks.
    """
    baselines = [r for r in records if r.kind == "baseline"]
    master_time = 0.0
    release = {}
    for rec in sorted(baselines, key=lambda r: r.rc):
        master_time += rec.duration
        release[rec.rc] = master_time

    workers = [0.0] * max(1, num_workers)
    enum_done = {}
    for rec in [r for r in records if r.kind == "enum"]:
        idx = min(range(len(workers)), key=lambda i: workers[i])
        start = max(
            workers[idx], release.get(rec.rc, 0.0) if include_pipelining else 0.0
        )
        workers[idx] = start + rec.duration
        enum_done[rec.rc] = max(enum_done.get(rec.rc, 0.0), workers[idx])
    for rec in [r for r in records if r.kind == "agg"]:
        idx = min(range(len(workers)), key=lambda i: workers[i])
        start = max(workers[idx], enum_done.get(rec.rc, release.get(rec.rc, 0.0)))
        workers[idx] = start + rec.duration
    return max([master_time] + workers) if include_pipelining else (
        master_time + max(workers)
    )
