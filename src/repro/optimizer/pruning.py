"""Program-block pruning (paper Section 3.4).

Given the baseline compilation at (r_c, min_cc):

* **blocks of small operations** — blocks that contain no MR jobs are
  independent of the MR-resource dimension; by monotonic dependency
  elimination, a larger CP memory never reintroduces MR jobs, so the
  whole area above is pruned (Figure 5(d));
* **blocks of unknowns** — if *all* MR operations of a block have
  unknown dimensions, different MR budgets produce indistinguishable
  plans/costs, so the second dimension is pruned as well.
"""

from __future__ import annotations

from repro.compiler.runtime_prog import MRJobInstruction


def block_has_mr_jobs(block):
    plan = getattr(block, "plan", None)
    return plan is not None and plan.num_mr_jobs > 0


def block_all_mr_unknown(block):
    """True if every MR operation of the block involves unknown
    dimensions (unknown output, or a scalar aggregate over an unknown
    input) — different MR budgets then produce indistinguishable plans."""
    plan = getattr(block, "plan", None)
    if plan is None:
        return False
    saw_step = False
    for ins in plan.instructions:
        if not isinstance(ins, MRJobInstruction):
            continue
        for step in ins.steps:
            saw_step = True
            out_known = step.out_mc.dims_known
            ins_known = all(mc.dims_known for mc in step.in_mcs)
            if out_known and ins_known:
                return False
    return saw_step


def prune_program_blocks(blocks):
    """Return (remaining, pruned_small, pruned_unknown) for the given
    last-level blocks after a baseline compilation."""
    remaining = []
    pruned_small = []
    pruned_unknown = []
    for block in blocks:
        if not block_has_mr_jobs(block):
            pruned_small.append(block)
        elif block_all_mr_unknown(block):
            pruned_unknown.append(block)
        else:
            remaining.append(block)
    return remaining, pruned_small, pruned_unknown
