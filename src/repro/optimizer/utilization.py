"""Cluster-utilization-based adaptation (paper Section 6).

The paper sketches this as future work: "consider scenarios where we
decided to use distributed plans in order to exploit full cluster
parallelism but the cluster is heavily loaded.  In those situations, a
fallback to single node in-memory computation might be beneficial.
This would require extended strategies for when to trigger resource
re-optimization depending on cluster utilization, which can be
incorporated into the presented what-if analysis framework."

:class:`UtilizationAwareAdapter` does exactly that: it extends the
Section 4 adapter with a utilization trigger and re-optimizes against a
*degraded what-if view* of the cluster — the cost parameters are scaled
by the MR slowdown at the current utilization, so distributed plans are
priced at their loaded-cluster cost while CP execution (inside the
application's own container) is unaffected.  On a busy cluster this
naturally tips the decision toward large-CP single-node plans, paying
one migration to escape the contention.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.load import mr_slowdown
from repro.cost import CostModel
from repro.optimizer.adaptation import ResourceAdapter
from repro.optimizer.enumerate import ResourceOptimizer


def degraded_parameters(params, slowdown):
    """Cost parameters of a what-if view of the loaded cluster: MR
    compute/shuffle throughput shrinks and job latencies stretch by the
    slowdown; CP-side constants are untouched."""
    return dataclasses.replace(
        params,
        mr_task_flops=params.mr_task_flops / slowdown,
        shuffle_bw_per_node=params.shuffle_bw_per_node / slowdown,
        mr_job_latency=params.mr_job_latency * slowdown,
        mr_task_latency=params.mr_task_latency * slowdown,
    )


class UtilizationAwareAdapter(ResourceAdapter):
    """Runtime adapter that also reacts to cluster background load."""

    def __init__(self, optimizer, cluster_load, utilization_threshold=0.5,
                 retrigger_delta=0.25, max_migrations=5):
        super().__init__(optimizer, max_migrations)
        self.cluster_load = cluster_load
        self.utilization_threshold = utilization_threshold
        #: minimum utilization shift that re-triggers optimization of
        #: already-known plans
        self.retrigger_delta = retrigger_delta
        self._last_decision_utilization = None
        #: diagnostic: utilizations observed at re-optimization points
        self.observed_utilizations = []

    def should_trigger(self, interp, block):
        """Trigger re-optimization of MR-bearing blocks when the cluster
        utilization moved by more than ``retrigger_delta`` since the
        last decision (or exceeds the threshold with no decision yet)."""
        utilization = self.cluster_load.utilization(interp.clock)
        last = self._last_decision_utilization
        if last is None:
            return utilization > self.utilization_threshold
        return abs(utilization - last) >= self.retrigger_delta

    def on_recompile(self, interp, block, frame):
        self._last_decision_utilization = self.cluster_load.utilization(
            interp.clock
        )
        super().on_recompile(interp, block, frame)

    def _select_optimizer(self, interp):
        utilization = self.cluster_load.utilization(interp.clock)
        self.observed_utilizations.append(utilization)
        if utilization <= self.utilization_threshold:
            return self.optimizer
        slowdown = mr_slowdown(utilization)
        base = self.optimizer
        degraded_model = CostModel(
            base.cluster,
            degraded_parameters(base.cost_model.params, slowdown),
        )
        return ResourceOptimizer(
            base.cluster,
            grid_cp=base.grid_cp,
            grid_mr=base.grid_mr,
            m=base.m,
            w=base.w,
            cost_model=degraded_model,
        )
