"""Runtime: sample-backed matrix objects, simulated HDFS, an LRU buffer
pool with eviction accounting, semantic operator kernels, and the program
interpreter that executes compiled plans on a virtual clock.

Execution semantics vs. time semantics
--------------------------------------

Matrices carry a small *physical sample* (numpy) driving real values —
convergence predicates, ``table()`` category counts, measured sparsity —
plus *logical* metadata at paper scale.  Kernels compute sample values
exactly; time is charged from logical characteristics through the same
white-box component models the optimizer's cost model uses, but from
actual runtime state (real sizes, real buffer-pool contents).  This is
the substitution documented in DESIGN.md section 2.
"""

from repro.runtime.matrix import MatrixObject
from repro.runtime.hdfs import SimulatedHDFS
from repro.runtime.bufferpool import BufferPool
from repro.runtime.interpreter import Interpreter, ExecutionResult

__all__ = [
    "MatrixObject",
    "SimulatedHDFS",
    "BufferPool",
    "Interpreter",
    "ExecutionResult",
]
