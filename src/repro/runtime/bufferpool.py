"""LRU buffer pool of the control program.

SystemML pins operation inputs/outputs in a buffer pool sized relative to
the heap budget; when the pool overflows, least-recently-used matrices
are evicted to local disk (dirty ones are written first).  The paper
identifies buffer-pool evictions as a runtime cost the optimizer's model
only partially captures — so evictions are charged *here*, in the
runtime, and intentionally not in :mod:`repro.cost.model`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cost import io_model
from repro.cost.calibrate import NULL_COLLECTOR
from repro.obs import get_tracer


class BufferPool:
    """Tracks in-memory matrices of one CP process and charges IO.

    ``charge`` is a callable(seconds, category) advancing the virtual
    clock; categories are "eviction", "restore", and "read".
    ``collector`` is an optional calibration sample sink
    (:class:`repro.cost.calibrate.CalibrationCollector`).
    """

    def __init__(self, capacity_bytes, params, charge, collector=None):
        self.capacity = float(capacity_bytes)
        self.params = params
        self.charge = charge
        self.collector = collector if collector is not None else NULL_COLLECTOR
        self._entries = OrderedDict()  # id(obj) -> obj
        self.evictions = 0
        self.restores = 0
        self.bytes_evicted = 0.0

    @property
    def used_bytes(self):
        return sum(obj.memory_size for obj in self._entries.values())

    def set_capacity(self, capacity_bytes):
        """Resize the pool (CP migration); evicts down to the new size."""
        self.capacity = float(capacity_bytes)
        self._make_room(0.0)

    def contains(self, obj):
        return id(obj) in self._entries

    # -- core operations -----------------------------------------------------

    def pin(self, obj):
        """Ensure ``obj`` is in memory, charging restore IO if needed."""
        tracer = get_tracer()
        key = id(obj)
        if key in self._entries:
            self._entries.move_to_end(key)
            tracer.incr("bufferpool.hits")
            return
        if not obj.in_memory:
            tracer.incr("bufferpool.misses")
            size = obj.memory_size
            if obj.local_copy:
                seconds = io_model.local_read_time(size, self.params)
                self.charge(seconds, "restore")
                self.collector.add("local_disk", size, seconds)
                self.restores += 1
                tracer.incr("bufferpool.restores")
            elif obj.hdfs_path is not None:
                mc = obj.mc
                seconds = io_model.hdfs_read_time(mc, self.params, obj.fmt)
                self.charge(seconds, "read")
                self.collector.add(
                    "hdfs_read", seconds * self.params.hdfs_read_bw, seconds
                )
                if tracer.enabled:
                    tracer.incr(
                        f"hdfs.bytes_read.{obj.fmt.name.lower()}",
                        io_model.serialized_bytes(mc, obj.fmt),
                    )
            obj.in_memory = True
        else:
            tracer.incr("bufferpool.hits")
        self._insert(obj)

    def put(self, obj):
        """Register a freshly produced in-memory matrix."""
        obj.in_memory = True
        obj.dirty = True
        self._insert(obj)

    def release_all(self):
        """Drop all entries without IO (end of application)."""
        self._entries.clear()

    def discard(self, obj):
        """Remove a dead matrix from the pool without IO (rmvar): its
        data will never be read again, so no writeback is needed."""
        self._entries.pop(id(obj), None)
        obj.in_memory = False

    def retain_only(self, live_ids):
        """Discard every pooled matrix not in ``live_ids`` (rmvar sweep
        at block boundaries)."""
        for key in [k for k in self._entries if k not in live_ids]:
            victim = self._entries.pop(key)
            victim.in_memory = False

    def evict_all(self):
        """Flush everything (used before CP migration): dirty matrices
        are written to HDFS by the migration logic, so this only clears
        residency state."""
        for obj in self._entries.values():
            obj.in_memory = False
        self._entries.clear()

    # -- internals ---------------------------------------------------------

    def _insert(self, obj):
        size = obj.memory_size
        if size > self.capacity:
            # too large to retain: operations stream it; charge nothing
            # extra here (the access itself was already charged)
            obj.in_memory = False
            return
        self._make_room(size)
        self._entries[id(obj)] = obj
        self._entries.move_to_end(id(obj))

    def _make_room(self, needed):
        tracer = get_tracer()
        # track the occupancy incrementally: recomputing used_bytes per
        # victim made eviction storms quadratic in the pool population
        used = self.used_bytes
        while self._entries and used + needed > self.capacity:
            _, victim = self._entries.popitem(last=False)
            size = victim.memory_size
            used -= size
            if victim.dirty:
                seconds = io_model.local_write_time(size, self.params)
                self.charge(seconds, "eviction")
                self.collector.add("local_disk", size, seconds)
                victim.local_copy = True
                self.bytes_evicted += size
                tracer.incr("bufferpool.writebacks")
                tracer.incr("bufferpool.bytes_evicted", size)
            self.evictions += 1
            tracer.incr("bufferpool.evictions")
            victim.in_memory = False
