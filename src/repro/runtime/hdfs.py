"""Simulated HDFS: a name -> file map with logical sizes and samples.

Files carry the matrix characteristics used for metadata reads at
compile time (the paper's binary inputs ship dimensions/nnz in metadata
files) and the physical sample for runtime execution.  All timing is
charged by callers through the IO model — this module only tracks state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common import FileFormat, MatrixCharacteristics
from repro.errors import ExecutionError, TransientIOError
from repro.runtime.matrix import DEFAULT_SAMPLE_CAP, MatrixObject


@dataclass
class HDFSFile:
    path: str
    mc: MatrixCharacteristics
    fmt: FileFormat = FileFormat.BINARY_BLOCK
    data: object = None  # numpy sample (None for metadata-only files)

    @property
    def size_bytes(self):
        return self.mc.serialized_estimate(self.fmt)


@dataclass
class SimulatedHDFS:
    """The cluster's distributed file system.

    With a fault injector attached, :meth:`read_matrix` raises
    :class:`~repro.errors.TransientIOError` on a seeded schedule — the
    slow/flaky-DataNode fault the interpreter's read-retry loop recovers
    from."""

    files: dict = field(default_factory=dict)
    sample_cap: int = DEFAULT_SAMPLE_CAP
    #: optional :class:`~repro.chaos.FaultInjector` for flaky reads
    injector: object = field(default=None, repr=False, compare=False)

    # -- basic operations --------------------------------------------------

    def exists(self, path):
        return path in self.files

    def get(self, path):
        f = self.files.get(path)
        if f is None:
            raise ExecutionError(f"HDFS file not found: {path}")
        return f

    def put(self, path, mc, data=None, fmt=FileFormat.BINARY_BLOCK):
        f = HDFSFile(path=path, mc=mc.copy(), fmt=fmt, data=data)
        self.files[path] = f
        return f

    def delete(self, path):
        self.files.pop(path, None)

    def read_matrix(self, path):
        """Materialize a matrix object from an HDFS file (no timing).

        Under fault injection a read may stall and fail with
        :class:`TransientIOError`; the file itself is intact, so callers
        retry (the interpreter charges the stall plus backoff)."""
        f = self.get(path)
        if f.data is None:
            raise ExecutionError(f"HDFS file {path} has no sample data")
        if self.injector is not None:
            fault = self.injector.fire_hdfs_read(path)
            if fault is not None:
                raise TransientIOError(path, delay_s=fault.payload.delay_s)
        obj = MatrixObject(
            np.array(f.data, dtype=np.float64),
            f.mc.copy(),
            fmt=f.fmt,
            hdfs_path=path,
            in_memory=True,
            dirty=False,
        )
        return obj

    def write_matrix(self, path, matrix, fmt=None):
        fmt = fmt or matrix.fmt
        return self.put(path, matrix.mc, matrix.data.copy(), fmt)

    def input_meta(self):
        """Filename -> characteristics map for the compiler."""
        # snapshot: concurrent tenants may put() while another compiles
        return {path: f.mc.copy() for path, f in list(self.files.items())}

    def total_bytes(self):
        return sum(f.size_bytes for f in list(self.files.values()))

    def view(self, injector=None):
        """A tenant view of this file system: same shared namespace
        (``files`` dict by reference, so writes are visible everywhere),
        but an independent fault-injector slot.  Concurrent submissions
        each execute against their own view, so one tenant's injected
        read faults never leak into another's schedule."""
        return SimulatedHDFS(
            files=self.files, sample_cap=self.sample_cap, injector=injector
        )

    # -- convenience generators ------------------------------------------

    def create_dense_input(self, path, rows, cols, sparsity=1.0, seed=7,
                           fmt=FileFormat.BINARY_BLOCK):
        """Create a random feature-matrix input file."""
        rng = np.random.default_rng(seed)
        obj = MatrixObject.generate(
            rows, cols, sparsity=sparsity, min_value=-1.0, max_value=1.0,
            rng=rng, sample_cap=self.sample_cap,
        )
        return self.put(path, obj.mc, obj.data, fmt)

    def create_label_input(self, path, rows, num_classes=2, seed=11,
                           fmt=FileFormat.BINARY_BLOCK):
        """Create a label-vector input file with values 1..num_classes."""
        rng = np.random.default_rng(seed)
        obj = MatrixObject.generate_labels(
            rows, num_classes, rng=rng, sample_cap=self.sample_cap
        )
        return self.put(path, obj.mc, obj.data, fmt)

    def create_regression_target(self, path, rows, seed=13,
                                 fmt=FileFormat.BINARY_BLOCK):
        """Create a continuous target vector."""
        rng = np.random.default_rng(seed)
        obj = MatrixObject.generate(
            rows, 1, min_value=-2.0, max_value=2.0, rng=rng,
            sample_cap=self.sample_cap,
        )
        return self.put(path, obj.mc, obj.data, fmt)
