"""The program interpreter: executes compiled plans on a virtual clock.

Executes CP instructions against a symbol table of sample-backed matrix
objects and scalars, charging CP IO/compute through the buffer pool and
compute model; executes MR job instructions by running their steps'
semantic kernels while charging distributed time through the shared MR
timing model.  Implements dynamic recompilation of blocks with unknown
sizes and exposes a hook for runtime resource adaptation (Section 4),
implemented in :mod:`repro.optimizer.adaptation`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.chaos import FaultKind
from repro.common import DataType, FileFormat, MatrixCharacteristics
from repro.compiler import statement_blocks as SB
from repro.compiler.recompile import make_env_from_states, recompile_block
from repro.compiler.runtime_prog import CPInstruction, MRJobInstruction
from repro.cost import io_model
from repro.cost.calibrate import NULL_COLLECTOR, get_collector
from repro.cost.compute_model import operation_flops
from repro.cost.constants import DEFAULT_PARAMETERS
from repro.cost.mr_timing import job_input_bytes, spill_penalty_time, time_mr_job
from repro.errors import (
    AllocationDeniedError,
    ExecutionError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.obs import get_tracer
from repro.runtime.bufferpool import BufferPool
from repro.runtime.hdfs import SimulatedHDFS
from repro.runtime.kernels import display, execute_kernel
from repro.runtime.matrix import DEFAULT_SAMPLE_CAP, MatrixObject

#: safety bound on while-loop iterations in simulated execution
MAX_WHILE_ITERATIONS = 1000


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    total_time: float = 0.0
    breakdown: dict = field(default_factory=dict)
    mr_jobs: int = 0
    evictions: int = 0
    buffer_restores: int = 0
    recompilations: int = 0
    migrations: int = 0
    prints: list = field(default_factory=list)
    #: final resource configuration (may differ after adaptation)
    final_resource: object = None
    #: fault/recovery accounting (:class:`repro.chaos.ChaosReport`);
    #: None unless the run was fault-injected
    chaos: object = None

    def category(self, name):
        return self.breakdown.get(name, 0.0)


class Interpreter:
    """Executes a :class:`~repro.compiler.pipeline.CompiledProgram`."""

    def __init__(self, cluster, params=None, hdfs=None,
                 sample_cap=DEFAULT_SAMPLE_CAP, enable_recompile=True,
                 adapter=None, seed=0, cluster_load=None, injector=None,
                 brain=None):
        self.cluster = cluster
        self.params = params or DEFAULT_PARAMETERS
        self.hdfs = hdfs if hdfs is not None else SimulatedHDFS()
        self.sample_cap = sample_cap
        self.enable_recompile = enable_recompile
        #: runtime resource adapter (optimizer.adaptation.ResourceAdapter)
        self.adapter = adapter
        self.seed = seed
        #: optional background-utilization model (cluster.load.ClusterLoad)
        #: slowing down MR phases on a shared cluster
        self.cluster_load = cluster_load
        #: optional fault injector (repro.chaos.FaultInjector); its own
        #: RNG, so injected faults never perturb kernel sampling
        self.injector = injector
        #: optional autoscaling Brain (repro.elastic.ElasticBrain) polled
        #: at statement-block boundaries; grants only ever retime the run
        self.brain = brain
        #: active below-ideal grant (GrantedResource), or None at full
        self._granted = None
        # per-run state, initialized in run()
        self.clock = 0.0
        self.result = None
        self.pool = None
        self.resource = None
        self.compiled = None
        self.rng = None
        self._scratch_counter = 0
        #: node managers lost to NODE_LOSS faults this run
        self._lost_nodes = 0
        #: active frame stack (main frame + function-call frames)
        self._frames = []
        #: calibration sample sink, resolved per run from the active slot
        self._collector = NULL_COLLECTOR

    # -- elasticity ----------------------------------------------------------

    @property
    def granted(self):
        """The resource configuration charged for time: the Brain's
        grant when one is active, the ideal ``self.resource`` otherwise.
        Plans are *never* generated from this — only from the ideal —
        which is what keeps rescaled runs byte-identical."""
        return self._granted if self._granted is not None else self.resource

    def set_grant(self, granted):
        """Install (or clear, with None) a below-ideal grant; the CP
        buffer pool resizes to the granted budget immediately."""
        self._granted = granted
        if self.pool is not None:
            self.pool.set_capacity(self.granted.cp_budget_bytes)

    # -- time accounting -----------------------------------------------------

    def charge(self, seconds, category):
        if seconds < 0:
            raise ExecutionError("negative time charge")
        self.clock += seconds
        self.result.breakdown[category] = (
            self.result.breakdown.get(category, 0.0) + seconds
        )

    # -- main entry ----------------------------------------------------------

    def run(self, compiled, resource):
        """Execute the program under ``resource``; returns the result.

        Plans are (re)generated for ``resource`` first, so callers may
        pass a program compiled under any configuration.  With a fault
        injector, the AM container allocation itself may fail first:
        transient failures are retried with backoff, a denial falls back
        to a smaller configuration re-enumerated by the optimizer.
        """
        from repro.compiler.pipeline import compile_plans

        tracer = get_tracer()
        self._collector = get_collector()
        self.compiled = compiled
        self.resource = resource.copy()
        self._granted = None
        self.clock = 0.0
        self.result = ExecutionResult()
        self.rng = np.random.default_rng(self.seed)
        self._scratch_counter = 0
        self._lost_nodes = 0
        if self.injector is not None:
            try:
                self.resource = self._allocate_am_container(
                    compiled, self.resource
                )
            finally:
                self.result.chaos = self.injector.report()
        with tracer.span("runtime.generate_plans") as span:
            compile_plans(compiled, self.resource)
            if tracer.enabled:
                # the AM recompiles the program under the final (dynamic)
                # configuration before executing it
                regenerated = sum(1 for _ in compiled.last_level_blocks())
                span.set("blocks", regenerated)
                tracer.incr("recompile.dynamic", regenerated)
        if self.brain is not None:
            # a below-1.0 admission fraction takes effect before the
            # buffer pool is sized
            self.brain.apply(self)
        self.pool = BufferPool(
            self.granted.cp_budget_bytes, self.params, self.charge,
            collector=self._collector,
        )
        # AM container allocation + startup
        self.charge(
            self.params.container_alloc_latency + self.params.am_startup_latency,
            "startup",
        )
        frame = {}
        self._frames = [frame]
        try:
            self._exec_blocks(compiled.blocks, frame)
        finally:
            if self.injector is not None:
                self.result.chaos = self.injector.report()
        self.result.total_time = self.clock
        self.result.evictions = self.pool.evictions
        self.result.buffer_restores = self.pool.restores
        self.result.final_resource = self.resource
        return self.result

    # -- chaos: AM allocation with denial fallback -------------------------

    def _allocate_am_container(self, compiled, resource):
        """Allocate the AM container under fault injection.

        Transient allocation failures back off and retry (bounded by the
        injector's retry budget); a hard denial falls back to a smaller
        configuration via :meth:`_allocation_fallback`.
        """
        injector = self.injector
        policy = injector.retry_policy
        attempts = 0
        while injector.fire(FaultKind.ALLOCATION_TRANSIENT,
                            site="am_alloc") is not None:
            attempts += 1
            injector.record_attempt("am_alloc",
                                    FaultKind.ALLOCATION_TRANSIENT)
            if attempts > policy.max_attempts:
                injector.record_exhausted(
                    "am_alloc", FaultKind.ALLOCATION_TRANSIENT, attempts
                )
                raise AllocationDeniedError(
                    f"AM container allocation failed after {attempts} "
                    f"transient failures"
                )
            backoff = policy.backoff(attempts)
            self.charge(backoff, "retry_backoff")
            injector.record_backoff(backoff)
        if attempts:
            injector.record_recovery(
                "am_alloc", FaultKind.ALLOCATION_TRANSIENT, attempts
            )
        if injector.fire(FaultKind.ALLOCATION_DENIED,
                         site="am_alloc") is not None:
            resource = self._allocation_fallback(compiled, resource)
        return resource

    def _allocation_fallback(self, compiled, resource):
        """The RM denied the requested AM container: re-enumerate a
        smaller configuration with the existing optimizer under a
        tighter max-allocation constraint; without an optimizer (or when
        the constrained grid is empty) fall back to halving the CP heap,
        floored at the cluster minimum."""
        denied = self.cluster.container_mb_for_heap(resource.cp_heap_mb)
        cap = max(self.cluster.min_allocation_mb, denied // 2)
        optimizer = (
            getattr(self.adapter, "optimizer", None)
            if self.adapter is not None else None
        )
        new_resource = None
        constrained = dataclasses.replace(
            self.cluster, max_allocation_mb=int(cap)
        )
        if optimizer is not None and constrained.max_heap_mb > constrained.min_heap_mb:
            from repro.errors import OptimizationError
            from repro.optimizer.enumerate import ResourceOptimizer

            shrunk = ResourceOptimizer(
                constrained, self.params, options=optimizer.options
            )
            try:
                result = shrunk.optimize(compiled)
            except OptimizationError:
                result = None
            if result is not None and result.resource is not None:
                new_resource = result.resource
        if new_resource is None:
            new_resource = type(resource)(
                cp_heap_mb=max(
                    self.cluster.min_heap_mb, resource.cp_heap_mb / 2.0
                ),
                mr_heap_mb=resource.mr_heap_mb,
                mr_heap_per_block=dict(resource.mr_heap_per_block),
            )
        self.injector.record_fallback("am_alloc", resource, new_resource)
        return new_resource

    def _cluster_view(self, extra_lost=0):
        """The cluster as this run currently sees it: NODE_LOSS faults
        permanently remove node managers; ``extra_lost`` models the
        temporarily-excluded node of a container-kill re-execution."""
        lost = self._lost_nodes + extra_lost
        if lost <= 0:
            return self.cluster
        n = max(1, self.cluster.num_nodes - lost)
        reducers = max(
            1, round(self.cluster.num_reducers * n / self.cluster.num_nodes)
        )
        return dataclasses.replace(
            self.cluster, num_nodes=n, num_reducers=reducers
        )

    # -- block execution ---------------------------------------------------

    def _exec_blocks(self, blocks, frame):
        for block in blocks:
            self._exec_block(block, frame)

    def _exec_block(self, block, frame):
        if isinstance(block, SB.GenericBlock):
            self._exec_generic(block, frame)
        elif isinstance(block, SB.IfBlock):
            if self._eval_predicate(block.predicate, frame):
                self._exec_blocks(block.body, frame)
            else:
                self._exec_blocks(block.else_body, frame)
        elif isinstance(block, SB.WhileBlock):
            iterations = 0
            while self._eval_predicate(block.predicate, frame):
                self._exec_blocks(block.body, frame)
                iterations += 1
                if iterations >= MAX_WHILE_ITERATIONS:
                    raise ExecutionError(
                        f"while loop exceeded {MAX_WHILE_ITERATIONS} iterations"
                    )
        elif isinstance(block, SB.ForBlock):
            frm = self._eval_holder(block.from_holder, frame)
            to = self._eval_holder(block.to_holder, frame)
            incr = (
                self._eval_holder(block.incr_holder, frame)
                if block.incr_holder is not None
                else 1
            )
            start_clock = self.clock
            value = frm
            while (incr > 0 and value <= to) or (incr < 0 and value >= to):
                frame[block.var] = value
                self._exec_blocks(block.body, frame)
                value = value + incr
            if block.parallel:
                self._rescale_parfor(block, start_clock)
        else:
            raise ExecutionError(f"unknown block type {type(block).__name__}")

    def _rescale_parfor(self, block, start_clock):
        """Task-parallel loops execute their iterations on k local
        workers: iterations ran serially for value correctness, so the
        elapsed loop time is rescaled by the degree of parallelism (plus
        a small per-worker startup charge)."""
        from repro.compiler.pipeline import parfor_dop

        dop = parfor_dop(block)
        if dop <= 1:
            return
        elapsed = self.clock - start_clock
        saved = elapsed * (1.0 - 1.0 / dop)
        self.clock -= saved
        self.result.breakdown["parfor_speedup"] = (
            self.result.breakdown.get("parfor_speedup", 0.0) - saved
        )
        self.charge(0.1 * dop, "parfor_overhead")

    def _eval_holder(self, holder, frame):
        value = self._eval_predicate_value(holder, frame)
        return value

    def _eval_predicate(self, holder, frame):
        value = self._eval_predicate_value(holder, frame)
        return bool(value)

    def _eval_predicate_value(self, holder, frame):
        plan = getattr(holder, "plan", None)
        if plan is None:
            raise ExecutionError("predicate has no compiled plan")
        for ins in plan.instructions:
            self._exec_cp(ins, frame)
        value = self._resolve(plan.result, frame)
        self._cleanup_temps(frame)
        return value

    # -- generic blocks: recompilation, adaptation, instructions ------------

    def _exec_generic(self, block, frame):
        tracer = get_tracer()
        if not tracer.enabled:
            self._exec_generic_inner(block, frame, tracer)
            return
        with tracer.span(f"block:{block.block_id}") as span:
            sim_start = self.clock
            self._exec_generic_inner(block, frame, tracer)
            span.set("sim_s", self.clock - sim_start)

    def _exec_generic_inner(self, block, frame, tracer):
        plan = block.plan
        if self.enable_recompile and block.requires_recompile:
            mr_jobs_before = plan.num_mr_jobs if plan is not None else 0
            mem_before = _peak_mem_estimate(block) if tracer.enabled else 0.0
            env = make_env_from_states(self._var_states(frame))
            plan = recompile_block(self.compiled, block, self.resource, env)
            self.result.recompilations += 1
            tracer.incr("recompile.dynamic")
            if tracer.enabled:
                tracer.event(
                    "recompile.dynamic",
                    block=block.block_id,
                    mr_jobs_before=mr_jobs_before,
                    mr_jobs_after=plan.num_mr_jobs,
                    mem_before_mb=mem_before,
                    mem_after_mb=_peak_mem_estimate(block),
                )
            if self.adapter is not None and plan.num_mr_jobs > 0:
                self.adapter.on_recompile(self, block, frame)
                plan = block.plan  # adaptation may have re-planned
        elif (
            self.adapter is not None
            and plan is not None
            and plan.num_mr_jobs > 0
            and self.adapter.should_trigger(self, block)
        ):
            # extended trigger (paper Section 6): re-optimize known
            # plans when cluster utilization shifted materially
            self.adapter.on_recompile(self, block, frame)
            plan = block.plan
        if self.brain is not None:
            # statement-block boundary: the Brain polls the load signal
            # and may grow/shrink the grant (after adaptation, so grants
            # always derive from the current ideal resource)
            self.brain.on_block(self)
        if plan is None:
            raise ExecutionError(f"block {block.block_id} has no plan")
        if tracer.enabled:
            for ins in plan.instructions:
                sim_start = self.clock
                if isinstance(ins, MRJobInstruction):
                    self._exec_mr_job(ins, frame)
                    opcode = "mr_job"
                else:
                    self._exec_cp(ins, frame)
                    opcode = ins.opcode
                    tracer.incr("runtime.cp_instructions")
                tracer.incr(
                    f"runtime.op.{opcode}.sim_s", self.clock - sim_start
                )
        else:
            for ins in plan.instructions:
                if isinstance(ins, MRJobInstruction):
                    self._exec_mr_job(ins, frame)
                else:
                    self._exec_cp(ins, frame)
        self._cleanup_temps(frame)

    def _cleanup_temps(self, frame):
        """Drop dead matrices from the pool (rmvar): block-local
        temporaries and objects orphaned by variable rebinding are never
        read again, so they leave the buffer pool without writeback."""
        for name in [n for n in frame if n.startswith("_mVar")]:
            del frame[name]
        live_ids = set()
        for any_frame in self._frames:
            for value in any_frame.values():
                if isinstance(value, MatrixObject):
                    live_ids.add(id(value))
        self.pool.retain_only(live_ids)

    def _var_states(self, frame):
        """Runtime knowledge for dynamic recompilation."""
        states = {}
        for name, value in frame.items():
            if isinstance(value, MatrixObject):
                states[name] = (DataType.MATRIX, value.mc, None)
            elif isinstance(value, (bool, int, float, str)):
                states[name] = (
                    DataType.SCALAR,
                    MatrixCharacteristics(0, 0, 0),
                    value,
                )
        return states

    # -- HDFS reads under fault injection -------------------------------

    def _read_hdfs_input(self, fname):
        """Read an input matrix, retrying slow/flaky reads with backoff.

        The stall time of each failed attempt plus the backoff is
        charged to the clock; the re-read is deterministic, so recovered
        runs stay numerically identical to fault-free runs."""
        if self.injector is None:
            return self.hdfs.read_matrix(fname)
        policy = self.injector.retry_policy
        site = f"hdfs:{fname}"
        attempts = 0
        while True:
            try:
                obj = self.hdfs.read_matrix(fname)
            except TransientIOError as err:
                self.charge(err.delay_s, "chaos_io")
                self.injector.record_wasted(err.delay_s)
                attempts += 1
                self.injector.record_attempt(site, FaultKind.HDFS_SLOW_READ)
                if attempts > policy.max_attempts:
                    self.injector.record_exhausted(
                        site, FaultKind.HDFS_SLOW_READ, attempts
                    )
                    raise RetryExhaustedError(
                        f"HDFS read of {fname!r} failed {attempts} times; "
                        f"retry budget ({policy.max_attempts}) exhausted",
                        site=site, attempts=attempts,
                    ) from err
                backoff = policy.backoff(attempts)
                self.charge(backoff, "retry_backoff")
                self.injector.record_backoff(backoff)
                continue
            if attempts:
                self.injector.record_recovery(
                    site, FaultKind.HDFS_SLOW_READ, attempts
                )
            return obj

    # -- operand resolution ---------------------------------------------

    def _resolve(self, operand, frame):
        if operand.is_literal:
            return operand.literal
        if operand.name not in frame:
            raise ExecutionError(f"undefined variable {operand.name!r}")
        return frame[operand.name]

    # -- CP instruction execution ---------------------------------------

    def _exec_cp(self, ins, frame):
        opcode = ins.opcode
        if opcode == "createvar":
            obj = self._read_hdfs_input(ins.attrs["fname"])
            obj.in_memory = False  # lazy: charged on first CP access
            obj.dirty = False
            fmt = ins.attrs.get("format")
            if fmt in ("text", "csv"):
                obj.fmt = FileFormat.CSV
            frame[ins.output] = obj
            return
        if opcode == "mvvar":
            frame[ins.output] = self._resolve(ins.inputs[0], frame)
            return
        if opcode == "write":
            value = self._resolve(ins.inputs[0], frame)
            if not isinstance(value, MatrixObject):
                raise ExecutionError("write() requires a matrix input")
            fmt = (
                FileFormat.CSV
                if ins.attrs.get("format") in ("text", "csv")
                else FileFormat.BINARY_BLOCK
            )
            self.pool.pin(value)
            seconds = io_model.hdfs_write_time(value.mc, self.params, fmt)
            self.charge(seconds, "write")
            self._collector.add(
                "hdfs_write", seconds * self.params.hdfs_write_bw, seconds
            )
            self.hdfs.write_matrix(ins.attrs["fname"], value, fmt)
            return
        if opcode == "print":
            value = self._resolve(ins.inputs[0], frame)
            self.result.prints.append(display(value))
            return
        if opcode == "stop":
            value = self._resolve(ins.inputs[0], frame)
            raise ExecutionError(f"stop(): {display(value)}")
        if opcode == "fcall":
            self._exec_fcall(ins, frame)
            return

        inputs = [self._resolve(op, frame) for op in ins.inputs]
        in_mcs = []
        for value in inputs:
            if isinstance(value, MatrixObject):
                self.pool.pin(value)
                in_mcs.append(value.mc)
        kind, payload, mc = execute_kernel(
            opcode, inputs, ins.attrs, self.rng, self.sample_cap
        )
        flops = operation_flops(
            opcode, mc if mc is not None else MatrixCharacteristics(0, 0, 0),
            in_mcs, ins.attrs,
        )
        seconds = flops / self.params.cp_flops
        self.charge(seconds, "cp_compute")
        self._collector.add("cp_compute", flops, seconds)
        if kind == "matrix":
            obj = MatrixObject(payload, mc)
            self.pool.put(obj)
            frame[ins.output] = obj
        else:
            frame[ins.output] = payload

    def _exec_fcall(self, ins, frame):
        func = self.compiled.functions.get(ins.attrs["func"])
        if func is None:
            raise ExecutionError(f"unknown function {ins.attrs['func']!r}")
        values = [self._resolve(op, frame) for op in ins.inputs]
        fframe = {}
        for param, value in zip(func.inputs, values):
            fframe[param.name] = value
        self._frames.append(fframe)
        try:
            self._exec_blocks(func.blocks, fframe)
        finally:
            self._frames.pop()
        for out_name, param in zip(ins.attrs["outputs"], func.outputs):
            if param.name not in fframe:
                raise ExecutionError(
                    f"function {func.name!r} did not produce output "
                    f"{param.name!r}"
                )
            frame[out_name] = fframe[param.name]

    # -- MR job execution -------------------------------------------------

    def _exec_mr_job(self, job, frame):
        # export dirty in-memory inputs so the job can read them from HDFS
        for name in list(job.input_vars) + list(job.broadcast_vars):
            value = frame.get(name)
            if isinstance(value, MatrixObject) and value.dirty:
                seconds = io_model.hdfs_write_time(value.mc, self.params)
                self.charge(seconds, "export")
                self._collector.add(
                    "hdfs_write", seconds * self.params.hdfs_write_bw, seconds
                )
                path = self._scratch_path(name)
                self.hdfs.write_matrix(path, value)
                value.hdfs_path = path
                value.dirty = False

        def mc_of(name):
            value = frame.get(name)
            return value.mc if isinstance(value, MatrixObject) else None

        def fmt_of(name):
            value = frame.get(name)
            if isinstance(value, MatrixObject):
                return value.fmt
            return FileFormat.BINARY_BLOCK

        # refresh step metadata from actual inputs by executing kernels
        scratch = {}

        def resolve(operand):
            if operand.is_literal:
                return operand.literal
            if operand.name in scratch:
                return scratch[operand.name]
            return self._resolve(operand, frame)

        outputs = {}
        for step in job.steps:
            values = [resolve(op) for op in step.inputs]
            step.in_mcs = [
                v.mc.copy() for v in values if isinstance(v, MatrixObject)
            ]
            kind, payload, mc = execute_kernel(
                step.opcode, values, step.attrs, self.rng, self.sample_cap
            )
            if kind == "matrix":
                obj = MatrixObject(payload, mc)
                obj.in_memory = False
                obj.dirty = False
                scratch[step.output] = obj
                step.out_mc = mc.copy()
                if step.output in job.output_vars:
                    outputs[step.output] = obj
            else:
                scratch[step.output] = payload

        timing = time_mr_job(
            job, mc_of, fmt_of, self.granted, self._cluster_view(),
            self.params
        )
        slowdown = (
            self.cluster_load.slowdown(self.clock)
            if self.cluster_load is not None
            else 1.0
        )
        if self.injector is None:
            self.charge(timing.total * slowdown, "mr_jobs")
        else:
            timing = self._charge_mr_job_with_faults(
                job, timing, slowdown, mc_of, fmt_of
            )
        self._emit_mr_samples(timing, slowdown)
        self._charge_spill(job, mc_of, fmt_of, slowdown)
        self.result.mr_jobs += 1 + job.extra_job_latency
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("runtime.mr_jobs")
            tracer.incr("mr.phase.latency_s", timing.latency)
            tracer.incr("mr.phase.map_read_s", timing.map_read)
            tracer.incr("mr.phase.broadcast_read_s", timing.broadcast_read)
            tracer.incr("mr.phase.map_compute_s", timing.map_compute)
            tracer.incr("mr.phase.map_write_s", timing.map_write)
            tracer.incr("mr.phase.shuffle_s", timing.shuffle)
            tracer.incr("mr.phase.reduce_compute_s", timing.reduce_compute)
            tracer.incr("mr.phase.reduce_write_s", timing.reduce_write)
            # map tasks stream the job inputs from HDFS
            for name in job.input_vars:
                value = frame.get(name)
                if isinstance(value, MatrixObject):
                    tracer.incr(
                        f"hdfs.bytes_read.{value.fmt.name.lower()}",
                        io_model.serialized_bytes(value.mc, value.fmt),
                    )

        for name, obj in outputs.items():
            path = self._scratch_path(name)
            self.hdfs.write_matrix(path, obj)
            obj.hdfs_path = path
            frame[name] = obj
        # scalar step outputs (full aggregates) flow back to the frame
        for step in job.steps:
            value = scratch.get(step.output)
            if not isinstance(value, MatrixObject) and value is not None:
                frame[step.output] = value

    def _charge_spill(self, job, mc_of, fmt_of, slowdown):
        """Memory-elastic execution: when the Brain granted this job's
        tasks less than their ideal heap, the records that no longer fit
        spill to local disk and are re-read.  Charged to the clock only
        (category "spill") — numerics are untouched, and no calibration
        sample is emitted (spill is an elasticity artefact, not a
        hardware constant to learn)."""
        granted = self.granted
        if granted is self.resource:
            return
        spill = spill_penalty_time(
            job_input_bytes(job, mc_of, fmt_of),
            self.resource.mr_heap_for_block(job.block_id),
            granted.mr_heap_for_block(job.block_id),
            self.params,
        )
        if spill <= 0:
            return
        self.charge(spill * slowdown, "spill")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("elastic.spilled_jobs")
            tracer.incr("elastic.spill_s", spill * slowdown)

    def _emit_mr_samples(self, timing, slowdown):
        """Emit one calibration sample per MR phase of the job that
        finally succeeded.

        Work units are recovered algebraically from the modelled phase
        times (``work = t_modeled * rate``), which makes them exact
        byte/FLOP/latency-unit quantities independent of the constants
        in ``self.params``; the observed seconds carry the cluster-load
        slowdown, matching what the clock was actually charged.
        """
        collector = self._collector
        if not collector.enabled:
            return
        p = self.params
        read = timing.map_read
        collector.add("hdfs_read", read * p.hdfs_read_bw, read * slowdown)
        local = timing.broadcast_read
        collector.add("local_disk", local * p.local_disk_bw, local * slowdown)
        compute = timing.map_compute + timing.reduce_compute
        collector.add(
            "mr_compute", compute * p.mr_task_flops, compute * slowdown
        )
        write = timing.map_write + timing.reduce_write
        collector.add("hdfs_write", write * p.hdfs_write_bw, write * slowdown)
        collector.add(
            "shuffle", timing.shuffle * p.shuffle_bw_per_node,
            timing.shuffle * slowdown,
        )
        collector.add(
            "mr_job_latency", timing.job_latency_units,
            p.mr_job_latency * timing.job_latency_units * slowdown,
        )
        collector.add(
            "mr_task_latency", timing.task_latency_units,
            p.mr_task_latency * timing.task_latency_units * slowdown,
        )

    def _charge_mr_job_with_faults(self, job, timing, slowdown, mc_of,
                                   fmt_of):
        """Charge one MR job's time under fault injection.

        Semantic kernel outputs were already computed (faults affect
        *time*, never values: MR re-execution is deterministic), so this
        only replays the timing: a container kill or node loss wastes
        the job's partial progress, backs off, and re-executes the lost
        containers at reduced parallelism — one node excluded for the
        retry after a kill, permanently removed from this run's cluster
        view after a node loss.  The retry budget is the injector's
        :class:`~repro.chaos.RetryPolicy`; exhausting it raises the
        typed :class:`~repro.errors.RetryExhaustedError`.

        Returns the timing of the attempt that finally succeeded (its
        phase breakdown feeds the ``mr.phase.*`` counters).
        """
        injector = self.injector
        policy = injector.retry_policy
        site = f"mr_job:{job.block_id}"
        attempts = 0
        kill_degraded = 0
        last_kind = None
        while True:
            fault = injector.fire(FaultKind.NODE_LOSS, site=site)
            kind = FaultKind.NODE_LOSS
            if fault is None:
                fault = injector.fire(FaultKind.CONTAINER_KILL, site=site)
                kind = FaultKind.CONTAINER_KILL
            if fault is None:
                self.charge(timing.total * slowdown, "mr_jobs")
                if attempts:
                    injector.record_recovery(site, last_kind, attempts)
                return timing
            # partial work lost at the fault's progress point
            wasted = timing.total * fault.payload.progress * slowdown
            self.charge(wasted, "chaos_wasted")
            injector.record_wasted(wasted)
            attempts += 1
            last_kind = kind
            injector.record_attempt(site, kind)
            if attempts > policy.max_attempts:
                injector.record_exhausted(site, kind, attempts)
                raise RetryExhaustedError(
                    f"MR job in block {job.block_id} failed "
                    f"{attempts} times ({kind.value}); retry budget "
                    f"({policy.max_attempts}) exhausted",
                    site=site, attempts=attempts,
                )
            backoff = policy.backoff(attempts)
            self.charge(backoff, "retry_backoff")
            injector.record_backoff(backoff)
            if kind is FaultKind.NODE_LOSS:
                self._lost_nodes = min(
                    self._lost_nodes + 1, self.cluster.num_nodes - 1
                )
                kill_degraded = 0
            else:
                kill_degraded = 1
            # re-execute the lost containers at reduced parallelism
            timing = time_mr_job(
                job, mc_of, fmt_of, self.granted,
                self._cluster_view(extra_lost=kill_degraded), self.params
            )

    def _scratch_path(self, name):
        self._scratch_counter += 1
        return f"scratch/{name}_{self._scratch_counter}"


def _peak_mem_estimate(block):
    """Largest operation memory estimate (MB) in a block's HOP DAG — the
    size knowledge a dynamic recompile refreshes."""
    import math

    from repro.compiler import hops as H

    peak = 0.0
    for hop in H.iter_dag(block.hop_roots):
        est = getattr(hop, "mem_estimate", 0.0)
        if est is not None and math.isfinite(est) and est > peak:
            peak = est
    return peak / (1024.0 * 1024.0)
