"""Semantic operator kernels.

Each kernel computes the *sample* result with numpy and the *logical*
output characteristics from the logical input characteristics (dims) and
the sample's measured density (nnz).  Kernels are shared between CP
instruction execution and MR step execution — only the time accounting
differs (done by the interpreter, not here).

Scalar results are exact over the sample; aggregates over row-sampled
matrices behave like the same algorithm on a smaller dataset, which
preserves convergence behaviour (documented in DESIGN.md).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common import MatrixCharacteristics
from repro.errors import ExecutionError
from repro.runtime.matrix import MatrixObject, measure_nnz, sample_rows

# -- kernel result helpers -----------------------------------------------


def _matrix_result(data, rows, cols):
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 1:
        data = data.reshape(-1, 1)
    mc = MatrixCharacteristics(
        int(rows), int(cols), measure_nnz(data, int(rows) * int(cols))
    )
    return ("matrix", data, mc)


def _scalar_result(value):
    return ("scalar", value, None)


def _is_matrix(value):
    return isinstance(value, MatrixObject)


def _sample(value):
    return value.data if _is_matrix(value) else value


def _display(value):
    """DML-style display rendering for print()."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        return repr(value)
    return str(value)


# -- elementwise binary ----------------------------------------------------

_BINARY_NUMPY = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "^": np.power,
    "%%": np.mod,
    "%/%": np.floor_divide,
    "min": np.minimum,
    "max": np.maximum,
}

_RELATIONAL_NUMPY = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _scalar_binary(opcode, a, b):
    if opcode == "+":
        if isinstance(a, str) or isinstance(b, str):
            return _display(a) + _display(b)
        return a + b
    if opcode == "-":
        return a - b
    if opcode == "*":
        return a * b
    if opcode == "/":
        return a / b
    if opcode == "^":
        return a**b
    if opcode == "%%":
        return a % b
    if opcode == "%/%":
        return a // b
    if opcode == "min":
        return min(a, b)
    if opcode == "max":
        return max(a, b)
    if opcode == "==":
        return a == b
    if opcode == "!=":
        return a != b
    if opcode == "<":
        return a < b
    if opcode == "<=":
        return a <= b
    if opcode == ">":
        return a > b
    if opcode == ">=":
        return a >= b
    if opcode == "&":
        return bool(a) and bool(b)
    if opcode == "|":
        return bool(a) or bool(b)
    raise ExecutionError(f"unknown scalar binary opcode {opcode!r}")


def _logical_broadcast_dims(mcs):
    rows = max(mc.rows for mc in mcs)
    cols = max(mc.cols for mc in mcs)
    return rows, cols


def _align_elementwise(sa, sb):
    """Truncate two samples to a numpy-broadcastable common shape.

    For each axis where both sides exceed 1 but differ (a sampling
    artifact of appends/binds), both are truncated to the shorter side;
    singleton axes broadcast as usual.
    """
    if not hasattr(sa, "shape") or not hasattr(sb, "shape"):
        return sa, sb
    ra, ca = sa.shape
    rb, cb = sb.shape
    if ra != rb and min(ra, rb) > 1:
        k = min(ra, rb)
        sa, sb = sa[:k, :], sb[:k, :]
    if ca != cb and min(ca, cb) > 1:
        k = min(ca, cb)
        sa, sb = sa[:, :k], sb[:, :k]
    return sa, sb


def _binary(opcode, inputs, attrs):
    a, b = inputs
    if not _is_matrix(a) and not _is_matrix(b):
        return _scalar_result(_scalar_binary(opcode, a, b))
    matrices = [x for x in (a, b) if _is_matrix(x)]
    rows, cols = _logical_broadcast_dims([m.mc for m in matrices])
    sa = _sample(a)
    sb = _sample(b)
    sa, sb = _align_elementwise(sa, sb)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if opcode in _BINARY_NUMPY:
            out = _BINARY_NUMPY[opcode](sa, sb)
            out = np.nan_to_num(out, copy=False, posinf=0.0, neginf=0.0)
        elif opcode in _RELATIONAL_NUMPY:
            out = _RELATIONAL_NUMPY[opcode](sa, sb).astype(np.float64)
        elif opcode == "&":
            out = ((np.asarray(sa) != 0) & (np.asarray(sb) != 0)).astype(float)
        elif opcode == "|":
            out = ((np.asarray(sa) != 0) | (np.asarray(sb) != 0)).astype(float)
        else:
            raise ExecutionError(f"unknown binary opcode {opcode!r}")
    return _matrix_result(out, rows, cols)


# -- elementwise unary -------------------------------------------------------

_UNARY_NUMPY = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "round": np.round,
    "floor": np.floor,
    "ceil": np.ceil,
    "sign": np.sign,
    "u-": np.negative,
}

_UNARY_SCALAR = {
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "abs": abs,
    "round": round,
    "floor": math.floor,
    "ceil": math.ceil,
    "sign": lambda v: (v > 0) - (v < 0),
    "u-": lambda v: -v,
}


def _cumsum(opcode, inputs, attrs):
    (a,) = inputs
    out = np.cumsum(a.data, axis=0)
    return _matrix_result(out, a.mc.rows, a.mc.cols)


def _remove_empty(opcode, inputs, attrs):
    (a,) = inputs
    data = a.data
    if attrs.get("margin", "rows") == "rows":
        keep = np.any(data != 0, axis=1)
        out = data[keep, :]
        if out.shape[0] == 0:
            out = np.zeros((1, data.shape[1]))
        fraction = keep.mean() if keep.size else 0.0
        rows = max(1, int(round(fraction * a.mc.rows)))
        return _matrix_result(out, rows, a.mc.cols)
    keep = np.any(data != 0, axis=0)
    out = data[:, keep]
    if out.shape[1] == 0:
        out = np.zeros((data.shape[0], 1))
    fraction = keep.mean() if keep.size else 0.0
    cols = max(1, int(round(fraction * a.mc.cols)))
    return _matrix_result(out, a.mc.rows, cols)


def _unary(opcode, inputs, attrs):
    (a,) = inputs
    if opcode == "!":
        if _is_matrix(a):
            return _matrix_result(
                (np.asarray(a.data) == 0).astype(float), a.mc.rows, a.mc.cols
            )
        return _scalar_result(not bool(a))
    if not _is_matrix(a):
        return _scalar_result(_UNARY_SCALAR[opcode](a))
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        out = _UNARY_NUMPY[opcode](a.data)
        out = np.nan_to_num(out, copy=False, posinf=0.0, neginf=0.0)
    return _matrix_result(out, a.mc.rows, a.mc.cols)


# -- aggregates --------------------------------------------------------------


def _row_factor(a):
    """Logical-to-sample scale factor of the row dimension."""
    srows = a.data.shape[0]
    return (a.mc.rows / srows) if srows else 1.0


def _col_factor(a):
    srows = a.data.shape[1]
    return (a.mc.cols / srows) if srows else 1.0


def _agg_unary(opcode, inputs, attrs):
    """Aggregates.

    Sum-like aggregates (sum, colSums, rowSums, trace) scale by the
    logical/sample factor of the reduced dimension(s) so that their
    values approximate full-scale magnitudes — means, R2, and accuracy
    statistics derived from them come out right, and ratios used in
    convergence tests are unaffected.  Min/max/mean need no scaling.
    """
    (a,) = inputs
    data = a.data
    if opcode.startswith("uar"):
        suffix = opcode[3:]
        if suffix == "+":
            out = data.sum(axis=1) * _col_factor(a)
        elif suffix == "mean":
            out = data.mean(axis=1)
        elif suffix == "max":
            out = data.max(axis=1)
        elif suffix == "min":
            out = data.min(axis=1)
        elif suffix == "imax":
            out = data.argmax(axis=1) + 1.0
        else:
            raise ExecutionError(f"unknown row aggregate {opcode!r}")
        return _matrix_result(out.reshape(-1, 1), a.mc.rows, 1)
    if opcode.startswith("uac"):
        suffix = opcode[3:]
        if suffix == "+":
            out = data.sum(axis=0) * _row_factor(a)
        elif suffix == "mean":
            out = data.mean(axis=0)
        elif suffix == "max":
            out = data.max(axis=0)
        elif suffix == "min":
            out = data.min(axis=0)
        else:
            raise ExecutionError(f"unknown column aggregate {opcode!r}")
        return _matrix_result(out.reshape(1, -1), 1, a.mc.cols)
    suffix = opcode[2:]
    if suffix == "+":
        value = float(data.sum()) * _row_factor(a) * _col_factor(a)
    elif suffix == "mean":
        value = float(data.mean()) if data.size else 0.0
    elif suffix == "max":
        value = float(data.max()) if data.size else 0.0
    elif suffix == "min":
        value = float(data.min()) if data.size else 0.0
    elif suffix == "trace":
        value = float(np.trace(data)) * _row_factor(a)
    else:
        raise ExecutionError(f"unknown aggregate {opcode!r}")
    return _scalar_result(value)


# -- matrix multiplication -----------------------------------------------


def _align_inner(left, right, l_logical, r_logical, context):
    """Align the inner dimension of a matrix product.

    Samples cap every logical dimension at the sample cap, but appends
    and similar shape perturbations can leave the two sides a few
    elements apart; the product is computed over the common prefix.
    A mismatch of *logical* dimensions is a real error.
    """
    if l_logical != r_logical:
        raise ExecutionError(
            f"{context}: non-conformable logical dims "
            f"{l_logical} x {r_logical}"
        )
    k = min(left.shape[1], right.shape[0])
    return left[:, :k], right[:k, :]


def _matmult(opcode, inputs, attrs):
    a, b = inputs[0], inputs[1]
    if attrs.get("transpose_left"):
        # semantic t(X) %*% v computed without materializing t(X)
        left, right = _align_inner(
            a.data.T, b.data, a.mc.rows, b.mc.rows, "t(X) %*% v"
        )
        out = left @ right
        return _matrix_result(out, a.mc.cols, b.mc.cols)
    left, right = _align_inner(
        a.data, b.data, a.mc.cols, b.mc.rows, "X %*% Y"
    )
    out = left @ right
    return _matrix_result(out, a.mc.rows, b.mc.cols)


def _tsmm(opcode, inputs, attrs):
    (x,) = inputs[:1]
    out = x.data.T @ x.data
    return _matrix_result(out, x.mc.cols, x.mc.cols)


def _mapmmchain(opcode, inputs, attrs):
    x = inputs[0]
    v = inputs[1]
    left, right = _align_inner(
        x.data, v.data, x.mc.cols, v.mc.rows, "mapmmchain"
    )
    if attrs.get("chain") == "XtwXv":
        w = inputs[2]
        inner = _align_elementwise(w.data, left @ right)[0] * (left @ right)
    else:
        inner = left @ right
    out = left.T @ inner
    return _matrix_result(out, x.mc.cols, v.mc.cols)


def _takpm(opcode, inputs, attrs):
    a, b, c = inputs
    value = float(np.sum(a.data * b.data * c.data))
    return _scalar_result(value * _row_factor(a) * _col_factor(a))


# -- reorg / indexing ---------------------------------------------------


def _transpose(opcode, inputs, attrs):
    (a,) = inputs
    return _matrix_result(a.data.T.copy(), a.mc.cols, a.mc.rows)


def _diag(opcode, inputs, attrs):
    (a,) = inputs
    if a.mc.cols == 1:
        out = np.diagflat(a.data.ravel())
        return _matrix_result(out, a.mc.rows, a.mc.rows)
    out = np.diag(a.data).reshape(-1, 1).copy()
    return _matrix_result(out, a.mc.rows, 1)


def _as_index(value):
    return int(round(float(value)))


def _rix(opcode, inputs, attrs):
    target = inputs[0]
    rl, ru, cl, cu = (inputs[1], inputs[2], inputs[3], inputs[4])
    srows, scols = target.data.shape
    if attrs.get("all_rows"):
        r0, r1 = 0, srows
        out_rows = target.mc.rows
    else:
        lo, hi = _as_index(rl), _as_index(ru)
        out_rows = max(0, hi - lo + 1)
        r0 = min(max(lo - 1, 0), srows)
        r1 = min(hi, srows)
        if r1 <= r0:  # range beyond the sample: clamp to its tail
            span = min(out_rows, srows)
            r0, r1 = srows - span, srows
    if attrs.get("all_cols"):
        c0, c1 = 0, scols
        out_cols = target.mc.cols
    else:
        lo, hi = _as_index(cl), _as_index(cu)
        out_cols = max(0, hi - lo + 1)
        c0 = min(max(lo - 1, 0), scols)
        c1 = min(hi, scols)
        if c1 <= c0:
            span = min(out_cols, scols)
            c0, c1 = scols - span, scols
    out = target.data[r0:r1, c0:c1].copy()
    return _matrix_result(out, out_rows, out_cols)


def _lix(opcode, inputs, attrs):
    target, source = inputs[0], inputs[1]
    rl, ru, cl, cu = (inputs[2], inputs[3], inputs[4], inputs[5])
    out = target.data.copy()
    srows, scols = out.shape
    if attrs.get("all_rows"):
        r0, r1 = 0, srows
    else:
        r0 = min(max(_as_index(rl) - 1, 0), srows)
        r1 = min(_as_index(ru), srows)
    if attrs.get("all_cols"):
        c0, c1 = 0, scols
    else:
        c0 = min(max(_as_index(cl) - 1, 0), scols)
        c1 = min(_as_index(cu), scols)
    src = source.data
    rows = min(r1 - r0, src.shape[0])
    cols = min(c1 - c0, src.shape[1])
    if rows > 0 and cols > 0:
        out[r0:r0 + rows, c0:c0 + cols] = src[:rows, :cols]
    return _matrix_result(out, target.mc.rows, target.mc.cols)


# -- data generation -----------------------------------------------------


def _rand(opcode, inputs, attrs, rng, sample_cap):
    params = attrs.get("params", [])
    values = dict(zip(params, inputs))
    rows = _as_index(values.get("rows", 1))
    cols = _as_index(values.get("cols", 1))
    min_v = float(values.get("min", 0.0))
    max_v = float(values.get("max", 1.0))
    sparsity = float(values.get("sparsity", 1.0))
    srows = sample_rows(rows, sample_cap)
    scols = sample_rows(cols, sample_cap)
    if min_v == max_v:
        data = np.full((srows, scols), min_v)
    else:
        data = rng.uniform(min_v, max_v, size=(srows, scols))
        if sparsity < 1.0:
            mask = rng.random((srows, scols)) < sparsity
            data = np.where(mask, data, 0.0)
    return _matrix_result(data, rows, cols)


def _seq(opcode, inputs, attrs, rng, sample_cap):
    params = attrs.get("params", [])
    values = dict(zip(params, inputs))
    frm = float(values.get("from", 1))
    to = float(values.get("to", 1))
    incr = float(values.get("incr", 1.0)) if "incr" in values else 1.0
    if incr == 0:
        raise ExecutionError("seq() increment must be non-zero")
    n = int(max(0, math.floor((to - frm) / incr) + 1))
    srows = sample_rows(n, sample_cap)
    data = (frm + incr * np.arange(srows)).reshape(-1, 1)
    return _matrix_result(data, n, 1)


def _ctable(opcode, inputs, attrs):
    a, b = inputs[0], inputs[1]
    av = a.data.ravel()
    bv = b.data.ravel()
    k_common = min(av.shape[0], bv.shape[0])
    av, bv = av[:k_common], bv[:k_common]
    if k_common == 0:
        raise ExecutionError("table(): empty input vectors")
    k = int(max(1, bv.max())) if bv.size else 1
    # the common pattern table(seq(1,n), y): one row per observation
    out = np.zeros((av.shape[0], k))
    cols = np.clip(bv.astype(int) - 1, 0, k - 1)
    out[np.arange(av.shape[0]), cols] = 1.0
    return _matrix_result(out, a.mc.rows, k)


# -- binds, solve, casts -------------------------------------------------


def _cbind(opcode, inputs, attrs):
    a, b = inputs
    rows = min(a.data.shape[0], b.data.shape[0])
    out = np.hstack([a.data[:rows], b.data[:rows]])
    return _matrix_result(out, a.mc.rows, a.mc.cols + b.mc.cols)


def _rbind(opcode, inputs, attrs, sample_cap):
    a, b = inputs
    cols = min(a.data.shape[1], b.data.shape[1])
    out = np.vstack([a.data[:, :cols], b.data[:, :cols]])
    rows = a.mc.rows + b.mc.rows
    cap = sample_rows(rows, sample_cap)
    if out.shape[0] > cap:
        out = out[:cap, :]
    return _matrix_result(out, rows, a.mc.cols)


def _solve(opcode, inputs, attrs):
    a, b = inputs
    try:
        from scipy import linalg as scipy_linalg

        out = scipy_linalg.solve(a.data, b.data, assume_a="gen")
    except Exception:
        out, *_ = np.linalg.lstsq(a.data, b.data, rcond=None)
    return _matrix_result(out, a.mc.cols, b.mc.cols)


def _cast(opcode, inputs, attrs):
    (a,) = inputs
    if opcode == "castdts":
        return _scalar_result(float(np.asarray(_sample(a)).ravel()[0]))
    if opcode == "castdtm":
        return _matrix_result(np.array([[float(a)]]), 1, 1)
    if opcode == "castvtd":
        return _scalar_result(float(a))
    if opcode == "castvti":
        return _scalar_result(int(a))
    if opcode == "castvtb":
        return _scalar_result(bool(a))
    raise ExecutionError(f"unknown cast {opcode!r}")


def _metadata(opcode, inputs, attrs):
    (a,) = inputs
    if opcode == "nrow":
        return _scalar_result(a.mc.rows)
    if opcode == "ncol":
        return _scalar_result(a.mc.cols)
    if opcode == "length":
        return _scalar_result(a.mc.cells)
    raise ExecutionError(f"unknown metadata opcode {opcode!r}")


# -- dispatch ------------------------------------------------------------

_SIMPLE_KERNELS = {}
for _op in list(_BINARY_NUMPY) + list(_RELATIONAL_NUMPY) + ["&", "|"]:
    _SIMPLE_KERNELS[_op] = _binary
for _op in list(_UNARY_NUMPY) + ["!"]:
    _SIMPLE_KERNELS[_op] = _unary
_SIMPLE_KERNELS.update(
    {
        "ba+*": _matmult,
        "ucumk+": _cumsum,
        "rmempty": _remove_empty,
        "tsmm": _tsmm,
        "mapmmchain": _mapmmchain,
        "tak+*": _takpm,
        "r'": _transpose,
        "rdiag": _diag,
        "rix": _rix,
        "lix": _lix,
        "ctable": _ctable,
        "cbind": _cbind,
        "solve": _solve,
        "castdts": _cast,
        "castdtm": _cast,
        "castvtd": _cast,
        "castvti": _cast,
        "castvtb": _cast,
        "nrow": _metadata,
        "ncol": _metadata,
        "length": _metadata,
    }
)
for _op in ("ua+", "uamean", "uamax", "uamin", "uatrace",
            "uar+", "uarmean", "uarmax", "uarmin", "uarimax",
            "uac+", "uacmean", "uacmax", "uacmin"):
    _SIMPLE_KERNELS[_op] = _agg_unary


def execute_kernel(opcode, inputs, attrs=None, rng=None, sample_cap=2048):
    """Execute one semantic operator.

    ``inputs`` contains resolved values: :class:`MatrixObject` or python
    scalars.  Returns ``("matrix", sample, mc)`` or ``("scalar", value,
    None)``.
    """
    attrs = attrs or {}
    if opcode == "rand":
        rng = rng or np.random.default_rng(0)
        return _rand(opcode, inputs, attrs, rng, sample_cap)
    if opcode == "seq":
        return _seq(opcode, inputs, attrs, rng, sample_cap)
    if opcode == "rbind":
        return _rbind(opcode, inputs, attrs, sample_cap)
    kernel = _SIMPLE_KERNELS.get(opcode)
    if kernel is None:
        raise ExecutionError(f"no kernel for opcode {opcode!r}")
    return kernel(opcode, inputs, attrs)


def display(value):
    """Public display helper (used by print instructions)."""
    return _display(value)
