"""Sample-backed matrix objects.

A :class:`MatrixObject` pairs a small physical numpy *sample* with
*logical* :class:`~repro.common.MatrixCharacteristics` at full scale.
The sampling rule is symmetric: every logical dimension of size L maps
to ``min(L, sample_cap)`` physical elements, so dimensions shared by two
matrices (e.g. the feature dimension of X and of the model vector) stay
conformable.  Kernels additionally align sample shapes defensively (see
:mod:`repro.runtime.kernels`) for shapes perturbed by appends.
"""

from __future__ import annotations

import numpy as np

from repro.common import FileFormat, MatrixCharacteristics
from repro.errors import ExecutionError

#: default per-dimension sample cap; the paper's scenarios (<= 1,000
#: columns) keep feature dimensions unsampled under this default
DEFAULT_SAMPLE_CAP = 2048


def sample_rows(logical_rows, cap=DEFAULT_SAMPLE_CAP):
    """Physical sample size for one logical dimension."""
    return int(min(logical_rows, cap))


def measure_nnz(data, logical_cells):
    """Scale the sample's non-zero density to the logical cell count."""
    if data.size == 0:
        return 0
    density = np.count_nonzero(data) / data.size
    return int(round(density * logical_cells))


class MatrixObject:
    """A runtime matrix: sample data + logical metadata + residency state."""

    __slots__ = (
        "data",
        "mc",
        "fmt",
        "hdfs_path",
        "in_memory",
        "dirty",
        "local_copy",
    )

    def __init__(self, data, mc, fmt=FileFormat.BINARY_BLOCK, hdfs_path=None,
                 in_memory=True, dirty=True):
        if data.ndim != 2:
            raise ExecutionError("matrix sample must be 2-dimensional")
        self.data = data
        self.mc = mc
        self.fmt = fmt
        #: backing file on simulated HDFS holding a clean copy (if any)
        self.hdfs_path = hdfs_path
        #: resident in the CP buffer pool
        self.in_memory = in_memory
        #: in-memory copy newer than any HDFS/local representation
        self.dirty = dirty
        #: evicted copy exists on local disk
        self.local_copy = False

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_sample(cls, data, logical_rows=None, logical_cols=None):
        """Wrap a sample; logical dims default to the sample's shape."""
        rows = int(logical_rows if logical_rows is not None else data.shape[0])
        cols = int(logical_cols if logical_cols is not None else data.shape[1])
        mc = MatrixCharacteristics(rows, cols, measure_nnz(data, rows * cols))
        return cls(np.asarray(data, dtype=np.float64), mc)

    @classmethod
    def generate(cls, rows, cols, sparsity=1.0, min_value=0.0, max_value=1.0,
                 rng=None, sample_cap=DEFAULT_SAMPLE_CAP):
        """Generate a random matrix with the given logical shape/sparsity."""
        rng = rng or np.random.default_rng(0)
        srows = sample_rows(rows, sample_cap)
        scols = sample_rows(cols, sample_cap)
        if min_value == max_value:
            data = np.full((srows, scols), float(min_value))
            if min_value == 0.0:
                nnz = 0
            else:
                nnz = rows * cols
        else:
            if sparsity < 0.05:
                # very sparse samples: draw the non-zero pattern directly
                from scipy import sparse as scipy_sparse

                pattern = scipy_sparse.random(
                    srows, scols, density=sparsity, random_state=rng,
                    data_rvs=lambda n: rng.uniform(min_value, max_value, n),
                )
                data = pattern.toarray()
            else:
                data = rng.uniform(min_value, max_value, size=(srows, scols))
                if sparsity < 1.0:
                    mask = rng.random((srows, scols)) < sparsity
                    data = np.where(mask, data, 0.0)
            nnz = int(round(sparsity * rows * cols))
        mc = MatrixCharacteristics(int(rows), int(cols), nnz)
        return cls(data, mc)

    @classmethod
    def generate_labels(cls, rows, num_classes, rng=None,
                        sample_cap=DEFAULT_SAMPLE_CAP):
        """Generate an n x 1 label vector with values 1..num_classes,
        guaranteed to contain every class in the sample."""
        rng = rng or np.random.default_rng(0)
        srows = sample_rows(rows, sample_cap)
        values = rng.integers(1, num_classes + 1, size=(srows, 1)).astype(float)
        # ensure every class appears so table() infers the true k
        for k in range(1, min(num_classes, srows) + 1):
            values[k - 1, 0] = float(k)
        mc = MatrixCharacteristics(int(rows), 1, int(rows))
        return cls(values, mc)

    # -- properties --------------------------------------------------------

    @property
    def memory_size(self):
        """Logical in-memory size in bytes."""
        return self.mc.memory_estimate()

    @property
    def sample_shape(self):
        return self.data.shape

    def refresh_nnz(self):
        """Re-measure logical nnz from the sample density."""
        cells = self.mc.cells or 0
        self.mc.nnz = measure_nnz(self.data, cells)
        return self.mc.nnz

    def copy(self):
        clone = MatrixObject(
            self.data.copy(), self.mc.copy(), self.fmt, self.hdfs_path,
            self.in_memory, self.dirty,
        )
        clone.local_copy = self.local_copy
        return clone

    def __repr__(self):
        return (
            f"MatrixObject({self.mc}, sample={self.data.shape}, "
            f"mem={self.in_memory}, dirty={self.dirty})"
        )
