"""Bundled DML scripts for the paper's five ML programs (Table 1).

``load_script(name)`` returns the DML source text; ``SCRIPTS`` lists the
available names with their default script-level arguments (Table 1:
icpt=0, lambda=0.01, eps=1e-9, maxiter=5).
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScriptSpec:
    """Metadata of one bundled ML script."""

    name: str
    filename: str
    description: str
    #: input argument names mapped to their roles
    inputs: tuple = ()
    #: default script-level arguments (Table 1)
    defaults: dict = field(default_factory=dict)
    #: whether initial compilation faces unknown sizes (Table 1's "?")
    has_unknowns: bool = False


SCRIPTS = {
    "LinregDS": ScriptSpec(
        name="LinregDS",
        filename="linreg_ds.dml",
        description="Linear regression, closed-form direct solve",
        inputs=("X", "Y"),
        defaults={"icpt": 0, "reg": 0.01},
    ),
    "LinregCG": ScriptSpec(
        name="LinregCG",
        filename="linreg_cg.dml",
        description="Linear regression, iterative conjugate gradient",
        inputs=("X", "Y"),
        defaults={"icpt": 0, "reg": 0.01, "tol": 1e-9, "maxi": 5},
    ),
    "L2SVM": ScriptSpec(
        name="L2SVM",
        filename="l2svm.dml",
        description="L2-regularized support vector machine (primal)",
        inputs=("X", "Y"),
        defaults={"icpt": 0, "reg": 0.01, "tol": 1e-9, "maxiter": 5},
    ),
    "MLogreg": ScriptSpec(
        name="MLogreg",
        filename="mlogreg.dml",
        description="Multinomial logistic regression",
        inputs=("X", "Y"),
        defaults={"icpt": 0, "reg": 0.01, "tol": 1e-9, "moi": 5, "mii": 5},
        has_unknowns=True,
    ),
    "GLM": ScriptSpec(
        name="GLM",
        filename="glm.dml",
        description="Generalized linear model (Poisson / log link)",
        inputs=("X", "Y"),
        defaults={"icpt": 0, "reg": 0.01, "tol": 1e-9, "moi": 5, "mii": 5},
        has_unknowns=True,
    ),
    # additional programs beyond the paper's evaluated five
    "KMeans": ScriptSpec(
        name="KMeans",
        filename="kmeans.dml",
        description="Lloyd's k-means clustering",
        inputs=("X",),
        defaults={"k": 5, "maxi": 5, "tol": 1e-4},
    ),
    "PCA": ScriptSpec(
        name="PCA",
        filename="pca.dml",
        description="Principal component analysis (power iteration)",
        inputs=("X",),
        defaults={"k": 3, "maxi": 20},
    ),
}


def load_script(name):
    """Return the DML source of a bundled script by registry name."""
    spec = SCRIPTS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown script {name!r}; available: {sorted(SCRIPTS)}"
        )
    ref = importlib.resources.files("repro.scripts").joinpath(spec.filename)
    return ref.read_text()


def script_spec(name):
    return SCRIPTS[name]
