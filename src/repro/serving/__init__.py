"""Multi-tenant serving (paper Section 5.3).

:class:`ElasticMLServer` accepts concurrent tenant submissions against
one simulated cluster: a bounded thread pool prepares them (compile +
optimize through shared, locked cross-tenant caches), an
:class:`~repro.serving.admission.AdmissionPolicy` gates execution on
AM-container capacity under the paper's 1.5x-heap rule, and results are
deterministic per submission regardless of interleaving.
"""

from repro.serving.admission import (
    AdmissionPolicy,
    HeapRulePolicy,
    PackingPolicy,
    PendingRequest,
)
from repro.serving.server import (
    ElasticMLServer,
    ProgramCache,
    Submission,
    SubmissionResult,
    default_serving_workers,
)

__all__ = [
    "AdmissionPolicy",
    "ElasticMLServer",
    "HeapRulePolicy",
    "PackingPolicy",
    "PendingRequest",
    "ProgramCache",
    "Submission",
    "SubmissionResult",
    "default_serving_workers",
]
