"""Multi-tenant serving (paper Section 5.3).

:class:`ElasticMLServer` accepts concurrent tenant submissions against
one simulated cluster: a bounded thread pool prepares them (compile +
optimize through shared, locked cross-tenant caches), an
:class:`~repro.serving.admission.AdmissionPolicy` gates execution on
AM-container capacity under the paper's 1.5x-heap rule, and results are
deterministic per submission regardless of interleaving.
"""

from repro.serving.admission import (
    AdmissionPolicy,
    ConsistentHashRouter,
    DemandPredictor,
    HeapRulePolicy,
    PackingPolicy,
    PendingRequest,
    PredictivePackingPolicy,
    make_policy,
)
from repro.serving.server import (
    AdmissionCancelled,
    ElasticMLServer,
    ProgramCache,
    Submission,
    SubmissionResult,
    default_serving_workers,
)
from repro.serving.shard import ShardedElasticMLServer

__all__ = [
    "AdmissionCancelled",
    "AdmissionPolicy",
    "ConsistentHashRouter",
    "DemandPredictor",
    "ElasticMLServer",
    "HeapRulePolicy",
    "PackingPolicy",
    "PendingRequest",
    "PredictivePackingPolicy",
    "ProgramCache",
    "ShardedElasticMLServer",
    "Submission",
    "SubmissionResult",
    "default_serving_workers",
    "make_policy",
]
