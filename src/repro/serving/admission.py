"""Admission control for the multi-tenant server (paper Section 5.3).

Every submission ultimately needs one YARN application-master container
sized by the paper's 1.5x-heap rule
(:meth:`repro.cluster.resources.ResourceConfig.container_request_mb`);
the admission policy decides *which* waiting submission gets the next
grant.  Two policies are provided:

* :class:`HeapRulePolicy` — the paper's own semantics: strict FIFO.
  The oldest waiting submission is admitted iff its AM container
  currently fits; nobody jumps the line.  Simple, starvation-free, and
  what the Section 5.3 throughput experiments model.
* :class:`PackingPolicy` — an Elasecutor-style alternative: among the
  submissions that fit right now, pick the one that packs tightest
  (smallest leftover on its best node, minimizing fragmentation),
  with deficit-round-robin credits per tenant so a cheap-to-pack tenant
  cannot starve the others.
* :class:`PredictivePackingPolicy` — packing fed by a
  :class:`DemandPredictor` (per-tenant EWMA over observed container
  demand and runtime): the fragmentation score uses the tenant's
  *forecast* demand rather than only the instantaneous request, and
  shorter predicted runtimes break deficit ties (shortest-job-first
  flavor, per the fine-grained demand-modeling literature).

This module also hosts the sharding primitives used by
:class:`~repro.serving.shard.ShardedElasticMLServer`: the deterministic
:class:`ConsistentHashRouter` (tenant- or program-affinity) and the
:func:`make_policy` registry that lets policy choices travel to shard
worker processes as plain strings.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class PendingRequest:
    """One submission waiting for its AM container."""

    ticket: int
    tenant: str
    container_mb: int
    #: arrival sequence number (FIFO order)
    order: int


class AdmissionPolicy:
    """Strategy interface: pick the next waiting request to admit.

    :meth:`select` is called under the server's admission lock with the
    current waiting list (FIFO order) and the live
    :class:`~repro.cluster.yarn.ResourceManager`; it returns one request
    to grant now, or None if nothing should be admitted yet.  The server
    calls it in a loop after every release, so returning one request at
    a time is sufficient.
    """

    name = "base"

    def select(self, waiting, rm):
        raise NotImplementedError

    def admitted(self, request):
        """Hook invoked after ``request`` was granted its container."""

    def observe(self, tenant, container_mb, runtime_s):
        """Completion feedback: the tenant's granted container size and
        simulated runtime.  The server calls this under its admission
        lock after every successful execution; the base policies ignore
        it, :class:`PredictivePackingPolicy` feeds its predictor."""


class HeapRulePolicy(AdmissionPolicy):
    """FIFO admission under the 1.5x-heap container rule.

    Admits the head of the line iff the resource manager can place its
    AM container right now.  A large head blocks younger submissions
    even when they would fit — run-order fairness exactly as a FIFO
    YARN queue behaves in the paper's throughput setup.
    """

    name = "heap-rule"

    def select(self, waiting, rm):
        if not waiting:
            return None
        head = min(waiting, key=lambda r: r.order)
        if rm.can_fit(head.container_mb, tenant=head.tenant):
            return head
        return None


class PackingPolicy(AdmissionPolicy):
    """Best-fit packing with per-tenant DRR fairness credits.

    Each selection pass credits every waiting tenant one ``quantum_mb``
    deficit; an admission charges the grantee its container size.  Among
    the requests that fit right now, the winner is chosen by (highest
    tenant deficit, tightest fit, arrival order) — so tenants that have
    been waiting (or were recently charged) accumulate priority, and
    ties go to the request leaving the least fragmentation on its best
    node.
    """

    name = "packing"

    def __init__(self, quantum_mb=1024):
        self.quantum_mb = quantum_mb
        #: tenant -> accumulated deficit credit (MB)
        self.deficits = {}

    def _residual(self, request, rm):
        """Leftover MB on the tightest node that fits the request."""
        need = rm.normalize_request(request.container_mb)
        if not rm.quota_allows(request.tenant, need):
            return None
        fits = [
            node.available_mb - need
            for node in rm.nodes
            if node.can_allocate(need)
        ]
        return min(fits) if fits else None

    def select(self, waiting, rm):
        if not waiting:
            return None
        for tenant in {r.tenant for r in waiting}:
            self.deficits[tenant] = (
                self.deficits.get(tenant, 0.0) + self.quantum_mb
            )
        scored = []
        for request in waiting:
            residual = self._residual(request, rm)
            if residual is None:
                continue
            scored.append((
                -self.deficits.get(request.tenant, 0.0),
                residual,
                request.order,
                request,
            ))
        if not scored:
            return None
        return min(scored)[-1]

    def admitted(self, request):
        self.deficits[request.tenant] = (
            self.deficits.get(request.tenant, 0.0) - request.container_mb
        )


class DemandPredictor:
    """Per-tenant EWMA forecast of container demand and runtime.

    After each completed execution the server reports the tenant's
    granted container size and simulated runtime; the predictor keeps
    one exponentially weighted moving average per signal:

        ``ewma <- alpha * observed + (1 - alpha) * ewma``

    seeded by the first observation.  Forecasts for unseen tenants fall
    back to the caller-supplied default, so prediction never *blocks* a
    request — it only reorders the packing score.  Internally locked
    (the sharded front end feeds it from a collector thread while the
    router reads it); picklable (the lock is dropped and rebuilt).
    """

    def __init__(self, alpha=0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.observations = 0
        self._demand_mb = {}
        self._runtime_s = {}
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def observe(self, tenant, container_mb, runtime_s):
        with self._lock:
            self.observations += 1
            prev_mb = self._demand_mb.get(tenant)
            self._demand_mb[tenant] = (
                float(container_mb) if prev_mb is None
                else self.alpha * container_mb + (1 - self.alpha) * prev_mb
            )
            prev_s = self._runtime_s.get(tenant)
            self._runtime_s[tenant] = (
                float(runtime_s) if prev_s is None
                else self.alpha * runtime_s + (1 - self.alpha) * prev_s
            )

    def predicted_demand_mb(self, tenant, default=0.0):
        with self._lock:
            return self._demand_mb.get(tenant, default)

    def predicted_runtime_s(self, tenant, default=0.0):
        with self._lock:
            return self._runtime_s.get(tenant, default)

    def snapshot(self):
        """Counters for ``stats()``: tenants tracked + observations."""
        with self._lock:
            return {
                "tenants": len(self._demand_mb),
                "observations": self.observations,
            }


class PredictivePackingPolicy(PackingPolicy):
    """:class:`PackingPolicy` scored by predicted demand and runtime.

    DRR deficits and the fit test are unchanged — a request is only
    admissible if its *actual* container fits right now.  The score
    differs in two ways:

    * the fragmentation residual is computed against the tenant's
      forecast demand (``max(actual, predicted)``), so a tenant whose
      history says it will soon ask for more is packed as if it already
      had — leaving contiguous room for genuinely small tenants;
    * at equal deficit, shorter predicted runtimes win (SJF tie-break),
      which drains the queue faster without starving anyone (the
      deficit term still dominates).

    A forecast larger than every node falls back to the actual
    residual: prediction shapes placement, never admissibility.
    """

    name = "predictive"

    def __init__(self, quantum_mb=1024, predictor=None, alpha=0.3):
        super().__init__(quantum_mb=quantum_mb)
        self.predictor = (
            predictor if predictor is not None
            else DemandPredictor(alpha=alpha)
        )

    def observe(self, tenant, container_mb, runtime_s):
        self.predictor.observe(tenant, container_mb, runtime_s)

    def _predicted_residual(self, request, rm, residual):
        need = rm.normalize_request(request.container_mb)
        forecast = self.predictor.predicted_demand_mb(
            request.tenant, default=need
        )
        want = max(need, forecast)
        fits = [
            node.available_mb - want
            for node in rm.nodes
            if node.available_mb >= want and node.can_allocate(need)
        ]
        return min(fits) if fits else residual

    def select(self, waiting, rm):
        if not waiting:
            return None
        for tenant in {r.tenant for r in waiting}:
            self.deficits[tenant] = (
                self.deficits.get(tenant, 0.0) + self.quantum_mb
            )
        scored = []
        for request in waiting:
            residual = self._residual(request, rm)
            if residual is None:
                continue
            scored.append((
                -self.deficits.get(request.tenant, 0.0),
                round(self.predictor.predicted_runtime_s(
                    request.tenant, default=0.0
                ), 9),
                self._predicted_residual(request, rm, residual),
                request.order,
                request,
            ))
        if not scored:
            return None
        return min(scored)[-1]


#: admission policy registry: lets a policy choice travel to a shard
#: worker process as a plain string (instances do not pickle portably
#: once they hold deficits/predictor state)
POLICIES = ("heap-rule", "packing", "predictive")


def make_policy(name, quantum_mb=1024, alpha=0.3):
    """Instantiate a registered admission policy by name."""
    if name == "heap-rule":
        return HeapRulePolicy()
    if name == "packing":
        return PackingPolicy(quantum_mb=quantum_mb)
    if name == "predictive":
        return PredictivePackingPolicy(quantum_mb=quantum_mb, alpha=alpha)
    raise ValueError(
        f"unknown admission policy {name!r}; expected one of {POLICIES}"
    )


class ConsistentHashRouter:
    """Deterministic tenant→shard (or program→shard) routing.

    A classic consistent-hash ring: each shard owns ``replicas``
    pseudo-random points on a 64-bit circle (SHA-256 of
    ``"shard:<id>:<replica>"``), and a routing key lands on the first
    point clockwise from its own hash.  Properties the sharded server
    relies on:

    * **deterministic** — same key, same shard, on every process and
      every run (hashes are content-derived, never seeded by Python's
      randomized ``hash()``);
    * **affine** — with ``affinity="tenant"`` all submissions of one
      tenant share a shard; with ``"program"`` all tenants of one
      (script, args) program do, which concentrates
      ``ProgramCache``/``OptimizerResultCache``/``PlanCache`` hits;
    * **stable** — adding a shard moves only ~1/N of the keyspace.

    :meth:`pin` installs explicit overrides (used by the rebalancer);
    pins win over the ring.
    """

    AFFINITIES = ("tenant", "program")

    def __init__(self, shards, replicas=64, affinity="tenant"):
        if shards <= 0:
            raise ValueError("router needs at least one shard")
        if affinity not in self.AFFINITIES:
            raise ValueError(
                f"unknown affinity {affinity!r}; "
                f"expected one of {self.AFFINITIES}"
            )
        self.num_shards = shards
        self.affinity = affinity
        self.replicas = replicas
        self._pins = {}
        ring = []
        for shard in range(shards):
            for replica in range(replicas):
                ring.append((self._hash(f"shard:{shard}:{replica}"), shard))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    @staticmethod
    def _hash(text):
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return int(digest[:16], 16)

    def key_for(self, submission):
        """The routing key: the tenant, or a digest of (script, args)."""
        if self.affinity == "tenant":
            return f"tenant:{submission.tenant}"
        text = repr((
            submission.script,
            sorted((submission.args or {}).items(), key=repr),
        ))
        return "program:" + hashlib.sha256(
            text.encode("utf-8")
        ).hexdigest()[:16]

    def shard_for(self, key):
        pinned = self._pins.get(key)
        if pinned is not None:
            return pinned
        index = bisect.bisect_right(self._points, self._hash(key))
        return self._owners[index % len(self._owners)]

    def route(self, submission):
        """(routing key, shard id) for a submission."""
        key = self.key_for(submission)
        return key, self.shard_for(key)

    def pin(self, key, shard):
        """Override the ring for one key (rebalancer hook)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        self._pins[key] = shard

    def unpin(self, key):
        self._pins.pop(key, None)

    @property
    def pins(self):
        return dict(self._pins)
