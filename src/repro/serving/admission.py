"""Admission control for the multi-tenant server (paper Section 5.3).

Every submission ultimately needs one YARN application-master container
sized by the paper's 1.5x-heap rule
(:meth:`repro.cluster.resources.ResourceConfig.container_request_mb`);
the admission policy decides *which* waiting submission gets the next
grant.  Two policies are provided:

* :class:`HeapRulePolicy` — the paper's own semantics: strict FIFO.
  The oldest waiting submission is admitted iff its AM container
  currently fits; nobody jumps the line.  Simple, starvation-free, and
  what the Section 5.3 throughput experiments model.
* :class:`PackingPolicy` — an Elasecutor-style alternative: among the
  submissions that fit right now, pick the one that packs tightest
  (smallest leftover on its best node, minimizing fragmentation),
  with deficit-round-robin credits per tenant so a cheap-to-pack tenant
  cannot starve the others.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PendingRequest:
    """One submission waiting for its AM container."""

    ticket: int
    tenant: str
    container_mb: int
    #: arrival sequence number (FIFO order)
    order: int


class AdmissionPolicy:
    """Strategy interface: pick the next waiting request to admit.

    :meth:`select` is called under the server's admission lock with the
    current waiting list (FIFO order) and the live
    :class:`~repro.cluster.yarn.ResourceManager`; it returns one request
    to grant now, or None if nothing should be admitted yet.  The server
    calls it in a loop after every release, so returning one request at
    a time is sufficient.
    """

    name = "base"

    def select(self, waiting, rm):
        raise NotImplementedError

    def admitted(self, request):
        """Hook invoked after ``request`` was granted its container."""


class HeapRulePolicy(AdmissionPolicy):
    """FIFO admission under the 1.5x-heap container rule.

    Admits the head of the line iff the resource manager can place its
    AM container right now.  A large head blocks younger submissions
    even when they would fit — run-order fairness exactly as a FIFO
    YARN queue behaves in the paper's throughput setup.
    """

    name = "heap-rule"

    def select(self, waiting, rm):
        if not waiting:
            return None
        head = min(waiting, key=lambda r: r.order)
        if rm.can_fit(head.container_mb, tenant=head.tenant):
            return head
        return None


class PackingPolicy(AdmissionPolicy):
    """Best-fit packing with per-tenant DRR fairness credits.

    Each selection pass credits every waiting tenant one ``quantum_mb``
    deficit; an admission charges the grantee its container size.  Among
    the requests that fit right now, the winner is chosen by (highest
    tenant deficit, tightest fit, arrival order) — so tenants that have
    been waiting (or were recently charged) accumulate priority, and
    ties go to the request leaving the least fragmentation on its best
    node.
    """

    name = "packing"

    def __init__(self, quantum_mb=1024):
        self.quantum_mb = quantum_mb
        #: tenant -> accumulated deficit credit (MB)
        self.deficits = {}

    def _residual(self, request, rm):
        """Leftover MB on the tightest node that fits the request."""
        need = rm.normalize_request(request.container_mb)
        if not rm.quota_allows(request.tenant, need):
            return None
        fits = [
            node.available_mb - need
            for node in rm.nodes
            if node.can_allocate(need)
        ]
        return min(fits) if fits else None

    def select(self, waiting, rm):
        if not waiting:
            return None
        for tenant in {r.tenant for r in waiting}:
            self.deficits[tenant] = (
                self.deficits.get(tenant, 0.0) + self.quantum_mb
            )
        scored = []
        for request in waiting:
            residual = self._residual(request, rm)
            if residual is None:
                continue
            scored.append((
                -self.deficits.get(request.tenant, 0.0),
                residual,
                request.order,
                request,
            ))
        if not scored:
            return None
        return min(scored)[-1]

    def admitted(self, request):
        self.deficits[request.tenant] = (
            self.deficits.get(request.tenant, 0.0) - request.container_mb
        )
