"""The multi-tenant serving layer: :class:`ElasticMLServer`.

One server owns one simulated cluster and HDFS and accepts concurrent
tenant :class:`Submission`\\ s.  Each submission flows through

1. **prepare** — compile (through a shared :class:`ProgramCache` of
   master programs, served as deep copies so block identities are
   preserved across tenants) and optimize (through one shared, locked
   :class:`~repro.api.OptimizerResultCache`);
2. **admission** — block until the paper's 1.5x-heap AM container fits
   under the active :class:`~repro.serving.admission.AdmissionPolicy`
   (Section 5.3: allocated AM containers bound concurrency);
3. **execute** — a private :class:`~repro.runtime.Interpreter` against a
   per-submission HDFS view, so fault injection and adaptation never
   leak between tenants.

Simulated results are deterministic: they depend only on the program,
the input metadata, the configuration, and the submission seed — never
on admission interleaving — so a tenant's result is identical to the
same run on a private :class:`~repro.api.ElasticMLSession`.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.api import OptimizerResultCache, RunOutcome, SessionConfig
from repro.chaos import FaultInjector
from repro.cluster.yarn import ResourceManager
from repro.compiler.pipeline import compile_plans, compile_program
from repro.compiler.plan_cache import PlanCache
from repro.cost.calibrate import (
    CalibrationCollector,
    fit_profile,
    resolve_profile,
    use_collector,
)
from repro.errors import ClusterError
from repro.obs import NULL_TRACER, Tracer, use_tracer
from repro.optimizer import (
    ParallelResourceOptimizer,
    ResourceAdapter,
    ResourceOptimizer,
)
from repro.runtime import Interpreter, SimulatedHDFS
from repro.runtime.matrix import DEFAULT_SAMPLE_CAP
from repro.scripts import SCRIPTS, load_script

_UNSET = object()

#: env overrides for the serving thread-pool clamp
MIN_WORKERS_ENV = "REPRO_SERVING_MIN_WORKERS"
MAX_WORKERS_ENV = "REPRO_SERVING_MAX_WORKERS"
_DEFAULT_MIN_WORKERS = 2
_DEFAULT_MAX_WORKERS = 8


class AdmissionCancelled(Exception):
    """A submission parked in admission was aborted by shutdown()."""


def default_serving_workers(min_workers=None, max_workers=None,
                            config=None):
    """Serving thread-pool size scaled to the host: one thread per CPU,
    clamped to ``[min_workers, max_workers]``.

    The floor defaults to 2 (so admission never self-deadlocks behind
    one long run) and the ceiling to 8 (diminishing returns for the
    simulated runtime), but both are configurable: explicit arguments
    win, then :class:`~repro.api.SessionConfig` fields
    (``serving_min_workers``/``serving_max_workers``), then the
    ``REPRO_SERVING_MIN_WORKERS``/``REPRO_SERVING_MAX_WORKERS``
    environment variables, then the defaults.
    """
    import os

    def resolve(explicit, configured, env_name, fallback):
        if explicit is not None:
            return int(explicit)
        if configured is not None:
            return int(configured)
        env = os.environ.get(env_name)
        if env is not None:
            return int(env)
        return fallback

    floor = resolve(
        min_workers,
        getattr(config, "serving_min_workers", None),
        MIN_WORKERS_ENV, _DEFAULT_MIN_WORKERS,
    )
    ceiling = resolve(
        max_workers,
        getattr(config, "serving_max_workers", None),
        MAX_WORKERS_ENV, _DEFAULT_MAX_WORKERS,
    )
    if floor < 1:
        raise ValueError(f"serving worker floor must be >= 1, got {floor}")
    if ceiling < floor:
        raise ValueError(
            f"serving worker ceiling {ceiling} below floor {floor}"
        )
    return max(floor, min(ceiling, os.cpu_count() or 1))


@dataclass(frozen=True)
class Submission:
    """One tenant's unit of work: a script to compile/optimize/execute."""

    #: owning tenant (admission fairness + accounting key)
    tenant: str
    #: bundled script name (see :data:`repro.scripts.SCRIPTS`) or DML text
    script: str
    #: $-argument bindings
    args: dict = field(default_factory=dict)
    #: explicit configuration (skips the resource optimizer)
    resource: object = None
    #: runtime resource adaptation (Section 4)
    adapt: bool = True
    #: fault plan (:class:`repro.chaos.FaultPlan`) for this submission
    chaos: object = None
    #: interpreter sampling seed
    seed: int = 0

    @property
    def source(self):
        return (
            load_script(self.script)
            if self.script in SCRIPTS
            else self.script
        )


@dataclass(frozen=True)
class SubmissionResult:
    """Terminal record of one submission."""

    ticket: int
    tenant: str
    #: "completed" | "failed" | "rejected" | "cancelled"
    status: str
    outcome: RunOutcome | None = None
    error: str | None = None
    #: granted AM container size (0 if never admitted)
    container_mb: int = 0
    #: wall-clock seconds queued for admission
    wait_s: float = 0.0
    #: wall-clock seconds from submit to terminal state
    latency_s: float = 0.0

    @property
    def ok(self):
        return self.status == "completed"

    @property
    def total_time(self):
        """Simulated execution seconds (None unless completed)."""
        return self.outcome.total_time if self.outcome is not None else None


class ProgramCache:
    """Master compiled programs shared across tenants.

    Keyed by (source, args) with a per-entry signature over the
    shape/sparsity metadata of the files the program *reads* (outputs a
    run writes back to HDFS never invalidate).  Hits are served as
    ``copy.deepcopy`` of the pristine master: a deep copy preserves
    block identities, which is what lets every tenant of the same
    program share one :class:`~repro.compiler.plan_cache.PlanCache` and
    one :class:`~repro.api.OptimizerResultCache` remap.
    """

    def __init__(self, max_programs=32):
        self.max_programs = max_programs
        self.hits = 0
        self.misses = 0
        #: masters dropped by the LRU bound (parity with PlanCache)
        self.evictions = 0
        self._lock = threading.Lock()
        #: key -> (reads_sig, master CompiledProgram), LRU order
        self._programs = {}

    def __len__(self):
        return len(self._programs)

    @staticmethod
    def _key(source, args):
        text = repr((source, sorted((args or {}).items())))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @staticmethod
    def _reads_sig(read_set, input_meta):
        sig = []
        for path in sorted(read_set):
            mc = input_meta.get(path)
            if mc is None:
                return None  # a read input disappeared: never matches
            sig.append((path, mc.rows, mc.cols, mc.nnz))
        return tuple(sig)

    def get(self, source, args, input_meta):
        """A private deep copy of the cached master, or None."""
        key = self._key(source, args)
        with self._lock:
            entry = self._programs.get(key)
            if entry is not None:
                reads_sig, master = entry
                if reads_sig == self._reads_sig(
                    OptimizerResultCache.read_set(master), input_meta
                ):
                    self._programs[key] = self._programs.pop(key)
                    self.hits += 1
                    return copy.deepcopy(master)
                del self._programs[key]  # stale metadata
            self.misses += 1
            return None

    def put(self, source, args, input_meta, master):
        """Store a pristine master; returns a private deep copy."""
        key = self._key(source, args)
        sig = self._reads_sig(
            OptimizerResultCache.read_set(master), input_meta
        )
        with self._lock:
            self._programs[key] = (sig, master)
            while len(self._programs) > self.max_programs:
                self._programs.pop(next(iter(self._programs)))
                self.evictions += 1
            return copy.deepcopy(master)


class ElasticMLServer:
    """Multi-tenant serving front end over one simulated cluster.

    ``submit()`` returns immediately with an integer ticket; a bounded
    thread pool prepares submissions concurrently, the admission policy
    gates execution on AM-container capacity, and ``poll()``/``drain()``
    surface :class:`SubmissionResult` records.  All tenants share the
    server's :class:`ProgramCache`, :class:`OptimizerResultCache`, and
    runtime :class:`PlanCache` (each internally locked).
    """

    def __init__(self, cluster=None, params=None, hdfs=None,
                 sample_cap=DEFAULT_SAMPLE_CAP, config=None,
                 opt_cache=_UNSET, policy=None, max_workers=None,
                 queue_limit=1024, retry_policy=None, trace=False,
                 program_cache_entries=32, plan_cache_entries=4096,
                 model_params=None, collector=_UNSET, recorder=None,
                 admission_cluster=None):
        from repro.cluster import paper_cluster
        from repro.cost.constants import DEFAULT_PARAMETERS
        from repro.serving.admission import (
            HeapRulePolicy,
            PendingRequest,
            make_policy,
        )

        self._request_type = PendingRequest
        self.config = config if config is not None else SessionConfig()
        self.cluster = cluster if cluster is not None else paper_cluster()
        #: simulated hardware truth: the constants tenants' runtimes charge
        self.params = params if params is not None else DEFAULT_PARAMETERS
        #: active cross-tenant calibration profile (config or fit_calibration)
        self.calibration_profile = resolve_profile(
            self.config.calibration_profile, self.cluster
        )
        #: optimizer/cost-model belief shared by every tenant
        if model_params is not None:
            self.model_params = model_params
        elif self.calibration_profile is not None:
            self.model_params = self.calibration_profile.parameters()
        else:
            self.model_params = self.params
        #: shared cross-tenant calibration sample sink (internally
        #: locked; every tenant execution feeds it when enabled)
        if collector is _UNSET:
            self.calibration = (
                CalibrationCollector() if self.config.calibrate else None
            )
        else:
            self.calibration = collector
        #: serializes fit/apply so concurrent calibrations cannot
        #: interleave belief updates
        self._calib_lock = threading.Lock()
        self.sample_cap = sample_cap
        self.hdfs = (
            hdfs if hdfs is not None
            else SimulatedHDFS(sample_cap=sample_cap)
        )
        #: the capacity admission runs against.  Normally the full
        #: cluster; a :class:`~repro.serving.shard.ShardedElasticMLServer`
        #: passes its shard's node partition here so concurrency is
        #: bounded shard-locally while optimizer/cost/quota computations
        #: (everything result-affecting) still see ``self.cluster`` —
        #: the partition keeps the node size, so reject-vs-wait verdicts
        #: are identical to the unsharded server's.
        self.admission_cluster = (
            admission_cluster if admission_cluster is not None
            else self.cluster
        )
        self.rm = ResourceManager(self.admission_cluster)
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy if policy is not None else HeapRulePolicy()
        self.queue_limit = queue_limit
        self.retry_policy = retry_policy
        #: shared cross-tenant decision cache (None disables)
        self.opt_cache = (
            self.config.build_opt_cache() if opt_cache is _UNSET
            else opt_cache
        )
        self.program_cache = ProgramCache(max_programs=program_cache_entries)
        #: shared runtime plan memo attached to every tenant's program
        #: copy after optimization (runtime recompiles hit across
        #: tenants because deep copies preserve block ids)
        self.plan_cache = (
            PlanCache(max_plans=plan_cache_entries)
            if self.config.enable_plan_cache else None
        )
        self.trace = bool(trace)
        #: server-wide telemetry; per-submission tracers are absorbed
        #: here (serving.* counters, one ``tenant.<name>`` root span per
        #: submission)
        self.tracer = Tracer() if self.trace else NULL_TRACER
        #: optional :class:`~repro.elastic.TraceRecorder` capturing every
        #: accepted submission as a replayable trace entry
        self.recorder = recorder

        self._executor = ThreadPoolExecutor(
            max_workers=(
                max_workers if max_workers is not None
                else default_serving_workers(config=self.config)
            ),
            thread_name_prefix="repro-serve",
        )
        self._cond = threading.Condition()
        self._tickets = itertools.count(1)
        self._seq = itertools.count()
        self._order = []
        self._results = {}
        self._waiting = {}
        self._granted = {}
        self._closed = False

    # -- submission lifecycle ----------------------------------------------

    def submit(self, submission):
        """Queue a :class:`Submission`; returns its ticket.

        Rejects immediately (a terminal ``"rejected"`` result, not an
        exception) when the queue bound is reached.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("ElasticMLServer is shut down")
            ticket = next(self._tickets)
            self._order.append(ticket)
            backlog = len(self._order) - len(self._results)
            if self.queue_limit and backlog > self.queue_limit:
                result = SubmissionResult(
                    ticket=ticket, tenant=submission.tenant,
                    status="rejected",
                    error=f"queue limit {self.queue_limit} reached",
                )
                self._results[ticket] = result
                self.tracer.incr("serving.submitted")
                self.tracer.incr("serving.rejected")
                self._cond.notify_all()
                return ticket
        self.tracer.incr("serving.submitted")
        if self.recorder is not None:
            self.recorder.record(submission)
        self._executor.submit(self._process, ticket, submission)
        return ticket

    def poll(self, ticket, timeout=None):
        """The ticket's :class:`SubmissionResult`, or None while it is
        still queued/running (waits up to ``timeout`` seconds)."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while ticket not in self._results:
                if deadline is None:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._results[ticket]

    def drain(self):
        """Block until every accepted submission is terminal; returns
        all results in submission order."""
        with self._cond:
            while len(self._results) < len(self._order):
                self._cond.wait()
            return [self._results[t] for t in self._order]

    def shutdown(self, wait=True):
        """Stop accepting submissions and (optionally) wait for the
        in-flight ones.

        Submissions parked in admission are aborted with a terminal
        ``"cancelled"`` result (they can never be granted once the
        server stops releasing containers), so ``shutdown(wait=True)``
        returns even with a backlog queued behind a full cluster.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._executor.shutdown(wait=wait)

    def results(self):
        """Terminal results so far, in submission order."""
        with self._cond:
            return [
                self._results[t] for t in self._order if t in self._results
            ]

    def stats(self):
        """Serving counters + shared-cache effectiveness, one dict."""
        counters = {
            name: self.tracer.counter(name)
            for name in (
                "serving.submitted", "serving.admitted",
                "serving.completed", "serving.failed", "serving.rejected",
                "serving.cancelled",
            )
        }
        counters.update({
            "program_cache.hits": self.program_cache.hits,
            "program_cache.misses": self.program_cache.misses,
            "program_cache.evictions": self.program_cache.evictions,
            "optcache.hits":
                self.opt_cache.hits if self.opt_cache else 0,
            "optcache.misses":
                self.opt_cache.misses if self.opt_cache else 0,
            "plan_cache.entries":
                len(self.plan_cache.plans) if self.plan_cache else 0,
        })
        counters["tenant_usage_mb"] = self.rm.usage_by_tenant()
        for name in (
            "elastic.polls", "elastic.rescales", "elastic.grows",
            "elastic.shrinks", "elastic.spilled_jobs",
            "yarn.quota_denials",
        ):
            counters[name] = self.tracer.counter(name)
        counters["elastic.spill_s"] = self.tracer.counter("elastic.spill_s")
        counters["calib.samples"] = (
            self.calibration.total_samples
            if self.calibration is not None else 0
        )
        counters["calib.fitted_params"] = (
            len(self.calibration_profile.fitted)
            if self.calibration_profile is not None else 0
        )
        return counters

    # -- cross-tenant calibration -------------------------------------------

    def fit_calibration(self, min_samples=None, apply=True):
        """Fit a :class:`~repro.cost.calibrate.CalibrationProfile` from
        the samples every tenant execution fed the shared collector.

        Requires ``config.calibrate=True`` (or an explicit ``collector``).
        Serialized under a server-level lock so concurrent fits cannot
        interleave; with ``apply`` (the default — the cross-tenant
        sharing this server exists for) the fitted constants immediately
        become the belief used to optimize subsequent submissions.
        """
        if self.calibration is None:
            raise RuntimeError(
                "server does not collect calibration samples; construct "
                "it with SessionConfig(calibrate=True)"
            )
        floor = (
            min_samples if min_samples is not None
            else self.config.calibration_min_samples
        )
        with self._calib_lock:
            if self.tracer.enabled:
                with use_tracer(self.tracer):
                    profile = fit_profile(
                        self.calibration, self.cluster,
                        base_params=self.model_params, min_samples=floor,
                    )
            else:
                profile = fit_profile(
                    self.calibration, self.cluster,
                    base_params=self.model_params, min_samples=floor,
                )
            if apply:
                self.calibration_profile = profile
                self.model_params = profile.parameters()
        return profile

    # -- per-submission pipeline -------------------------------------------

    def _process(self, ticket, submission):
        tracer = Tracer() if self.trace else NULL_TRACER
        started = time.monotonic()
        with use_tracer(tracer):
            with tracer.span(f"tenant.{submission.tenant}", ticket=ticket):
                try:
                    result = self._serve(
                        ticket, submission, tracer, started
                    )
                except AdmissionCancelled as exc:
                    tracer.incr("serving.cancelled")
                    result = SubmissionResult(
                        ticket=ticket, tenant=submission.tenant,
                        status="cancelled",
                        error=str(exc),
                        latency_s=time.monotonic() - started,
                    )
                except Exception as exc:  # tenant isolation: never bring
                    tracer.incr("serving.failed")  # the server down
                    result = SubmissionResult(
                        ticket=ticket, tenant=submission.tenant,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                        latency_s=time.monotonic() - started,
                    )
        self._finish(ticket, result, tracer)

    def _serve(self, ticket, submission, tracer, started):
        with tracer.span("serve.prepare"):
            source = submission.source
            compiled = self._compile(source, submission.args)
            if submission.resource is not None:
                optimizer_result = None
                resource = submission.resource
                compile_plans(compiled, resource)
            else:
                optimizer_result = self._optimize(
                    source, submission.args, compiled
                )
                resource = optimizer_result.resource
            if self.plan_cache is not None:
                # swap in the shared cross-tenant memo (the optimizer
                # attaches a private one during enumeration)
                compiled.plan_cache = self.plan_cache
            container_mb = resource.container_request_mb(self.cluster)

        quota = self._ensure_quota(submission.tenant)
        try:
            impossible = self.rm.max_concurrent(container_mb) == 0
        except ClusterError:
            # above the max-allocation constraint: same verdict
            impossible = True
        if quota is not None and container_mb > quota:
            # would wait on its own quota forever: reject up front
            impossible = True
        if impossible:
            tracer.incr("serving.rejected")
            return SubmissionResult(
                ticket=ticket, tenant=submission.tenant,
                status="rejected",
                error=(
                    f"AM container of {container_mb} MB can never be "
                    "placed on this cluster"
                ),
                container_mb=container_mb,
                latency_s=time.monotonic() - started,
            )

        queued = time.monotonic()
        container = self._acquire(ticket, submission.tenant, container_mb)
        wait_s = time.monotonic() - queued
        tracer.incr("serving.admitted")
        if tracer.enabled:
            tracer.gauge(
                f"serving.tenant_share.{submission.tenant}",
                self.rm.tenant_share(submission.tenant),
            )
        try:
            with tracer.span("serve.execute"):
                exec_result = self._execute(compiled, resource, submission)
        finally:
            self._release(container)
        tracer.incr("serving.completed")
        with self._cond:
            # demand feedback for predictive policies (no-op otherwise)
            self.policy.observe(
                submission.tenant, container.memory_mb,
                exec_result.total_time,
            )
        outcome = RunOutcome(
            result=exec_result,
            resource=exec_result.final_resource,
            optimizer_result=optimizer_result,
            compiled=compiled,
            trace=tracer if tracer.enabled else None,
        )
        return SubmissionResult(
            ticket=ticket, tenant=submission.tenant, status="completed",
            outcome=outcome, container_mb=container.memory_mb,
            wait_s=wait_s, latency_s=time.monotonic() - started,
        )

    def _ensure_quota(self, tenant):
        """Apply ``config.tenant_quota_share`` to this tenant (idempotent;
        quotas are per-tenant so they can only be installed once the
        tenant is seen).  Returns the tenant's quota in MB, or None."""
        share = self.config.tenant_quota_share
        if share is None:
            return None
        quota = self.rm.tenant_quota_mb(tenant)
        if quota is None:
            quota = max(
                float(self.cluster.min_allocation_mb),
                float(int(share * self.cluster.total_memory_mb)),
            )
            self.rm.set_tenant_quota(tenant, quota)
        return quota

    def _compile(self, source, args):
        input_meta = self.hdfs.input_meta()
        compiled = self.program_cache.get(source, args, input_meta)
        if compiled is not None:
            return compiled
        master = compile_program(source, args, input_meta)
        return self.program_cache.put(source, args, input_meta, master)

    def _make_optimizer(self):
        options = self.config.optimizer_options()
        if options.parallel and options.num_workers > 1:
            return ParallelResourceOptimizer(
                self.cluster, self.model_params, options=options
            )
        return ResourceOptimizer(
            self.cluster, self.model_params, options=options
        )

    def _optimize(self, source, args, compiled):
        cache = self.opt_cache
        if cache is None:
            return self._make_optimizer().optimize(compiled)
        key = cache.signature(
            source, args, self.hdfs.input_meta(), self.cluster,
            self.model_params, self.config.optimizer_options(),
            compiled=compiled,
        )
        cached = cache.lookup(key, compiled)
        if cached is not None:
            compile_plans(compiled, cached.resource)
            return cached
        result = self._make_optimizer().optimize(compiled)
        cache.store(key, compiled, result)
        return result

    def _execute(self, compiled, resource, submission):
        injector = (
            FaultInjector(submission.chaos, retry_policy=self.retry_policy)
            if submission.chaos is not None else None
        )
        # a per-submission HDFS view isolates the injector slot; the
        # file namespace itself stays shared
        hdfs = (
            self.hdfs.view(injector=injector)
            if injector is not None else self.hdfs
        )
        adapter = (
            # the adapter re-optimizes tiny block scopes: always serial
            # (see ElasticMLSession.execute for the rationale)
            ResourceAdapter(ResourceOptimizer(
                self.cluster, self.model_params,
                options=replace(
                    self.config.optimizer_options(), parallel=False
                ),
            ))
            if submission.adapt else None
        )
        brain = None
        if self.config.elastic:
            from repro.elastic import ElasticBrain

            # live load signal: the RM's instantaneous utilization.  The
            # poll times are wall-clock dependent, so the *decisions* are
            # not reproducible across runs — but every decision is a
            # time-only perturbation, so outputs stay byte-identical.
            brain = ElasticBrain(
                policy=self.config.elastic_policy,
                cluster=self.cluster,
                utilization=lambda _t: self.rm.utilization,
                tenant=submission.tenant,
            )
        interpreter = Interpreter(
            self.cluster,
            params=self.params,
            hdfs=hdfs,
            sample_cap=self.sample_cap,
            adapter=adapter,
            seed=submission.seed,
            injector=injector,
            brain=brain,
        )
        if self.calibration is not None:
            with use_collector(self.calibration):
                return interpreter.run(compiled, resource)
        return interpreter.run(compiled, resource)

    # -- admission ----------------------------------------------------------

    def _acquire(self, ticket, tenant, container_mb):
        """Block until the admission policy grants this submission its
        AM container, or raise :class:`AdmissionCancelled` once
        shutdown() makes a grant impossible."""
        request = self._request_type(
            ticket=ticket, tenant=tenant, container_mb=container_mb,
            order=next(self._seq),
        )
        with self._cond:
            self._waiting[ticket] = request
            self._kick_locked()
            while ticket not in self._granted:
                # checked after _kick_locked: a grant that squeaked in
                # before shutdown still runs to completion
                if self._closed:
                    self._waiting.pop(ticket, None)
                    raise AdmissionCancelled(
                        "server shut down while queued for admission"
                    )
                self._cond.wait()
            return self._granted.pop(ticket)

    def _release(self, container):
        with self._cond:
            self.rm.release(container)
            self._kick_locked()

    def _kick_locked(self):
        """Grant as many waiting requests as policy + capacity allow."""
        while self._waiting:
            request = self.policy.select(
                list(self._waiting.values()), self.rm
            )
            if request is None:
                break
            container = self.rm.try_allocate(
                request.container_mb, tenant=request.tenant
            )
            if container is None:
                break
            del self._waiting[request.ticket]
            self.policy.admitted(request)
            self._granted[request.ticket] = container
            self._cond.notify_all()

    def _finish(self, ticket, result, tracer):
        with self._cond:
            if self.tracer.enabled and tracer.enabled:
                self.tracer.absorb(tracer)
            self._results[ticket] = result
            self._cond.notify_all()
