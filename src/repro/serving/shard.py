"""Sharded multi-process serving: :class:`ShardedElasticMLServer`.

The single-process :class:`~repro.serving.server.ElasticMLServer` is
GIL-bound: its thread pool interleaves compile/optimize/execute on one
core.  This front end partitions the simulated cluster into N
node-disjoint shards (:meth:`~repro.cluster.config.ClusterConfig.partition`)
and runs one full ``ElasticMLServer`` per shard in its own *process*,
so shards prepare and execute truly in parallel.

Architecture::

    parent process                      shard worker process (xN)
    ─────────────────────────          ──────────────────────────────
    submit() ── route ──► cmd queue ─► main loop ─► ElasticMLServer
    poll()/drain() ◄─ collector ◄── event queue ◄─ forwarder thread
    stats()/shutdown()                  (results, stats, final+tracer)

* **Routing** is deterministic: a :class:`ConsistentHashRouter` maps the
  tenant (or the program, with ``affinity="program"``) to a shard, so a
  tenant's repeat submissions always land where its
  ``ProgramCache``/``OptimizerResultCache``/``PlanCache`` entries live.
* **Determinism**: each shard server optimizes and executes against the
  *full* cluster config — only its admission ``ResourceManager`` sees
  the shard's node partition (``admission_cluster``).  Simulated
  results depend only on (program, input metadata, config, seed), so
  every tenant's result is byte-identical to its serial single-session
  run regardless of shard count, and a 1-shard front end is
  byte-identical to a plain ``ElasticMLServer``.
* **Snapshots** reuse the PR 8 start-method machinery: under ``fork``
  the worker spec (cluster, params, HDFS file metadata) is inherited
  copy-on-write for free; ``pickle`` ships an explicit snapshot for
  spawn-only platforms.  Workers start lazily on the first
  ``submit()``, so all inputs must be prepared on ``hdfs`` before then.
* **Prediction & rebalancing**: the parent feeds a per-tenant EWMA
  :class:`~repro.serving.admission.DemandPredictor` from completed
  results; every ``rebalance_every`` completions it compares predicted
  outstanding seconds per shard and pins the hottest routing key of the
  most loaded shard onto the least loaded one.  Shard-local
  ``predictive`` admission policies keep their own predictors.
* **Telemetry**: each shard runs its own tracer; at shutdown the final
  per-shard tracer dicts are absorbed into the parent tracer via
  :meth:`~repro.obs.Tracer.absorb`, whose counter/gauge merges are
  order-independent.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
from dataclasses import replace

from repro.api import SessionConfig
from repro.obs import NULL_TRACER, Tracer
from repro.runtime import SimulatedHDFS
from repro.runtime.matrix import DEFAULT_SAMPLE_CAP
from repro.serving.admission import ConsistentHashRouter, DemandPredictor
from repro.serving.server import (
    SubmissionResult,
    default_serving_workers,
)

#: how the worker spec reaches a shard process (PR 8 vocabulary):
#: "fork" inherits it copy-on-write, "pickle" ships explicit bytes,
#: "auto" picks fork when the platform has it
START_METHODS = ("auto", "fork", "pickle")

#: default load-imbalance trigger: rebalance when the most loaded
#: shard's predicted outstanding seconds exceed this multiple of the
#: least loaded shard's
REBALANCE_FACTOR = 1.5


def _resolve_start_method(mode):
    if mode not in START_METHODS:
        raise ValueError(
            f"unknown start method {mode!r}; expected one of {START_METHODS}"
        )
    if mode != "auto":
        return mode
    import multiprocessing as mp

    return "fork" if "fork" in mp.get_all_start_methods() else "pickle"


def plan_rebalance(shard_loads, key_loads, factor=REBALANCE_FACTOR):
    """Pick one routing-key move that evens predicted load, or None.

    ``shard_loads`` maps shard id -> predicted outstanding seconds;
    ``key_loads`` maps shard id -> {routing key -> predicted seconds}.
    Returns ``(key, src, dst)`` moving the hottest key of the most
    loaded shard to the least loaded one, but only when the imbalance
    exceeds ``factor`` — small skews are not worth breaking affinity
    (a moved key restarts cold on the destination shard's caches).
    Pure and deterministic (ties break on ids) so it unit-tests without
    processes.
    """
    if len(shard_loads) < 2:
        return None
    src = max(sorted(shard_loads), key=lambda s: shard_loads[s])
    dst = min(sorted(shard_loads), key=lambda s: shard_loads[s])
    if src == dst or shard_loads[src] <= factor * shard_loads[dst] + 1e-9:
        return None
    candidates = key_loads.get(src)
    if not candidates:
        return None
    key = max(sorted(candidates), key=lambda k: candidates[k])
    return key, src, dst


def _ship_result(result, global_ticket, detail):
    """Rewrite a shard-local result for the parent: global ticket, and
    (in the default "light" detail) without the compiled program and
    per-submission tracer — the heavyweight fields nobody polls across
    a process boundary.  The canonical identity fields
    (``outcome.result``, ``outcome.resource``) always survive."""
    result = replace(result, ticket=global_ticket)
    if detail == "full" or result.outcome is None:
        return result
    outcome = replace(result.outcome, compiled=None, trace=None)
    return replace(result, outcome=outcome)


def _shard_worker_main(payload, cmd_queue, event_queue):
    """Entry point of one shard process: run a private
    ``ElasticMLServer`` over the shard's cluster partition, forwarding
    terminal results (and, on shutdown, final stats + tracer) to the
    parent through the shared event queue."""
    from repro.serving.server import ElasticMLServer

    spec = pickle.loads(payload) if isinstance(payload, bytes) else payload
    shard_id = spec["shard_id"]
    config = spec["config"]
    if config.opt_workers > 1 and config.opt_backend == "process":
        # shard workers are daemonic and cannot fork grandchildren;
        # the thread backend chooses byte-identical configurations
        config = replace(config, opt_backend="thread")
    server = ElasticMLServer(
        cluster=spec["cluster"],
        params=spec["params"],
        hdfs=spec["hdfs"],
        sample_cap=spec["sample_cap"],
        config=config,
        policy=spec["policy"],
        max_workers=spec["max_workers"],
        queue_limit=0,  # the parent enforces the global queue bound
        retry_policy=spec["retry_policy"],
        trace=spec["trace"],
        model_params=spec["model_params"],
        admission_cluster=spec["admission_cluster"],
    )
    if server.tracer.enabled:
        server.tracer.gauge("shard.id", shard_id)
    detail = spec["result_detail"]
    outstanding = {}  # local ticket -> global ticket, arrival order
    lock = threading.Lock()
    wake = threading.Event()
    stop = threading.Event()

    def forward():
        while True:
            with lock:
                pending = list(outstanding.items())
            if not pending:
                if stop.is_set():
                    return
                wake.wait(0.1)
                wake.clear()
                continue
            # park on the oldest outstanding ticket (any completion
            # notifies the server condition), then sweep them all
            server.poll(pending[0][0], timeout=0.2)
            for local, global_ticket in pending:
                result = server.poll(local)
                if result is not None:
                    with lock:
                        outstanding.pop(local, None)
                    event_queue.put((
                        "result", shard_id,
                        _ship_result(result, global_ticket, detail),
                    ))

    forwarder = threading.Thread(
        target=forward, name=f"repro-shard-{shard_id}-fwd", daemon=True
    )
    forwarder.start()

    while True:
        cmd = cmd_queue.get()
        kind = cmd[0]
        if kind == "submit":
            _, global_ticket, submission = cmd
            try:
                local = server.submit(submission)
            except Exception as exc:
                event_queue.put((
                    "result", shard_id,
                    SubmissionResult(
                        ticket=global_ticket, tenant=submission.tenant,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                ))
                continue
            with lock:
                outstanding[local] = global_ticket
            wake.set()
        elif kind == "stats":
            _, req_id = cmd
            event_queue.put(("stats", shard_id, req_id, server.stats()))
        elif kind == "shutdown":
            server.shutdown(wait=True)
            stop.set()
            wake.set()
            forwarder.join()
            event_queue.put((
                "final", shard_id, server.stats(),
                server.tracer.to_dict() if server.tracer.enabled else None,
            ))
            return


class ShardedElasticMLServer:
    """Multi-process serving front end over a partitioned cluster.

    Drop-in for :class:`~repro.serving.server.ElasticMLServer`:
    ``submit()`` returns a global ticket, ``poll()``/``drain()``/
    ``results()``/``stats()``/``shutdown()`` behave identically.  See
    the module docstring for the architecture.

    Shard processes start lazily on the first ``submit()`` so that
    inputs prepared on ``self.hdfs`` beforehand are visible to every
    shard (fork inherits them; pickle snapshots them at start).
    """

    def __init__(self, shards=2, cluster=None, params=None, hdfs=None,
                 sample_cap=DEFAULT_SAMPLE_CAP, config=None,
                 policy="heap-rule", max_workers=None, queue_limit=1024,
                 retry_policy=None, trace=False, model_params=None,
                 recorder=None, affinity=None, rebalance_every=None,
                 rebalance_factor=REBALANCE_FACTOR, start_method=None,
                 result_detail="light"):
        from repro.cluster import paper_cluster

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if result_detail not in ("light", "full"):
            raise ValueError(
                f"result_detail must be 'light' or 'full', "
                f"got {result_detail!r}"
            )
        self.config = config if config is not None else SessionConfig()
        self.cluster = cluster if cluster is not None else paper_cluster()
        self.params = params
        self.model_params = model_params
        self.hdfs = (
            hdfs if hdfs is not None
            else SimulatedHDFS(sample_cap=sample_cap)
        )
        self.sample_cap = sample_cap
        self.num_shards = shards
        self.partitions = self.cluster.partition(shards)
        self.policy = policy
        self.max_workers = max_workers
        self.queue_limit = queue_limit
        self.retry_policy = retry_policy
        self.recorder = recorder
        self.result_detail = result_detail
        self.trace = bool(trace)
        self.tracer = Tracer() if self.trace else NULL_TRACER
        self.start_method = _resolve_start_method(
            start_method if start_method is not None
            else self.config.shard_start_method
        )
        #: explicit spec bytes shipped to workers (0 under fork)
        self.snapshot_bytes = 0
        self.router = ConsistentHashRouter(
            shards,
            affinity=(
                affinity if affinity is not None
                else self.config.shard_affinity
            ),
        )
        self.predictor = DemandPredictor(alpha=self.config.demand_alpha)
        self.rebalance_every = (
            rebalance_every if rebalance_every is not None
            else self.config.shard_rebalance_every
        )
        self.rebalance_factor = rebalance_factor

        self._cond = threading.Condition()
        self._tickets = itertools.count(1)
        self._order = []
        self._results = {}
        #: global ticket -> (shard, routing key, tenant) while in flight
        self._inflight = {}
        self._closed = False
        self._started = False
        self._procs = []
        self._cmds = []
        self._events = None
        self._collector = None
        self._stats_ids = itertools.count(1)
        #: shard -> (req_id, stats dict) of the freshest reply
        self._shard_stats = {}
        self._final_stats = {}
        self._finals = threading.Event()
        self._joined = False
        self._rebalances = 0
        self._parent_submitted = 0
        self._parent_rejected = 0
        self._completed_since_rebalance = 0

    # -- worker lifecycle ---------------------------------------------------

    def _spec(self, shard_id):
        return {
            "shard_id": shard_id,
            "cluster": self.cluster,
            "admission_cluster": self.partitions[shard_id],
            "params": self.params,
            "model_params": self.model_params,
            "hdfs": self.hdfs,
            "sample_cap": self.sample_cap,
            "config": self.config,
            "policy": self.policy,
            "max_workers": self.max_workers,
            "retry_policy": self.retry_policy,
            "trace": self.trace,
            "result_detail": self.result_detail,
        }

    def _start_locked(self):
        import multiprocessing as mp

        ctx = mp.get_context(
            "fork" if self.start_method == "fork" else None
        )
        self._events = ctx.Queue()
        for shard_id in range(self.num_shards):
            spec = self._spec(shard_id)
            if self.start_method == "pickle":
                payload = pickle.dumps(spec, pickle.HIGHEST_PROTOCOL)
                self.snapshot_bytes += len(payload)
            else:
                payload = spec
            cmd_queue = ctx.Queue()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(payload, cmd_queue, self._events),
                name=f"repro-shard-{shard_id}",
                daemon=True,  # orphaned shards die with the parent
            )
            proc.start()
            self._procs.append(proc)
            self._cmds.append(cmd_queue)
        self._collector = threading.Thread(
            target=self._collect, name="repro-shard-collector", daemon=True
        )
        self._collector.start()
        self._started = True
        if self.tracer.enabled:
            self.tracer.gauge("shard.count", self.num_shards)
            self.tracer.event(
                "shard.start",
                shards=self.num_shards,
                start_method=self.start_method,
                snapshot_bytes=self.snapshot_bytes,
            )

    def _collect(self):
        import queue as queue_mod

        finals = 0
        while finals < self.num_shards:
            try:
                event = self._events.get(timeout=0.5)
            except queue_mod.Empty:
                dead = self._reap_dead_locked()
                finals += dead
                continue
            kind = event[0]
            if kind == "result":
                self._on_result(event[2])
            elif kind == "stats":
                _, shard_id, req_id, stats = event
                with self._cond:
                    self._shard_stats[shard_id] = (req_id, stats)
                    self._cond.notify_all()
            elif kind == "final":
                _, shard_id, stats, tracer_dict = event
                finals += 1
                with self._cond:
                    self._final_stats[shard_id] = stats
                    if tracer_dict is not None and self.tracer.enabled:
                        self.tracer.absorb(Tracer.from_dict(tracer_dict))
                    self._cond.notify_all()
        self._finals.set()
        with self._cond:
            self._cond.notify_all()

    def _reap_dead_locked(self):
        """Synthesize failures for shards that died without a final
        (crash/kill), so drain() and shutdown() cannot hang."""
        reaped = 0
        with self._cond:
            for shard_id, proc in enumerate(self._procs):
                if proc.is_alive() or shard_id in self._final_stats:
                    continue
                self._final_stats[shard_id] = {}
                reaped += 1
                for ticket, (shard, _key, tenant) in list(
                    self._inflight.items()
                ):
                    if shard != shard_id:
                        continue
                    del self._inflight[ticket]
                    self._results[ticket] = SubmissionResult(
                        ticket=ticket, tenant=tenant, status="failed",
                        error=f"shard worker {shard_id} died",
                    )
                self._cond.notify_all()
        return reaped

    def _on_result(self, result):
        with self._cond:
            entry = self._inflight.pop(result.ticket, None)
            self._results[result.ticket] = result
            if result.status == "completed" and entry is not None:
                self.predictor.observe(
                    entry[2], result.container_mb, result.total_time or 0.0
                )
                self._completed_since_rebalance += 1
                if (
                    self.rebalance_every
                    and self._completed_since_rebalance
                    >= self.rebalance_every
                ):
                    self._completed_since_rebalance = 0
                    self._rebalance_locked()
            self._cond.notify_all()

    def _rebalance_locked(self):
        shard_loads = {shard: 0.0 for shard in range(self.num_shards)}
        key_loads = {}
        for _ticket, (shard, key, tenant) in self._inflight.items():
            weight = max(
                self.predictor.predicted_runtime_s(tenant, default=1.0),
                1e-6,
            )
            shard_loads[shard] += weight
            key_loads.setdefault(shard, {})
            key_loads[shard][key] = key_loads[shard].get(key, 0.0) + weight
        move = plan_rebalance(
            shard_loads, key_loads, factor=self.rebalance_factor
        )
        if move is None:
            return
        key, src, dst = move
        self.router.pin(key, dst)
        self._rebalances += 1
        if self.tracer.enabled:
            self.tracer.incr("shard.rebalances")
            self.tracer.event(
                "shard.rebalance", key=key, source=src, destination=dst,
                source_load_s=round(shard_loads[src], 3),
                destination_load_s=round(shard_loads[dst], 3),
            )

    # -- submission lifecycle -----------------------------------------------

    def submit(self, submission):
        """Route a :class:`~repro.serving.Submission` to its shard;
        returns a global ticket.  Rejects with a terminal ``"rejected"``
        result when the global queue bound is reached."""
        with self._cond:
            if self._closed:
                raise RuntimeError("ShardedElasticMLServer is shut down")
            if not self._started:
                self._start_locked()
            ticket = next(self._tickets)
            self._order.append(ticket)
            self._parent_submitted += 1
            backlog = len(self._order) - len(self._results)
            if self.queue_limit and backlog > self.queue_limit:
                self._parent_rejected += 1
                self._results[ticket] = SubmissionResult(
                    ticket=ticket, tenant=submission.tenant,
                    status="rejected",
                    error=f"queue limit {self.queue_limit} reached",
                )
                self._cond.notify_all()
                return ticket
            key, shard = self.router.route(submission)
            self._inflight[ticket] = (shard, key, submission.tenant)
        if self.recorder is not None:
            self.recorder.record(submission)
        self._cmds[shard].put(("submit", ticket, submission))
        return ticket

    def poll(self, ticket, timeout=None):
        """The ticket's :class:`~repro.serving.SubmissionResult`, or
        None while it is still queued/running (waits up to ``timeout``
        seconds)."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while ticket not in self._results:
                if deadline is None:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._results[ticket]

    def drain(self):
        """Block until every accepted submission is terminal; returns
        all results in submission order."""
        with self._cond:
            while len(self._results) < len(self._order):
                self._cond.wait()
            return [self._results[t] for t in self._order]

    def results(self):
        """Terminal results so far, in submission order."""
        with self._cond:
            return [
                self._results[t] for t in self._order if t in self._results
            ]

    def shutdown(self, wait=True):
        """Stop accepting submissions, drain the shards, absorb their
        tracers, and reap the worker processes.

        With ``wait=False`` the teardown continues on a background
        thread; ``drain()``/``poll()`` keep working meanwhile.
        """
        with self._cond:
            already = self._closed
            self._closed = True
            self._cond.notify_all()
        if not self._started:
            self._finals.set()
            return
        if not already:
            for cmd_queue in self._cmds:
                cmd_queue.put(("shutdown",))
        if wait:
            self._join()
        else:
            threading.Thread(
                target=self._join, name="repro-shard-reaper", daemon=True
            ).start()

    def _join(self):
        self._finals.wait(timeout=300)
        with self._cond:
            if self._joined:
                return
            self._joined = True
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        with self._cond:
            # anything still unresolved after every shard finalized
            # (worker died mid-flight) gets a terminal failure so
            # drain() cannot hang
            for ticket, (shard, _key, tenant) in list(
                self._inflight.items()
            ):
                del self._inflight[ticket]
                self._results[ticket] = SubmissionResult(
                    ticket=ticket, tenant=tenant, status="failed",
                    error=f"shard worker {shard} died",
                )
            self._cond.notify_all()

    # -- stats --------------------------------------------------------------

    def stats(self):
        """Aggregated serving counters: the per-shard
        ``ElasticMLServer.stats()`` dicts summed key-wise, plus the
        front end's own routing/prediction/rebalancing counters and the
        raw per-shard dicts under ``"per_shard"``."""
        per_shard = self._snapshot_shard_stats()
        merged = {}
        for stats in per_shard.values():
            for key, value in stats.items():
                if isinstance(value, dict):
                    bucket = merged.setdefault(key, {})
                    for sub, amount in value.items():
                        bucket[sub] = bucket.get(sub, 0) + amount
                elif isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
        with self._cond:
            merged["serving.submitted"] = (
                merged.get("serving.submitted", 0) + self._parent_rejected
            )
            merged["serving.rejected"] = (
                merged.get("serving.rejected", 0) + self._parent_rejected
            )
            merged["shard.count"] = self.num_shards
            merged["shard.rebalances"] = self._rebalances
            merged["shard.start_method"] = self.start_method
            merged["shard.snapshot_bytes"] = self.snapshot_bytes
            merged["router.pins"] = len(self.router.pins)
            prediction = self.predictor.snapshot()
            merged["predictor.tenants"] = prediction["tenants"]
            merged["predictor.observations"] = prediction["observations"]
            merged["per_shard"] = {
                shard: dict(stats) for shard, stats in per_shard.items()
            }
        return merged

    def _snapshot_shard_stats(self):
        """Fresh per-shard stats: live shards are asked over their
        command queues; shut-down (or dead) shards answer with their
        final snapshot."""
        with self._cond:
            if not self._started:
                return {}
            finals = dict(self._final_stats)
        if len(finals) >= self.num_shards:
            return finals
        req_id = next(self._stats_ids)
        for shard_id, cmd_queue in enumerate(self._cmds):
            if shard_id not in finals:
                cmd_queue.put(("stats", req_id))
        deadline = time.monotonic() + 30
        with self._cond:
            while time.monotonic() < deadline:
                snapshot = dict(self._final_stats)
                for shard_id, (seen, stats) in self._shard_stats.items():
                    if shard_id not in snapshot and seen == req_id:
                        snapshot[shard_id] = stats
                if len(snapshot) >= self.num_shards:
                    return snapshot
                self._cond.wait(0.5)
            return snapshot
