"""Developer tooling: plan explanation and the command-line interface."""

from repro.tools.explain import explain_program, explain_plan
from repro.tools.whatif import WhatIfHeatmap, what_if_heatmap, what_if_profile

__all__ = [
    "explain_program",
    "explain_plan",
    "WhatIfHeatmap",
    "what_if_heatmap",
    "what_if_profile",
]
