"""Command-line interface.

Mirrors how SystemML's YARN client is driven from the shell:

    python -m repro run script.dml -arg X=data/X -arg Y=data/y [--static CP,MR]
    python -m repro optimize script.dml -arg X=data/X ...   # alias: opt
    python -m repro opt script.dml ... --workers 4 --opt-backend process
    python -m repro explain script.dml -arg X=data/X [--level hops]
    python -m repro whatif script.dml ... [--cp 1,10,20 --mr 1,5]
    python -m repro scripts                     # list bundled ML programs
    python -m repro demo LinregCG --size M      # generate data + run
    python -m repro trace LinregCG M [--json]   # traced run: spans + counters
    python -m repro serve --tenants 32 --mix LinregDS:XS,LinregCG:XS
                                                # multi-tenant serving trace
    python -m repro elastic --tenants 24 --bursts 3 [--json]
                                                # bursty trace: static vs
                                                # autoscaling-Brain arms
    python -m repro calibrate LinregDS S --runs 3 --drift 42 --out prof.json
                                                # fit cost constants from
                                                # traced actuals
    python -m repro run script.dml ... --calibration prof.json
                                                # optimize under a fitted
                                                # profile

Input files referenced by ``-arg`` that do not yet exist on the
session's simulated HDFS are materialized as random dense matrices with
``--gen NAME=ROWSxCOLS[@SPARSITY]``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.api import ElasticMLSession
from repro.cluster import ResourceConfig
from repro.scripts import SCRIPTS, load_script
from repro.tools.explain import explain_program
from repro.workloads import prepare_inputs, scenario


def _parse_value(text):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_args_list(pairs):
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"-arg expects NAME=VALUE, got {pair!r}")
        key, value = pair.split("=", 1)
        out[key] = _parse_value(value)
    return out


def _parse_gen(session, specs):
    for spec in specs or []:
        if "=" not in spec:
            raise SystemExit(f"--gen expects NAME=ROWSxCOLS, got {spec!r}")
        name, shape = spec.split("=", 1)
        sparsity = 1.0
        if "@" in shape:
            shape, sp = shape.split("@", 1)
            sparsity = float(sp)
        rows, cols = (int(v) for v in shape.lower().split("x"))
        session.hdfs.create_dense_input(name, rows, cols, sparsity=sparsity)
        print(f"generated {name}: {rows} x {cols} (sparsity {sparsity})")


def _load_source(script):
    if script in SCRIPTS:
        return load_script(script)
    path = pathlib.Path(script)
    if not path.exists():
        raise SystemExit(f"no bundled script or file named {script!r}")
    return path.read_text()


def _static_resource(text):
    parts = text.split(",")
    if len(parts) != 2:
        raise SystemExit("--static expects CP_MB,MR_MB")
    return ResourceConfig(float(parts[0]), float(parts[1]))


def _add_common(parser):
    parser.add_argument("script", help="bundled script name or .dml path")
    parser.add_argument("-arg", action="append", dest="args",
                        metavar="NAME=VALUE", help="script argument")
    parser.add_argument("--gen", action="append", metavar="NAME=RxC[@SP]",
                        help="generate a random input matrix on HDFS")


def _add_calibration_flag(parser):
    parser.add_argument("--calibration", metavar="PROFILE", default=None,
                        help="path to a saved CalibrationProfile whose "
                             "fitted constants drive the optimizer")


def _apply_calibration_flag(session, args):
    profile = getattr(args, "calibration", None)
    if profile is not None:
        session.apply_calibration(profile)


def _add_opt_flags(parser):
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="parallel optimizer workers "
                             "(default: serial enumeration)")
    parser.add_argument("--opt-backend", default=None,
                        choices=["serial", "thread", "process"],
                        help="enumeration backend; choosing thread/process "
                             "without --workers implies 4 workers")
    parser.add_argument("--auto-serial-points", type=int, default=None,
                        metavar="N",
                        help="grid-work threshold below which the process "
                             "backend falls back to serial (0 disables)")
    parser.add_argument("--chunk-points", type=int, default=None,
                        metavar="N",
                        help="CP grid points per parallel-enumeration "
                             "chunk (default: adaptive)")
    parser.add_argument("--no-vector-costing", action="store_true",
                        help="disable vectorized MR-grid batch costing "
                             "(ablation; chosen configs are identical)")


def _apply_opt_flags(session, args):
    """Translate --workers/--opt-backend into session optimizer knobs."""
    backend = getattr(args, "opt_backend", None)
    workers = getattr(args, "workers", None)
    auto = getattr(args, "auto_serial_points", None)
    if auto is not None:
        session.auto_serial_points = auto
    chunk = getattr(args, "chunk_points", None)
    if chunk is not None:
        session.chunk_points = chunk
    if getattr(args, "no_vector_costing", False):
        session.enable_vector_costing = False
    if backend == "serial":
        session.opt_workers = 0
        return
    if backend is not None:
        session.opt_backend = backend
    if workers is not None:
        session.opt_workers = workers
    elif backend is not None:
        session.opt_workers = 4


def _describe_optimizer(result):
    """One-line backend summary for run/optimize/trace output."""
    if result is None:
        return None
    if getattr(result, "from_cache", False):
        return "cached (enumeration skipped)"
    backend = getattr(result, "backend", None)
    if backend is None:
        return "serial"
    return (f"{backend} ({result.num_workers} workers, "
            f"{result.tasks_dispatched} tasks)")


def _add_chaos(parser):
    parser.add_argument("--chaos-seed", type=int, default=None,
                        metavar="SEED",
                        help="enable deterministic fault injection with "
                             "this seed")
    parser.add_argument("--fault-rate", type=float, default=0.1,
                        metavar="P",
                        help="per-site fault probability under "
                             "--chaos-seed (default 0.1)")
    parser.add_argument("--max-retries", type=int, default=3,
                        metavar="N",
                        help="retry budget per fault site (default 3)")


def _chaos_plan(args):
    if getattr(args, "chaos_seed", None) is None:
        return None, None
    from repro.chaos import FaultPlan, RetryPolicy

    plan = FaultPlan.from_rate(args.chaos_seed, args.fault_rate)
    policy = RetryPolicy(max_attempts=args.max_retries)
    return plan, policy


def _print_chaos_summary(outcome):
    report = outcome.chaos
    if report is None:
        return
    kinds = ", ".join(
        f"{kind}={count}" for kind, count in sorted(report.injected.items())
    ) or "none"
    print(f"chaos: {report.total_injected} faults injected ({kinds})")
    print(f"       retries: {report.retry_attempts} attempts, "
          f"{report.retry_recovered} recovered, "
          f"{report.retry_exhausted} exhausted; "
          f"fallbacks: {report.fallbacks}; "
          f"wasted {report.wasted_s:.1f}s + "
          f"backoff {report.backoff_s:.1f}s")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource elasticity for large-scale ML (SIGMOD 2015 "
                    "reproduction): compile, optimize, and execute DML "
                    "scripts on a simulated YARN cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile, optimize, and execute")
    _add_common(run)
    run.add_argument("--static", metavar="CP_MB,MR_MB",
                     help="skip the optimizer; use a static configuration")
    run.add_argument("--no-adapt", action="store_true",
                     help="disable runtime resource adaptation")
    _add_opt_flags(run)
    _add_chaos(run)
    _add_calibration_flag(run)

    opt = sub.add_parser("optimize", aliases=["opt"],
                         help="run resource optimization only")
    _add_common(opt)
    opt.add_argument("--grid", default="hybrid",
                     choices=["equi", "exp", "mem", "hybrid"])
    opt.add_argument("-m", type=int, default=15, help="base grid points")
    _add_opt_flags(opt)
    _add_calibration_flag(opt)

    explain = sub.add_parser("explain", help="print the compiled plan")
    _add_common(explain)
    explain.add_argument("--level", default="runtime",
                         choices=["runtime", "hops"])
    explain.add_argument("--static", metavar="CP_MB,MR_MB",
                         help="configuration to compile for (default "
                              "512,512)")

    whatif = sub.add_parser(
        "whatif", help="estimated-cost heatmap over a CP x MR grid"
    )
    _add_common(whatif)
    whatif.add_argument("--cp", default="1,2,5,10,15,20",
                        help="comma-separated CP heap sizes in GB")
    whatif.add_argument("--mr", default="1,2,5,10,20",
                        help="comma-separated MR task heap sizes in GB")

    sub.add_parser("scripts", help="list bundled ML programs")

    demo = sub.add_parser("demo", help="generate inputs and run a bundled "
                                       "script on a paper scenario")
    demo.add_argument("script", choices=sorted(SCRIPTS))
    demo.add_argument("--size", default="S",
                      choices=["XS", "S", "M", "L", "XL"])
    demo.add_argument("--cols", type=int, default=1000)
    demo.add_argument("--sparse", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="drive a trace of concurrent tenant submissions through "
             "the multi-tenant ElasticMLServer",
    )
    serve.add_argument("--tenants", type=int, default=32, metavar="N",
                       help="number of submissions to drive (default 32)")
    serve.add_argument("--tenant-pool", type=int, default=8, metavar="K",
                       help="distinct tenant identities, assigned "
                            "round-robin (default 8)")
    serve.add_argument("--mix", default="LinregDS:XS",
                       metavar="SCRIPT:SIZE[,SCRIPT:SIZE...]",
                       help="submission mix, cycled in order "
                            "(default LinregDS:XS)")
    serve.add_argument("--cols", type=int, default=100,
                       help="feature columns of generated inputs")
    serve.add_argument("--policy", default="heap-rule",
                       choices=["heap-rule", "packing", "predictive"],
                       help="admission policy (default heap-rule)")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="shard the server across N worker processes "
                            "(default 1 = single-process server)")
    serve.add_argument("--affinity", default="tenant",
                       choices=["tenant", "program"],
                       help="shard routing affinity (default tenant)")
    serve.add_argument("--serve-workers", type=int, default=None,
                       metavar="N",
                       help="per-server thread-pool size (default: one "
                            "per CPU, clamped to [2, 8]; override the "
                            "clamp via SessionConfig or the "
                            "REPRO_SERVING_MIN/MAX_WORKERS env vars)")
    serve.add_argument("--queue-limit", type=int, default=1024, metavar="N",
                       help="bounded submission queue (default 1024)")
    serve.add_argument("--seed", type=int, default=0,
                       help="interpreter seed for every submission")
    serve.add_argument("--json", action="store_true",
                       help="dump serving stats as JSON instead of text")
    _add_opt_flags(serve)

    elastic = sub.add_parser(
        "elastic",
        help="replay a bursty multi-tenant trace through the "
             "deterministic virtual-time simulator, comparing a static "
             "admission arm against the autoscaling Brain",
    )
    elastic.add_argument("--tenants", type=int, default=24, metavar="N",
                         help="submissions in the generated trace "
                              "(default 24)")
    elastic.add_argument("--bursts", type=int, default=3,
                         help="arrival bursts (default 3)")
    elastic.add_argument("--burst-gap", type=float, default=150.0,
                         metavar="S",
                         help="seconds between bursts (default 150)")
    elastic.add_argument("--intra-gap", type=float, default=1.5,
                         metavar="S",
                         help="mean arrival gap within a burst "
                              "(default 1.5)")
    elastic.add_argument("--tenant-pool", type=int, default=8, metavar="K",
                         help="distinct tenant identities (default 8)")
    elastic.add_argument("--mix", default="LinregDS:XS,LinregCG:XS",
                         metavar="SCRIPT:SIZE[,SCRIPT:SIZE...]",
                         help="workload mix cycled across the trace")
    elastic.add_argument("--cols", type=int, default=100,
                         help="feature columns of generated inputs")
    elastic.add_argument("--seed", type=int, default=11,
                         help="trace generation seed (default 11)")
    elastic.add_argument("--nodes", type=int, default=1,
                         help="simulated cluster nodes (default 1)")
    elastic.add_argument("--node-mem", type=int, default=1024, metavar="MB",
                         help="memory per node (default 1024)")
    elastic.add_argument("--quota-share", type=float, default=None,
                         metavar="F",
                         help="per-tenant capacity quota as a fraction "
                              "of total memory (default: no quotas)")
    elastic.add_argument("--no-background", action="store_true",
                         help="drop the background load spike that "
                              "exercises mid-run shrinks")
    elastic.add_argument("--record", metavar="PATH", default=None,
                         help="save the generated trace as JSON")
    elastic.add_argument("--replay", metavar="PATH", default=None,
                         help="replay a recorded trace JSON instead of "
                              "generating one")
    elastic.add_argument("--quick", action="store_true",
                         help="small trace for CI smoke (10 tenants, "
                              "2 bursts)")
    elastic.add_argument("--json", action="store_true",
                         help="dump the comparison as JSON")

    trace = sub.add_parser(
        "trace",
        help="run a bundled script on a paper scenario with tracing on; "
             "render the span tree and counters (or dump JSON)",
    )
    trace.add_argument("script", choices=sorted(SCRIPTS))
    trace.add_argument("scenario", choices=["XS", "S", "M", "L", "XL"])
    trace.add_argument("--cols", type=int, default=1000)
    trace.add_argument("--sparse", action="store_true")
    trace.add_argument("--static", metavar="CP_MB,MR_MB",
                       help="skip the optimizer; use a static configuration")
    trace.add_argument("--no-adapt", action="store_true",
                       help="disable runtime resource adaptation")
    trace.add_argument("--json", action="store_true",
                       help="dump the raw trace as JSON instead of text")
    _add_opt_flags(trace)
    _add_chaos(trace)

    calibrate = sub.add_parser(
        "calibrate",
        help="run a bundled script with calibration sampling on, fit "
             "cost-model constants from the traced actuals, and report "
             "estimate-vs-actual divergence before/after",
    )
    calibrate.add_argument("script", choices=sorted(SCRIPTS))
    calibrate.add_argument("scenario", choices=["XS", "S", "M", "L", "XL"])
    calibrate.add_argument("--cols", type=int, default=1000)
    calibrate.add_argument("--sparse", action="store_true")
    calibrate.add_argument("--runs", type=int, default=3, metavar="N",
                           help="traced runs to collect samples from "
                                "(default 3)")
    calibrate.add_argument("--drift", type=int, default=None, metavar="SEED",
                           help="simulate a cluster whose hardware drifted "
                                "from the defaults (deterministic "
                                "perturbation by SEED); the optimizer's "
                                "belief stays at the defaults until "
                                "calibrated")
    calibrate.add_argument("--min-samples", type=int, default=None,
                           metavar="K",
                           help="sample floor below which a component "
                                "keeps its default constant")
    calibrate.add_argument("--out", metavar="PATH", default=None,
                           help="save the fitted CalibrationProfile as "
                                "JSON")
    calibrate.add_argument("--json", action="store_true",
                           help="dump the calibration report as JSON")
    return parser


def cmd_run(args, session):
    _parse_gen(session, args.gen)
    _apply_opt_flags(session, args)
    _apply_calibration_flag(session, args)
    source = _load_source(args.script)
    script_args = _parse_args_list(args.args)
    resource = _static_resource(args.static) if args.static else None
    plan, policy = _chaos_plan(args)
    if policy is not None:
        session.retry_policy = policy
    outcome = session.run(
        source, script_args, resource=resource, adapt=not args.no_adapt,
        chaos=plan,
    )
    for line in outcome.prints:
        print("|", line)
    print(f"\nconfiguration: {outcome.resource.describe()}"
          + ("" if args.static else " (optimized)"))
    backend = _describe_optimizer(outcome.optimizer_result)
    if backend is not None:
        print(f"optimizer: {backend}")
    result = outcome.result
    print(f"simulated time: {result.total_time:.1f}s  "
          f"MR jobs: {result.mr_jobs}  migrations: {result.migrations}  "
          f"evictions: {result.evictions}")
    _print_chaos_summary(outcome)
    return 0


def cmd_optimize(args, session):
    _parse_gen(session, args.gen)
    _apply_opt_flags(session, args)
    _apply_calibration_flag(session, args)
    source = _load_source(args.script)
    compiled = session.compile_script(source, _parse_args_list(args.args))
    result = session.optimize(compiled, grid_cp=args.grid, grid_mr=args.grid,
                              m=args.m)
    print(f"chosen configuration: {result.resource.describe()}")
    print(f"estimated cost: {result.cost:.1f}s")
    print(f"backend: {_describe_optimizer(result)}")
    stats = result.stats
    print(f"grid: {stats.cp_points} x {stats.mr_points} points; "
          f"{stats.block_compilations} block recompilations; "
          f"{stats.cost_invocations} cost invocations; "
          f"{stats.optimization_time * 1000:.0f}ms")
    print("\nCP profile (heap MB -> estimated seconds):")
    for rc, cost in result.cp_profile:
        print(f"  {rc:10.0f}  {cost:10.1f}")
    return 0


def cmd_explain(args, session):
    _parse_gen(session, args.gen)
    source = _load_source(args.script)
    resource = (
        _static_resource(args.static) if args.static
        else ResourceConfig(512, 512)
    )
    compiled = session.compile_script(
        source, _parse_args_list(args.args), resource
    )
    print(explain_program(compiled, level=args.level))
    return 0


def cmd_whatif(args, session):
    from repro.tools.whatif import what_if_heatmap

    _parse_gen(session, args.gen)
    source = _load_source(args.script)
    compiled = session.compile_script(source, _parse_args_list(args.args))
    cp_points = [float(g) * 1024 for g in args.cp.split(",")]
    mr_points = [float(g) * 1024 for g in args.mr.split(",")]
    heatmap = what_if_heatmap(session.cluster, compiled, cp_points,
                              mr_points, session.params)
    print(heatmap.render("estimated runtime [s]"))
    cp, mr, cost = heatmap.cheapest()
    print(f"\ncheapest cell: CP {cp / 1024:.1f}GB / "
          f"MR {mr / 1024:.1f}GB ({cost:.0f}s estimated)")
    return 0


def cmd_scripts(args, session):
    for name, spec in sorted(SCRIPTS.items()):
        unknowns = " (unknown sizes at compile time)" if spec.has_unknowns else ""
        print(f"{name:10} {spec.description}{unknowns}")
        print(f"{'':10} inputs: {', '.join(spec.inputs)}; "
              f"defaults: {spec.defaults}")
    return 0


def cmd_demo(args, session):
    scn = scenario(args.size, cols=args.cols, sparse=args.sparse)
    print(f"scenario: {scn.label} "
          f"({scn.rows:,} x {scn.cols}, {scn.dense_bytes / 1e9:.2f} GB dense)")
    script_args = prepare_inputs(session.hdfs, args.script, scn)
    outcome = session.run(args.script, script_args)
    for line in outcome.prints:
        print("|", line)
    print(f"\nconfiguration: {outcome.resource.describe()} (optimized)")
    print(f"simulated time: {outcome.total_time:.1f}s  "
          f"MR jobs: {outcome.result.mr_jobs}  "
          f"migrations: {outcome.result.migrations}")
    return 0


def cmd_serve(args, session):
    import json
    import statistics
    import time as _time

    from repro.serving import (
        ElasticMLServer,
        ShardedElasticMLServer,
        Submission,
        make_policy,
    )

    _apply_opt_flags(session, args)
    if args.shards > 1:
        server = ShardedElasticMLServer(
            shards=args.shards,
            config=session.config,
            policy=args.policy,
            affinity=args.affinity,
            max_workers=args.serve_workers,
            queue_limit=args.queue_limit,
            trace=True,
        )
    else:
        server = ElasticMLServer(
            config=session.config,
            policy=make_policy(args.policy),
            max_workers=args.serve_workers,
            queue_limit=args.queue_limit,
            trace=True,
        )
    mix = []
    for entry in args.mix.split(","):
        if ":" not in entry:
            raise SystemExit(f"--mix expects SCRIPT:SIZE, got {entry!r}")
        name, size = entry.split(":", 1)
        if name not in SCRIPTS:
            raise SystemExit(f"unknown script {name!r} in --mix")
        mix.append((name, scenario(size, cols=args.cols)))
    prepared = {
        (name, scn.label): prepare_inputs(server.hdfs, name, scn)
        for name, scn in mix
    }
    started = _time.perf_counter()
    for index in range(args.tenants):
        name, scn = mix[index % len(mix)]
        server.submit(Submission(
            tenant=f"tenant-{index % args.tenant_pool:03d}",
            script=name,
            args=prepared[(name, scn.label)],
            seed=args.seed,
        ))
    results = server.drain()
    elapsed = _time.perf_counter() - started
    server.shutdown()
    stats = server.stats()
    completed = [r for r in results if r.ok]
    latencies = sorted(r.latency_s for r in completed)
    stats.update({
        "policy": args.policy,
        "shards": args.shards,
        "tenants": args.tenants,
        "wall_s": elapsed,
        "throughput_rps": len(completed) / elapsed if elapsed else 0.0,
        "latency_p50_s": (
            statistics.median(latencies) if latencies else None
        ),
        "latency_p95_s": (
            latencies[int(0.95 * (len(latencies) - 1))]
            if latencies else None
        ),
    })
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"policy: {args.policy}  shards: {args.shards}  "
          f"submissions: {args.tenants}  "
          f"tenant pool: {args.tenant_pool}")
    by_status = {}
    for r in results:
        by_status[r.status] = by_status.get(r.status, 0) + 1
    print("statuses: " + ", ".join(
        f"{status}={count}" for status, count in sorted(by_status.items())
    ))
    print(f"wall clock: {elapsed:.2f}s  "
          f"throughput: {stats['throughput_rps']:.1f} req/s  "
          f"p50 latency: {stats['latency_p50_s']:.3f}s  "
          f"p95: {stats['latency_p95_s']:.3f}s")
    print(f"admitted: {stats['serving.admitted']}  "
          f"optimizer cache: {stats['optcache.hits']} hits / "
          f"{stats['optcache.misses']} misses  "
          f"program cache: {stats['program_cache.hits']} hits")
    times = {}
    for r in completed:
        times.setdefault((r.tenant, round(r.total_time, 6)), 0)
    distinct = len({t for _, t in times})
    print(f"distinct simulated times across completed runs: {distinct}")
    return 0


def cmd_elastic(args, session):
    import json

    from repro.cluster import ClusterLoad, small_cluster
    from repro.elastic import ElasticTrace, bursty_trace, simulate_arms

    tenants = 10 if args.quick else args.tenants
    bursts = 2 if args.quick else args.bursts
    mix = []
    for entry in args.mix.split(","):
        if ":" not in entry:
            raise SystemExit(f"--mix expects SCRIPT:SIZE, got {entry!r}")
        name, size = entry.split(":", 1)
        if name not in SCRIPTS:
            raise SystemExit(f"unknown script {name!r} in --mix")
        mix.append((name, size, args.cols))
    if args.replay:
        trace = ElasticTrace.load(args.replay)
    else:
        trace = bursty_trace(
            seed=args.seed, tenants=tenants, bursts=bursts,
            burst_gap_s=args.burst_gap, intra_gap_s=args.intra_gap,
            tenant_pool=args.tenant_pool, mix=tuple(mix),
        )
    if args.record:
        trace.save(args.record)
    cluster = small_cluster(
        num_nodes=args.nodes, node_memory_mb=args.node_mem
    )
    background = None
    if not args.no_background:
        # load spike around the second burst: pressures running Brains
        # into mid-run shrinks
        spike_at = args.burst_gap
        background = ClusterLoad(schedule=[
            (0.0, 0.0), (spike_at, 0.8), (spike_at + 35.0, 0.0),
        ])
    static, brain = simulate_arms(
        trace, cluster=cluster, background=background,
        quota_share=args.quota_share,
    )
    speedup = (
        static.makespan_s / brain.makespan_s if brain.makespan_s else 0.0
    )
    payload = {
        "trace": {
            "name": trace.name,
            "entries": len(trace.entries),
            "replayed": bool(args.replay),
        },
        "cluster": {
            "nodes": args.nodes, "node_memory_mb": args.node_mem,
        },
        "static": static.summary(),
        "brain": brain.summary(),
        "makespan_speedup": round(speedup, 4),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"trace: {trace.name}  entries: {len(trace.entries)}  "
          f"cluster: {args.nodes}x{args.node_mem}MB")
    for arm in (static, brain):
        s = arm.summary()
        print(f"\n[{arm.label}] completed={s['completed']} "
              f"rejected={s['rejected']}")
        print(f"  makespan: {s['makespan_s']:.1f}s  "
              f"utilization: {s['utilization']:.3f}  "
              f"mean wait: {s['mean_wait_s']:.1f}s")
        if arm.elastic:
            print(f"  rescales: {s['rescales']}  "
                  f"elastic admissions: {s['elastic_admissions']}  "
                  f"spill: {s['total_spill_s']:.1f}s")
    print(f"\nmakespan speedup (brain vs static): {speedup:.3f}x")
    return 0


def cmd_trace(args, session):
    session.trace = True
    _apply_opt_flags(session, args)
    scn = scenario(args.scenario, cols=args.cols, sparse=args.sparse)
    script_args = prepare_inputs(session.hdfs, args.script, scn)
    resource = _static_resource(args.static) if args.static else None
    plan, policy = _chaos_plan(args)
    if policy is not None:
        session.retry_policy = policy
    outcome = session.run(
        args.script, script_args, resource=resource, adapt=not args.no_adapt,
        chaos=plan,
    )
    if args.json:
        print(outcome.trace.to_json(indent=2))
        return 0
    print(f"scenario: {scn.label} "
          f"({scn.rows:,} x {scn.cols}, {scn.dense_bytes / 1e9:.2f} GB dense)")
    print(f"configuration: {outcome.resource.describe()}"
          + ("" if args.static else " (optimized)"))
    backend = _describe_optimizer(outcome.optimizer_result)
    if backend is not None:
        print(f"optimizer: {backend}")
    print(f"simulated time: {outcome.total_time:.1f}s  "
          f"MR jobs: {outcome.result.mr_jobs}  "
          f"migrations: {outcome.migrations}\n")
    _print_chaos_summary(outcome)
    print(outcome.trace.render())
    return 0


def cmd_calibrate(args, session):
    import json as _json
    import statistics

    from repro.api import SessionConfig
    from repro.cost import CostModel
    from repro.cost.calibrate import COMPONENTS, drifted_parameters
    from repro.cost.constants import DEFAULT_PARAMETERS

    truth = (
        drifted_parameters(args.drift)
        if args.drift is not None else session.params
    )
    sess = ElasticMLSession(
        cluster=session.cluster,
        params=truth,
        model_params=DEFAULT_PARAMETERS,
        trace=True,
        config=SessionConfig(calibrate=True),
    )
    scn = scenario(args.scenario, cols=args.cols, sparse=args.sparse)
    script_args = prepare_inputs(sess.hdfs, args.script, scn)
    outcomes = []
    for index in range(max(1, args.runs)):
        sess.seed = index
        outcomes.append(sess.run(args.script, script_args, adapt=False))
    profile = sess.fit_calibration(min_samples=args.min_samples)

    # divergence: per-component estimated seconds (under a belief)
    # against the per-component actual seconds the collector observed —
    # the granularity calibration operates at, so parameter error is not
    # masked by structural model error cancelling across components
    actual_by_comp = {
        name: totals[2]
        for name, totals in sess.calibration.totals().items()
        if totals[2] > 0.0
    }

    def divergence(params):
        model = CostModel(sess.cluster, params)
        est = {}
        for o in outcomes:
            totals = model.estimate_components(o.compiled, o.resource)
            for name, value in totals.items():
                if name != "total":
                    est[name] = est.get(name, 0.0) + value
        return statistics.median(
            abs(est.get(name, 0.0) - act) / act
            for name, act in sorted(actual_by_comp.items())
        )

    before = divergence(sess.model_params)
    after = divergence(profile.parameters())
    report = {
        "script": args.script,
        "scenario": scn.label,
        "runs": len(outcomes),
        "samples": sess.calibration.counts(),
        "fitted": dict(profile.fitted),
        "median_divergence_uncalibrated": before,
        "median_divergence_calibrated": after,
    }
    if args.out:
        profile.save(args.out)
        report["profile_path"] = args.out
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"collected {sess.calibration.total_samples} samples over "
          f"{len(outcomes)} traced runs of {args.script} ({scn.label})")
    print(f"fitted {len(profile.fitted)} of {len(COMPONENTS)} "
          f"components (sample floor {profile.min_samples}):\n")
    base = profile.base
    print(f"  {'component':16} {'samples':>8} {'base':>12} {'fitted':>12}")
    for component in COMPONENTS:
        n = profile.sample_counts.get(component.name, 0)
        value = profile.fitted.get(component.param)
        shown = f"{value:.3g}" if value is not None else "(kept)"
        print(f"  {component.name:16} {n:>8} "
              f"{base[component.param]:>12.3g} {shown:>12}")
    print(f"\nmedian estimate-vs-actual divergence: "
          f"{before:.1%} uncalibrated -> {after:.1%} calibrated")
    if args.out:
        print(f"profile saved to {args.out}")
    return 0


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    session = ElasticMLSession()
    handler = {
        "run": cmd_run,
        "optimize": cmd_optimize,
        "opt": cmd_optimize,
        "explain": cmd_explain,
        "whatif": cmd_whatif,
        "scripts": cmd_scripts,
        "demo": cmd_demo,
        "serve": cmd_serve,
        "elastic": cmd_elastic,
        "trace": cmd_trace,
        "calibrate": cmd_calibrate,
    }[args.command]
    return handler(args, session)


if __name__ == "__main__":
    sys.exit(main())
