"""Plan explanation: human-readable renderings of compiled programs.

Mirrors SystemML's ``explain`` levels:

* ``explain_program(compiled, level="runtime")`` — the block hierarchy
  with the generated instructions per block (CP instructions and MR
  jobs with their packed operators);
* ``level="hops"`` — the HOP DAGs with propagated characteristics,
  memory estimates, and execution decisions.
"""

from __future__ import annotations

from repro.compiler import hops as H
from repro.compiler import statement_blocks as SB
from repro.compiler.runtime_prog import MRJobInstruction


def explain_plan(plan, indent=2):
    """Render one block plan's instruction list."""
    pad = " " * indent
    lines = []
    for ins in plan.instructions:
        if isinstance(ins, MRJobInstruction):
            lines.append(f"{pad}{ins}")
            for step in ins.steps:
                lines.append(
                    f"{pad}  [{step.phase.value}] {step.method} "
                    f"{step.opcode} -> {step.output} {step.out_mc}"
                )
        else:
            lines.append(f"{pad}{ins}")
    return "\n".join(lines)


def _explain_block(block, level, depth, lines):
    pad = "  " * depth
    if isinstance(block, SB.GenericBlock):
        flags = " [recompile]" if block.requires_recompile else ""
        lines.append(f"{pad}GENERIC (block {block.block_id}){flags}")
        if level == "hops":
            lines.append(_indent(H.explain(block.hop_roots), depth * 2 + 2))
        elif block.plan is not None:
            lines.append(explain_plan(block.plan, indent=depth * 2 + 2))
    elif isinstance(block, SB.IfBlock):
        lines.append(f"{pad}IF (block {block.block_id})")
        for child in block.body:
            _explain_block(child, level, depth + 1, lines)
        if block.else_body:
            lines.append(f"{pad}ELSE")
            for child in block.else_body:
                _explain_block(child, level, depth + 1, lines)
    elif isinstance(block, SB.WhileBlock):
        lines.append(f"{pad}WHILE (block {block.block_id})")
        for child in block.body:
            _explain_block(child, level, depth + 1, lines)
    elif isinstance(block, SB.ForBlock):
        iters = (
            f", {block.known_iterations} iterations"
            if block.known_iterations is not None
            else ""
        )
        lines.append(f"{pad}FOR {block.var} (block {block.block_id}{iters})")
        for child in block.body:
            _explain_block(child, level, depth + 1, lines)


def _indent(text, spaces):
    pad = " " * spaces
    return "\n".join(pad + line for line in text.splitlines())


def explain_program(compiled, level="runtime"):
    """Render a compiled program at the requested level of detail."""
    if level not in ("runtime", "hops"):
        raise ValueError(f"unknown explain level {level!r}")
    lines = [f"PROGRAM ({compiled.num_blocks()} blocks)"]
    for block in compiled.blocks:
        _explain_block(block, level, 1, lines)
    for name, func in compiled.functions.items():
        lines.append(f"FUNCTION {name}")
        for block in func.blocks:
            _explain_block(block, level, 1, lines)
    return "\n".join(lines)
