"""What-if analysis surface: cost a compiled program over configuration
grids (the user-facing face of the paper's "online what-if analysis").

``what_if_heatmap`` reproduces Figure 1's CP x MR heatmaps for any
program; ``what_if_profile`` produces a one-dimensional CP sweep, and
``cheapest`` scans a heatmap for the minimal-cost (and minimal-resource)
cell — a tiny, transparent cousin of the full grid-enumeration optimizer
useful for exploration and teaching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import ResourceConfig
from repro.compiler.pipeline import compile_plans
from repro.cost import CostModel


@dataclass
class WhatIfHeatmap:
    """Estimated cost over a CP x MR configuration grid."""

    cp_points_mb: list = field(default_factory=list)
    mr_points_mb: list = field(default_factory=list)
    #: costs[i][j] = estimated seconds at (mr_points[i], cp_points[j])
    costs: list = field(default_factory=list)

    def cost_at(self, cp_mb, mr_mb):
        i = self.mr_points_mb.index(mr_mb)
        j = self.cp_points_mb.index(cp_mb)
        return self.costs[i][j]

    def cheapest(self):
        """(cp_mb, mr_mb, cost) of the minimal cell; resource-minimal
        among cost ties (Definition 1's tie-break)."""
        best = None
        for i, mr in enumerate(self.mr_points_mb):
            for j, cp in enumerate(self.cp_points_mb):
                key = (self.costs[i][j], cp + mr, cp)
                if best is None or key < best[0]:
                    best = (key, cp, mr)
        _, cp, mr = best
        return cp, mr, self.cost_at(cp, mr)

    def render(self, title=""):
        """Fixed-width textual rendering (Figure 1 style)."""
        lines = [title] if title else []
        header = "[s]".ljust(10) + "".join(
            f"CP {cp / 1024:>5.1f}G" for cp in self.cp_points_mb
        )
        lines.append(header)
        for i, mr in enumerate(self.mr_points_mb):
            row = f"MR {mr / 1024:>4.1f}G ".ljust(10)
            row += "".join(f"{c:9.0f}" for c in self.costs[i])
            lines.append(row)
        return "\n".join(lines)


def what_if_heatmap(cluster, compiled, cp_points_mb, mr_points_mb,
                    params=None):
    """Estimate program cost at every (cp, mr) grid combination.

    Recompiles plans per cell exactly as the resource optimizer does, so
    the heatmap reflects every plan change across the grid.
    """
    cost_model = CostModel(cluster, params)
    heatmap = WhatIfHeatmap(
        cp_points_mb=list(cp_points_mb), mr_points_mb=list(mr_points_mb)
    )
    for mr_mb in heatmap.mr_points_mb:
        row = []
        for cp_mb in heatmap.cp_points_mb:
            rc = ResourceConfig(cp_mb, mr_mb)
            compile_plans(compiled, rc)
            row.append(cost_model.estimate_program(compiled, rc))
        heatmap.costs.append(row)
    return heatmap


def what_if_profile(cluster, compiled, cp_points_mb, mr_mb=512.0,
                    params=None):
    """One-dimensional CP sweep at a fixed MR task size; returns a list
    of (cp_mb, cost)."""
    heatmap = what_if_heatmap(cluster, compiled, cp_points_mb, [mr_mb],
                              params)
    return list(zip(heatmap.cp_points_mb, heatmap.costs[0]))
