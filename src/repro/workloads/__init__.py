"""Workloads: the paper's data scenarios, input generators, and static
baseline resource configurations (Section 5.1)."""

from repro.workloads.scenarios import (
    SCENARIO_CELLS,
    Scenario,
    paper_scenarios,
    scenario,
)
from repro.workloads.datagen import prepare_inputs
from repro.workloads.baselines import paper_baselines

__all__ = [
    "Scenario",
    "SCENARIO_CELLS",
    "scenario",
    "paper_scenarios",
    "prepare_inputs",
    "paper_baselines",
]
