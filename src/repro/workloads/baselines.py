"""Static baseline resource configurations (paper Section 5.1).

B-SS: 512 MB CP / 512 MB MR; B-LS: max CP / 512 MB MR;
B-SL: 512 MB CP / max-parallel task MR; B-LL: max CP / max-parallel MR.

"Max CP" is the largest heap whose 1.5x container request the RM accepts
(53.3 GB on the paper cluster); "max-parallel task" is the largest task
heap that still lets all physical cores per node run concurrently
(4.4 GB: 12 x 4.4 GB x 1.5 = 80 GB).
"""

from __future__ import annotations

from repro.cluster.config import CONTAINER_OVERHEAD_FACTOR
from repro.cluster.resources import ResourceConfig


def max_parallel_task_heap_mb(cluster):
    """Largest MR task heap keeping all physical cores busy per node."""
    return cluster.node_memory_mb / (
        cluster.node_physical_cores * CONTAINER_OVERHEAD_FACTOR
    )


def paper_baselines(cluster):
    """The four static baselines, in the paper's order."""
    small = float(cluster.min_allocation_mb)
    large_cp = cluster.max_heap_mb
    large_mr = max_parallel_task_heap_mb(cluster)
    return {
        "B-SS": ResourceConfig(cp_heap_mb=small, mr_heap_mb=small),
        "B-LS": ResourceConfig(cp_heap_mb=large_cp, mr_heap_mb=small),
        "B-SL": ResourceConfig(cp_heap_mb=small, mr_heap_mb=large_mr),
        "B-LL": ResourceConfig(cp_heap_mb=large_cp, mr_heap_mb=large_mr),
    }
