"""Input generation for the bundled ML scripts.

Creates feature/label files on a simulated HDFS instance appropriate for
each script and returns the script-argument dictionary, so end-to-end
experiments are one call:

    hdfs = SimulatedHDFS()
    args = prepare_inputs(hdfs, "L2SVM", scenario("M"))
    compiled = compile_program(load_script("L2SVM"), args, hdfs.input_meta())
"""

from __future__ import annotations

import numpy as np

from repro.common import FileFormat
from repro.errors import ReproError
from repro.runtime.matrix import MatrixObject
from repro.scripts import script_spec


def _svm_labels(hdfs, path, rows, seed):
    """0/1 labels (the L2SVM script remaps them to -1/+1)."""
    rng = np.random.default_rng(seed)
    obj = MatrixObject.generate_labels(rows, 2, rng=rng,
                                       sample_cap=hdfs.sample_cap)
    obj.data = obj.data - 1.0  # classes 1..2 -> 0/1
    hdfs.put(path, obj.mc, obj.data, FileFormat.BINARY_BLOCK)


def _count_labels(hdfs, path, rows, seed, mean=3.0):
    """Non-negative counts for Poisson GLM."""
    rng = np.random.default_rng(seed)
    srows = min(rows, hdfs.sample_cap)
    data = rng.poisson(mean, size=(srows, 1)).astype(float)
    obj = MatrixObject.from_sample(data, logical_rows=rows, logical_cols=1)
    hdfs.put(path, obj.mc, obj.data, FileFormat.BINARY_BLOCK)


def prepare_inputs(hdfs, script_name, scn, num_classes=5, seed=7,
                   prefix=None, glm_family=2):
    """Create the input files of ``script_name`` for scenario ``scn``.

    Returns the script-argument dict (file names + Table 1 defaults).
    ``glm_family`` selects the GLM response type (2 = Poisson counts,
    3 = binomial/categorical labels — the configuration with unknown
    intermediate sizes).
    """
    spec = script_spec(script_name)
    prefix = prefix or f"data/{script_name}/{scn.size}_{scn.cols}_{scn.sparsity}"
    x_path = f"{prefix}/X"
    y_path = f"{prefix}/Y"
    hdfs.create_dense_input(
        x_path, scn.rows, scn.cols, sparsity=scn.sparsity, seed=seed
    )

    if script_name in ("LinregDS", "LinregCG"):
        hdfs.create_regression_target(y_path, scn.rows, seed=seed + 1)
        args = {"X": x_path, "Y": y_path, "B": f"{prefix}/B"}
    elif script_name == "L2SVM":
        _svm_labels(hdfs, y_path, scn.rows, seed + 1)
        args = {"X": x_path, "Y": y_path, "model": f"{prefix}/w"}
    elif script_name == "MLogreg":
        hdfs.create_label_input(y_path, scn.rows, num_classes, seed=seed + 1)
        args = {"X": x_path, "Y": y_path, "B": f"{prefix}/B"}
    elif script_name == "GLM":
        if glm_family == 3:
            hdfs.create_label_input(y_path, scn.rows, 2, seed=seed + 1)
        else:
            _count_labels(hdfs, y_path, scn.rows, seed + 1)
        args = {"X": x_path, "Y": y_path, "B": f"{prefix}/B",
                "dfam": glm_family}
    elif script_name == "KMeans":
        args = {"X": x_path, "C": f"{prefix}/C"}
    elif script_name == "PCA":
        args = {"X": x_path, "V": f"{prefix}/V"}
    else:
        raise ReproError(f"no input generator for script {script_name!r}")

    args.update(spec.defaults)
    return args
