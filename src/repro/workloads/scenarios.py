"""Data scenarios XS-XL of the paper (Section 5.1).

Scenario sizes are given in total cells: XS (10^7) through XL (10^11),
with 1,000 or 100 columns and dense (1.0) or sparse (0.01) sparsity.
For dense data these correspond to 80 MB, 800 MB, 8 GB, 80 GB, and
800 GB.  The number of rows is cells / cols.
"""

from __future__ import annotations

from dataclasses import dataclass

SCENARIO_CELLS = {
    "XS": 10**7,
    "S": 10**8,
    "M": 10**9,
    "L": 10**10,
    "XL": 10**11,
}

SCENARIO_ORDER = ["XS", "S", "M", "L", "XL"]


@dataclass(frozen=True)
class Scenario:
    """One data scenario: size class, shape, and sparsity."""

    size: str  # XS | S | M | L | XL
    cols: int = 1000
    sparsity: float = 1.0

    @property
    def cells(self):
        return SCENARIO_CELLS[self.size]

    @property
    def rows(self):
        return self.cells // self.cols

    @property
    def dense_bytes(self):
        return self.cells * 8

    @property
    def is_sparse(self):
        return self.sparsity < 1.0

    @property
    def label(self):
        kind = "sparse" if self.is_sparse else "dense"
        return f"{self.size} {kind}{self.cols}"

    def __str__(self):
        return self.label


def scenario(size, cols=1000, sparse=False):
    """Construct a scenario; sparse scenarios use the paper's 0.01."""
    if size not in SCENARIO_CELLS:
        raise KeyError(f"unknown scenario size {size!r}")
    return Scenario(size=size, cols=cols, sparsity=0.01 if sparse else 1.0)


def paper_scenarios(sizes=("XS", "S", "M", "L")):
    """The 4 shape/sparsity combinations x requested sizes (Figures
    7-11's (a) dense1000, (b) sparse1000, (c) dense100, (d) sparse100)."""
    combos = [
        ("dense1000", 1000, False),
        ("sparse1000", 1000, True),
        ("dense100", 100, False),
        ("sparse100", 100, True),
    ]
    return {
        label: [scenario(size, cols, sparse) for size in sizes]
        for label, cols, sparse in combos
    }
