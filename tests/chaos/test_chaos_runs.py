"""End-to-end chaos runs: termination, numeric identity, accounting.

The harness the issue asks for: parameterized over fault kinds, rates,
and seeds, every run must either succeed or fail with a *typed*
``repro.errors`` exception; recovered runs must be numerically
identical to fault-free runs; and the trace counters must account for
every injected fault.
"""

import pytest

from repro.api import ElasticMLSession
from repro.chaos import FaultKind, FaultPlan, FaultSpec
from repro.cluster import ResourceConfig
from repro.errors import ReproError
from repro.obs import Tracer
from repro.workloads import prepare_inputs, scenario

STATIC = ResourceConfig(512, 512)


def run_linreg(size, chaos=None, trace=False, adapt=False):
    session = ElasticMLSession(sample_cap=256, trace=trace)
    args = prepare_inputs(session.hdfs, "LinregCG", scenario(size))
    return session.run(
        "LinregCG", args, resource=STATIC, adapt=adapt, chaos=chaos
    )


@pytest.fixture(scope="module")
def reference_s():
    """Fault-free LinregCG on scenario S under the static config."""
    outcome = run_linreg("S")
    assert outcome.result.mr_jobs > 0  # the runs below exercise MR sites
    return outcome


class TestSeededRuns:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    @pytest.mark.parametrize("rate", [0.05, 0.3])
    def test_terminates_and_accounts(self, reference_s, seed, rate):
        plan = FaultPlan.from_rate(seed, rate)
        try:
            outcome = run_linreg("S", chaos=plan, trace=True)
        except ReproError:
            return  # a typed failure is an acceptable terminal outcome
        report = outcome.chaos
        # accounting closes: every delivered fault appears exactly once
        assert report.total_injected == len(report.faults)
        assert report.total_injected == sum(report.injected.values())
        counters = outcome.trace.counters
        assert counters.get("chaos.injected", 0) == report.total_injected
        assert counters.get("retry.attempts", 0) == report.retry_attempts
        assert (
            counters.get("retry.recovered", 0) == report.retry_recovered
        )
        # recovered runs are numerically identical to fault-free runs
        assert outcome.prints == reference_s.prints
        # fault handling never loses time: recovery only adds
        if report.total_injected:
            assert outcome.total_time >= reference_s.total_time

    def test_same_seed_same_outcome(self):
        plan = FaultPlan.from_rate(7, 0.3)
        first = run_linreg("S", chaos=plan)
        second = run_linreg("S", chaos=plan)
        assert first.chaos.injected == second.chaos.injected
        # fault decisions are (kind, index, payload)-deterministic; the
        # site labels carry process-global block ids and may differ
        key = lambda f: (f.kind, f.index, f.payload)  # noqa: E731
        assert list(map(key, first.chaos.faults)) == list(
            map(key, second.chaos.faults)
        )
        assert first.total_time == second.total_time
        assert first.prints == second.prints

    def test_chaos_off_is_chaos_free(self, reference_s):
        outcome = run_linreg("S", chaos=FaultPlan.from_rate(7, 0.0))
        assert outcome.chaos.total_injected == 0
        assert outcome.prints == reference_s.prints
        assert outcome.total_time == reference_s.total_time

    @pytest.mark.parametrize("kind", list(FaultKind))
    def test_every_kind_survivable(self, reference_s, kind):
        """One scripted fault of each kind: the run recovers (or, for
        kinds whose site is never visited, completes untouched)."""
        plan = FaultPlan.from_faults(FaultSpec(kind, at=0))
        outcome = run_linreg("S", chaos=plan)
        assert outcome.prints == reference_s.prints
        report = outcome.chaos
        assert report.total_injected <= 1
        if report.total_injected:
            assert report.faults[0].kind is kind


class TestAcceptance:
    """The issue's acceptance scenario: LinregCG with a seed-pinned
    container kill plus an allocation denial completes with the correct
    numeric result and full accounting."""

    def test_container_kill_plus_allocation_denial(self):
        reference = run_linreg("M")
        assert reference.result.mr_jobs > 0
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.CONTAINER_KILL, at=0),
            FaultSpec(FaultKind.ALLOCATION_DENIED, at=0),
        )
        tracer = Tracer()
        session = ElasticMLSession(sample_cap=256, trace=tracer)
        args = prepare_inputs(session.hdfs, "LinregCG", scenario("M"))
        outcome = session.run(
            "LinregCG", args, resource=STATIC, adapt=False, chaos=plan
        )
        # numerically identical to the fault-free run
        assert outcome.prints == reference.prints
        report = outcome.chaos
        # chaos.injected equals the number of faults delivered
        assert report.total_injected == 2
        assert report.injected == {
            "container_kill": 1, "allocation_denied": 1,
        }
        assert tracer.counters["chaos.injected"] == 2
        # at least one retry.recovered event (the killed job re-ran)
        assert report.retry_recovered >= 1
        assert tracer.counters["retry.recovered"] >= 1
        # the denial forced a fallback (the 512 MB request is already at
        # the cluster heap floor, so the configuration cannot shrink)
        assert report.fallbacks == 1
        assert outcome.resource.cp_heap_mb <= STATIC.cp_heap_mb
        # the lost work and backoff surface in the run's breakdown
        assert outcome.result.category("chaos_wasted") > 0
        assert outcome.result.category("retry_backoff") > 0


class TestCliChaos:
    def test_trace_subcommand_prints_chaos_summary(self, capsys):
        from repro.tools.cli import main

        code = main([
            "trace", "LinregCG", "S", "--static", "512,512", "--no-adapt",
            "--chaos-seed", "7", "--fault-rate", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults injected" in out
        assert "chaos.injected" in out  # counters section

    def test_run_subcommand_without_chaos_has_no_summary(self, capsys):
        from repro.tools.cli import main

        code = main([
            "demo", "LinregCG", "--size", "XS",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults injected" not in out
