"""Unit tests for the fault plan / injector core (repro.chaos)."""

import pytest

from repro.chaos import (
    ChaosReport,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.chaos.faults import ALL_FAULT_KINDS, FaultPayload


class TestFaultPlan:
    def test_decide_is_deterministic_across_plans(self):
        a = FaultPlan.from_rate(42, 0.3)
        b = FaultPlan.from_rate(42, 0.3)
        for kind in ALL_FAULT_KINDS:
            for index in range(50):
                assert a.decide(kind, index) == b.decide(kind, index)

    def test_decide_is_pure(self):
        plan = FaultPlan.from_rate(7, 0.5)
        first = [plan.decide(FaultKind.CONTAINER_KILL, i) for i in range(20)]
        # interleave other kinds: decisions must not shift
        for i in range(20):
            plan.decide(FaultKind.HDFS_SLOW_READ, i)
        second = [plan.decide(FaultKind.CONTAINER_KILL, i) for i in range(20)]
        assert first == second

    def test_different_seeds_diverge(self):
        a = FaultPlan.from_rate(1, 0.5)
        b = FaultPlan.from_rate(2, 0.5)
        draws_a = [
            a.decide(FaultKind.NODE_LOSS, i) is not None for i in range(100)
        ]
        draws_b = [
            b.decide(FaultKind.NODE_LOSS, i) is not None for i in range(100)
        ]
        assert draws_a != draws_b

    def test_rate_zero_never_fires(self):
        plan = FaultPlan.from_rate(3, 0.0)
        for kind in ALL_FAULT_KINDS:
            assert all(plan.decide(kind, i) is None for i in range(100))

    def test_rate_one_always_fires(self):
        plan = FaultPlan.from_rate(3, 1.0)
        for kind in ALL_FAULT_KINDS:
            assert all(
                plan.decide(kind, i) is not None for i in range(100)
            )

    def test_rate_roughly_respected(self):
        plan = FaultPlan.from_rate(11, 0.2)
        hits = sum(
            1 for i in range(1000)
            if plan.decide(FaultKind.CONTAINER_KILL, i) is not None
        )
        assert 120 <= hits <= 280  # ~200 expected

    def test_scripted_fires_at_exact_index_only(self):
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.CONTAINER_KILL, at=3)
        )
        fired = [
            plan.decide(FaultKind.CONTAINER_KILL, i) is not None
            for i in range(6)
        ]
        assert fired == [False, False, False, True, False, False]

    def test_scripted_independent_of_seed(self):
        spec = FaultSpec(FaultKind.ALLOCATION_DENIED, at=0)
        for seed in (0, 1, 99):
            plan = FaultPlan.from_faults(spec, seed=seed)
            assert plan.decide(FaultKind.ALLOCATION_DENIED, 0) is not None
            assert plan.decide(FaultKind.ALLOCATION_DENIED, 1) is None

    def test_scripted_payload_passed_through(self):
        payload = FaultPayload(progress=0.9, delay_s=42.0)
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.HDFS_SLOW_READ, at=1, payload=payload)
        )
        assert plan.decide(FaultKind.HDFS_SLOW_READ, 1) is payload

    def test_drawn_payloads_in_range(self):
        plan = FaultPlan.from_rate(5, 1.0)
        for i in range(50):
            kill = plan.decide(FaultKind.CONTAINER_KILL, i)
            assert 0.2 <= kill.progress <= 0.8
            read = plan.decide(FaultKind.HDFS_SLOW_READ, i)
            assert 1.0 <= read.delay_s <= 10.0


class TestRetryPolicy:
    def test_backoff_monotone_until_cap(self):
        policy = RetryPolicy()
        values = [policy.backoff(a) for a in range(1, 12)]
        assert all(x <= y for x, y in zip(values, values[1:]))

    def test_backoff_capped(self):
        policy = RetryPolicy(backoff_cap_s=10.0)
        assert policy.backoff(50) == 10.0

    def test_backoff_first_attempt_is_base(self):
        policy = RetryPolicy(backoff_base_s=3.0)
        assert policy.backoff(1) == 3.0

    def test_backoff_rejects_zero_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestFaultInjector:
    def test_same_plan_same_fault_sequence(self):
        plan = FaultPlan.from_rate(13, 0.4)
        sequences = []
        for _ in range(2):
            injector = FaultInjector(plan)
            fired = []
            for i in range(30):
                fault = injector.fire(FaultKind.NODE_LOSS, site="s")
                fired.append(fault is not None)
            sequences.append(fired)
        assert sequences[0] == sequences[1]

    def test_fire_advances_visit_counter(self):
        injector = FaultInjector(FaultPlan.from_rate(0, 0.0))
        for _ in range(4):
            injector.fire(FaultKind.CONTAINER_KILL, site="x")
        assert injector.visits(FaultKind.CONTAINER_KILL) == 4
        assert injector.visits(FaultKind.NODE_LOSS) == 0

    def test_report_accounts_for_every_fault(self):
        plan = FaultPlan.from_rate(7, 0.5)
        injector = FaultInjector(plan)
        for i in range(40):
            injector.fire(FaultKind.CONTAINER_KILL, site="a")
            injector.fire(FaultKind.HDFS_SLOW_READ, site="b")
        report = injector.report()
        assert isinstance(report, ChaosReport)
        assert report.total_injected == len(report.faults)
        assert report.total_injected == sum(report.injected.values())
        assert report.total_injected > 0
        by_kind = {}
        for fault in report.faults:
            by_kind[fault.kind.value] = by_kind.get(fault.kind.value, 0) + 1
        assert by_kind == report.injected

    def test_report_is_a_snapshot(self):
        plan = FaultPlan.from_rate(7, 1.0)
        injector = FaultInjector(plan)
        injector.fire(FaultKind.NODE_LOSS, site="s")
        before = injector.report()
        injector.fire(FaultKind.NODE_LOSS, site="s")
        assert before.total_injected == 1
        assert injector.report().total_injected == 2

    def test_recovery_accounting(self):
        injector = FaultInjector(FaultPlan.from_rate(0, 0.0))
        injector.record_attempt("s", FaultKind.CONTAINER_KILL)
        injector.record_backoff(2.0)
        injector.record_wasted(5.0)
        injector.record_recovery("s", FaultKind.CONTAINER_KILL, 1)
        injector.record_exhausted("s", FaultKind.CONTAINER_KILL, 4)
        report = injector.report()
        assert report.retry_attempts == 1
        assert report.backoff_s == 2.0
        assert report.wasted_s == 5.0
        assert report.retry_recovered == 1
        assert report.retry_exhausted == 1

    def test_deny_allocation_draws_both_kinds(self):
        injector = FaultInjector(FaultPlan.from_rate(0, 0.0))
        assert injector.deny_allocation() is False
        assert injector.visits(FaultKind.ALLOCATION_TRANSIENT) == 1
        assert injector.visits(FaultKind.ALLOCATION_DENIED) == 1

    def test_deny_allocation_fires_on_scripted_denial(self):
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.ALLOCATION_DENIED, at=0)
        )
        injector = FaultInjector(plan)
        assert injector.deny_allocation() is True
        assert injector.deny_allocation() is False
