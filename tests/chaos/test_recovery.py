"""Recovery-path tests: retries, fallbacks, rollbacks, node loss.

Each scenario scripts exact faults (``FaultPlan.from_faults``) so the
recovery code path under test fires deterministically, then asserts
both the semantic outcome (numeric identity with the fault-free run)
and the accounting (``ChaosReport`` / tracer counters).
"""

import numpy as np
import pytest

from repro.api import ElasticMLSession
from repro.chaos import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.cluster import ResourceConfig, small_cluster
from repro.cluster.yarn import ResourceManager
from repro.errors import (
    AllocationDeniedError,
    ClusterError,
    ReproError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.optimizer import ResourceAdapter, ResourceOptimizer
from repro.runtime import Interpreter, SimulatedHDFS
from repro.runtime.matrix import MatrixObject

SRC = """
X = read($X)
s = sum(X)
print("total " + s)
"""


def make_session():
    session = ElasticMLSession(sample_cap=64)
    session.hdfs.create_dense_input("data/X", 2000, 50, seed=5)
    return session


def run(session, chaos=None, resource=None, adapt=False):
    return session.run(
        SRC, {"X": "data/X"},
        resource=resource or ResourceConfig(1024, 512),
        adapt=adapt, chaos=chaos,
    )


@pytest.fixture
def reference():
    return run(make_session())


class TestTransientAllocation:
    def test_retry_recovers(self, reference):
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.ALLOCATION_TRANSIENT, at=0),
            FaultSpec(FaultKind.ALLOCATION_TRANSIENT, at=1),
        )
        outcome = run(make_session(), chaos=plan)
        assert outcome.prints == reference.prints
        report = outcome.chaos
        assert report.retry_attempts == 2
        assert report.retry_recovered >= 1
        assert report.backoff_s > 0
        assert outcome.total_time > reference.total_time

    def test_exhaustion_raises_typed_error(self):
        policy = RetryPolicy(max_attempts=2)
        session = make_session()
        session.retry_policy = policy
        plan = FaultPlan.from_faults(*[
            FaultSpec(FaultKind.ALLOCATION_TRANSIENT, at=i) for i in range(4)
        ])
        with pytest.raises(AllocationDeniedError):
            run(session, chaos=plan)


class TestAllocationDenialFallback:
    def test_denial_halves_heap_without_optimizer(self, reference):
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.ALLOCATION_DENIED, at=0)
        )
        outcome = run(make_session(), chaos=plan, adapt=False)
        assert outcome.prints == reference.prints
        assert outcome.chaos.fallbacks == 1
        assert outcome.resource.cp_heap_mb == 512.0  # 1024 / 2

    def test_denial_reenumerates_with_optimizer(self, reference):
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.ALLOCATION_DENIED, at=0)
        )
        original = ResourceConfig(4096, 512)
        outcome = run(make_session(), chaos=plan, adapt=True,
                      resource=original)
        assert outcome.prints == reference.prints
        assert outcome.chaos.fallbacks == 1
        # the fallback configuration fits the halved container cap
        cluster = ElasticMLSession().cluster
        denied = cluster.container_mb_for_heap(original.cp_heap_mb)
        assert (
            cluster.container_mb_for_heap(outcome.resource.cp_heap_mb)
            <= denied // 2
        )


class TestFlakyHdfsRead:
    def test_retry_preserves_numeric_result(self, reference):
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.HDFS_SLOW_READ, at=0)
        )
        outcome = run(make_session(), chaos=plan)
        assert outcome.prints == reference.prints
        report = outcome.chaos
        assert report.injected == {"hdfs_slow_read": 1}
        assert report.retry_recovered == 1
        assert report.wasted_s > 0
        assert outcome.result.category("chaos_io") > 0

    def test_exhaustion_raises_typed_error(self):
        session = make_session()
        session.retry_policy = RetryPolicy(max_attempts=1)
        plan = FaultPlan.from_faults(*[
            FaultSpec(FaultKind.HDFS_SLOW_READ, at=i) for i in range(3)
        ])
        with pytest.raises(RetryExhaustedError) as excinfo:
            run(session, chaos=plan)
        assert isinstance(excinfo.value, ReproError)
        assert excinfo.value.attempts == 2

    def test_hdfs_raises_transient_io_error(self):
        hdfs = SimulatedHDFS(sample_cap=64)
        hdfs.create_dense_input("data/X", 100, 10)
        hdfs.injector = FaultInjector(
            FaultPlan.from_faults(FaultSpec(FaultKind.HDFS_SLOW_READ, at=0))
        )
        with pytest.raises(TransientIOError) as excinfo:
            hdfs.read_matrix("data/X")
        assert excinfo.value.path == "data/X"
        # second read: the scripted fault is spent
        assert hdfs.read_matrix("data/X") is not None


class TestMigrationFailure:
    """Satellite: a failed AM migration must leave the interpreter
    consistent — same live variables, old container still charged."""

    def setup_interp(self, injector):
        session = make_session()
        outcome = run(session)  # drives a real run to build interp state
        interp = Interpreter(
            session.cluster, hdfs=session.hdfs, sample_cap=64,
            injector=injector,
        )
        interp.run(
            session.compile_script(SRC, {"X": "data/X"}),
            ResourceConfig(1024, 512),
        )
        return interp

    def make_frame(self):
        dirty = MatrixObject.from_sample(np.ones((8, 4)))
        clean = MatrixObject.from_sample(np.ones((4, 4)))
        clean.dirty = False
        clean.hdfs_path = "data/clean"
        return {"D": dirty, "C": clean}

    def test_failed_migration_rolls_back(self):
        injector = FaultInjector(FaultPlan.from_faults(
            FaultSpec(FaultKind.MIGRATION_FAILURE, at=0)
        ))
        interp = self.setup_interp(injector)
        adapter = ResourceAdapter(None)
        frame = self.make_frame()
        clock_before = interp.clock
        pool_state = dict(interp.pool._entries)

        migrated = adapter._migrate(interp, frame, migration_cost=12.5)

        assert migrated is False
        # live variables untouched: still dirty, still in memory
        assert frame["D"].dirty is True
        assert frame["D"].in_memory is True
        assert frame["D"].hdfs_path is None
        assert frame["C"].hdfs_path == "data/clean"
        # the buffer pool was not restarted
        assert dict(interp.pool._entries) == pool_state
        # no migration happened, but the failed attempt was charged
        assert interp.result.migrations == 0
        assert interp.clock == clock_before + 12.5
        assert interp.result.category("migration_failed") == 12.5
        assert injector.report().wasted_s == 12.5
        assert injector.report().migration_failures == 1

    def test_successful_migration_after_failure(self):
        injector = FaultInjector(FaultPlan.from_faults(
            FaultSpec(FaultKind.MIGRATION_FAILURE, at=0)
        ))
        interp = self.setup_interp(injector)
        adapter = ResourceAdapter(None)
        frame = self.make_frame()

        assert adapter._migrate(interp, frame, migration_cost=1.0) is False
        # the second attempt (visit 1) is not scripted: it succeeds
        assert adapter._migrate(interp, frame, migration_cost=1.0) is True
        assert interp.result.migrations == 1
        assert frame["D"].dirty is False
        assert frame["D"].in_memory is False


class TestNodeLoss:
    def test_fail_node_drops_capacity_and_containers(self):
        rm = ResourceManager(small_cluster(num_nodes=2, node_memory_mb=4096))
        container = rm.try_allocate(1024)
        node_id = container.node_id
        lost = rm.fail_node(node_id)
        assert [c.container_id for c in lost] == [container.container_id]
        assert rm.available_mb == 4096  # one of two nodes left
        assert rm.used_mb == 0
        assert rm.live_nodes == 1

    def test_lost_node_rejects_allocations(self):
        rm = ResourceManager(small_cluster(num_nodes=2, node_memory_mb=4096))
        rm.fail_node(rm.nodes[0].node_id)
        granted = []
        while True:
            c = rm.try_allocate(2048)
            if c is None:
                break
            granted.append(c)
        assert len(granted) == 2  # only the surviving node's 4096 MB
        assert all(c.node_id == rm.nodes[1].node_id for c in granted)

    def test_restore_node_rejoins(self):
        rm = ResourceManager(small_cluster(num_nodes=2, node_memory_mb=4096))
        rm.fail_node(rm.nodes[0].node_id)
        rm.restore_node(rm.nodes[0].node_id)
        assert rm.available_mb == 8192
        assert rm.live_nodes == 2

    def test_fail_unknown_node_raises(self):
        rm = ResourceManager(small_cluster())
        with pytest.raises(ClusterError):
            rm.fail_node("node-999")

    def test_node_loss_degrades_interpreter_cluster_view(self):
        # NODE_LOSS fires at MR-job sites, so the input must be large
        # enough (logically) that the 1 GB heap compiles to MR jobs
        def big_session():
            session = ElasticMLSession(sample_cap=64)
            session.hdfs.create_dense_input(
                "data/X", 2_000_000, 500, seed=5
            )
            return session

        reference = run(big_session())
        assert reference.result.mr_jobs > 0
        plan = FaultPlan.from_faults(
            FaultSpec(FaultKind.NODE_LOSS, at=0)
        )
        outcome = run(big_session(), chaos=plan)
        assert outcome.prints == reference.prints
        assert outcome.chaos.node_losses == 1
        assert outcome.chaos.retry_recovered == 1
        # the lost node makes the re-executed and subsequent jobs slower
        assert outcome.total_time > reference.total_time


class TestResourceManagerInjection:
    def test_injected_denial_returns_none_despite_capacity(self):
        injector = FaultInjector(FaultPlan.from_faults(
            FaultSpec(FaultKind.ALLOCATION_TRANSIENT, at=0)
        ))
        rm = ResourceManager(
            small_cluster(num_nodes=2, node_memory_mb=4096),
            injector=injector,
        )
        assert rm.try_allocate(1024) is None
        assert rm.used_mb == 0
        # the scripted fault is spent; the next request succeeds
        assert rm.try_allocate(1024) is not None
