"""Unit tests for cluster configuration and resource configs."""

import pytest

from repro.cluster import ClusterConfig, ResourceConfig, paper_cluster, small_cluster
from repro.cluster.config import BUDGET_FRACTION, CONTAINER_OVERHEAD_FACTOR
from repro.common import MB
from repro.errors import ClusterError


class TestClusterConfig:
    def test_paper_cluster_dimensions(self):
        cc = paper_cluster()
        assert cc.num_nodes == 6
        assert cc.node_memory_mb == 80 * 1024
        assert cc.min_allocation_mb == 512
        assert cc.max_allocation_mb == 80 * 1024
        assert cc.num_reducers == 12

    def test_max_heap_is_53_gb(self):
        cc = paper_cluster()
        assert cc.max_heap_mb == pytest.approx(53.3 * 1024, rel=0.01)

    def test_container_request_applies_overhead(self):
        cc = paper_cluster()
        assert cc.container_mb_for_heap(1000) == 1500

    def test_container_clamped_to_min_allocation(self):
        cc = paper_cluster()
        assert cc.container_mb_for_heap(100) == 512

    def test_validate_heap_rejects_oversized(self):
        cc = paper_cluster()
        with pytest.raises(ClusterError):
            cc.validate_heap_request(cc.max_heap_mb * 2)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ClusterError):
            ClusterConfig(min_allocation_mb=0)
        with pytest.raises(ClusterError):
            ClusterConfig(min_allocation_mb=2048, max_allocation_mb=1024)
        with pytest.raises(ClusterError):
            ClusterConfig(num_nodes=0)

    def test_map_parallelism_bounds(self):
        cc = paper_cluster()
        # tiny tasks: bounded by vcores
        assert cc.map_task_parallelism(512) == cc.total_vcores
        # huge tasks: bounded by memory (one per node)
        assert cc.map_task_parallelism(40 * 1024) == cc.num_nodes

    def test_parallelism_respects_reservation(self):
        cc = paper_cluster()
        free = cc.map_task_parallelism(4 * 1024)
        reserved = cc.map_task_parallelism(
            4 * 1024, reserved_mb=cc.node_memory_mb * 3
        )
        assert reserved < free

    def test_small_cluster_factory(self):
        cc = small_cluster(num_nodes=3, node_memory_mb=4096)
        assert cc.num_nodes == 3
        assert cc.total_memory_mb == 3 * 4096


class TestResourceConfig:
    def test_budget_fraction(self):
        rc = ResourceConfig(1000, 500)
        assert rc.cp_budget_bytes == pytest.approx(
            1000 * MB * BUDGET_FRACTION
        )

    def test_per_block_override(self):
        rc = ResourceConfig(1024, 512, {7: 4096})
        assert rc.mr_heap_for_block(7) == 4096
        assert rc.mr_heap_for_block(8) == 512

    def test_max_mr_heap(self):
        rc = ResourceConfig(1024, 512, {1: 2048, 2: 8192})
        assert rc.max_mr_heap_mb == 8192

    def test_footprint_ordering(self):
        small = ResourceConfig(512, 512)
        large = ResourceConfig(4096, 512)
        assert small.footprint() < large.footprint()

    def test_with_mr_for_blocks(self):
        rc = ResourceConfig(1024, 512)
        rc2 = rc.with_mr_for_blocks([1, 2], 2048)
        assert rc2.mr_heap_for_block(1) == 2048
        assert rc.mr_heap_per_block == {}

    def test_describe_format(self):
        rc = ResourceConfig(8192, 2048)
        assert rc.describe() == "CP 8.0GB / MR 2.0GB"

    def test_copy_independent(self):
        rc = ResourceConfig(1024, 512, {1: 999})
        clone = rc.copy()
        clone.mr_heap_per_block[1] = 1
        assert rc.mr_heap_for_block(1) == 999
