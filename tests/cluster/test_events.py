"""Unit tests for the multi-application throughput simulator."""

import pytest

from repro.cluster import paper_cluster
from repro.cluster.events import (
    io_saturation_contention,
    simulate_throughput,
)


@pytest.fixture
def cluster():
    return paper_cluster()


class TestThroughput:
    def test_single_user_baseline(self, cluster):
        out = simulate_throughput(
            cluster, num_users=1, apps_per_user=8, app_duration=60.0,
            container_mb=12288,
        )
        assert out.total_apps == 8
        assert out.makespan_seconds == pytest.approx(8 * 60.0)
        assert out.apps_per_minute == pytest.approx(1.0)

    def test_parallel_users_scale_until_capacity(self, cluster):
        small = simulate_throughput(
            cluster, 4, 8, app_duration=60.0, container_mb=12288
        )
        large = simulate_throughput(
            cluster, 16, 8, app_duration=60.0, container_mb=12288
        )
        assert large.apps_per_minute == pytest.approx(
            4 * small.apps_per_minute
        )

    def test_saturation_at_container_capacity(self, cluster):
        """B-LL-sized apps (80 GB containers) cap at 6 concurrent; Opt
        apps (12 GB) cap at 36 — the Figure 12 shapes."""
        bll = simulate_throughput(
            cluster, 64, 4, app_duration=60.0, container_mb=80 * 1024
        )
        opt = simulate_throughput(
            cluster, 64, 4, app_duration=60.0, container_mb=12288
        )
        assert bll.max_concurrency == 6
        assert opt.max_concurrency == 36
        assert opt.apps_per_minute > 4 * bll.apps_per_minute

    def test_throughput_saturates_beyond_capacity(self, cluster):
        at_cap = simulate_throughput(
            cluster, 36, 8, 60.0, container_mb=12288
        )
        beyond = simulate_throughput(
            cluster, 128, 8, 60.0, container_mb=12288
        )
        assert beyond.apps_per_minute == pytest.approx(
            at_cap.apps_per_minute, rel=0.05
        )

    def test_contention_slows_large_fleets(self, cluster):
        free = simulate_throughput(cluster, 32, 8, 60.0, 12288)
        contended = simulate_throughput(
            cluster, 32, 8, 60.0, 12288,
            contention=io_saturation_contention(saturation_point=8),
        )
        assert contended.apps_per_minute < free.apps_per_minute

    def test_contention_model_shape(self):
        factor = io_saturation_contention(saturation_point=8)
        assert factor(4) == 1.0
        assert factor(8) == 1.0
        assert factor(32) > factor(16) > 1.0

    def test_all_apps_complete(self, cluster):
        out = simulate_throughput(cluster, 7, 3, 10.0, 30000)
        assert out.total_apps == 21
        assert out.makespan_seconds > 0


class TestMixedThroughput:
    def test_heterogeneous_users(self, cluster):
        from repro.cluster.events import simulate_mixed_throughput

        # half small/fast apps, half large/slow apps
        specs = [(20.0, 12288)] * 8 + [(120.0, 80 * 1024)] * 8
        out = simulate_mixed_throughput(cluster, specs, apps_per_user=4)
        assert out.total_apps == 64
        assert out.makespan_seconds > 0

    def test_small_apps_fill_around_large(self, cluster):
        from repro.cluster.events import simulate_mixed_throughput

        only_large = simulate_mixed_throughput(
            cluster, [(60.0, 80 * 1024)] * 6, apps_per_user=4
        )
        mixed = simulate_mixed_throughput(
            cluster,
            [(60.0, 80 * 1024)] * 6 + [(60.0, 12288)] * 12,
            apps_per_user=4,
        )
        # 12 extra small users triple the work; right-sized containers
        # let them run alongside the large apps without tripling time
        assert mixed.total_apps == 3 * only_large.total_apps
        assert mixed.makespan_seconds < 2 * only_large.makespan_seconds

    def test_mixed_queue_not_head_blocked(self, cluster):
        from repro.cluster.events import simulate_mixed_throughput

        # a queued giant app must not block small apps that still fit
        specs = [(50.0, 80 * 1024)] * 7 + [(10.0, 4096)] * 4
        out = simulate_mixed_throughput(cluster, specs, apps_per_user=2)
        # the four small users (40 MBish containers) interleave freely
        assert out.max_concurrency > 6
