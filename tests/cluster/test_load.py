"""Unit tests for the cluster background-load model."""

import pytest

from repro.cluster import ClusterLoad, mr_slowdown


class TestSlowdown:
    def test_idle_no_slowdown(self):
        assert mr_slowdown(0.0) == 1.0

    def test_half_loaded_doubles(self):
        assert mr_slowdown(0.5) == pytest.approx(2.0)

    def test_capped_at_max_utilization(self):
        assert mr_slowdown(0.99) == mr_slowdown(1.5) == pytest.approx(10.0)

    def test_negative_clamped(self):
        assert mr_slowdown(-1) == 1.0


class TestClusterLoad:
    def test_idle_factory(self):
        load = ClusterLoad.idle()
        assert load.utilization(0) == 0.0
        assert load.slowdown(100) == 1.0

    def test_constant_factory(self):
        load = ClusterLoad.constant(0.7)
        assert load.utilization(0) == 0.7
        assert load.utilization(10**6) == 0.7

    def test_piecewise_schedule(self):
        load = ClusterLoad(schedule=[(0, 0.1), (100, 0.8), (200, 0.3)])
        assert load.utilization(50) == 0.1
        assert load.utilization(100) == 0.8
        assert load.utilization(150) == 0.8
        assert load.utilization(500) == 0.3

    def test_baseline_before_first_step(self):
        load = ClusterLoad(schedule=[(100, 0.9)], baseline=0.2)
        assert load.utilization(50) == 0.2

    def test_unsorted_schedule_accepted(self):
        load = ClusterLoad(schedule=[(200, 0.5), (100, 0.9)])
        assert load.utilization(150) == 0.9
        assert load.utilization(250) == 0.5
