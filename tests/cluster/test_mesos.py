"""Unit tests for offer-based (Mesos-style) allocation."""

import pytest

from repro.cluster import OfferBasedAllocator, OfferStream, ResourceOffer, paper_cluster
from repro.cluster.mesos import OfferDecision
from repro.errors import ClusterError

# a CG-like profile: expensive at small CP, cheap once data fits
PROFILE = [
    (512.0, 250.0),
    (2048.0, 250.0),
    (8192.0, 240.0),
    (16384.0, 70.0),
    (32768.0, 70.0),
]


@pytest.fixture
def cluster():
    return paper_cluster()


def offer(memory_mb, timestamp=0.0, node=0):
    return ResourceOffer(offer_id=1, node_id=node, memory_mb=memory_mb,
                         timestamp=timestamp)


class TestValuation:
    def test_cost_at_takes_best_fitting_point(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster)
        assert alloc.cost_at(20000) == 70.0
        assert alloc.cost_at(9000) == 240.0

    def test_cost_at_below_min_is_none(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster)
        assert alloc.cost_at(100) is None

    def test_config_at_matches_cost(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster)
        assert alloc.config_at(20000) == 16384.0

    def test_best_cost(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster)
        assert alloc.best_cost == 70.0

    def test_empty_profile_rejected(self, cluster):
        with pytest.raises(ClusterError):
            OfferBasedAllocator([], cluster)

    def test_all_infinite_profile_rejected(self, cluster):
        with pytest.raises(ClusterError):
            OfferBasedAllocator([(512.0, float("inf"))], cluster)


class TestPolicy:
    def test_optimal_offer_accepted_immediately(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster)
        # 16384 heap needs a 24576 MB container
        decision, cost, regret = alloc.evaluate(offer(30000, timestamp=0.0))
        assert decision is OfferDecision.ACCEPT
        assert regret == 0.0

    def test_suboptimal_offer_declined_early(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster, wait_cost_per_second=1.0)
        decision, cost, regret = alloc.evaluate(offer(4096, timestamp=0.0))
        assert decision is OfferDecision.DECLINE
        assert regret == pytest.approx(180.0)

    def test_patience_decays(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster, wait_cost_per_second=1.0)
        late = offer(4096, timestamp=200.0)
        decision, _, _ = alloc.evaluate(late)
        assert decision is OfferDecision.ACCEPT  # regret 180 <= 200 tolerated

    def test_too_small_offer_always_declined(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster, wait_cost_per_second=100)
        decision, cost, _ = alloc.evaluate(offer(100, timestamp=10**6))
        assert decision is OfferDecision.DECLINE
        assert cost is None

    def test_allocate_over_stream(self, cluster):
        offers = [
            offer(1000, 1.0), offer(5000, 2.0), offer(40000, 3.0),
        ]
        alloc = OfferBasedAllocator(PROFILE, cluster, wait_cost_per_second=1.0)
        outcome = alloc.allocate(offers)
        assert outcome.accepted
        assert outcome.declined == 2
        assert outcome.cost == 70.0

    def test_stream_exhaustion(self, cluster):
        alloc = OfferBasedAllocator(PROFILE, cluster,
                                    wait_cost_per_second=0.0001)
        outcome = alloc.allocate([offer(1000, t) for t in range(5)])
        assert not outcome.accepted
        assert outcome.declined == 5


class TestOfferStream:
    def test_deterministic_given_seed(self, cluster):
        a = [o.memory_mb for o in OfferStream(cluster, seed=4, max_offers=10)]
        b = [o.memory_mb for o in OfferStream(cluster, seed=4, max_offers=10)]
        assert a == b

    def test_heavier_load_means_smaller_offers(self, cluster):
        light = [o.memory_mb
                 for o in OfferStream(cluster, load_mean=0.2, max_offers=50)]
        heavy = [o.memory_mb
                 for o in OfferStream(cluster, load_mean=0.9, max_offers=50)]
        assert sum(heavy) < sum(light)

    def test_timestamps_spaced(self, cluster):
        stream = list(OfferStream(cluster, interarrival_seconds=3.0,
                                  max_offers=4))
        assert [o.timestamp for o in stream] == [3.0, 6.0, 9.0, 12.0]

    def test_end_to_end_with_optimizer_profile(self, cluster):
        """On a loaded cluster the allocator eventually accepts a
        workable offer with bounded regret."""
        alloc = OfferBasedAllocator(PROFILE, cluster,
                                    wait_cost_per_second=2.0)
        outcome = alloc.allocate(OfferStream(cluster, load_mean=0.8, seed=1))
        assert outcome.accepted
        assert outcome.regret <= alloc.tolerated_regret(
            outcome.offer.timestamp
        )
