"""Unit tests for the Spark executor model (Appendix D)."""

import pytest

from repro.cluster.spark import SparkConfig, SparkRuntime
from repro.workloads import scenario


@pytest.fixture
def runtime():
    return SparkRuntime()


class TestL2SVMPlans:
    def test_hybrid_beats_full_everywhere(self, runtime):
        for size in ("XS", "S", "M", "L", "XL"):
            scn = scenario(size)
            hybrid = runtime.run_l2svm(scn, "hybrid")
            full = runtime.run_l2svm(scn, "full")
            assert hybrid.total_time < full.total_time, size

    def test_full_has_more_stages(self, runtime):
        scn = scenario("S")
        assert (
            runtime.run_l2svm(scn, "full").stages
            > runtime.run_l2svm(scn, "hybrid").stages
        )

    def test_cache_sweet_spot_at_L(self, runtime):
        assert runtime.run_l2svm(scenario("L"), "hybrid").cached

    def test_xl_exceeds_cache(self, runtime):
        result = runtime.run_l2svm(scenario("XL"), "hybrid")
        assert not result.cached
        # uncached iteration passes re-scan disk: massive slowdown
        assert result.total_time > 50 * (
            runtime.run_l2svm(scenario("L"), "hybrid").total_time
        )

    def test_startup_dominates_small_data(self, runtime):
        result = runtime.run_l2svm(scenario("XS"), "hybrid")
        assert result.breakdown["startup"] >= 0.5 * result.total_time

    def test_unknown_plan_rejected(self, runtime):
        with pytest.raises(ValueError):
            runtime.run_l2svm(scenario("S"), "bogus")

    def test_sparse_data_smaller_footprint(self, runtime):
        dense = runtime.run_l2svm(scenario("L"), "hybrid")
        sparse = runtime.run_l2svm(scenario("L", sparse=True), "hybrid")
        assert sparse.total_time < dense.total_time


class TestSparkConfig:
    def test_cache_capacity(self):
        config = SparkConfig()
        # 6 executors x 55 GB x 0.6 ~ 198 GB
        assert config.cache_capacity_bytes == pytest.approx(
            198 * 1024**3, rel=0.01
        )

    def test_cluster_footprint_is_whole_cluster(self):
        config = SparkConfig()
        # the paper: a single Spark application occupies the cluster
        assert config.cluster_footprint_mb() > 6 * 55 * 1024

    def test_total_cores(self):
        assert SparkConfig().total_cores == 144
