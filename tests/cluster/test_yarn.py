"""Unit tests for YARN container accounting."""

import pytest

from repro.cluster import paper_cluster, small_cluster
from repro.cluster.yarn import ResourceManager
from repro.errors import ClusterError


@pytest.fixture
def rm():
    return ResourceManager(small_cluster(num_nodes=2, node_memory_mb=4096))


class TestAllocation:
    def test_allocate_and_release(self, rm):
        container = rm.try_allocate(1024)
        assert container is not None
        assert rm.used_mb == 1024
        rm.release(container)
        assert rm.used_mb == 0

    def test_request_clamped_to_min(self, rm):
        container = rm.try_allocate(10)
        assert container.memory_mb == rm.cluster.min_allocation_mb

    def test_request_above_max_raises(self, rm):
        with pytest.raises(ClusterError):
            rm.try_allocate(rm.cluster.max_allocation_mb + 1)

    def test_exhaustion_returns_none(self, rm):
        granted = []
        while True:
            c = rm.try_allocate(2048)
            if c is None:
                break
            granted.append(c)
        assert len(granted) == 4  # 2 nodes x 4096 / 2048

    def test_first_fit_fills_nodes(self, rm):
        a = rm.try_allocate(3000)
        b = rm.try_allocate(3000)
        assert a.node_id != b.node_id

    def test_release_frees_capacity(self, rm):
        grants = [rm.try_allocate(2048) for _ in range(4)]
        assert rm.try_allocate(2048) is None
        rm.release(grants[0])
        assert rm.try_allocate(2048) is not None

    def test_double_release_raises(self, rm):
        c = rm.try_allocate(1024)
        rm.release(c)
        with pytest.raises(ClusterError):
            rm.release(c)

    def test_max_concurrent(self):
        rm = ResourceManager(paper_cluster())
        # the paper's arithmetic: 6 x floor(80GB / (1.5 x 8GB)) = 36 apps
        assert rm.max_concurrent(int(8 * 1024 * 1.5)) == 36


class TestNormalizeRequest:
    """Edge cases of request normalization (regression tests: fractional
    requests used to be truncated *down*, and non-positive requests were
    silently clamped to the minimum)."""

    def test_fractional_request_rounds_up(self, rm):
        # under-allocation would violate the memory guarantee: a task
        # needing 1024.3 MB must get 1025, not 1024
        assert rm.normalize_request(1024.3) == 1025

    def test_whole_request_unchanged(self, rm):
        assert rm.normalize_request(2048) == 2048
        assert rm.normalize_request(2048.0) == 2048

    def test_small_request_clamped_to_min(self, rm):
        assert rm.normalize_request(1) == rm.cluster.min_allocation_mb

    def test_zero_request_raises(self, rm):
        with pytest.raises(ClusterError):
            rm.normalize_request(0)

    def test_negative_request_raises(self, rm):
        with pytest.raises(ClusterError):
            rm.normalize_request(-512)

    def test_nan_and_inf_raise(self, rm):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ClusterError):
                rm.normalize_request(bad)

    def test_exact_max_boundary_accepted(self, rm):
        assert (
            rm.normalize_request(rm.cluster.max_allocation_mb)
            == rm.cluster.max_allocation_mb
        )

    def test_fraction_above_max_raises(self, rm):
        # ceil(max + 0.5) exceeds the max constraint
        with pytest.raises(ClusterError):
            rm.normalize_request(rm.cluster.max_allocation_mb + 0.5)

    def test_within_max_but_above_node_capacity_returns_none(self):
        # a request the RM accepts (<= max_allocation) but no single
        # node can host must be a clean None, not an error or a hang
        import dataclasses

        from repro.cluster import small_cluster

        cluster = dataclasses.replace(
            small_cluster(num_nodes=2, node_memory_mb=4096),
            max_allocation_mb=8192,
        )
        rm = ResourceManager(cluster)
        assert rm.try_allocate(4097) is None


class TestTenantLedger:
    def test_allocations_attributed_to_tenants(self, rm):
        a1 = rm.try_allocate(1024, tenant="alice")
        rm.try_allocate(512, tenant="bob")
        rm.try_allocate(512, tenant="alice")
        assert rm.usage_by_tenant() == {"alice": 1536, "bob": 512}
        assert rm.tenant_containers("alice") == 2
        assert rm.tenant_containers("bob") == 1
        rm.release(a1)
        assert rm.usage_by_tenant() == {"alice": 512, "bob": 512}

    def test_ledger_cleans_up_empty_tenants(self, rm):
        container = rm.try_allocate(1024, tenant="alice")
        rm.release(container)
        assert rm.usage_by_tenant() == {}
        assert rm.tenant_containers("alice") == 0

    def test_untenanted_allocations_not_in_ledger(self, rm):
        rm.try_allocate(1024)
        assert rm.usage_by_tenant() == {}

    def test_tenant_share_fraction(self, rm):
        total = rm.cluster.total_memory_mb
        rm.try_allocate(1024, tenant="alice")
        assert rm.tenant_share("alice") == pytest.approx(1024 / total)
        assert rm.tenant_share("nobody") == 0.0

    def test_node_loss_drops_tenant_ledger(self, rm):
        container = rm.try_allocate(1024, tenant="alice")
        rm.fail_node(container.node_id)
        assert rm.usage_by_tenant() == {}

    def test_can_fit_tracks_capacity(self, rm):
        assert rm.can_fit(4096)
        rm.try_allocate(4096)
        rm.try_allocate(4096)
        assert not rm.can_fit(1024)
