"""Unit tests for HOP DAG construction."""

import pytest

from repro.common import DataType, MatrixCharacteristics, ValueType
from repro.compiler import hops as H
from repro.compiler.hop_builder import build_hops
from repro.compiler.statement_blocks import build_program
from repro.dml import parse
from repro.errors import CompilerError


def build(source, args=None):
    program = build_program(parse(source), args or {})
    return build_hops(program)


def first_block(program):
    return program.blocks[0]


def find_hops(roots, hop_type, predicate=None):
    out = [h for h in H.iter_dag(roots) if isinstance(h, hop_type)]
    if predicate is not None:
        out = [h for h in out if predicate(h)]
    return out


class TestDataFlow:
    def test_transient_write_per_assigned_var(self):
        program = build("a = 1\nb = 2")
        roots = first_block(program).hop_roots
        writes = find_hops(
            roots, H.DataOp, lambda h: h.kind is H.DataOpKind.TRANSIENT_WRITE
        )
        assert {w.name for w in writes} == {"a", "b"}

    def test_transient_read_for_external_var(self):
        program = build("b = a + 1")
        roots = first_block(program).hop_roots
        reads = find_hops(
            roots, H.DataOp, lambda h: h.kind is H.DataOpKind.TRANSIENT_READ
        )
        assert {r.name for r in reads} == {"a"}

    def test_within_block_chaining_avoids_reads(self):
        # b reads the freshly built hop for a, not a transient read
        program = build("a = x + 1\nb = a * 2")
        roots = first_block(program).hop_roots
        reads = find_hops(
            roots, H.DataOp, lambda h: h.kind is H.DataOpKind.TRANSIENT_READ
        )
        assert {r.name for r in reads} == {"x"}

    def test_reassignment_uses_latest_value(self):
        program = build("a = x + 1\na = a * 2\nb = a")
        roots = first_block(program).hop_roots
        write_b = [
            h
            for h in find_hops(roots, H.DataOp)
            if h.kind is H.DataOpKind.TRANSIENT_WRITE and h.name == "b"
        ][0]
        assert isinstance(write_b.inputs[0], H.BinaryOp)
        assert write_b.inputs[0].op is H.OpCode.MULT

    def test_persistent_read_from_args(self):
        program = build("X = read($X)", {"X": "hdfs:/file"})
        roots = first_block(program).hop_roots
        reads = find_hops(
            roots, H.DataOp, lambda h: h.kind is H.DataOpKind.PERSISTENT_READ
        )
        assert reads[0].fname == "hdfs:/file"

    def test_write_becomes_persistent_write_root(self):
        program = build(
            'X = read($X)\nwrite(X, $out, format="binary")',
            {"X": "in", "out": "out"},
        )
        roots = first_block(program).hop_roots
        writes = find_hops(
            roots, H.DataOp, lambda h: h.kind is H.DataOpKind.PERSISTENT_WRITE
        )
        assert writes[0].fname == "out"

    def test_missing_script_arg_raises(self):
        with pytest.raises(CompilerError):
            build("X = read($X)")


class TestOperatorMapping:
    def test_matmult_builds_aggbinary(self):
        program = build("C = A %*% B")
        roots = first_block(program).hop_roots
        assert len(find_hops(roots, H.AggBinaryOp)) == 1

    def test_ppred_lowered_to_relational_binary(self):
        program = build('S = ppred(X, 0, ">")')
        roots = first_block(program).hop_roots
        comparisons = find_hops(
            roots, H.BinaryOp, lambda h: h.op is H.OpCode.GT
        )
        assert len(comparisons) == 1
        assert comparisons[0].data_type is DataType.MATRIX

    def test_ppred_invalid_operator_raises(self):
        with pytest.raises(CompilerError):
            build('S = ppred(X, 0, "max")')

    def test_table_builds_ternary(self):
        program = build("Y = table(seq(1, 10), y)")
        roots = first_block(program).hop_roots
        assert len(find_hops(roots, H.TernaryOp)) == 1

    def test_matrix_constructor_is_datagen(self):
        program = build("Z = matrix(1.5, rows=4, cols=2)")
        roots = first_block(program).hop_roots
        gens = find_hops(roots, H.DataGenOp)
        assert gens[0].gen_method is H.OpCode.RAND
        assert gens[0].param("min").value == 1.5

    def test_seq_is_datagen(self):
        program = build("s = seq(1, 10, 2)")
        gens = find_hops(first_block(program).hop_roots, H.DataGenOp)
        assert gens[0].gen_method is H.OpCode.SEQ

    def test_aggregates_directions(self):
        program = build("a = sum(X)\nb = rowSums(X)\nc = colSums(X)")
        aggs = find_hops(first_block(program).hop_roots, H.AggUnaryOp)
        directions = {a.direction for a in aggs}
        assert directions == {
            H.AggDirection.ALL, H.AggDirection.ROW, H.AggDirection.COL,
        }

    def test_min_arity_dispatch(self):
        program = build("a = min(X)\nb = min(X, 0)")
        roots = first_block(program).hop_roots
        assert len(find_hops(roots, H.AggUnaryOp)) == 1
        assert len(
            find_hops(roots, H.BinaryOp, lambda h: h.op is H.OpCode.MIN)
        ) == 1

    def test_nrow_is_scalar_int(self):
        program = build("n = nrow(X)")
        hop = find_hops(
            first_block(program).hop_roots,
            H.UnaryOp,
            lambda h: h.op is H.OpCode.NROW,
        )[0]
        assert hop.data_type is DataType.SCALAR
        assert hop.value_type is ValueType.INT64

    def test_two_arg_log_is_quotient(self):
        program = build("y = log(x, 2)")
        roots = first_block(program).hop_roots
        divs = find_hops(roots, H.BinaryOp, lambda h: h.op is H.OpCode.DIV)
        assert len(divs) == 1

    def test_ifdef_resolves_provided_arg(self):
        program = build("a = ifdef($x, 7)", {"x": 3})
        literals = find_hops(first_block(program).hop_roots, H.LiteralOp)
        assert any(lit.value == 3 for lit in literals)

    def test_ifdef_falls_back_to_default(self):
        program = build("a = ifdef($x, 7)")
        literals = find_hops(first_block(program).hop_roots, H.LiteralOp)
        assert any(lit.value == 7 for lit in literals)

    def test_indexing_bounds_structure(self):
        program = build("Q = X[, 1:k]")
        rix = find_hops(first_block(program).hop_roots, H.IndexingOp)[0]
        assert rix.all_rows and not rix.all_cols

    def test_left_indexing_hop(self):
        program = build("X[1:2, ] = Y")
        lix = find_hops(first_block(program).hop_roots, H.LeftIndexingOp)[0]
        assert lix.all_cols and not lix.all_rows

    def test_string_concat_value_type(self):
        program = build('msg = "x=" + 5\nprint(msg)')
        writes = find_hops(
            first_block(program).hop_roots,
            H.DataOp,
            lambda h: h.kind is H.DataOpKind.TRANSIENT_WRITE,
        )
        assert writes[0].value_type is ValueType.STRING


class TestFunctions:
    SOURCE = """
scale = function(Matrix[double] A, double f) return (Matrix[double] B) {
  B = A * f
}
Y = scale(X, 2.0)
"""

    def test_function_call_builds_fop_and_output(self):
        program = build(self.SOURCE)
        roots = first_block(program).hop_roots
        fops = find_hops(roots, H.FunctionOp)
        outs = find_hops(roots, H.FunctionOutput)
        assert len(fops) == 1 and len(outs) == 1
        assert fops[0].func_name == "scale"

    def test_function_body_has_hops(self):
        program = build(self.SOURCE)
        func = program.functions["scale"]
        body_roots = func.blocks[0].hop_roots
        assert find_hops(body_roots, H.BinaryOp)

    def test_default_argument_materialized(self):
        program = build("""
f = function(double a, double b = 9) return (double c) { c = a + b }
x = f(1)
""")
        fop = find_hops(first_block(program).hop_roots, H.FunctionOp)[0]
        assert len(fop.inputs) == 2
        assert fop.inputs[1].value == 9
