"""Unit tests for HOP DAG infrastructure (traversal, parents, explain)."""

from repro.common import DataType
from repro.compiler import hops as H


def small_dag():
    """X -> t(X) -> t(X)%*%X -> sum; plus a literal-scaled branch."""
    x = H.DataOp(H.DataOpKind.TRANSIENT_READ, "X")
    t = H.ReorgOp(H.OpCode.TRANSPOSE, x)
    mm = H.AggBinaryOp(t, x)
    s = H.AggUnaryOp(H.OpCode.SUM, H.AggDirection.ALL, mm)
    two = H.LiteralOp(2)
    scaled = H.BinaryOp(H.OpCode.MULT, mm, two)
    w1 = H.DataOp(H.DataOpKind.TRANSIENT_WRITE, "s", inputs=[s],
                  data_type=DataType.SCALAR)
    w2 = H.DataOp(H.DataOpKind.TRANSIENT_WRITE, "Z", inputs=[scaled])
    return [w1, w2], {"x": x, "t": t, "mm": mm, "s": s, "scaled": scaled}


class TestTraversal:
    def test_post_order_inputs_first(self):
        roots, nodes = small_dag()
        order = H.iter_dag(roots)
        position = {hop.hop_id: i for i, hop in enumerate(order)}
        for hop in order:
            for inp in hop.inputs:
                assert position[inp.hop_id] < position[hop.hop_id]

    def test_each_hop_once(self):
        roots, nodes = small_dag()
        order = H.iter_dag(roots)
        ids = [hop.hop_id for hop in order]
        assert len(ids) == len(set(ids))
        # the shared mm node appears once despite two consumers
        assert ids.count(nodes["mm"].hop_id) == 1

    def test_count_operators_with_predicate(self):
        roots, _ = small_dag()
        total = H.count_operators(roots)
        matmults = H.count_operators(
            roots, lambda h: isinstance(h, H.AggBinaryOp)
        )
        assert matmults == 1
        assert total > matmults

    def test_parent_map(self):
        roots, nodes = small_dag()
        parents = H.build_parent_map(roots)
        mm_parents = parents[nodes["mm"].hop_id]
        assert len(mm_parents) == 2
        assert not parents[roots[0].hop_id]

    def test_replace_input(self):
        roots, nodes = small_dag()
        new_x = H.DataOp(H.DataOpKind.TRANSIENT_READ, "Y")
        nodes["mm"].replace_input(nodes["x"], new_x)
        assert nodes["mm"].inputs[1] is new_x
        assert nodes["t"].inputs[0] is nodes["x"]  # untouched elsewhere


class TestNodeBasics:
    def test_unique_ids(self):
        a = H.LiteralOp(1)
        b = H.LiteralOp(1)
        assert a.hop_id != b.hop_id

    def test_literal_value_types(self):
        from repro.common import ValueType

        assert H.LiteralOp(True).value_type is ValueType.BOOLEAN
        assert H.LiteralOp(3).value_type is ValueType.INT64
        assert H.LiteralOp(3.5).value_type is ValueType.FP64
        assert H.LiteralOp("x").value_type is ValueType.STRING

    def test_dataop_read_write_predicates(self):
        read = H.DataOp(H.DataOpKind.PERSISTENT_READ, "f")
        write = H.DataOp(H.DataOpKind.TRANSIENT_WRITE, "v",
                         inputs=[H.LiteralOp(1)])
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_binary_shape_predicates(self):
        x = H.DataOp(H.DataOpKind.TRANSIENT_READ, "X")
        lit = H.LiteralOp(2)
        mm = H.BinaryOp(H.OpCode.MULT, x, x)
        ms = H.BinaryOp(H.OpCode.MULT, x, lit)
        assert mm.is_matrix_matrix
        assert ms.is_matrix_scalar

    def test_explain_renders_all_nodes(self):
        roots, nodes = small_dag()
        text = H.explain(roots)
        assert "ba(+*)" in text
        assert "tread:X" in text
        assert text.count("\n") + 1 == len(H.iter_dag(roots))

    def test_agg_opcode_strings(self):
        x = H.DataOp(H.DataOpKind.TRANSIENT_READ, "X")
        assert H.AggUnaryOp(
            H.OpCode.SUM, H.AggDirection.ROW, x
        ).opcode_str() == "uarsum"
        assert H.AggUnaryOp(
            H.OpCode.SUM, H.AggDirection.ALL, x
        ).opcode_str() == "uasum"
