"""Unit tests for per-operator memory estimation."""

import math

from repro.common import MatrixCharacteristics
from repro.compiler import hops as H
from repro.compiler.memory_estimates import (
    SCALAR_MEM,
    estimate_dag_memory,
    estimate_hop_memory,
)


def matrix_read(name, rows, cols, nnz=None):
    hop = H.DataOp(H.DataOpKind.TRANSIENT_READ, name)
    if nnz is None and rows is not None and cols is not None:
        nnz = rows * cols
    hop.mc = MatrixCharacteristics(rows, cols, nnz)
    return hop


class TestHopEstimates:
    def test_read_is_output_only(self):
        x = matrix_read("X", 1000, 100)
        estimate_hop_memory(x)
        assert x.mem_estimate == x.output_mem
        assert x.output_mem > 0

    def test_binary_sums_inputs_and_output(self):
        x = matrix_read("X", 1000, 100)
        y = matrix_read("Y", 1000, 100)
        estimate_hop_memory(x)
        estimate_hop_memory(y)
        add = H.BinaryOp(H.OpCode.PLUS, x, y)
        add.mc = MatrixCharacteristics(1000, 100, 100000)
        estimate_hop_memory(add)
        assert add.mem_estimate > x.output_mem + y.output_mem

    def test_scalar_ops_tiny(self):
        a = H.LiteralOp(1)
        b = H.LiteralOp(2)
        estimate_hop_memory(a)
        estimate_hop_memory(b)
        add = H.BinaryOp(H.OpCode.PLUS, a, b)
        add.mc = MatrixCharacteristics(0, 0, 0)
        estimate_hop_memory(add)
        assert add.mem_estimate <= 4 * SCALAR_MEM

    def test_unknown_input_infinite(self):
        x = matrix_read("X", None, None)
        estimate_hop_memory(x)
        t = H.ReorgOp(H.OpCode.TRANSPOSE, x)
        estimate_hop_memory(t)
        assert math.isinf(t.mem_estimate)

    def test_left_indexing_copy_on_write(self):
        x = matrix_read("X", 1000, 100)
        y = matrix_read("Y", 10, 100)
        for hop in (x, y):
            estimate_hop_memory(hop)
        bounds = [H.LiteralOp(1) for _ in range(4)]
        for b in bounds:
            estimate_hop_memory(b)
        lix = H.LeftIndexingOp(x, y, *bounds)
        lix.mc = x.mc.copy()
        estimate_hop_memory(lix)
        # target + source + output + CoW copy of the target
        assert lix.mem_estimate > 2.5 * x.output_mem

    def test_solve_workspace(self):
        a = matrix_read("A", 100, 100)
        b = matrix_read("b", 100, 1)
        for hop in (a, b):
            estimate_hop_memory(hop)
        solve = H.BinaryOp(H.OpCode.SOLVE, a, b)
        solve.mc = MatrixCharacteristics(100, 1, 100)
        estimate_hop_memory(solve)
        assert solve.mem_estimate > 2 * a.output_mem

    def test_write_charges_input_only(self):
        x = matrix_read("X", 1000, 100)
        estimate_hop_memory(x)
        write = H.DataOp(H.DataOpKind.TRANSIENT_WRITE, "X", inputs=[x])
        write.mc = x.mc.copy()
        estimate_hop_memory(write)
        assert write.mem_estimate == x.output_mem


class TestDagEstimates:
    def test_unknown_flag_propagates(self):
        x = matrix_read("X", None, None)
        t = H.ReorgOp(H.OpCode.TRANSPOSE, x)
        w = H.DataOp(H.DataOpKind.TRANSIENT_WRITE, "Z", inputs=[t])
        assert estimate_dag_memory([w]) is True

    def test_known_dag_not_flagged(self):
        x = matrix_read("X", 10, 10)
        t = H.ReorgOp(H.OpCode.TRANSPOSE, x)
        t.mc = MatrixCharacteristics(10, 10, 100)
        w = H.DataOp(H.DataOpKind.TRANSIENT_WRITE, "Z", inputs=[t])
        w.mc = t.mc.copy()
        assert estimate_dag_memory([w]) is False

    def test_scalar_only_dag_not_flagged(self):
        a = H.LiteralOp(5)
        w = H.DataOp(H.DataOpKind.TRANSIENT_WRITE, "a", inputs=[a],
                     data_type=a.data_type)
        w.mc = MatrixCharacteristics(0, 0, 0)
        assert estimate_dag_memory([w]) is False
