"""Unit tests for operator selection (exec types + physical methods)."""

from repro.cluster.resources import ResourceConfig
from repro.common import ExecType, MatrixCharacteristics, GB, MB
from repro.compiler import hops as H
from repro.compiler.operator_selection import select_operators
from repro.compiler.pipeline import build_and_analyze


def analyzed_roots(source, meta, args, cp_mb, mr_mb):
    program = build_and_analyze(source, args, meta)
    rc = ResourceConfig(cp_mb, mr_mb)
    blocks = [
        b
        for b in program.all_blocks()
        if hasattr(b, "hop_roots") and b.hop_roots
    ]
    for block in blocks:
        select_operators(
            block.hop_roots, rc.cp_budget_bytes,
            rc.mr_budget_bytes(block.block_id),
        )
    return blocks


def find(blocks, hop_type, predicate=None):
    out = []
    for block in blocks:
        for hop in H.iter_dag(block.hop_roots):
            if isinstance(hop, hop_type) and (
                predicate is None or predicate(hop)
            ):
                out.append(hop)
    return out


# 8 GB dense matrix and its 8 MB label vector
BIG = {
    "X": MatrixCharacteristics(10**6, 1000, 10**9),
    "y": MatrixCharacteristics(10**6, 1, 10**6),
}
SMALL = {
    "X": MatrixCharacteristics(1000, 100, 10**5),
    "y": MatrixCharacteristics(1000, 1, 1000),
}
ARGS = {"X": "X", "y": "y"}


class TestExecTypeHeuristic:
    def test_small_data_runs_in_cp(self):
        blocks = analyzed_roots(
            "X = read($X)\nZ = t(X) %*% X", SMALL, ARGS, 2048, 512
        )
        mm = find(blocks, H.AggBinaryOp)[0]
        assert mm.exec_type is ExecType.CP

    def test_large_data_goes_to_mr(self):
        blocks = analyzed_roots(
            "X = read($X)\nZ = t(X) %*% X", BIG, ARGS, 2048, 512
        )
        mm = find(blocks, H.AggBinaryOp)[0]
        assert mm.exec_type is ExecType.MR

    def test_budget_is_70_percent_of_heap(self):
        rc = ResourceConfig(1000, 1000)
        assert abs(rc.cp_budget_bytes - 700 * MB) < 1e-6

    def test_unknown_size_forces_mr(self):
        source = """
X = read($X)
y = read($y)
Y = table(seq(1, nrow(X)), y)
Z = Y + 1
"""
        blocks = analyzed_roots(source, BIG, ARGS, 60000, 512)
        plus = find(
            blocks, H.BinaryOp,
            lambda h: h.op is H.OpCode.PLUS and h.is_matrix,
        )
        assert plus[0].exec_type is ExecType.MR

    def test_solve_forced_cp(self):
        source = """
X = read($X)
y = read($y)
beta = solve(t(X) %*% X, t(X) %*% y)
"""
        blocks = analyzed_roots(source, BIG, ARGS, 512, 512)
        solves = find(blocks, H.BinaryOp, lambda h: h.op is H.OpCode.SOLVE)
        assert solves[0].exec_type is ExecType.CP

    def test_scalar_ops_always_cp(self):
        blocks = analyzed_roots("a = 1\nb = a + 2", {}, {}, 512, 512)
        adds = find(blocks, H.BinaryOp)
        assert all(h.exec_type is ExecType.CP for h in adds)


class TestPhysicalMethods:
    def test_tsmm_pattern(self):
        blocks = analyzed_roots(
            "X = read($X)\nZ = t(X) %*% X", BIG, ARGS, 512, 2048
        )
        mm = find(blocks, H.AggBinaryOp)[0]
        assert mm.method == "tsmm"

    def test_mapmm_broadcast_right_vector(self):
        source = "X = read($X)\nv = read($y)\nq = X %*% v"
        blocks = analyzed_roots(source, BIG, {"X": "X", "y": "y"}, 512, 2048)
        mm = find(blocks, H.AggBinaryOp)[0]
        assert mm.method == "mapmm"

    def test_transpose_rewrite_for_txv(self):
        source = "X = read($X)\ny = read($y)\nb = t(X) %*% y"
        blocks = analyzed_roots(source, BIG, ARGS, 512, 2048)
        mm = find(blocks, H.AggBinaryOp)[0]
        assert mm.transpose_rewrite
        assert mm.method == "mapmm_agg"

    def test_mapmmchain_pattern(self):
        source = "X = read($X)\nv = read($y)\nq = t(X) %*% (X %*% v)"
        blocks = analyzed_roots(source, BIG, {"X": "X", "y": "y"}, 512, 2048)
        chain = [
            h for h in find(blocks, H.AggBinaryOp) if h.method == "mapmmchain"
        ]
        assert chain

    def test_weighted_mapmmchain_pattern(self):
        source = """
X = read($X)
v = read($y)
w = v * 2
q = t(X) %*% (w * (X %*% v))
"""
        blocks = analyzed_roots(source, BIG, {"X": "X", "y": "y"}, 512, 2048)
        chain = [
            h for h in find(blocks, H.AggBinaryOp) if h.method == "mapmmchain"
        ]
        assert chain
        assert len(chain[0].mmchain_vectors) == 2

    def test_broadcast_too_large_falls_back_to_shuffle(self):
        # multiply two 8 GB matrices: nothing fits a 512 MB task
        meta = {
            "X": MatrixCharacteristics(10**6, 1000, 10**9),
            "y": MatrixCharacteristics(1000, 10**6, 10**9),
        }
        source = "X = read($X)\nY = read($y)\nZ = X %*% Y"
        blocks = analyzed_roots(source, meta, ARGS, 512, 512)
        mm = [h for h in find(blocks, H.AggBinaryOp) if h.method][0]
        assert mm.method in ("cpmm", "rmm")

    def test_map_binary_with_vector(self):
        source = "X = read($X)\ny = read($y)\nZ = X * y"
        blocks = analyzed_roots(source, BIG, ARGS, 512, 2048)
        mult = find(
            blocks, H.BinaryOp, lambda h: h.op is H.OpCode.MULT
        )[0]
        assert mult.method == "map_binary"

    def test_matrix_scalar_binary(self):
        source = "X = read($X)\nZ = X * 3"
        blocks = analyzed_roots(source, BIG, ARGS, 512, 2048)
        mult = find(blocks, H.BinaryOp, lambda h: h.op is H.OpCode.MULT)[0]
        assert mult.method == "scalar_binary"

    def test_row_aggregate_needs_no_shuffle(self):
        source = "X = read($X)\nr = rowSums(X)"
        blocks = analyzed_roots(source, BIG, ARGS, 512, 2048)
        agg = find(blocks, H.AggUnaryOp)[0]
        assert agg.method == "uagg_row"

    def test_full_aggregate_uses_uagg(self):
        source = "X = read($X)\ns = sum(X)"
        blocks = analyzed_roots(source, BIG, ARGS, 512, 2048)
        agg = find(blocks, H.AggUnaryOp)[0]
        assert agg.method == "uagg"

    def test_append_broadcast(self):
        source = "X = read($X)\ny = read($y)\nZ = append(X, y)"
        blocks = analyzed_roots(source, BIG, ARGS, 512, 2048)
        append = find(blocks, H.BinaryOp, lambda h: h.op is H.OpCode.CBIND)[0]
        assert append.method == "append_map"


class TestCPFusedOperators:
    def test_cp_tsmm_selected(self):
        blocks = analyzed_roots(
            "X = read($X)\nZ = t(X) %*% X", BIG, ARGS, 30 * 1024, 512
        )
        mm = find(blocks, H.AggBinaryOp)[0]
        assert mm.exec_type is ExecType.CP
        assert mm.method == "tsmm"

    def test_cp_transpose_rewrite(self):
        """t(X) %*% v executes in CP without materializing t(X) — the
        compilation pattern that keeps iterative scripts in memory."""
        source = "X = read($X)\ny = read($y)\nb = t(X) %*% y"
        blocks = analyzed_roots(source, BIG, ARGS, 20 * 1024, 512)
        mm = find(blocks, H.AggBinaryOp)[0]
        assert mm.exec_type is ExecType.CP
        assert mm.transpose_rewrite

    def test_selection_is_idempotent_across_configs(self):
        program = build_and_analyze(
            "X = read($X)\nZ = t(X) %*% X", ARGS, BIG
        )
        block = program.blocks[0]
        small = ResourceConfig(512, 512)
        large = ResourceConfig(40960, 512)
        select_operators(block.hop_roots, small.cp_budget_bytes,
                         small.mr_budget_bytes())
        first = [
            (h.exec_type, h.method)
            for h in H.iter_dag(block.hop_roots)
        ]
        select_operators(block.hop_roots, large.cp_budget_bytes,
                         large.mr_budget_bytes())
        select_operators(block.hop_roots, small.cp_budget_bytes,
                         small.mr_budget_bytes())
        second = [
            (h.exec_type, h.method)
            for h in H.iter_dag(block.hop_roots)
        ]
        assert first == second
