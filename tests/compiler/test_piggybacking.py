"""Unit tests for MR job packing (piggybacking)."""

from repro.cluster.resources import ResourceConfig
from repro.common import ExecType, MatrixCharacteristics, MB
from repro.compiler import hops as H
from repro.compiler.lops import JobType, Phase
from repro.compiler.operator_selection import select_operators
from repro.compiler.piggybacking import collect_skipped_hops, pack_jobs
from repro.compiler.pipeline import build_and_analyze

BIG = {
    "X": MatrixCharacteristics(10**6, 1000, 10**9),
    "y": MatrixCharacteristics(10**6, 1, 10**6),
    "w": MatrixCharacteristics(10**6, 1, 10**6),
}
ARGS = {"X": "X", "y": "y", "w": "w"}


def packed(source, cp_mb=512, mr_mb=2048, meta=BIG, args=ARGS):
    program = build_and_analyze(source, args, meta)
    rc = ResourceConfig(cp_mb, mr_mb)
    block = program.blocks[0]
    select_operators(
        block.hop_roots, rc.cp_budget_bytes, rc.mr_budget_bytes()
    )
    return pack_jobs(block.hop_roots, rc.mr_budget_bytes())


class TestScanSharing:
    def test_tsmm_and_mapmm_share_one_job(self):
        """The LinregDS core: t(X)%*%X and t(X)%*%y pack into a single
        GMR job scanning X once (the paper's scan-sharing example)."""
        source = """
X = read($X)
y = read($y)
A = t(X) %*% X
b = t(X) %*% y
"""
        jobs, _ = packed(source)
        assert len(jobs) == 1
        methods = {hop.method for hop in jobs[0].members}
        assert methods == {"tsmm", "mapmm_agg"}

    def test_two_mapmm_share_when_vectors_fit(self):
        """X%*%v and X%*%w share a job only if v and w fit the task
        budget together (paper Section 3.3.2's counterexample)."""
        source = """
X = read($X)
v = read($y)
w = read($w)
a = X %*% v
b = X %*% w
"""
        jobs, _ = packed(source, mr_mb=2048)
        assert len(jobs) == 1

    def test_broadcast_budget_splits_jobs(self):
        # vectors are 8 MB each; a budget fitting one but not two splits
        source = """
X = read($X)
v = read($y)
w = read($w)
a = X %*% v
b = X %*% w
"""
        # 8 MB vector -> in-memory ~8MB; budget 0.7*18MB = 12.6MB holds
        # one vector but not two
        jobs, _ = packed(source, mr_mb=18)
        assert len(jobs) == 2


class TestPhasesAndSlots:
    def test_single_shuffle_slot_per_job(self):
        source = """
X = read($X)
A = t(X)
B = t(X %*% t(X))
"""
        jobs, _ = packed(source)
        for job in jobs:
            shuffles = [
                m for m in job.members
                if job.phase_of(m) is Phase.SHUFFLE
            ]
            assert len(shuffles) <= 1

    def test_map_chaining(self):
        # two map-only ops on X chain in one job's map phase
        source = """
X = read($X)
Z = abs(X) * 2
"""
        jobs, _ = packed(source)
        assert len(jobs) == 1
        phases = {job.phase_of(m) for job in jobs for m in job.members}
        assert phases == {Phase.MAP}

    def test_consumer_of_shuffle_needs_new_job_when_map_only(self):
        # rix is map-only; consuming a shuffle-phase output (the 8 GB
        # transpose) forces a second job
        source = """
X = read($X)
Z = t(X)[, 1:10]
"""
        jobs, _ = packed(source, cp_mb=512, mr_mb=512)
        assert len(jobs) >= 2

    def test_cpmm_runs_alone(self):
        meta = {
            "X": MatrixCharacteristics(10**6, 1000, 10**9),
            "y": MatrixCharacteristics(1000, 10**6, 10**9),
        }
        source = "X = read($X)\nY = read($y)\nZ = abs(X %*% Y)"
        program = build_and_analyze(source, {"X": "X", "y": "y"}, meta)
        rc = ResourceConfig(512, 512)
        block = program.blocks[0]
        select_operators(block.hop_roots, rc.cp_budget_bytes,
                         rc.mr_budget_bytes())
        jobs, _ = pack_jobs(block.hop_roots, rc.mr_budget_bytes())
        mmcj = [j for j in jobs if j.job_type is JobType.MMCJ]
        if mmcj:  # method choice may pick rmm; only check isolation
            assert all(len(j.members) == 1 for j in mmcj)

    def test_datagen_job_type(self):
        source = "Z = rand(rows=2000000, cols=1000)"
        jobs, _ = packed(source, cp_mb=512, mr_mb=512, meta={}, args={})
        assert jobs[0].job_type is JobType.DATAGEN


class TestSkippedHops:
    def test_transpose_folded_into_tsmm(self):
        source = "X = read($X)\nA = t(X) %*% X"
        program = build_and_analyze(source, ARGS, BIG)
        rc = ResourceConfig(512, 2048)
        block = program.blocks[0]
        select_operators(block.hop_roots, rc.cp_budget_bytes,
                         rc.mr_budget_bytes())
        skipped = collect_skipped_hops(block.hop_roots)
        reorgs = [
            h for h in H.iter_dag(block.hop_roots)
            if isinstance(h, H.ReorgOp)
        ]
        assert reorgs[0].hop_id in skipped

    def test_shared_transpose_not_folded(self):
        # t(X) has a second, real consumer: it must be materialized
        source = """
X = read($X)
A = t(X) %*% X
B = t(X) + 0.5
"""
        program = build_and_analyze(source, ARGS, BIG)
        rc = ResourceConfig(512, 2048)
        block = program.blocks[0]
        select_operators(block.hop_roots, rc.cp_budget_bytes,
                         rc.mr_budget_bytes())
        skipped = collect_skipped_hops(block.hop_roots)
        reorgs = [
            h for h in H.iter_dag(block.hop_roots)
            if isinstance(h, H.ReorgOp)
        ]
        assert reorgs[0].hop_id not in skipped

    def test_mmchain_inner_ops_folded(self):
        source = "X = read($X)\nv = read($y)\nq = t(X) %*% (X %*% v)"
        program = build_and_analyze(source, ARGS, BIG)
        rc = ResourceConfig(512, 2048)
        block = program.blocks[0]
        select_operators(block.hop_roots, rc.cp_budget_bytes,
                         rc.mr_budget_bytes())
        skipped = collect_skipped_hops(block.hop_roots)
        inner_mms = [
            h
            for h in H.iter_dag(block.hop_roots)
            if isinstance(h, H.AggBinaryOp) and h.method != "mapmmchain"
        ]
        assert all(h.hop_id in skipped for h in inner_mms)

    def test_all_members_have_phases(self):
        source = """
X = read($X)
y = read($y)
A = t(X) %*% X
s = sum(X)
r = rowSums(X)
"""
        jobs, _ = packed(source)
        for job in jobs:
            for member in job.members:
                assert job.phase_of(member) is not None
